//! # mrp-bench — benchmark harness
//!
//! This crate only exists to host the Criterion benches that regenerate every
//! figure of the paper (see `benches/`); it exports nothing. Run them with
//! `cargo bench --workspace`; each bench prints the reproduced table so the
//! captured output doubles as the data behind `EXPERIMENTS.md`.
