//! # mrp-bench — benchmark harness
//!
//! This crate hosts the benches that regenerate every figure of the paper and
//! the `sim_throughput` bench that tracks the simulation core's events/sec
//! (see `benches/`). The harness is self-contained (`std::time::Instant`
//! based) because the build environment has no access to crates.io: each
//! bench is a `harness = false` binary that calls [`Bench::measure`].
//!
//! Run them with `cargo bench --workspace`; each bench prints the reproduced
//! table so the captured output doubles as the data behind `EXPERIMENTS.md`.
//! `cargo bench --bench <name> -- --test` runs one smoke iteration without
//! timing (used by CI).

#![warn(missing_docs)]

pub mod scenarios;

use std::time::Instant;

/// Timing options parsed from the bench binary's command line.
#[derive(Clone, Copy, Debug)]
pub struct Bench {
    /// `--test`: run each benchmark body exactly once, skip timing output.
    test_mode: bool,
    /// Number of measured iterations per benchmark.
    iterations: usize,
}

impl Bench {
    /// Parses `--test` (smoke mode) from the command line; every other
    /// argument (e.g. the `--bench` flag cargo appends) is ignored.
    pub fn from_args() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Bench {
            test_mode,
            iterations: 5,
        }
    }

    /// True when running in `--test` smoke mode.
    pub fn is_test(&self) -> bool {
        self.test_mode
    }

    /// Runs `f` under the harness: once in smoke mode, otherwise one warmup
    /// plus the configured number of timed runs. Prints and returns the mean
    /// wall-clock seconds per iteration.
    pub fn measure<R>(&self, name: &str, mut f: impl FnMut() -> R) -> f64 {
        if self.test_mode {
            let start = Instant::now();
            let _ = f();
            let secs = start.elapsed().as_secs_f64();
            println!("{name}: smoke run ok ({secs:.3}s)");
            return secs;
        }
        let _ = f(); // warmup
        let mut times = Vec::with_capacity(self.iterations);
        for _ in 0..self.iterations {
            let start = Instant::now();
            let _ = f();
            times.push(start.elapsed().as_secs_f64());
        }
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "{name}: mean {mean:.4}s, min {min:.4}s over {} iterations",
            times.len()
        );
        mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_positive_time() {
        let bench = Bench {
            test_mode: true,
            iterations: 1,
        };
        let secs = bench.measure("noop", || 1 + 1);
        assert!(secs >= 0.0);
        assert!(bench.is_test());
    }

    #[test]
    fn timed_mode_runs_all_iterations() {
        let bench = Bench {
            test_mode: false,
            iterations: 3,
        };
        let mut runs = 0;
        bench.measure("count", || runs += 1);
        assert_eq!(runs, 4, "one warmup + three timed iterations");
    }
}
