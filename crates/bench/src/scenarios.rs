//! Shared throughput-scenario definitions.
//!
//! The tracked scenarios (`sim_throughput`, `swim_cluster`, `fault_churn`,
//! `locality_delay`, `rack_outage`, `partition_detect`, `multi_tenant`)
//! live here so both the bench binaries and the CI
//! bench-regression gate (`check_bench`) run *exactly* the same workloads:
//! the gate compares fresh events/sec ratios against the checked-in
//! baselines, which is only meaningful when the scenarios are identical.

use mrp_engine::{
    Cluster, ClusterConfig, ClusterReport, DetectorConfig, FaultEvent, FaultKind, FaultPlan,
    JobSpec, NodeId, RackId, RandomFaults, ReliabilityConfig, SchedulerPolicy, ShuffleConfig,
    SpeculationConfig, TraceLevel,
};
use mrp_preempt::{EvictionPolicy, HfspScheduler, PreemptionPrimitive};
use mrp_sim::{SimTime, GIB, MIB};
use mrp_workload::{dfs_backed, SwimConfig, SwimGenerator};
use std::time::Instant;

/// What one scenario run produced: the full report, the number of events the
/// run loop handled, and the wall-clock seconds it took.
pub struct ScenarioOutcome {
    /// The end-of-run cluster report.
    pub report: ClusterReport,
    /// Events processed by `Cluster::run`.
    pub events: u64,
    /// Wall-clock seconds for the `Cluster::run` call alone.
    pub wall_secs: f64,
    /// The observability state, when the run was configured with
    /// [`mrp_engine::ObsConfig`] enabled (span trace, series, profile).
    pub obs: Option<Box<mrp_engine::ObsState>>,
}

impl ScenarioOutcome {
    /// Events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_secs
    }
}

fn timed_run(mut cluster: Cluster, max: SimTime, name: &str) -> ScenarioOutcome {
    let start = Instant::now();
    cluster.run(max);
    let wall_secs = start.elapsed().as_secs_f64();
    let obs = cluster.take_observability();
    let report = cluster.report();
    assert!(
        report.all_jobs_complete(),
        "{name} scenario must run to completion"
    );
    ScenarioOutcome {
        report,
        events: cluster.events_processed(),
        wall_secs,
        obs,
    }
}

/// Reads the `events_per_sec` field of a checked-in `BENCH_*.json`
/// baseline at the repository root, if present and parseable.
pub fn baseline_events_per_sec(file: &str) -> Option<f64> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("../../{file}"));
    let text = std::fs::read_to_string(path).ok()?;
    mrp_preempt::json::Json::parse(&text)
        .ok()?
        .get("events_per_sec")?
        .as_f64()
}

/// The default HFSP suspend/resume policy the throughput scenarios use.
pub fn hfsp() -> Box<dyn SchedulerPolicy> {
    Box::new(HfspScheduler::new(
        PreemptionPrimitive::SuspendResume,
        EvictionPolicy::ClosestToCompletion,
    ))
}

/// The 200-node / 4000-task suspend-churn scenario behind the
/// `sim_throughput` bench.
pub mod sim_throughput {
    use super::*;

    /// Cluster nodes.
    pub const NODES: u32 = 200;
    /// Map slots per node.
    pub const MAP_SLOTS: u32 = 2;
    /// Number of big batch jobs.
    pub const BIG_JOBS: u32 = 20;
    /// Map tasks per batch job.
    pub const BIG_JOB_TASKS: u32 = 180;
    /// Number of small latency-sensitive jobs.
    pub const SMALL_JOBS: u32 = 40;
    /// Map tasks per small job.
    pub const SMALL_JOB_TASKS: u32 = 10;
    /// Input bytes per batch map task.
    pub const BYTES_PER_TASK: u64 = 64 * 1024 * 1024;
    /// Total map tasks in the scenario.
    pub const TOTAL_TASKS: u32 = BIG_JOBS * BIG_JOB_TASKS + SMALL_JOBS * SMALL_JOB_TASKS;

    /// The scenario's cluster configuration (tracing off).
    pub fn config() -> ClusterConfig {
        ClusterConfig::small_cluster(NODES, MAP_SLOTS, 1).with_trace_level(TraceLevel::Off)
    }

    /// Submits the churn workload: batch jobs saturate every slot, then a
    /// stream of small jobs arrives and HFSP preempts batch tasks to run
    /// them.
    pub fn submit_workload(cluster: &mut Cluster) {
        for i in 0..BIG_JOBS {
            cluster.submit_job_at(
                JobSpec::synthetic(format!("batch-{i:02}"), BIG_JOB_TASKS, BYTES_PER_TASK),
                SimTime::from_secs(u64::from(i)),
            );
        }
        for i in 0..SMALL_JOBS {
            cluster.submit_job_at(
                JobSpec::synthetic(format!("small-{i:02}"), SMALL_JOB_TASKS, BYTES_PER_TASK / 4),
                SimTime::from_secs(20 + 7 * u64::from(i)),
            );
        }
    }

    /// Runs the scenario under the given policy.
    pub fn run(scheduler: Box<dyn SchedulerPolicy>) -> ScenarioOutcome {
        run_with_config(scheduler, |_| {})
    }

    /// Runs the scenario with a configuration tweak applied first (the
    /// observability-overhead gate switches `ObsConfig` on this way, so
    /// the obs-on and obs-off runs share one workload and seed).
    pub fn run_with_config(
        scheduler: Box<dyn SchedulerPolicy>,
        tweak: impl FnOnce(&mut ClusterConfig),
    ) -> ScenarioOutcome {
        let mut cfg = config();
        tweak(&mut cfg);
        let mut cluster = Cluster::new(cfg, scheduler);
        submit_workload(&mut cluster);
        timed_run(cluster, SimTime::from_secs(24 * 3_600), "sim_throughput")
    }
}

/// The 10k-node / 100-rack SWIM-trace scenario behind the `swim_cluster`
/// bench.
pub mod swim_cluster {
    use super::*;

    /// Scenario shape; [`SwimScenario::small`] is the CI smoke variant.
    pub struct SwimScenario {
        /// Number of racks.
        pub racks: u32,
        /// Nodes per rack.
        pub nodes_per_rack: u32,
        /// Map slots per node.
        pub map_slots: u32,
        /// Jobs in the SWIM trace.
        pub jobs: usize,
        /// Smallest job input size.
        pub min_job_bytes: u64,
        /// Largest job input size.
        pub max_job_bytes: u64,
        /// Mean job inter-arrival time in seconds.
        pub mean_interarrival_secs: f64,
        /// Sanity floor on the generated map-task count.
        pub min_tasks: usize,
        /// Trace seed.
        pub seed: u64,
    }

    impl SwimScenario {
        /// The full 10,000-node scenario (the tracked baseline).
        pub fn full() -> Self {
            SwimScenario {
                racks: 100,
                nodes_per_rack: 100,
                map_slots: 2,
                jobs: 2_400,
                min_job_bytes: GIB,
                max_job_bytes: 128 * GIB,
                // Total work ~= tasks x 23s over 20k slots ~= 120s saturated;
                // arrivals paced slightly faster than drain keeps a
                // preemption-heavy backlog without collapsing into one giant
                // batch.
                mean_interarrival_secs: 0.06,
                min_tasks: 100_000,
                seed: 0x5717,
            }
        }

        /// The shrunken 64-node CI smoke variant.
        pub fn small() -> Self {
            SwimScenario {
                racks: 8,
                nodes_per_rack: 8,
                map_slots: 2,
                jobs: 60,
                min_job_bytes: 256 * MIB,
                max_job_bytes: 8 * GIB,
                mean_interarrival_secs: 0.4,
                min_tasks: 200,
                seed: 0x5717,
            }
        }

        /// Total cluster nodes.
        pub fn nodes(&self) -> u32 {
            self.racks * self.nodes_per_rack
        }

        /// The SWIM generator configuration for this shape.
        pub fn swim_config(&self) -> SwimConfig {
            SwimConfig {
                jobs: self.jobs,
                mean_interarrival_secs: self.mean_interarrival_secs,
                size_shape: 0.9,
                min_job_bytes: self.min_job_bytes,
                max_job_bytes: self.max_job_bytes,
                bytes_per_task: 128 * MIB,
                stateful_fraction: 0.05,
                stateful_memory: GIB,
                high_priority_fraction: 0.25,
                slow_fraction: 0.0,
                slow_parse_rate_bytes_per_sec: 1.5 * MIB as f64,
                slow_max_tasks: u32::MAX,
                reduce_ratio: 0.0,
                tenants: 1,
                best_effort_fraction: 0.0,
            }
        }

        /// Runs the scenario once (HFSP suspend/resume, DFS-backed inputs).
        pub fn run(&self) -> ScenarioOutcome {
            self.run_with_config(|_| {})
        }

        /// Runs the scenario with a configuration tweak applied before the
        /// cluster is built (the `locality_delay` scenario switches delay
        /// scheduling on this way, so both scenarios share one workload).
        pub fn run_with_config(&self, tweak: impl FnOnce(&mut ClusterConfig)) -> ScenarioOutcome {
            let mut cfg =
                ClusterConfig::racked_cluster(self.racks, self.nodes_per_rack, self.map_slots, 1)
                    .with_trace_level(TraceLevel::Off);
            tweak(&mut cfg);
            let mut cluster = Cluster::new(cfg, hfsp());
            let trace = SwimGenerator::new(self.swim_config(), self.seed).generate();
            let (jobs, files) = dfs_backed(&trace, "/swim");
            let n = u64::from(self.nodes());
            for (i, (path, bytes)) in files.iter().enumerate() {
                let writer = NodeId(((i as u64 * 37) % n) as u32);
                cluster
                    .create_input_file_from(path, *bytes, Some(writer))
                    .expect("swim input files are unique");
            }
            for job in jobs {
                cluster.submit_job_at(job.spec, job.arrival);
            }
            timed_run(cluster, SimTime::from_secs(24 * 3_600), "swim_cluster")
        }
    }
}

/// The delay-scheduling scenario behind the `locality_delay` bench: the
/// `swim_cluster`-shaped workload (multi-rack SWIM trace, DFS-backed inputs,
/// HFSP suspend/resume) run twice on the same seed — greedy placement vs
/// delay scheduling at 1+1 heartbeat intervals — so the bench can record the
/// node-local-rate gain and the makespan cost side by side.
pub mod locality_delay {
    use super::swim_cluster::SwimScenario;
    use super::*;

    /// Wait for a node-local slot, in heartbeat intervals.
    pub const NODE_WAIT_INTERVALS: f64 = 1.0;
    /// Additional wait for a rack-local slot, in heartbeat intervals.
    pub const RACK_WAIT_INTERVALS: f64 = 1.0;

    /// The tracked full shape: a 2,000-node / 40-rack slice of the
    /// `swim_cluster` workload at moderate (rather than collapse-level)
    /// backlog. Large enough that strict HFSP order shows the same
    /// sub-percent node-local rate as the 10k-node scenario, small enough
    /// that `check_bench` can afford the delay-on/off pair, and paced so
    /// the delayed run's per-event cost stays within the 3x bar (a deeper
    /// backlog multiplies declining-job scans per free slot).
    pub fn full() -> SwimScenario {
        SwimScenario {
            racks: 40,
            nodes_per_rack: 50,
            map_slots: 2,
            jobs: 500,
            min_job_bytes: GIB,
            max_job_bytes: 64 * GIB,
            mean_interarrival_secs: 0.6,
            min_tasks: 15_000,
            seed: 0x10CA1,
        }
    }

    /// The shrunken CI smoke variant (64 nodes).
    pub fn small() -> SwimScenario {
        SwimScenario {
            racks: 8,
            nodes_per_rack: 8,
            map_slots: 2,
            jobs: 60,
            min_job_bytes: 256 * MIB,
            max_job_bytes: 8 * GIB,
            mean_interarrival_secs: 0.4,
            min_tasks: 200,
            seed: 0x10CA1,
        }
    }

    /// Runs the scenario with delay scheduling on or off (same seed, same
    /// workload — the only difference is `ClusterConfig::delay`).
    pub fn run(sc: &SwimScenario, delay: bool) -> ScenarioOutcome {
        sc.run_with_config(|cfg| {
            if delay {
                *cfg = cfg
                    .clone()
                    .with_delay_intervals(NODE_WAIT_INTERVALS, RACK_WAIT_INTERVALS);
            }
        })
    }
}

/// The rack-outage scenario behind the `rack_outage` bench: fault-tolerant
/// shuffle plus the ATLAS-style reliability predictor under the loss of a
/// whole rack mid-trace. The scenario itself lives in
/// `mrp_experiments::RackOutageConfig` so the bench, the CI gate and the
/// experiments crate run exactly the same workload; this module pins the
/// tracked full/smoke shapes and adds wall-clock timing.
pub mod rack_outage {
    use super::*;
    pub use mrp_experiments::{run_rack_outage, OutageWindow, RackOutageConfig, RackOutageOutcome};

    /// One timed rack-outage run.
    pub struct RackOutageRun {
        /// The scenario outcome (report, fault counters, sojourn quantiles).
        pub outcome: RackOutageOutcome,
        /// Wall-clock seconds for the run (SWIM generation included; it is
        /// negligible against the event loop at these shapes).
        pub wall_secs: f64,
    }

    impl RackOutageRun {
        /// Events per wall-clock second.
        pub fn events_per_sec(&self) -> f64 {
            self.outcome.events as f64 / self.wall_secs
        }

        /// p99 job sojourn time in seconds.
        pub fn p99_sojourn_secs(&self) -> f64 {
            self.outcome.sojourn_quantiles[2]
        }
    }

    /// The tracked full shape: 72 nodes across 6 racks under a
    /// reduce-heavy SWIM trace at moderate utilisation, with rack 1 a
    /// *repeat offender* — dark twice, rejoining in between — plus light
    /// background churn. The repeat offence is what the reliability
    /// predictor is for: between the windows the rack is up but still
    /// flaky, and predictor-off re-populates it with map outputs (roughly
    /// a sixth of the cluster's) that the second outage then destroys; the
    /// utilisation leaves enough slack elsewhere that declining flaky
    /// slots costs little.
    pub fn full() -> RackOutageConfig {
        RackOutageConfig {
            racks: 6,
            nodes_per_rack: 12,
            map_slots: 2,
            reduce_slots: 1,
            swim: SwimConfig {
                jobs: 240,
                mean_interarrival_secs: 4.5,
                size_shape: 0.9,
                min_job_bytes: 512 * MIB,
                max_job_bytes: 24 * GIB,
                reduce_ratio: 0.4,
                ..SwimConfig::default()
            },
            outage_rack: 1,
            outages: vec![
                OutageWindow::from_secs(120, 300),
                OutageWindow::from_secs(390, 540),
            ],
            churn: Some(RandomFaults {
                rack_mtbf_secs: 300.0,
                mean_recovery_secs: Some(45.0),
                horizon: SimTime::from_secs(600),
                seed: 0xACED,
            }),
            predictor: true,
            seed: 0x0A7A,
        }
    }

    /// The shrunken CI smoke variant (24 nodes; the experiments crate's
    /// compact scenario).
    pub fn small() -> RackOutageConfig {
        RackOutageConfig::compact()
    }

    /// Runs the scenario once with the predictor forced on or off.
    pub fn run(config: &RackOutageConfig, predictor: bool) -> RackOutageRun {
        let mut config = config.clone();
        config.predictor = predictor;
        let start = Instant::now();
        let outcome = run_rack_outage(&config);
        RackOutageRun {
            outcome,
            wall_secs: start.elapsed().as_secs_f64(),
        }
    }
}

/// The failure-detection scenario behind the `partition_detect` bench: a
/// multi-rack cluster under random churn with the suspicion-based failure
/// detector on, plus scripted network partitions (one whole rack dark past
/// the timeout, a node-scoped partition that outlives it, one that heals
/// before it) and a gray-failing node — with speculation,
/// fault-tolerant shuffle and the reliability predictor all enabled, so the
/// detector runs over the full robustness stack. Every run (smoke included)
/// asserts the quality bars the PR's acceptance criteria pin:
/// first-commit-wins reconciliation never double-commits a task, and
/// detection lag never exceeds the timeout plus one heartbeat interval.
pub mod partition_detect {
    use super::*;

    /// Scenario shape; [`PartitionDetectScenario::small`] is the CI smoke
    /// variant.
    pub struct PartitionDetectScenario {
        /// Number of racks.
        pub racks: u32,
        /// Nodes per rack.
        pub nodes_per_rack: u32,
        /// Map slots per node.
        pub map_slots: u32,
        /// Jobs in the SWIM trace.
        pub jobs: usize,
        /// Mean job inter-arrival time in seconds.
        pub mean_interarrival_secs: f64,
        /// Per-rack mean time between node failures, seconds (the random
        /// churn the detector observes with lag).
        pub rack_mtbf_secs: f64,
        /// Mean node downtime before rejoin, seconds.
        pub mean_recovery_secs: f64,
        /// No random failures after this virtual time.
        pub fault_horizon: SimTime,
        /// Trace seed (workload and fault draws derive from it).
        pub seed: u64,
    }

    impl PartitionDetectScenario {
        /// The tracked full shape: 200 nodes across 20 racks at moderate
        /// utilisation with a reduce share (so partitions strand shuffle
        /// fetches, not just map slots).
        pub fn full() -> Self {
            PartitionDetectScenario {
                racks: 20,
                nodes_per_rack: 10,
                map_slots: 2,
                jobs: 400,
                mean_interarrival_secs: 2.0,
                rack_mtbf_secs: 240.0,
                mean_recovery_secs: 60.0,
                fault_horizon: SimTime::from_secs(480),
                seed: 0xDE7EC7,
            }
        }

        /// The shrunken CI smoke variant (36 nodes).
        pub fn small() -> Self {
            PartitionDetectScenario {
                racks: 6,
                nodes_per_rack: 6,
                map_slots: 2,
                jobs: 70,
                mean_interarrival_secs: 2.0,
                rack_mtbf_secs: 180.0,
                mean_recovery_secs: 45.0,
                fault_horizon: SimTime::from_secs(480),
                seed: 0xDE7EC7,
            }
        }

        /// Total cluster nodes.
        pub fn nodes(&self) -> u32 {
            self.racks * self.nodes_per_rack
        }

        /// The SWIM generator configuration for this shape.
        pub fn swim_config(&self) -> SwimConfig {
            SwimConfig {
                jobs: self.jobs,
                mean_interarrival_secs: self.mean_interarrival_secs,
                size_shape: 0.9,
                min_job_bytes: 512 * MIB,
                max_job_bytes: 24 * GIB,
                bytes_per_task: 128 * MIB,
                stateful_fraction: 0.1,
                stateful_memory: GIB,
                high_priority_fraction: 0.25,
                slow_fraction: 0.15,
                slow_parse_rate_bytes_per_sec: 1.6 * MIB as f64,
                slow_max_tasks: 8,
                // Reduces make partitions strand shuffle fetches too, which
                // is what the fault-tolerant shuffle + detector combination
                // is for. Kept to a modest share: fault-tolerant shuffle
                // bookkeeping dominates per-event cost, and a heavier mix
                // would drag events/sec under the 1/3 acceptance bar.
                reduce_ratio: 0.15,
                tenants: 1,
                best_effort_fraction: 0.0,
            }
        }

        /// The cluster configuration with the detector on or off (same
        /// workload, same fault plan — the ablation the bench prints).
        ///
        /// The scripted plan: rack `racks-1` is partitioned for 30s (torn
        /// down after the timeout, healed with first-commit-wins
        /// reconciliation); node 1 is partitioned past the timeout and node 2
        /// briefly (healed before suspicion fires — no penalty); node 3 gray-
        /// fails (disk x3, net x2) and recovers late in the run.
        pub fn config(&self, detector: bool) -> ClusterConfig {
            let mut faults = FaultPlan {
                random: Some(RandomFaults {
                    rack_mtbf_secs: self.rack_mtbf_secs,
                    mean_recovery_secs: Some(self.mean_recovery_secs),
                    horizon: self.fault_horizon,
                    seed: self.seed ^ 0x9A7,
                }),
                ..FaultPlan::default()
            };
            let dark_rack = RackId(self.racks - 1);
            for (at, kind) in [
                (
                    30,
                    FaultKind::Gray {
                        node: NodeId(3),
                        slow_disk: 3.0,
                        slow_net: 2.0,
                    },
                ),
                // Heals land shortly after the missed-heartbeat teardown, so
                // completions buffered behind the partitions race the
                // master's re-runs — first-commit-wins gets exercised in
                // both directions (commits and discards).
                (40, FaultKind::Partition { node: NodeId(1) }),
                (55, FaultKind::PartitionHeal { node: NodeId(1) }),
                (60, FaultKind::RackPartition { rack: dark_rack }),
                (90, FaultKind::RackPartitionHeal { rack: dark_rack }),
                (100, FaultKind::Partition { node: NodeId(2) }),
                (104, FaultKind::PartitionHeal { node: NodeId(2) }),
                (300, FaultKind::GrayHeal { node: NodeId(3) }),
            ] {
                faults.events.push(FaultEvent {
                    at: SimTime::from_secs(at),
                    kind,
                });
            }
            let cfg =
                ClusterConfig::racked_cluster(self.racks, self.nodes_per_rack, self.map_slots, 1)
                    .with_trace_level(TraceLevel::Off)
                    .with_speculation(SpeculationConfig::enabled())
                    .with_shuffle(ShuffleConfig::fault_tolerant())
                    .with_reliability(ReliabilityConfig::predictive())
                    .with_faults(faults);
            if detector {
                cfg.with_detector(DetectorConfig::enabled())
            } else {
                cfg
            }
        }

        /// The acceptance bound on observed detection lag: the detector
        /// timeout plus one heartbeat interval (suspicion timers anchor on
        /// the last heartbeat actually received, which is at most one
        /// interval before the fault).
        pub fn lag_bound_secs(&self) -> f64 {
            let cfg = self.config(true);
            (cfg.detector.timeout(cfg.heartbeat_interval) + cfg.heartbeat_interval).as_secs_f64()
        }

        /// Runs the scenario once (HFSP suspend/resume, DFS-backed inputs).
        pub fn run(&self, detector: bool) -> ScenarioOutcome {
            let mut cluster = Cluster::new(self.config(detector), hfsp());
            let trace = SwimGenerator::new(self.swim_config(), self.seed).generate();
            let (jobs, files) = dfs_backed(&trace, "/detect");
            let n = u64::from(self.nodes());
            for (i, (path, bytes)) in files.iter().enumerate() {
                let writer = NodeId(((i as u64 * 37) % n) as u32);
                cluster
                    .create_input_file_from(path, *bytes, Some(writer))
                    .expect("detect input files are unique");
            }
            for job in jobs {
                cluster.submit_job_at(job.spec, job.arrival);
            }
            timed_run(cluster, SimTime::from_secs(24 * 3_600), "partition_detect")
        }
    }

    /// Panics unless a detector-on outcome satisfies the scenario's quality
    /// bars (shared by the bench binary; `check_bench` enforces the same
    /// conditions as an exit-code gate).
    pub fn assert_quality(sc: &PartitionDetectScenario, outcome: &ScenarioOutcome) {
        let f = &outcome.report.faults;
        assert_eq!(
            f.duplicate_commits, 0,
            "first-commit-wins must never double-commit a task: {f:?}"
        );
        assert!(
            f.detection_lag_secs_max <= sc.lag_bound_secs() + 1e-9,
            "detection lag {:.3}s exceeds the {:.1}s bound: {f:?}",
            f.detection_lag_secs_max,
            sc.lag_bound_secs()
        );
        assert!(
            f.nodes_suspected >= 1 && f.failures_detected >= 1,
            "the detector must observe churn and partitions: {f:?}"
        );
        assert!(
            f.partitions >= 2 && f.partition_heals >= 1 && f.partition_heals <= f.partitions,
            "scripted partitions must strike and heal: {f:?}"
        );
        assert!(
            f.reconciled_commits + f.reconciled_discards >= 1,
            "healed partitions must reconcile buffered completions: {f:?}"
        );
        assert!(
            f.gray_failures >= 1 && f.gray_heals >= 1,
            "the gray failure must strike and heal: {f:?}"
        );
    }
}

/// The multi-tenant DRF scenario behind the `multi_tenant` bench: the
/// pluggable action pipeline (`allocate` under DRF job order, quota
/// `reclaim` via kill or OS-assisted suspend, best-effort `backfill`) on a
/// three-tenant cluster with a saturating burst, staggered per-tenant
/// streams and a scavenger class. The scenario itself lives in
/// `mrp_experiments::TenantScenarioConfig` so the bench, the CI gate and
/// the experiments crate run exactly the same workload; this module pins
/// the tracked full/smoke shapes, adds wall-clock timing, and carries the
/// quality bars (DRF quota adherence, suspend-beats-kill on lost work,
/// backfill liveness) shared by the bench binary and `check_bench`.
pub mod multi_tenant {
    use super::*;
    pub use mrp_experiments::{run_tenant_scenario, TenantScenarioConfig, TenantScenarioOutcome};

    /// The tracked full shape: 40 nodes / 80 map slots, weighted tenants
    /// (2:1:1), ~900 s of arrivals.
    pub fn full() -> TenantScenarioConfig {
        TenantScenarioConfig::full(PreemptionPrimitive::SuspendResume)
    }

    /// The shrunken CI smoke variant (8 nodes, equal weights).
    pub fn small() -> TenantScenarioConfig {
        TenantScenarioConfig::compact(PreemptionPrimitive::SuspendResume)
    }

    /// One timed multi-tenant run.
    pub struct TenantRun {
        /// The scenario outcome (per-tenant shares, lost work, backfill
        /// liveness, event count).
        pub outcome: TenantScenarioOutcome,
        /// Wall-clock seconds for the run (workload submission included; it
        /// is negligible against the event loop at these shapes).
        pub wall_secs: f64,
    }

    impl TenantRun {
        /// Events per wall-clock second.
        pub fn events_per_sec(&self) -> f64 {
            self.outcome.events_processed as f64 / self.wall_secs
        }
    }

    /// Runs the scenario once with reclaim evicting via the given
    /// primitive — same seed, same workload, only the eviction mechanism
    /// differs between calls.
    pub fn run(config: &TenantScenarioConfig, primitive: PreemptionPrimitive) -> TenantRun {
        let config = TenantScenarioConfig {
            primitive,
            ..config.clone()
        };
        let start = Instant::now();
        let outcome = run_tenant_scenario(&config);
        TenantRun {
            outcome,
            wall_secs: start.elapsed().as_secs_f64(),
        }
    }

    /// Panics unless a same-seed suspend/kill pair satisfies the scenario's
    /// quality bars (shared by the bench binary; `check_bench` enforces the
    /// same conditions as an exit-code gate):
    ///
    /// 1. **DRF quota adherence** — at steady state, no tenant's mean
    ///    dominant share exceeds its quota by more than 5 percentage points
    ///    while another tenant is starved;
    /// 2. **reclaim liveness** — suspension-based reclaim actually evicts
    ///    (`suspend_cycles >= 1`);
    /// 3. **the paper's trade-off** — suspend-based reclaim strictly beats
    ///    kill-based on lost work on the same seed, and kill's loss is real;
    /// 4. **backfill liveness** — every best-effort job completes.
    pub fn assert_quality(suspend: &TenantScenarioOutcome, kill: &TenantScenarioOutcome) {
        for s in &suspend.shares {
            assert!(
                s.mean_excess_over_quota <= 0.05,
                "DRF gate: tenant {} holds {:.3} above its {:.3} quota while others starve \
                 (bar: 0.05)",
                s.tenant,
                s.mean_excess_over_quota,
                s.quota
            );
        }
        assert!(
            suspend.suspend_cycles >= 1,
            "reclaim must actually fire under contention"
        );
        assert!(
            kill.lost_work_secs > 0.0,
            "kill-based reclaim must waste accrued progress on this workload"
        );
        assert!(
            suspend.lost_work_secs < kill.lost_work_secs,
            "suspend-based reclaim must strictly beat kill on lost work: \
             {:.1}s vs {:.1}s",
            suspend.lost_work_secs,
            kill.lost_work_secs
        );
        assert_eq!(
            suspend.best_effort_completed, suspend.best_effort_jobs,
            "backfill must drain the best-effort class"
        );
    }
}

/// The fault-injection churn scenario behind the `fault_churn` bench: a
/// 200-node multi-rack cluster under HFSP suspend/resume preemption churn
/// *and* seeded random node failures (plus a scripted rack outage and a
/// decommission), with speculative re-execution togglable so the bench can
/// measure its tail-latency payoff on the same seed.
pub mod fault_churn {
    use super::*;

    /// Scenario shape; [`FaultChurnScenario::small`] is the CI smoke variant.
    pub struct FaultChurnScenario {
        /// Number of racks.
        pub racks: u32,
        /// Nodes per rack.
        pub nodes_per_rack: u32,
        /// Map slots per node.
        pub map_slots: u32,
        /// Jobs in the SWIM trace.
        pub jobs: usize,
        /// Mean job inter-arrival time in seconds.
        pub mean_interarrival_secs: f64,
        /// Per-rack mean time between node failures, seconds.
        pub rack_mtbf_secs: f64,
        /// Mean node downtime before rejoin, seconds.
        pub mean_recovery_secs: f64,
        /// No random failures after this virtual time.
        pub fault_horizon: SimTime,
        /// Whether speculative re-execution is enabled.
        pub speculation: bool,
        /// Fraction of jobs whose tasks parse slowly (straggler population).
        pub slow_fraction: f64,
        /// Parse rate of slow jobs' tasks, bytes/second.
        pub slow_parse_rate_bytes_per_sec: f64,
        /// Trace seed (workload and fault draws derive from it).
        pub seed: u64,
    }

    impl FaultChurnScenario {
        /// The full 1000-node scenario (the tracked baseline): ~50 racks of
        /// churn with a rack MTBF short enough that hundreds of nodes fail
        /// (and rejoin) over the run, at ~0.8 utilisation so preemption,
        /// stranded suspended tasks and idle backup slots all coexist.
        pub fn full() -> Self {
            FaultChurnScenario {
                racks: 50,
                nodes_per_rack: 20,
                map_slots: 2,
                jobs: 1_200,
                mean_interarrival_secs: 0.3,
                rack_mtbf_secs: 90.0,
                mean_recovery_secs: 45.0,
                fault_horizon: SimTime::from_secs(600),
                speculation: true,
                slow_fraction: 0.15,
                slow_parse_rate_bytes_per_sec: 1.6 * MIB as f64,
                seed: 0xFA17,
            }
        }

        /// The shrunken CI smoke variant (100 nodes).
        pub fn small() -> Self {
            FaultChurnScenario {
                racks: 10,
                nodes_per_rack: 10,
                map_slots: 2,
                jobs: 150,
                mean_interarrival_secs: 2.2,
                rack_mtbf_secs: 60.0,
                mean_recovery_secs: 45.0,
                fault_horizon: SimTime::from_secs(600),
                speculation: true,
                slow_fraction: 0.15,
                slow_parse_rate_bytes_per_sec: 1.6 * MIB as f64,
                seed: 0xFA17,
            }
        }

        /// Total cluster nodes.
        pub fn nodes(&self) -> u32 {
            self.racks * self.nodes_per_rack
        }

        /// The SWIM generator configuration for this shape.
        pub fn swim_config(&self) -> SwimConfig {
            SwimConfig {
                jobs: self.jobs,
                mean_interarrival_secs: self.mean_interarrival_secs,
                size_shape: 0.9,
                min_job_bytes: 512 * MIB,
                max_job_bytes: 24 * GIB,
                bytes_per_task: 128 * MIB,
                stateful_fraction: 0.1,
                stateful_memory: GIB,
                high_priority_fraction: 0.25,
                // Slow jobs' long tasks pin slots, strand suspended
                // neighbours, and form the straggler population speculative
                // re-execution is for.
                slow_fraction: self.slow_fraction,
                slow_parse_rate_bytes_per_sec: self.slow_parse_rate_bytes_per_sec,
                slow_max_tasks: 8,
                reduce_ratio: 0.0,
                tenants: 1,
                best_effort_fraction: 0.0,
            }
        }

        /// The cluster configuration: SWIM churn plus the fault plan (random
        /// per-rack MTBF churn with rejoins, a scripted whole-rack outage,
        /// and an administrative decommission).
        pub fn config(&self) -> ClusterConfig {
            let faults = FaultPlan {
                random: Some(RandomFaults {
                    rack_mtbf_secs: self.rack_mtbf_secs,
                    mean_recovery_secs: Some(self.mean_recovery_secs),
                    horizon: self.fault_horizon,
                    seed: self.seed ^ 0xDEAD,
                }),
                events: vec![
                    FaultEvent {
                        at: SimTime::from_secs(45),
                        kind: FaultKind::RackOutage {
                            rack: RackId(self.racks - 1),
                        },
                    },
                    FaultEvent {
                        at: SimTime::from_secs(90),
                        kind: FaultKind::RackRejoin {
                            rack: RackId(self.racks - 1),
                        },
                    },
                    FaultEvent {
                        at: SimTime::from_secs(30),
                        kind: FaultKind::Decommission { node: NodeId(0) },
                    },
                ],
            };
            let cfg =
                ClusterConfig::racked_cluster(self.racks, self.nodes_per_rack, self.map_slots, 1)
                    .with_trace_level(TraceLevel::Off)
                    .with_faults(faults);
            if self.speculation {
                cfg.with_speculation(SpeculationConfig::enabled())
            } else {
                cfg
            }
        }

        /// Runs the scenario once (HFSP suspend/resume, DFS-backed inputs).
        pub fn run(&self) -> ScenarioOutcome {
            let mut cluster = Cluster::new(self.config(), hfsp());
            let trace = SwimGenerator::new(self.swim_config(), self.seed).generate();
            let (jobs, files) = dfs_backed(&trace, "/churn");
            let n = u64::from(self.nodes());
            for (i, (path, bytes)) in files.iter().enumerate() {
                let writer = NodeId(((i as u64 * 37) % n) as u32);
                cluster
                    .create_input_file_from(path, *bytes, Some(writer))
                    .expect("churn input files are unique");
            }
            for job in jobs {
                cluster.submit_job_at(job.spec, job.arrival);
            }
            timed_run(cluster, SimTime::from_secs(24 * 3_600), "fault_churn")
        }
    }
}

/// The memory-pressure scenario behind the `memory_pressure` bench: the
/// block-granular swap-device model under real suspend/resume churn.
/// Memory-hungry batch jobs saturate every map slot of a 16-node cluster
/// while a stream of small HFSP queue-jumpers keeps suspending them, so
/// each node's resident sets cycle through swap continuously. The scenario
/// itself lives in `mrp_experiments::MemoryPressureConfig` so the bench,
/// the CI gate and the experiments crate run exactly the same workload;
/// this module pins the tracked full/smoke shapes, adds wall-clock timing,
/// and carries the quality bars (lazy resume strictly cheaper than eager,
/// calm variant never thrashes, resume cost not flat in state size) shared
/// by the bench binary and `check_bench`.
pub mod memory_pressure {
    use super::*;
    use mrp_engine::SwapConfig;
    pub use mrp_experiments::{
        resume_ablation, resume_cost_curve, run_memory_pressure, MemoryPressureConfig,
        MemoryPressureOutcome, ResumeCostPoint,
    };

    /// The tracked full shape: 16 nodes / 32 map slots, 1.5 GiB of dirty
    /// state per batch task on 3 GiB nodes, ~36 queue-jumping arrivals.
    pub fn full() -> MemoryPressureConfig {
        MemoryPressureConfig::full(SwapConfig::enabled())
    }

    /// The shrunken CI smoke variant (4 nodes, 2 batch jobs).
    pub fn small() -> MemoryPressureConfig {
        MemoryPressureConfig::small(SwapConfig::enabled())
    }

    /// The state sizes the resume-cost curve sweeps (the bench records the
    /// per-cycle swap-in bytes at each point and gates on growth).
    pub const CURVE_STATES: [u64; 3] = [512 * MIB, GIB, 1536 * MIB];

    /// One timed memory-pressure run.
    pub struct PressureRun {
        /// The scenario outcome (swap traffic, thrash/OOM counters, the
        /// full report).
        pub outcome: MemoryPressureOutcome,
        /// Wall-clock seconds for the run (workload submission included; it
        /// is negligible against the event loop at these shapes).
        pub wall_secs: f64,
    }

    impl PressureRun {
        /// Events per wall-clock second.
        pub fn events_per_sec(&self) -> f64 {
            self.outcome.events_processed as f64 / self.wall_secs
        }
    }

    /// Runs the scenario once with the given swap-device knobs — same seed,
    /// same workload, only the resume policy differs between calls.
    pub fn run(config: &MemoryPressureConfig, swap: SwapConfig) -> PressureRun {
        let config = MemoryPressureConfig {
            swap,
            ..config.clone()
        };
        let start = Instant::now();
        let outcome = run_memory_pressure(&config);
        PressureRun {
            outcome,
            wall_secs: start.elapsed().as_secs_f64(),
        }
    }

    /// Panics unless a same-seed eager/lazy pair plus the calm variant and
    /// the resume-cost curve satisfy the scenario's quality bars (shared by
    /// the bench binary; `check_bench` enforces the same conditions as an
    /// exit-code gate):
    ///
    /// 1. **churn liveness** — the small jobs actually suspend batch tasks
    ///    and real state pages out (`suspend_cycles`, `swap_out_bytes`);
    /// 2. **lazy beats eager** — lazy resume reads strictly fewer swap
    ///    bytes than eager on the same seed (pages never touched again are
    ///    never read back);
    /// 3. **no false thrash** — the calm (non-overcommitted) variant keeps
    ///    the kernel's `thrash_events` counter at exactly zero;
    /// 4. **cost is not flat** — per-cycle swap-in bytes strictly grow from
    ///    the smallest to the largest state size on the curve;
    /// 5. **disk contention bites** — with one node killed, giving its
    ///    re-replication traffic a bandwidth share (`fault_share`) must
    ///    spend strictly more virtual time on swap I/O than the same fault
    ///    with share zero (`fault_only`): same byte flow, shared spindle.
    pub fn assert_quality(
        eager: &MemoryPressureOutcome,
        lazy: &MemoryPressureOutcome,
        calm: &MemoryPressureOutcome,
        curve: &[ResumeCostPoint],
        fault_only: &MemoryPressureOutcome,
        fault_share: &MemoryPressureOutcome,
    ) {
        assert!(
            eager.suspend_cycles >= 4,
            "queue-jumpers must keep suspending batch tasks, got {} cycles",
            eager.suspend_cycles
        );
        assert!(
            eager.swap_out_bytes > GIB,
            "suspended resident sets must page out, got {} bytes",
            eager.swap_out_bytes
        );
        assert!(
            lazy.swap_in_bytes < eager.swap_in_bytes,
            "lazy-resume gate: lazy must read strictly fewer swap bytes \
             ({} vs eager {})",
            lazy.swap_in_bytes,
            eager.swap_in_bytes
        );
        assert_eq!(
            calm.thrash_events, 0,
            "thrash gate: the non-overcommitted variant must never thrash"
        );
        let (first, last) = (
            curve.first().expect("curve has points"),
            curve.last().expect("curve has points"),
        );
        assert!(
            last.swap_in_per_cycle > first.swap_in_per_cycle,
            "cost-curve gate: resume cost must grow with the resident set \
             ({:.0} bytes/cycle at {} MiB vs {:.0} at {} MiB)",
            first.swap_in_per_cycle,
            first.state_memory / MIB,
            last.swap_in_per_cycle,
            last.state_memory / MIB
        );
        assert!(
            fault_share.swap_io_secs > fault_only.swap_io_secs,
            "contention gate: re-replication sharing the disk must inflate \
             swap I/O time ({:.1}s with share vs {:.1}s without)",
            fault_share.swap_io_secs,
            fault_only.swap_io_secs
        );
    }
}
