//! CI bench-regression gate.
//!
//! Re-runs the eight tracked throughput scenarios (`sim_throughput`,
//! `swim_cluster`, `fault_churn`, `locality_delay`, `rack_outage`,
//! `partition_detect`, `multi_tenant`, `memory_pressure`) on the current
//! machine
//! and compares the events/sec **ratios** between scenarios against the
//! ratios recorded in the checked-in `BENCH_*.json` baselines. Per the
//! ROADMAP rule, absolute events/sec are machine-dependent and never
//! compared across machines — only the ratios are: a scenario whose
//! per-event cost regresses shows up as its ratio against the same-machine
//! `sim_throughput` run dropping.
//!
//! Measurement discipline: the scenarios complete in milliseconds to a
//! couple of seconds, so single timings on shared CI machines jitter by tens
//! of percent. Every number here is a median of several runs, and the
//! regression threshold is a 2x-style guard (fail when a ratio drops below
//! half its baseline) — tight enough to catch accidental O(n) -> O(n^2)
//! hot-path regressions (those show up as 3-10x), loose enough not to flap
//! on timing noise.
//!
//! Fails (exit code 1) when:
//!
//! * a scenario's events/sec ratio vs `sim_throughput` drops below 50% of
//!   the checked-in baseline ratio, or
//! * `fault_churn` or `locality_delay` break the hard acceptance bar:
//!   events/sec below 1/3 of the same-machine `sim_throughput` rate, or
//! * the delay-scheduling quality gate regresses: node-local launch rate
//!   below 30% with delay enabled, or same-seed makespan more than 5%
//!   worse than greedy placement (from one delay-on/off pair), or
//! * the failure-aware placement quality gate regresses: on the
//!   `rack_outage` repeat-offender scenario the reliability predictor must
//!   strictly improve the p99 job sojourn vs predictor-off on the same
//!   seed (from one predictor-on/off pair), or
//! * the failure-detection quality gate regresses: on the
//!   `partition_detect` scenario first-commit-wins reconciliation must
//!   never double-commit a task (`duplicate_commits == 0`) and the observed
//!   detection lag must stay within the missed-heartbeat timeout plus one
//!   heartbeat interval (enforced in quick mode too — these are correctness
//!   bars, not timing bars; `partition_detect` also carries the 1/3
//!   events/sec hard bar), or
//! * the multi-tenant quality gate regresses: on the `multi_tenant` action-
//!   pipeline scenario no tenant's mean dominant share may exceed its quota
//!   by more than 5 percentage points at steady state while another tenant
//!   is starved, and suspend-based reclaim must strictly beat kill-based
//!   reclaim on lost work on the same seed (enforced in quick mode too —
//!   correctness bars; `multi_tenant` also carries the 1/3 events/sec hard
//!   bar), or
//! * the swap-device quality gate regresses: on the `memory_pressure`
//!   scenario lazy resume must read strictly fewer swap bytes than eager on
//!   the same seed, the calm (non-overcommitted) variant must record zero
//!   `thrash_events`, the per-cycle resume cost must strictly grow with the
//!   dirty state per task, and disk contention from re-replication must
//!   strictly inflate virtual swap-I/O time (enforced in quick mode too —
//!   correctness bars), or
//! * the observability-overhead gate regresses: `sim_throughput` with
//!   `ObsConfig::full()` (metrics registry + time-series sampler + span
//!   recording + event-loop profiler) drops below 90% of the obs-off
//!   events/sec on the same seed (full shapes only).
//!
//! `swim_cluster` and `memory_pressure` have no hard bar here: the former's
//! measured ratio straddles 1/3 purely with anchor timing noise (see
//! docs/PERF.md), and the latter is a small scenario (~8.5k events) whose
//! per-event cost is dominated by block-granular swap-device work, landing
//! well under the anchor's ratio by design. Regressions in both are caught
//! by the ratio-vs-baseline comparison instead.
//!
//! Run with `--quick` to use the shrunken smoke scenarios (useful locally;
//! CI runs the full shapes).

use mrp_bench::scenarios::{
    baseline_events_per_sec, fault_churn::FaultChurnScenario, hfsp, locality_delay,
    memory_pressure, multi_tenant, partition_detect::PartitionDetectScenario, rack_outage,
    sim_throughput, swim_cluster,
};
use mrp_engine::SwapConfig;
use mrp_preempt::PreemptionPrimitive;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
    xs[xs.len() / 2]
}

struct Measured {
    name: &'static str,
    baseline_file: &'static str,
    events_per_sec: f64,
    /// Hard floor on events/sec as a fraction of the same-machine
    /// `sim_throughput` rate (the scenario's recorded acceptance bar), if
    /// one is enforced.
    hard_bar: Option<f64>,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let runs = if quick { 3 } else { 5 };

    // sim_throughput is the per-machine anchor every ratio is defined
    // against.
    let sim_eps = median(
        (0..runs)
            .map(|_| sim_throughput::run(hfsp()).events_per_sec())
            .collect(),
    );

    // The same anchor with the full observability layer on (registry +
    // series + spans + profiler), for the obs-overhead gate: observation is
    // allowed to cost at most 10% of the obs-off rate on the same seed.
    let obs_eps = median(
        (0..runs)
            .map(|_| {
                sim_throughput::run_with_config(hfsp(), |cfg| {
                    cfg.obs = mrp_engine::ObsConfig::full();
                })
                .events_per_sec()
            })
            .collect(),
    );

    let swim_eps = {
        let sc = if quick {
            swim_cluster::SwimScenario::small()
        } else {
            swim_cluster::SwimScenario::full()
        };
        median((0..3).map(|_| sc.run().events_per_sec()).collect())
    };

    let fault_eps = {
        let sc = if quick {
            FaultChurnScenario::small()
        } else {
            FaultChurnScenario::full()
        };
        median((0..3).map(|_| sc.run().events_per_sec()).collect())
    };

    // locality_delay also gates the delay-scheduling acceptance criteria:
    // node-local launch rate and same-seed makespan cost, from one
    // delay-on/off pair on the full shape.
    let ld_sc = if quick {
        locality_delay::small()
    } else {
        locality_delay::full()
    };
    let ld_runs: Vec<_> = (0..3).map(|_| locality_delay::run(&ld_sc, true)).collect();
    // The greedy side only feeds the quality gate, which quick mode skips.
    let ld_off = (!quick).then(|| locality_delay::run(&ld_sc, false));
    let ld_eps = median(ld_runs.iter().map(|o| o.events_per_sec()).collect());

    // rack_outage also gates the failure-aware placement acceptance
    // criterion: the reliability predictor's strict p99 sojourn win on the
    // same seed, from one predictor-on/off pair on the full shape.
    let ro_sc = if quick {
        rack_outage::small()
    } else {
        rack_outage::full()
    };
    let ro_runs: Vec<_> = (0..3).map(|_| rack_outage::run(&ro_sc, true)).collect();
    // The predictor-off side only feeds the quality gate, which quick mode
    // skips (the smoke shape is too small for a guaranteed ordering).
    let ro_off = (!quick).then(|| rack_outage::run(&ro_sc, false));
    let ro_eps = median(ro_runs.iter().map(|o| o.events_per_sec()).collect());

    // partition_detect also gates the failure-detection acceptance
    // criteria: zero duplicate commits and bounded detection lag, from the
    // detector-on runs (enforced in quick mode too — correctness, not
    // timing).
    let pd_sc = if quick {
        PartitionDetectScenario::small()
    } else {
        PartitionDetectScenario::full()
    };
    let pd_runs: Vec<_> = (0..3).map(|_| pd_sc.run(true)).collect();
    let pd_eps = median(pd_runs.iter().map(|o| o.events_per_sec()).collect());

    // multi_tenant also gates the action-pipeline acceptance criteria: DRF
    // quota adherence and suspend-beats-kill on lost work, from one
    // suspend/kill pair (enforced in quick mode too — correctness, not
    // timing).
    let mt_sc = if quick {
        multi_tenant::small()
    } else {
        multi_tenant::full()
    };
    let mt_runs: Vec<_> = (0..3)
        .map(|_| multi_tenant::run(&mt_sc, PreemptionPrimitive::SuspendResume))
        .collect();
    let mt_kill = multi_tenant::run(&mt_sc, PreemptionPrimitive::Kill);
    let mt_eps = median(mt_runs.iter().map(|o| o.events_per_sec()).collect());

    // memory_pressure also gates the swap-device acceptance criteria: lazy
    // resume strictly cheaper than eager, zero thrash events when nothing is
    // overcommitted, a resume-cost curve that is not flat, and disk
    // contention that strictly inflates swap-I/O time (enforced in quick
    // mode too — correctness, not timing).
    let mp_sc = if quick {
        memory_pressure::small()
    } else {
        memory_pressure::full()
    };
    let mp_runs: Vec<_> = (0..3)
        .map(|_| memory_pressure::run(&mp_sc, SwapConfig::enabled()))
        .collect();
    let mp_lazy = memory_pressure::run(&mp_sc, SwapConfig::lazy());
    let mp_calm = memory_pressure::run(&mp_sc.clone().calm(), SwapConfig::enabled());
    let mp_curve = memory_pressure::resume_cost_curve(&mp_sc, &memory_pressure::CURVE_STATES);
    let mp_fault = memory_pressure::run(&mp_sc.clone().contended(0.0), SwapConfig::enabled());
    let mp_contended = memory_pressure::run(&mp_sc.clone().contended(0.5), SwapConfig::enabled());
    let mp_eps = median(mp_runs.iter().map(|o| o.events_per_sec()).collect());

    let measured = [
        Measured {
            name: "swim_cluster",
            baseline_file: "BENCH_swim_cluster.json",
            events_per_sec: swim_eps,
            hard_bar: None,
        },
        Measured {
            name: "fault_churn",
            baseline_file: "BENCH_fault_churn.json",
            events_per_sec: fault_eps,
            hard_bar: Some(1.0 / 3.0),
        },
        Measured {
            name: "locality_delay",
            baseline_file: "BENCH_locality_delay.json",
            events_per_sec: ld_eps,
            hard_bar: Some(1.0 / 3.0),
        },
        Measured {
            name: "rack_outage",
            baseline_file: "BENCH_rack_outage.json",
            events_per_sec: ro_eps,
            hard_bar: Some(1.0 / 3.0),
        },
        Measured {
            name: "partition_detect",
            baseline_file: "BENCH_partition_detect.json",
            events_per_sec: pd_eps,
            hard_bar: Some(1.0 / 3.0),
        },
        Measured {
            name: "multi_tenant",
            baseline_file: "BENCH_multi_tenant.json",
            events_per_sec: mt_eps,
            hard_bar: Some(1.0 / 3.0),
        },
        Measured {
            name: "memory_pressure",
            baseline_file: "BENCH_memory_pressure.json",
            events_per_sec: mp_eps,
            hard_bar: None,
        },
    ];

    let Some(sim_base) = baseline_events_per_sec("BENCH_sim_throughput.json") else {
        eprintln!("check_bench: missing/unparseable BENCH_sim_throughput.json baseline");
        std::process::exit(1);
    };

    println!(
        "check_bench: sim_throughput anchor {:.0} ev/s (baseline {:.0}; mode: {})",
        sim_eps,
        sim_base,
        if quick {
            "quick/smoke shapes"
        } else {
            "full shapes"
        }
    );
    let mut failed = false;
    for m in &measured {
        let Some(base_eps) = baseline_events_per_sec(m.baseline_file) else {
            eprintln!(
                "check_bench: missing/unparseable {} baseline",
                m.baseline_file
            );
            failed = true;
            continue;
        };
        let fresh_ratio = m.events_per_sec / sim_eps;
        let base_ratio = base_eps / sim_base;
        let rel = fresh_ratio / base_ratio;
        // The baselines (and the hard acceptance bar) were recorded on the
        // full shapes; quick mode prints the table without enforcing either.
        let ratio_ok = quick || rel >= 0.5;
        let bar_ok = quick || m.hard_bar.map(|bar| fresh_ratio >= bar).unwrap_or(true);
        println!(
            "  {:<16} {:>12.0} ev/s  ratio {:.3} (baseline {:.3}, {:+.1}%)  [{}{}]",
            m.name,
            m.events_per_sec,
            fresh_ratio,
            base_ratio,
            (rel - 1.0) * 100.0,
            if ratio_ok {
                "ratio ok"
            } else {
                "RATIO REGRESSION >50%"
            },
            match (m.hard_bar, bar_ok) {
                (None, _) => "",
                (Some(_), true) => ", 1/3 bar ok",
                (Some(_), false) => ", BELOW 1/3 BAR",
            },
        );
        if !ratio_ok || !bar_ok {
            failed = true;
        }
    }

    // Delay-scheduling acceptance gate (full shapes only; the bars were
    // recorded on them): node-local launch rate >= 30% with delay enabled,
    // at <= 5% same-seed makespan regression.
    match &ld_off {
        None => println!("  delay gate    skipped (--quick shapes; bars hold on full shapes only)"),
        Some(ld_off) => {
            let on_report = &ld_runs[0].report;
            let node_local = on_report.locality.node_local_ratio();
            let makespan_ratio = match (on_report.makespan_secs(), ld_off.report.makespan_secs()) {
                (Some(on), Some(off)) if off > 0.0 => on / off,
                _ => f64::INFINITY,
            };
            let locality_ok = node_local >= 0.30;
            let makespan_ok = makespan_ratio <= 1.05;
            println!(
                "  delay gate    node-local {:.1}% (bar >= 30%)  makespan {:+.1}% vs greedy (bar <= +5%)  [{}{}]",
                node_local * 100.0,
                (makespan_ratio - 1.0) * 100.0,
                if locality_ok { "locality ok" } else { "LOCALITY BELOW 30%" },
                if makespan_ok { ", makespan ok" } else { ", MAKESPAN REGRESSION >5%" },
            );
            if !locality_ok || !makespan_ok {
                failed = true;
            }
        }
    }

    // Failure-aware placement acceptance gate (full shapes only): on the
    // repeat-offender rack outage, predictor-on must strictly beat
    // predictor-off on p99 job sojourn — same seed, same fault plan.
    match &ro_off {
        None => {
            println!("  predictor gate skipped (--quick shapes; bars hold on full shapes only)")
        }
        Some(ro_off) => {
            let on_p99 = ro_runs[0].p99_sojourn_secs();
            let off_p99 = ro_off.p99_sojourn_secs();
            let predictor_ok = on_p99 < off_p99;
            println!(
                "  predictor gate p99 sojourn {:.1}s on vs {:.1}s off ({:+.1}%)  [{}]",
                on_p99,
                off_p99,
                (on_p99 / off_p99 - 1.0) * 100.0,
                if predictor_ok {
                    "predictor ok"
                } else {
                    "PREDICTOR DOES NOT IMPROVE TAIL"
                },
            );
            if !predictor_ok {
                failed = true;
            }
        }
    }

    // Failure-detection acceptance gate (both modes — correctness bars hold
    // at every shape): first-commit-wins must never double-commit a task,
    // and the worst observed detection lag must stay within the
    // missed-heartbeat timeout plus one heartbeat interval.
    {
        let f = &pd_runs[0].report.faults;
        let bound = pd_sc.lag_bound_secs();
        let dup_ok = f.duplicate_commits == 0;
        let lag_ok = f.detection_lag_secs_max <= bound + 1e-9;
        println!(
            "  detector gate  {} duplicate commits (bar = 0)  lag max {:.1}s (bar <= {:.1}s)  [{}{}]",
            f.duplicate_commits,
            f.detection_lag_secs_max,
            bound,
            if dup_ok { "commits ok" } else { "DUPLICATE COMMITS" },
            if lag_ok { ", lag ok" } else { ", LAG EXCEEDS BOUND" },
        );
        if !dup_ok || !lag_ok {
            failed = true;
        }
    }

    // Multi-tenant acceptance gate (both modes — correctness bars hold at
    // every shape): DRF keeps every tenant within 5 percentage points of
    // its quota while others starve, and suspend-based reclaim strictly
    // beats kill-based on lost work on the same seed.
    {
        let suspend = &mt_runs[0].outcome;
        let kill = &mt_kill.outcome;
        let worst_excess = suspend
            .shares
            .iter()
            .map(|s| s.mean_excess_over_quota)
            .fold(0.0, f64::max);
        let drf_ok = worst_excess <= 0.05;
        let reclaim_ok =
            suspend.suspend_cycles >= 1 && suspend.lost_work_secs < kill.lost_work_secs;
        let backfill_ok = suspend.best_effort_completed == suspend.best_effort_jobs;
        println!(
            "  tenant gate    worst excess-over-quota {:.4} (bar <= 0.05)  lost work {:.1}s \
             suspend vs {:.1}s kill  best-effort {}/{}  [{}{}{}]",
            worst_excess,
            suspend.lost_work_secs,
            kill.lost_work_secs,
            suspend.best_effort_completed,
            suspend.best_effort_jobs,
            if drf_ok {
                "drf ok"
            } else {
                "DRF QUOTA EXCEEDED"
            },
            if reclaim_ok {
                ", reclaim ok"
            } else {
                ", SUSPEND DOES NOT BEAT KILL"
            },
            if backfill_ok {
                ", backfill ok"
            } else {
                ", BEST-EFFORT STARVED"
            },
        );
        if !drf_ok || !reclaim_ok || !backfill_ok {
            failed = true;
        }
    }

    // Swap-device acceptance gate (both modes — correctness bars hold at
    // every shape): lazy resume strictly cheaper than eager on swap reads,
    // zero thrash events without overcommit, per-cycle resume cost strictly
    // growing in state size, and contention strictly inflating swap-I/O
    // time. Same conditions as the memory_pressure bench's assert_quality.
    {
        let eager = &mp_runs[0].outcome;
        let lazy_ok = mp_lazy.outcome.swap_in_bytes < eager.swap_in_bytes;
        let thrash_ok = mp_calm.outcome.thrash_events == 0;
        let (first, last) = (
            mp_curve.first().expect("curve has points"),
            mp_curve.last().expect("curve has points"),
        );
        let curve_ok = last.swap_in_per_cycle > first.swap_in_per_cycle;
        let contention_ok = mp_contended.outcome.swap_io_secs > mp_fault.outcome.swap_io_secs;
        println!(
            "  swap gate      lazy {} vs eager {} MiB read  calm thrash {}  cost {:.0}->{:.0} \
             MiB/cycle  swap I/O {:.1}s vs {:.1}s contended  [{}{}{}{}]",
            mp_lazy.outcome.swap_in_bytes / (1 << 20),
            eager.swap_in_bytes / (1 << 20),
            mp_calm.outcome.thrash_events,
            first.swap_in_per_cycle / (1 << 20) as f64,
            last.swap_in_per_cycle / (1 << 20) as f64,
            mp_fault.outcome.swap_io_secs,
            mp_contended.outcome.swap_io_secs,
            if lazy_ok {
                "lazy ok"
            } else {
                "LAZY NOT CHEAPER"
            },
            if thrash_ok {
                ", thrash ok"
            } else {
                ", FALSE THRASH"
            },
            if curve_ok {
                ", curve ok"
            } else {
                ", FLAT CURVE"
            },
            if contention_ok {
                ", contention ok"
            } else {
                ", CONTENTION HAS NO COST"
            },
        );
        if !lazy_ok || !thrash_ok || !curve_ok || !contention_ok {
            failed = true;
        }
    }

    // Observability-overhead gate (full shapes only — the 0.9x bar was
    // recorded on them; quick mode prints the ratio without enforcing it):
    // with `ObsConfig::full()` on, the anchor scenario must keep at least
    // 90% of its obs-off events/sec on the same seed. The byte-identity of
    // the obs-on run itself is asserted by `tests/observability.rs` and the
    // bench binaries.
    {
        let overhead_ratio = obs_eps / sim_eps;
        let obs_ok = quick || overhead_ratio >= 0.9;
        println!(
            "  obs gate       obs-on {:.0} ev/s = {:.2}x obs-off (bar >= 0.90x{})  [{}]",
            obs_eps,
            overhead_ratio,
            if quick {
                "; not enforced on --quick"
            } else {
                ""
            },
            if obs_ok {
                "overhead ok"
            } else {
                "OBS OVERHEAD EXCEEDS 10%"
            },
        );
        if !obs_ok {
            failed = true;
        }
    }

    if failed {
        eprintln!("check_bench: FAILED — events/sec ratio regression beyond tolerance");
        std::process::exit(1);
    }
    println!("check_bench: OK");
}
