//! Section IV-C comparison: measured suspend/resume makespan overhead vs. the
//! analytical cost of Natjam-style checkpointing on the same workload.

use mrp_bench::Bench;
use mrp_experiments::{natjam_comparison, to_table};

fn main() {
    let bench = Bench::from_args();
    bench.measure("natjam_comparison/overhead_vs_checkpointing", || {
        natjam_comparison(1)
    });

    println!("\n{}", to_table(&natjam_comparison(1)));
}
