//! Section IV-C comparison: measured suspend/resume makespan overhead vs. the
//! analytical cost of Natjam-style checkpointing on the same workload.

use criterion::{criterion_group, criterion_main, Criterion};
use mrp_experiments::{natjam_comparison, to_table};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("natjam_comparison");
    group.sample_size(10);
    group.bench_function("overhead_vs_checkpointing", |b| b.iter(|| natjam_comparison(1)));
    group.finish();

    println!("\n{}", to_table(&natjam_comparison(1)));
}

criterion_group!(benches, bench);
criterion_main!(benches);
