//! Measures the real-OS suspend/resume round trip (SIGTSTP/SIGCONT on a live
//! child process), the mechanism underlying the whole paper.

use mrp_bench::Bench;
use mrp_oschild::{prototype_supported, WorkerProcess};

fn main() {
    if !prototype_supported() {
        eprintln!("os_prototype bench skipped: /proc or POSIX signals unavailable");
        return;
    }
    let worker = match WorkerProcess::spawn_busy_loop() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("os_prototype bench skipped: {e}");
            return;
        }
    };
    let bench = Bench::from_args();
    bench.measure("os_prototype/sigtstp_sigcont_roundtrip", || {
        worker.suspend_resume_roundtrip().expect("roundtrip")
    });
    let rt = worker.suspend_resume_roundtrip().expect("roundtrip");
    println!(
        "\nreal-OS roundtrip: suspend {:?}, resume {:?}, RSS while stopped {} KiB",
        rt.suspend_latency,
        rt.resume_latency,
        rt.rss_while_stopped / 1024
    );
}
