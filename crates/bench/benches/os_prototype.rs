//! Measures the real-OS suspend/resume round trip (SIGTSTP/SIGCONT on a live
//! child process), the mechanism underlying the whole paper.

use criterion::{criterion_group, criterion_main, Criterion};
use mrp_oschild::{prototype_supported, WorkerProcess};

fn bench(c: &mut Criterion) {
    if !prototype_supported() {
        eprintln!("os_prototype bench skipped: /proc or POSIX signals unavailable");
        return;
    }
    let worker = match WorkerProcess::spawn_busy_loop() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("os_prototype bench skipped: {e}");
            return;
        }
    };
    let mut group = c.benchmark_group("os_prototype");
    group.sample_size(20);
    group.bench_function("sigtstp_sigcont_roundtrip", |b| {
        b.iter(|| worker.suspend_resume_roundtrip().expect("roundtrip"))
    });
    group.finish();
    let rt = worker.suspend_resume_roundtrip().expect("roundtrip");
    println!(
        "\nreal-OS roundtrip: suspend {:?}, resume {:?}, RSS while stopped {} KiB",
        rt.suspend_latency,
        rt.resume_latency,
        rt.rss_while_stopped / 1024
    );
    worker.kill().expect("kill worker");
}

criterion_group!(benches, bench);
criterion_main!(benches);
