//! Cluster-scale simulation-core throughput: events/sec on a 200-node,
//! >2000-task workload with suspend/resume preemption churn.
//!
//! Three measurements:
//!
//! 1. **events/sec** of the optimized core on the large scenario (the number
//!    tracked across PRs in `BENCH_sim_throughput.json`);
//! 2. the same scenario with the pre-refactor engine's per-heartbeat costs
//!    *emulated* on top (full node-view rebuild with fresh allocations plus
//!    the O(jobs x tasks) MUST_* command scan that the command index
//!    replaced) — the seed tree had no manifests and never built, so this
//!    emulation is the reference point for the speedup ratio;
//! 3. a queue-level microbenchmark of the slab/generation [`EventQueue`]
//!    against a naive sorted-vec queue under schedule/cancel/pop churn.
//!
//! Determinism is asserted on every run: the optimized and emulated runs must
//! produce byte-identical `ClusterReport`s from the same seed.

use mrp_bench::scenarios::{hfsp, sim_throughput as scenario};
use mrp_bench::Bench;
use mrp_engine::{NodeId, SchedulerAction, SchedulerContext, SchedulerPolicy, TaskId, TaskState};
use mrp_sim::{EventQueue, SimRng, SimTime};
use std::time::Instant;

/// One pre-refactor node-view snapshot: (id, free map, free reduce, running,
/// suspended).
type LegacyView = (NodeId, u32, u32, Vec<TaskId>, Vec<TaskId>);

/// Wraps a policy and re-performs, on every heartbeat, the work the
/// pre-refactor stack did unconditionally:
///
/// * the engine rebuilt every node view with fresh allocations
///   (`node_views()`) before each scheduler invocation;
/// * the engine scanned every task of every job for pending `MUST_*`
///   commands addressed to the heartbeating node;
/// * the HFSP policy recomputed the full remaining-size order (O(jobs x
///   tasks) plus a sort) and `fill_node` scanned every ordered job's task
///   list, even when the node had no free slots.
///
/// The refactor replaced these with dirty-tracked view buffers, a per-node
/// command index, and no-free-slot early exits.
struct LegacyOverhead {
    inner: Box<dyn SchedulerPolicy>,
}

impl LegacyOverhead {
    /// The pre-refactor engine rebuilt every node view (fresh allocations)
    /// before *every* scheduler hook invocation, not only heartbeats.
    fn rebuild_views(ctx: &SchedulerContext<'_>) {
        let views: Vec<LegacyView> = ctx
            .nodes
            .iter()
            .map(|v| {
                (
                    v.id,
                    v.free_map_slots,
                    v.free_reduce_slots,
                    v.running.clone(),
                    v.suspended.clone(),
                )
            })
            .collect();
        std::hint::black_box(&views);
    }
}

impl SchedulerPolicy for LegacyOverhead {
    fn on_heartbeat(&mut self, ctx: &SchedulerContext<'_>, node: NodeId) -> Vec<SchedulerAction> {
        // Engine side: full node-view rebuild.
        Self::rebuild_views(ctx);
        // Engine side: O(jobs x tasks) MUST_* command scan.
        let pending: Vec<(TaskId, TaskState)> = ctx
            .jobs
            .values()
            .flat_map(|j| j.tasks.iter())
            .filter(|t| t.node == Some(node))
            .filter(|t| {
                matches!(
                    t.state,
                    TaskState::MustSuspend | TaskState::MustResume | TaskState::MustKill
                )
            })
            .map(|t| (t.id, t.state))
            .collect();
        std::hint::black_box(&pending);
        // Policy side: unconditional remaining-size ordering plus the full
        // per-job task scans of the old fill_node.
        let mut sizes: Vec<(mrp_engine::JobId, u64)> = ctx
            .jobs
            .iter()
            .filter(|(_, j)| !j.is_complete())
            .map(|(id, j)| {
                let size: u64 = j
                    .tasks
                    .iter()
                    .filter(|t| !t.state.is_terminal())
                    .map(|t| ((1.0 - t.progress).max(0.0) * t.input_bytes as f64) as u64)
                    .sum();
                (*id, size)
            })
            .collect();
        sizes.sort_by_key(|(id, size)| (*size, *id));
        let mut scannable = 0usize;
        for (id, _) in &sizes {
            if let Some(j) = ctx.jobs.get(id) {
                scannable += j
                    .tasks
                    .iter()
                    .filter(|t| t.state.is_schedulable() || t.state == TaskState::Suspended)
                    .count();
            }
        }
        std::hint::black_box((&sizes, scannable));
        // Engine side: the old run loop evaluated `all_jobs_complete()` — an
        // O(jobs) scan whose per-job `is_complete()` walks the whole task
        // list of every already-completed job — on *every* event. Replaying
        // it only on heartbeats (a subset of events) keeps the emulation
        // conservative.
        let complete = ctx.jobs.values().all(|j| j.is_complete());
        std::hint::black_box(complete);
        self.inner.on_heartbeat(ctx, node)
    }

    fn on_job_submitted(
        &mut self,
        ctx: &SchedulerContext<'_>,
        job: mrp_engine::JobId,
    ) -> Vec<SchedulerAction> {
        Self::rebuild_views(ctx);
        self.inner.on_job_submitted(ctx, job)
    }

    fn on_task_finished(
        &mut self,
        ctx: &SchedulerContext<'_>,
        task: TaskId,
    ) -> Vec<SchedulerAction> {
        Self::rebuild_views(ctx);
        self.inner.on_task_finished(ctx, task)
    }

    fn on_job_finished(
        &mut self,
        ctx: &SchedulerContext<'_>,
        job: mrp_engine::JobId,
    ) -> Vec<SchedulerAction> {
        Self::rebuild_views(ctx);
        self.inner.on_job_finished(ctx, job)
    }

    fn name(&self) -> &str {
        "legacy-overhead"
    }
}

/// Queue-level churn comparison: the slab/generation queue vs a naive sorted
/// insert queue over the same deterministic op mix. Returns (fast_ops_per_sec,
/// naive_ops_per_sec).
fn queue_microbench(ops: usize) -> (f64, f64) {
    // Fast queue.
    let start = Instant::now();
    {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut ids = Vec::new();
        let mut floor = SimTime::ZERO;
        let mut rng = SimRng::new(42);
        let mut live: Vec<usize> = Vec::new();
        for i in 0..ops {
            match rng.index(10) {
                0..=5 => {
                    let at = floor + mrp_sim::SimDuration::from_micros(rng.index(1_000_000) as u64);
                    ids.push(q.schedule(at, i as u64));
                    live.push(ids.len() - 1);
                }
                6..=7 => {
                    if !live.is_empty() {
                        let idx = rng.index(live.len());
                        q.cancel(ids[live.swap_remove(idx)]);
                    }
                }
                _ => {
                    if let Some((at, _)) = q.pop() {
                        floor = at;
                    }
                }
            }
        }
        std::hint::black_box(&q);
    }
    let fast = ops as f64 / start.elapsed().as_secs_f64();

    // Naive sorted-vec queue (timestamp-ordered insert, eager cancellation).
    let start = Instant::now();
    {
        let mut entries: Vec<(u64, u64, u64)> = Vec::new(); // (at, seq, id)
        let mut floor = 0u64;
        let mut rng = SimRng::new(42);
        let mut live: Vec<u64> = Vec::new();
        let mut next_id = 0u64;
        for i in 0..ops {
            match rng.index(10) {
                0..=5 => {
                    let at = floor + rng.index(1_000_000) as u64;
                    let id = next_id;
                    next_id += 1;
                    let key = (at, i as u64);
                    let pos = entries
                        .binary_search_by(|(a, s, _)| (*a, *s).cmp(&key))
                        .unwrap_err();
                    entries.insert(pos, (at, i as u64, id));
                    live.push(id);
                }
                6..=7 => {
                    if !live.is_empty() {
                        let idx = rng.index(live.len());
                        let id = live.swap_remove(idx);
                        entries.retain(|(_, _, eid)| *eid != id);
                    }
                }
                _ => {
                    if !entries.is_empty() {
                        let (at, _, _) = entries.remove(0);
                        floor = at;
                    }
                }
            }
        }
        std::hint::black_box(&entries);
    }
    let naive = ops as f64 / start.elapsed().as_secs_f64();
    (fast, naive)
}

fn baseline_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sim_throughput.json")
}

fn main() {
    let bench = Bench::from_args();
    println!(
        "sim_throughput: {} nodes x {} map slots, {} tasks \
         ({} batch jobs x {} + {} small jobs x {}), \
         HFSP suspend/resume preemption churn",
        scenario::NODES,
        scenario::MAP_SLOTS,
        scenario::TOTAL_TASKS,
        scenario::BIG_JOBS,
        scenario::BIG_JOB_TASKS,
        scenario::SMALL_JOBS,
        scenario::SMALL_JOB_TASKS,
    );

    // Optimized core, plus a byte-identical-determinism check.
    let first = scenario::run(hfsp());
    let second = scenario::run(hfsp());
    let (report_a, events, wall_first) = (first.report, first.events, first.wall_secs);
    let (report_b, events_b) = (second.report, second.events);
    assert_eq!(
        report_a, report_b,
        "fixed-seed ClusterReport must be byte-identical"
    );
    assert_eq!(events, events_b, "fixed-seed event count must be identical");
    let suspends: u32 = report_a
        .jobs
        .iter()
        .flat_map(|j| j.tasks.iter())
        .map(|t| t.suspend_cycles)
        .sum();
    assert!(suspends > 0, "the scenario must exercise preemption churn");

    // Observability profiler smoke: with the full obs layer on, the run must
    // stay byte-identical and the event-loop profiler must attribute nearly
    // all of the loop's wall time to event kinds (the batched-timing design
    // loses at most one partial batch per loop window).
    let observed = scenario::run_with_config(hfsp(), |cfg| {
        cfg.obs = mrp_engine::ObsConfig::full();
    });
    assert_eq!(
        observed.report, report_a,
        "observation must not change the simulation outcome"
    );
    assert_eq!(observed.events, events);
    let profile = observed
        .obs
        .expect("obs enabled")
        .profile()
        .expect("profiling on");
    assert!(
        profile.attribution() >= 0.95,
        "profiler attributed only {:.1}% of loop wall time",
        100.0 * profile.attribution()
    );
    println!(
        "obs profiler            : {:.1}% of loop wall attributed over {} events",
        100.0 * profile.attribution(),
        profile.total_events(),
    );

    let mut wall = wall_first;
    if !bench.is_test() {
        // A few more runs; keep the fastest for the headline number.
        for _ in 0..2 {
            wall = wall.min(scenario::run(hfsp()).wall_secs);
        }
    }
    let events_per_sec = events as f64 / wall;

    // Emulated pre-refactor per-heartbeat costs on the same workload.
    let legacy = scenario::run(Box::new(LegacyOverhead { inner: hfsp() }));
    let (legacy_report, legacy_events, legacy_wall) =
        (legacy.report, legacy.events, legacy.wall_secs);
    assert_eq!(
        legacy_report, report_a,
        "the legacy-cost emulation must not change the simulation outcome"
    );
    let legacy_events_per_sec = legacy_events as f64 / legacy_wall;
    let speedup = events_per_sec / legacy_events_per_sec;

    // Queue-level churn microbenchmark.
    let queue_ops = if bench.is_test() { 50_000 } else { 200_000 };
    let (fast_qps, naive_qps) = queue_microbench(queue_ops);
    let queue_speedup = fast_qps / naive_qps;

    println!("events                  : {events}");
    println!("suspend cycles          : {suspends}");
    println!("wall seconds (best)     : {wall:.3}");
    println!("events/sec              : {events_per_sec:.0}");
    println!("events/sec (legacy emu) : {legacy_events_per_sec:.0}");
    println!("speedup vs legacy emu   : {speedup:.2}x");
    println!("queue ops/sec           : {fast_qps:.0} (naive {naive_qps:.0}, {queue_speedup:.1}x)");

    if !bench.is_test() {
        let json = mrp_preempt::json::Json::obj(vec![
            (
                "scenario",
                mrp_preempt::json::Json::obj(vec![
                    (
                        "nodes",
                        mrp_preempt::json::Json::Num(f64::from(scenario::NODES)),
                    ),
                    (
                        "map_slots_per_node",
                        mrp_preempt::json::Json::Num(f64::from(scenario::MAP_SLOTS)),
                    ),
                    (
                        "tasks",
                        mrp_preempt::json::Json::Num(f64::from(scenario::TOTAL_TASKS)),
                    ),
                    (
                        "scheduler",
                        mrp_preempt::json::Json::Str("hfsp+suspend-resume".into()),
                    ),
                    (
                        "suspend_cycles",
                        mrp_preempt::json::Json::Num(f64::from(suspends)),
                    ),
                ]),
            ),
            ("events", mrp_preempt::json::Json::Num(events as f64)),
            ("wall_secs", mrp_preempt::json::Json::Num(wall)),
            (
                "events_per_sec",
                mrp_preempt::json::Json::Num(events_per_sec.round()),
            ),
            (
                "legacy_emulation_events_per_sec",
                mrp_preempt::json::Json::Num(legacy_events_per_sec.round()),
            ),
            (
                "speedup_vs_legacy_emulation",
                mrp_preempt::json::Json::Num((speedup * 100.0).round() / 100.0),
            ),
            (
                "queue_ops_per_sec",
                mrp_preempt::json::Json::Num(fast_qps.round()),
            ),
            (
                "naive_queue_ops_per_sec",
                mrp_preempt::json::Json::Num(naive_qps.round()),
            ),
            (
                "queue_speedup",
                mrp_preempt::json::Json::Num((queue_speedup * 10.0).round() / 10.0),
            ),
        ]);
        let path = baseline_path();
        match std::fs::write(&path, json.pretty() + "\n") {
            Ok(()) => println!("baseline written to {}", path.display()),
            Err(e) => eprintln!("could not write baseline {}: {e}", path.display()),
        }
    }
}
