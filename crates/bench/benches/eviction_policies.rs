//! Section V-A ablation: which task to evict (smallest memory footprint vs.
//! closest to completion vs. largest memory footprint).

use criterion::{criterion_group, criterion_main, Criterion};
use mrp_experiments::{eviction_ablation, to_table};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("eviction_policies");
    group.sample_size(10);
    group.bench_function("three_policies", |b| b.iter(|| eviction_ablation(1)));
    group.finish();

    println!("\n{}", to_table(&eviction_ablation(1)));
}

criterion_group!(benches, bench);
criterion_main!(benches);
