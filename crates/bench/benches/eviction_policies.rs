//! Section V-A ablation: which task to evict (smallest memory footprint vs.
//! closest to completion vs. largest memory footprint).

use mrp_bench::Bench;
use mrp_experiments::{eviction_ablation, to_table};

fn main() {
    let bench = Bench::from_args();
    bench.measure("eviction_policies/three_policies", || eviction_ablation(1));

    println!("\n{}", to_table(&eviction_ablation(1)));
}
