//! Regenerates Figures 2a and 2b: sojourn time of `th` and makespan with
//! light-weight tasks, for the wait / kill / suspend-resume primitives.

use mrp_bench::Bench;
use mrp_experiments::{figure2, to_table};

fn main() {
    let bench = Bench::from_args();
    bench.measure("fig2_baseline/sweep_10_to_90_percent", || figure2(1));

    let (a, b) = figure2(1);
    println!("\n{}", to_table(&a));
    println!("{}", to_table(&b));
}
