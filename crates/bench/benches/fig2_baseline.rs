//! Regenerates Figures 2a and 2b: sojourn time of `th` and makespan with
//! light-weight tasks, for the wait / kill / suspend-resume primitives.

use criterion::{criterion_group, criterion_main, Criterion};
use mrp_experiments::{figure2, to_table};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_baseline");
    group.sample_size(10);
    group.bench_function("sweep_10_to_90_percent", |b| b.iter(|| figure2(1)));
    group.finish();

    let (a, bfig) = figure2(1);
    println!("\n{}", to_table(&a));
    println!("{}", to_table(&bfig));
}

criterion_group!(benches, bench);
criterion_main!(benches);
