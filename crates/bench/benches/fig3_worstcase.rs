//! Regenerates Figures 3a and 3b: the memory-hungry worst case (both tasks
//! allocate 2 GB of dirty state on a 4 GB node).

use criterion::{criterion_group, criterion_main, Criterion};
use mrp_experiments::{figure3, to_table};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_worstcase");
    group.sample_size(10);
    group.bench_function("sweep_10_to_90_percent", |b| b.iter(|| figure3(1)));
    group.finish();

    let (a, bfig) = figure3(1);
    println!("\n{}", to_table(&a));
    println!("{}", to_table(&bfig));
}

criterion_group!(benches, bench);
criterion_main!(benches);
