//! Regenerates Figures 3a and 3b: the memory-hungry worst case (both tasks
//! allocate 2 GB of dirty state on a 4 GB node).

use mrp_bench::Bench;
use mrp_experiments::{figure3, to_table};

fn main() {
    let bench = Bench::from_args();
    bench.measure("fig3_worstcase/sweep_10_to_90_percent", || figure3(1));

    let (a, b) = figure3(1);
    println!("\n{}", to_table(&a));
    println!("{}", to_table(&b));
}
