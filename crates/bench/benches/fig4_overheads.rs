//! Regenerates Figure 4: bytes paged out for `tl` and the sojourn/makespan
//! overheads of suspend/resume as the memory allocated by `th` grows.

use mrp_bench::Bench;
use mrp_experiments::{figure4, to_table};

fn main() {
    let bench = Bench::from_args();
    bench.measure("fig4_overheads/memory_sweep_0_to_2500mb", || figure4(1));

    println!("\n{}", to_table(&figure4(1)));
}
