//! Regenerates Figure 4: bytes paged out for `tl` and the sojourn/makespan
//! overheads of suspend/resume as the memory allocated by `th` grows.

use criterion::{criterion_group, criterion_main, Criterion};
use mrp_experiments::{figure4, to_table};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_overheads");
    group.sample_size(10);
    group.bench_function("memory_sweep_0_to_2500mb", |b| b.iter(|| figure4(1)));
    group.finish();

    println!("\n{}", to_table(&figure4(1)));
}

criterion_group!(benches, bench);
criterion_main!(benches);
