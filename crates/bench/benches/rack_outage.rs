//! Fault-tolerant shuffle under rack loss: a 72-node / 6-rack cluster
//! running a reduce-heavy SWIM trace loses one rack *twice* mid-trace (plus
//! background churn with rejoins), with the map-output registry, shuffle
//! re-fetch backoff and the ATLAS-style reliability predictor all enabled.
//!
//! Asserted on every invocation (including the 24-node `--test` smoke):
//!
//! 1. **fixed-seed determinism** — two runs produce byte-identical
//!    `ClusterReport`s, map-output loss and re-fetch backoff included;
//! 2. **shuffle is a real fault domain** — the outage destroys at least one
//!    *committed* map output (`FaultStats::lost_map_outputs >= 1`), stalled
//!    reduces re-fetch with backoff (`shuffle_refetches >= 1`), and every
//!    lost output's map is re-executed rather than failing the job;
//! 3. **the predictor pays off in the tail** — on the same seed, biasing
//!    placement and speculation away from flaky nodes strictly reduces the
//!    p99 job sojourn vs predictor-off (full shape; the smoke variant only
//!    reports the pair);
//! 4. **near-O(1) per-event cost** — events/sec is reported against the
//!    checked-in `sim_throughput` baseline; the acceptance bar (within 3x)
//!    is enforced ratio-wise by the `check_bench` CI gate on fresh runs.
//!
//! The scenario lives in `mrp_experiments::RackOutageConfig` (pinned shapes
//! in `mrp_bench::scenarios::rack_outage`) so the CI gate runs exactly the
//! same workload. Full runs write `BENCH_rack_outage.json`.

use mrp_bench::scenarios::rack_outage;
use mrp_bench::Bench;
use mrp_preempt::json::Json;
use mrp_workload::{summarize, SwimGenerator};

fn sim_throughput_baseline() -> Option<f64> {
    mrp_bench::scenarios::baseline_events_per_sec("BENCH_sim_throughput.json")
}

fn baseline_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_rack_outage.json")
}

fn main() {
    let bench = Bench::from_args();
    let sc = if bench.is_test() {
        rack_outage::small()
    } else {
        rack_outage::full()
    };
    let summary = summarize(&SwimGenerator::new(sc.swim.clone(), sc.seed).generate());
    let windows: Vec<String> = sc
        .outages
        .iter()
        .map(|w| format!("{:.0}s-{:.0}s", w.at.as_secs_f64(), w.until.as_secs_f64()))
        .collect();
    println!(
        "rack_outage: {} racks x {} nodes x {}+{} slots, {} jobs / {} tasks \
         (reduce ratio {:.2}), rack {} dark {}, seed {:#x}",
        sc.racks,
        sc.nodes_per_rack,
        sc.map_slots,
        sc.reduce_slots,
        summary.jobs,
        summary.tasks,
        sc.swim.reduce_ratio,
        sc.outage_rack,
        windows.join(" and "),
        sc.seed,
    );

    // 1. Fixed-seed determinism: two predictor-on runs must be identical.
    let first = rack_outage::run(&sc, true);
    let second = rack_outage::run(&sc, true);
    assert_eq!(
        first.outcome.report, second.outcome.report,
        "fixed-seed ClusterReport must be byte-identical under rack outage"
    );
    assert_eq!(first.outcome.events, second.outcome.events);

    // 2. Shuffle as a fault domain: committed outputs die, reduces stall and
    // re-fetch, affected maps re-execute — and the jobs still all complete
    // (asserted inside run_rack_outage).
    let faults = first.outcome.report.faults;
    assert!(
        first.outcome.lost_map_outputs >= 1,
        "the outage must destroy committed map outputs: {faults:?}"
    );
    assert!(
        first.outcome.shuffle_refetches >= 1,
        "stalled reduces must re-fetch with backoff: {faults:?}"
    );
    assert!(
        faults.re_executed_tasks >= first.outcome.lost_map_outputs,
        "every lost map output must re-execute its map: {faults:?}"
    );
    assert!(faults.node_failures >= 1, "{faults:?}");
    assert!(faults.node_rejoins >= 1, "{faults:?}");

    // 3. Predictor tail payoff on the same seed.
    let without = rack_outage::run(&sc, false);
    let on_p99 = first.p99_sojourn_secs();
    let off_p99 = without.p99_sojourn_secs();
    let on_makespan = first.outcome.report.makespan_secs().expect("complete");
    let off_makespan = without.outcome.report.makespan_secs().expect("complete");
    println!(
        "sojourn p50/p95/p99/max   : {:.1}/{:.1}/{:.1}/{:.1}s with predictor, \
         {:.1}/{:.1}/{:.1}/{:.1}s without",
        first.outcome.sojourn_quantiles[0],
        first.outcome.sojourn_quantiles[1],
        on_p99,
        first.outcome.sojourn_quantiles[3],
        without.outcome.sojourn_quantiles[0],
        without.outcome.sojourn_quantiles[1],
        off_p99,
        without.outcome.sojourn_quantiles[3],
    );
    // Same workload, same fault plan: the predictor changes placement only.
    assert_eq!(
        faults.node_failures,
        without.outcome.report.faults.node_failures
    );
    if !bench.is_test() {
        // The smoke shape is too small for a guaranteed ordering; the full
        // tracked shape must show the strict tail win (CI re-checks this in
        // check_bench's quality gate).
        assert!(
            on_p99 < off_p99,
            "failure-aware placement must reduce tail completion time: \
             p99 sojourn {on_p99:.1}s (on) vs {off_p99:.1}s (off)"
        );
    }

    let wall = first.wall_secs.min(second.wall_secs);
    let events_per_sec = first.outcome.events as f64 / wall;

    println!("events                    : {}", first.outcome.events);
    println!(
        "map outputs lost          : {} with predictor, {} without ({} migrated)",
        first.outcome.lost_map_outputs,
        without.outcome.lost_map_outputs,
        first.outcome.map_outputs_migrated
    );
    println!(
        "shuffle re-fetch rounds   : {} with predictor, {} without",
        first.outcome.shuffle_refetches, without.outcome.shuffle_refetches
    );
    println!(
        "node failures / rejoins   : {} / {}",
        faults.node_failures, faults.node_rejoins
    );
    println!(
        "re-executed tasks         : {} ({} speculative launched, {} won)",
        faults.re_executed_tasks, faults.speculative_launched, faults.speculative_won
    );
    println!(
        "makespan                  : {on_makespan:.1}s with predictor, \
         {off_makespan:.1}s without ({:+.1}%)",
        (on_makespan / off_makespan - 1.0) * 100.0
    );
    println!("wall seconds (best)       : {wall:.3}");
    println!("events/sec                : {events_per_sec:.0}");
    let ratio_vs_200node = sim_throughput_baseline().map(|base| events_per_sec / base);
    if let Some(ratio) = ratio_vs_200node {
        println!(
            "vs 200-node sim_throughput baseline: {:.2}x (acceptance: >= 1/3x)",
            ratio
        );
    }

    if !bench.is_test() {
        let mut fields = vec![
            (
                "scenario",
                Json::obj(vec![
                    ("racks", Json::Num(f64::from(sc.racks))),
                    ("nodes", Json::Num(f64::from(sc.racks * sc.nodes_per_rack))),
                    ("jobs", Json::Num(summary.jobs as f64)),
                    ("tasks", Json::Num(summary.tasks as f64)),
                    ("reduce_ratio", Json::Num(sc.swim.reduce_ratio)),
                    (
                        "scheduler",
                        Json::Str("hfsp+suspend-resume+speculation+predictor".into()),
                    ),
                    ("outage_rack", Json::Num(f64::from(sc.outage_rack))),
                ]),
            ),
            ("events", Json::Num(first.outcome.events as f64)),
            ("wall_secs", Json::Num(wall)),
            ("events_per_sec", Json::Num(events_per_sec.round())),
            (
                "shuffle",
                Json::obj(vec![
                    (
                        "lost_map_outputs",
                        Json::Num(first.outcome.lost_map_outputs as f64),
                    ),
                    (
                        "map_outputs_migrated",
                        Json::Num(first.outcome.map_outputs_migrated as f64),
                    ),
                    (
                        "shuffle_refetches",
                        Json::Num(first.outcome.shuffle_refetches as f64),
                    ),
                    (
                        "re_executed_tasks",
                        Json::Num(faults.re_executed_tasks as f64),
                    ),
                    ("node_failures", Json::Num(faults.node_failures as f64)),
                    ("node_rejoins", Json::Num(faults.node_rejoins as f64)),
                ]),
            ),
            (
                "predictor",
                Json::obj(vec![
                    ("p99_sojourn_secs", Json::Num(on_p99.round())),
                    ("p99_sojourn_secs_without", Json::Num(off_p99.round())),
                    ("makespan_secs", Json::Num(on_makespan.round())),
                    ("makespan_secs_without", Json::Num(off_makespan.round())),
                ]),
            ),
        ];
        if let Some(ratio) = ratio_vs_200node {
            fields.push((
                "events_per_sec_vs_200node_baseline",
                Json::Num((ratio * 100.0).round() / 100.0),
            ));
        }
        let json = Json::obj(fields);
        let path = baseline_path();
        match std::fs::write(&path, json.pretty() + "\n") {
            Ok(()) => println!("baseline written to {}", path.display()),
            Err(e) => eprintln!("could not write baseline {}: {e}", path.display()),
        }
    }
}
