//! Memory pressure through the block-granular swap-device model: big
//! memory-hungry batch jobs on 3 GiB nodes, a stream of small HFSP
//! queue-jumpers suspending them, every resident set cycling through swap.
//!
//! Asserted on every invocation (including the 4-node `--test` smoke):
//!
//! 1. **fixed-seed determinism** — two eager-resume runs agree on event
//!    count, makespan and swap traffic byte-for-byte;
//! 2. **lazy beats eager** — lazy resume reads strictly fewer swap bytes
//!    than eager on the same seed;
//! 3. **no false thrash** — the calm (non-overcommitted) variant keeps the
//!    kernel's `thrash_events` counter at exactly zero;
//! 4. **resume cost is not flat** — per-cycle swap-in bytes strictly grow
//!    with the dirty state per task across the cost curve;
//! 5. **disk contention bites** — giving a killed node's re-replication
//!    traffic a bandwidth share inflates virtual swap-I/O time beyond the
//!    same fault with share zero (same byte flow, shared spindle);
//! 6. **near-O(1) per-event cost** — events/sec is reported against the
//!    checked-in `sim_throughput` baseline. The scenario is small (~8.5k
//!    events) and swap-device heavy, so it carries no hard anchor-ratio
//!    bar; the `check_bench` CI gate catches regressions by comparing the
//!    fresh ratio against the checked-in baseline ratio instead.
//!
//! The scenario lives in `mrp_bench::scenarios::memory_pressure` (backed by
//! `mrp_experiments::MemoryPressureConfig`) so the CI gate runs exactly the
//! same workload. Full runs write `BENCH_memory_pressure.json`.

use mrp_bench::scenarios::memory_pressure::{self, assert_quality};
use mrp_bench::Bench;
use mrp_engine::SwapConfig;
use mrp_preempt::json::Json;
use mrp_sim::MIB;

fn sim_throughput_baseline() -> Option<f64> {
    mrp_bench::scenarios::baseline_events_per_sec("BENCH_sim_throughput.json")
}

fn baseline_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_memory_pressure.json")
}

fn main() {
    let bench = Bench::from_args();
    let sc = if bench.is_test() {
        memory_pressure::small()
    } else {
        memory_pressure::full()
    };
    println!(
        "memory_pressure: {} nodes x {} map slots, {} MiB RAM / {} MiB state \
         per task, {} batch jobs x {} tasks + {} queue-jumpers every {}s, \
         seed {:#x}",
        sc.nodes,
        sc.map_slots,
        sc.total_ram / MIB,
        sc.state_memory / MIB,
        sc.batch_jobs,
        sc.batch_tasks,
        sc.small_jobs,
        sc.small_every_secs,
        sc.seed,
    );

    // 1. Fixed-seed determinism: two eager-resume runs must agree.
    let first = memory_pressure::run(&sc, SwapConfig::enabled());
    let second = memory_pressure::run(&sc, SwapConfig::enabled());
    assert_eq!(
        first.outcome.events_processed, second.outcome.events_processed,
        "fixed-seed event count must be identical"
    );
    assert_eq!(first.outcome.makespan_secs, second.outcome.makespan_secs);
    assert_eq!(first.outcome.swap_out_bytes, second.outcome.swap_out_bytes);
    assert_eq!(first.outcome.swap_in_bytes, second.outcome.swap_in_bytes);
    assert_eq!(first.outcome.suspend_cycles, second.outcome.suspend_cycles);

    // Same seed, lazy resume: only the fault-back policy differs.
    let lazy = memory_pressure::run(&sc, SwapConfig::lazy());
    // The calm variant: state fits, nothing may thrash.
    let calm = memory_pressure::run(&sc.clone().calm(), SwapConfig::enabled());
    // The resume-cost curve over dirty-state sizes.
    let curve = memory_pressure::resume_cost_curve(&sc, &memory_pressure::CURVE_STATES);
    // The contention pair: same node killed, only the disk share differs.
    let fault_only = memory_pressure::run(&sc.clone().contended(0.0), SwapConfig::enabled());
    let fault_share = memory_pressure::run(&sc.clone().contended(0.5), SwapConfig::enabled());

    // 2-5. The quality bars shared with the check_bench gate.
    assert_quality(
        &first.outcome,
        &lazy.outcome,
        &calm.outcome,
        &curve,
        &fault_only.outcome,
        &fault_share.outcome,
    );

    let eager = &first.outcome;
    println!("events                    : {}", eager.events_processed);
    println!(
        "suspend cycles            : {} (eager), {} (lazy)",
        eager.suspend_cycles, lazy.outcome.suspend_cycles
    );
    println!(
        "swap out / in (eager)     : {} / {} MiB",
        eager.swap_out_bytes / MIB,
        eager.swap_in_bytes / MIB
    );
    println!(
        "swap in (lazy)            : {} MiB ({:.1}% of eager)",
        lazy.outcome.swap_in_bytes / MIB,
        lazy.outcome.swap_in_bytes as f64 / eager.swap_in_bytes as f64 * 100.0
    );
    println!(
        "thrash events             : {} pressured, {} calm (bar: 0)",
        eager.thrash_events, calm.outcome.thrash_events
    );
    for p in &curve {
        println!(
            "resume cost @ {:>5} MiB   : {:.1} MiB/cycle over {} cycles",
            p.state_memory / MIB,
            p.swap_in_per_cycle / MIB as f64,
            p.suspend_cycles
        );
    }
    println!(
        "makespan                  : {:.1}s eager, {:.1}s lazy, {:.1}s with fault",
        eager.makespan_secs, lazy.outcome.makespan_secs, fault_only.outcome.makespan_secs
    );
    println!(
        "swap I/O time under fault : {:.1}s at share 0, {:.1}s at share 0.5",
        fault_only.outcome.swap_io_secs, fault_share.outcome.swap_io_secs
    );

    let mut wall = first.wall_secs.min(second.wall_secs);
    if !bench.is_test() {
        wall = wall.min(memory_pressure::run(&sc, SwapConfig::enabled()).wall_secs);
    }
    let events_per_sec = eager.events_processed as f64 / wall;
    println!("wall seconds (best)       : {wall:.3}");
    println!("events/sec                : {events_per_sec:.0}");
    let ratio_vs_200node = sim_throughput_baseline().map(|base| events_per_sec / base);
    if let Some(ratio) = ratio_vs_200node {
        println!(
            "vs 200-node sim_throughput baseline: {:.2}x (regression-gated by check_bench)",
            ratio
        );
    }

    if !bench.is_test() {
        let curve_json = curve
            .iter()
            .map(|p| {
                Json::obj(vec![
                    ("state_mib", Json::Num((p.state_memory / MIB) as f64)),
                    (
                        "swap_in_mib_per_cycle",
                        Json::Num((p.swap_in_per_cycle / MIB as f64 * 10.0).round() / 10.0),
                    ),
                    ("suspend_cycles", Json::Num(p.suspend_cycles as f64)),
                    ("makespan_secs", Json::Num(p.makespan_secs.round())),
                ])
            })
            .collect::<Vec<_>>();
        let mut fields = vec![
            (
                "scenario",
                Json::obj(vec![
                    ("nodes", Json::Num(f64::from(sc.nodes))),
                    ("map_slots", Json::Num(f64::from(sc.nodes * sc.map_slots))),
                    ("ram_mib", Json::Num((sc.total_ram / MIB) as f64)),
                    ("state_mib", Json::Num((sc.state_memory / MIB) as f64)),
                    (
                        "scheduler",
                        Json::Str("hfsp suspend/resume + block-granular swap device".into()),
                    ),
                ]),
            ),
            ("events", Json::Num(eager.events_processed as f64)),
            ("wall_secs", Json::Num(wall)),
            ("events_per_sec", Json::Num(events_per_sec.round())),
            (
                "swap",
                Json::obj(vec![
                    ("suspend_cycles", Json::Num(eager.suspend_cycles as f64)),
                    (
                        "swap_out_mib_eager",
                        Json::Num((eager.swap_out_bytes / MIB) as f64),
                    ),
                    (
                        "swap_in_mib_eager",
                        Json::Num((eager.swap_in_bytes / MIB) as f64),
                    ),
                    (
                        "swap_in_mib_lazy",
                        Json::Num((lazy.outcome.swap_in_bytes / MIB) as f64),
                    ),
                    (
                        "thrash_events_calm",
                        Json::Num(calm.outcome.thrash_events as f64),
                    ),
                    (
                        "swap_io_secs_fault",
                        Json::Num((fault_only.outcome.swap_io_secs * 10.0).round() / 10.0),
                    ),
                    (
                        "swap_io_secs_fault_contended",
                        Json::Num((fault_share.outcome.swap_io_secs * 10.0).round() / 10.0),
                    ),
                ]),
            ),
            ("resume_cost_curve", Json::Arr(curve_json)),
        ];
        if let Some(ratio) = ratio_vs_200node {
            fields.push((
                "events_per_sec_vs_200node_baseline",
                Json::Num((ratio * 100.0).round() / 100.0),
            ));
        }
        let json = Json::obj(fields);
        let path = baseline_path();
        match std::fs::write(&path, json.pretty() + "\n") {
            Ok(()) => println!("baseline written to {}", path.display()),
            Err(e) => eprintln!("could not write baseline {}: {e}", path.display()),
        }
    }
}
