//! Multi-tenant scheduling through the pluggable action pipeline: DRF
//! `allocate`, quota `reclaim` (kill vs OS-assisted suspend — the paper's
//! trade-off as a plugin knob) and best-effort `backfill` on a weighted
//! three-tenant cluster with a saturating burst and staggered streams.
//!
//! Asserted on every invocation (including the 8-node `--test` smoke):
//!
//! 1. **fixed-seed determinism** — two suspend-based runs agree on event
//!    count, suspend cycles, makespan and lost work;
//! 2. **DRF quota adherence** — at steady state no tenant's mean dominant
//!    share exceeds its quota by more than 5 percentage points while
//!    another tenant is starved;
//! 3. **the paper's trade-off at multi-tenant scale** — suspend-based
//!    reclaim strictly beats kill-based on lost work on the same seed;
//! 4. **backfill liveness** — every best-effort scavenger job completes;
//! 5. **near-O(1) per-event cost** — events/sec is reported against the
//!    checked-in `sim_throughput` baseline; the acceptance bar (within 3x)
//!    is enforced ratio-wise by the `check_bench` CI gate on fresh runs.
//!
//! The scenario lives in `mrp_bench::scenarios::multi_tenant` (backed by
//! `mrp_experiments::TenantScenarioConfig`) so the CI gate runs exactly the
//! same workload. Full runs write `BENCH_multi_tenant.json`.

use mrp_bench::scenarios::multi_tenant::{self, assert_quality};
use mrp_bench::Bench;
use mrp_preempt::json::Json;
use mrp_preempt::PreemptionPrimitive;

fn sim_throughput_baseline() -> Option<f64> {
    mrp_bench::scenarios::baseline_events_per_sec("BENCH_sim_throughput.json")
}

fn baseline_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_multi_tenant.json")
}

fn main() {
    let bench = Bench::from_args();
    let sc = if bench.is_test() {
        multi_tenant::small()
    } else {
        multi_tenant::full()
    };
    println!(
        "multi_tenant: {} racks x {} nodes x {} map slots, weights {:?}, \
         DRF allocate + reclaim + backfill pipeline, burst {}x{} + streams \
         every {:.0}s to t={:.0}s, seed {:#x}",
        sc.racks,
        sc.nodes_per_rack,
        sc.map_slots,
        sc.weights,
        sc.burst_jobs,
        sc.burst_tasks,
        sc.stream_every.as_secs_f64(),
        sc.horizon.as_secs_f64(),
        sc.seed,
    );

    // 1. Fixed-seed determinism: two suspend-based runs must agree.
    let first = multi_tenant::run(&sc, PreemptionPrimitive::SuspendResume);
    let second = multi_tenant::run(&sc, PreemptionPrimitive::SuspendResume);
    assert_eq!(
        first.outcome.events_processed, second.outcome.events_processed,
        "fixed-seed event count must be identical"
    );
    assert_eq!(first.outcome.suspend_cycles, second.outcome.suspend_cycles);
    assert_eq!(first.outcome.makespan_secs, second.outcome.makespan_secs);
    assert_eq!(first.outcome.lost_work_secs, second.outcome.lost_work_secs);

    // Kill-based reclaim on the same seed: only the eviction mechanism
    // differs.
    let kill = multi_tenant::run(&sc, PreemptionPrimitive::Kill);

    // 2-4. The quality bars shared with the check_bench gate.
    assert_quality(&first.outcome, &kill.outcome);

    let suspend = &first.outcome;
    println!("events                    : {}", suspend.events_processed);
    for s in &suspend.shares {
        println!(
            "tenant {}                  : quota {:.3}, mean share {:.3}, \
             excess-over-quota {:.4} (bar 0.05)",
            s.tenant, s.quota, s.mean_dominant_share, s.mean_excess_over_quota
        );
    }
    println!(
        "reclaim evictions         : {} suspend cycles (suspend run), \
         lost work {:.1}s suspend vs {:.1}s kill",
        suspend.suspend_cycles, suspend.lost_work_secs, kill.outcome.lost_work_secs
    );
    println!(
        "makespan                  : {:.1}s suspend, {:.1}s kill ({:+.1}%)",
        suspend.makespan_secs,
        kill.outcome.makespan_secs,
        (suspend.makespan_secs / kill.outcome.makespan_secs - 1.0) * 100.0
    );
    println!(
        "best-effort (backfill)    : {}/{} jobs completed",
        suspend.best_effort_completed, suspend.best_effort_jobs
    );

    let mut wall = first.wall_secs.min(second.wall_secs);
    if !bench.is_test() {
        wall = wall.min(multi_tenant::run(&sc, PreemptionPrimitive::SuspendResume).wall_secs);
    }
    let events_per_sec = suspend.events_processed as f64 / wall;
    println!("wall seconds (best)       : {wall:.3}");
    println!("events/sec                : {events_per_sec:.0}");
    let ratio_vs_200node = sim_throughput_baseline().map(|base| events_per_sec / base);
    if let Some(ratio) = ratio_vs_200node {
        println!(
            "vs 200-node sim_throughput baseline: {:.2}x (acceptance: >= 1/3x)",
            ratio
        );
    }

    if !bench.is_test() {
        let tenants = suspend
            .shares
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("tenant", Json::Num(f64::from(s.tenant))),
                    ("quota", Json::Num((s.quota * 1000.0).round() / 1000.0)),
                    (
                        "mean_dominant_share",
                        Json::Num((s.mean_dominant_share * 1000.0).round() / 1000.0),
                    ),
                    (
                        "mean_excess_over_quota",
                        Json::Num((s.mean_excess_over_quota * 10000.0).round() / 10000.0),
                    ),
                ])
            })
            .collect::<Vec<_>>();
        let mut fields = vec![
            (
                "scenario",
                Json::obj(vec![
                    ("racks", Json::Num(f64::from(sc.racks))),
                    ("nodes", Json::Num(f64::from(sc.racks * sc.nodes_per_rack))),
                    ("map_slots", Json::Num(f64::from(sc.total_map_slots()))),
                    ("tenants", Json::Num(sc.weights.len() as f64)),
                    (
                        "scheduler",
                        Json::Str("pipeline: drf-allocate + reclaim + backfill".into()),
                    ),
                ]),
            ),
            ("events", Json::Num(suspend.events_processed as f64)),
            ("wall_secs", Json::Num(wall)),
            ("events_per_sec", Json::Num(events_per_sec.round())),
            ("tenants", Json::Arr(tenants)),
            (
                "reclaim",
                Json::obj(vec![
                    ("suspend_cycles", Json::Num(suspend.suspend_cycles as f64)),
                    (
                        "lost_work_secs_suspend",
                        Json::Num((suspend.lost_work_secs * 10.0).round() / 10.0),
                    ),
                    (
                        "lost_work_secs_kill",
                        Json::Num((kill.outcome.lost_work_secs * 10.0).round() / 10.0),
                    ),
                    (
                        "makespan_secs_suspend",
                        Json::Num(suspend.makespan_secs.round()),
                    ),
                    (
                        "makespan_secs_kill",
                        Json::Num(kill.outcome.makespan_secs.round()),
                    ),
                    (
                        "best_effort_completed",
                        Json::Num(suspend.best_effort_completed as f64),
                    ),
                    (
                        "best_effort_jobs",
                        Json::Num(suspend.best_effort_jobs as f64),
                    ),
                ]),
            ),
        ];
        if let Some(ratio) = ratio_vs_200node {
            fields.push((
                "events_per_sec_vs_200node_baseline",
                Json::Num((ratio * 100.0).round() / 100.0),
            ));
        }
        let json = Json::obj(fields);
        let path = baseline_path();
        match std::fs::write(&path, json.pretty() + "\n") {
            Ok(()) => println!("baseline written to {}", path.display()),
            Err(e) => eprintln!("could not write baseline {}: {e}", path.display()),
        }
    }
}
