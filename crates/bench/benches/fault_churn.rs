//! Fault-injection churn at cluster scale: a 1000-node / 50-rack cluster
//! under HFSP suspend/resume preemption churn *plus* seeded random node
//! failures (per-rack MTBF with rejoins), a scripted whole-rack outage, and
//! an administrative decommission, with speculative re-execution enabled.
//!
//! Asserted on every invocation (including the 100-node `--test` smoke):
//!
//! 1. **fixed-seed determinism** — two runs produce byte-identical
//!    `ClusterReport`s, fault injection and speculation included;
//! 2. **the paper's key cost under failure** — at least one node loss
//!    destroys a *suspended* task's paged-out state
//!    (`FaultStats::suspended_tasks_lost >= 1` with lost work recorded);
//! 3. **speculation pays off in the tail** — on the same seed, enabling
//!    speculative re-execution strictly reduces the p99 job sojourn vs.
//!    speculation-off (stranded stragglers are re-executed instead of
//!    waited for; the smoke variant asserts non-regression);
//! 4. **near-O(1) per-event cost** — events/sec is reported against the
//!    checked-in `sim_throughput` baseline; the acceptance bar (within 3x)
//!    is enforced ratio-wise by the `check_bench` CI gate on fresh runs.
//!
//! The scenario lives in `mrp_bench::scenarios::fault_churn` so the CI gate
//! runs exactly the same workload. Full runs write
//! `BENCH_fault_churn.json`.

use mrp_bench::scenarios::fault_churn::FaultChurnScenario;
use mrp_bench::Bench;
use mrp_experiments::sojourn_quantile;
use mrp_preempt::json::Json;
use mrp_workload::{summarize, SwimGenerator};

fn sim_throughput_baseline() -> Option<f64> {
    mrp_bench::scenarios::baseline_events_per_sec("BENCH_sim_throughput.json")
}

fn baseline_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_fault_churn.json")
}

fn main() {
    let bench = Bench::from_args();
    let sc = if bench.is_test() {
        FaultChurnScenario::small()
    } else {
        FaultChurnScenario::full()
    };
    let summary = summarize(&SwimGenerator::new(sc.swim_config(), sc.seed).generate());
    println!(
        "fault_churn: {} racks x {} nodes x {} map slots, {} jobs / {} tasks, \
         HFSP suspend/resume + speculation, rack MTBF {:.0}s (recovery {:.0}s), seed {:#x}",
        sc.racks,
        sc.nodes_per_rack,
        sc.map_slots,
        summary.jobs,
        summary.tasks,
        sc.rack_mtbf_secs,
        sc.mean_recovery_secs,
        sc.seed,
    );

    // 1. Fixed-seed determinism: two speculation-on runs must be identical.
    let first = sc.run();
    let second = sc.run();
    assert_eq!(
        first.report, second.report,
        "fixed-seed ClusterReport must be byte-identical under fault injection"
    );
    assert_eq!(first.events, second.events);

    let faults = first.report.faults;
    let suspends: u32 = first
        .report
        .jobs
        .iter()
        .flat_map(|j| j.tasks.iter())
        .map(|t| t.suspend_cycles)
        .sum();
    assert!(suspends > 0, "the scenario must exercise preemption churn");
    assert!(
        faults.node_failures >= 3,
        "random churn plus the rack outage must strike repeatedly: {faults:?}"
    );
    assert!(faults.node_decommissions >= 1, "{faults:?}");
    assert!(faults.node_rejoins >= 1, "{faults:?}");
    // 2. The paper's key cost under failure: suspended-to-disk state lost.
    assert!(
        faults.suspended_tasks_lost >= 1 && faults.lost_suspended_work_secs > 0.0,
        "at least one node loss must destroy a suspended task's state: {faults:?}"
    );
    assert!(
        faults.re_executed_tasks >= 1,
        "lost attempts must be re-executed: {faults:?}"
    );

    // 3. Speculation tail payoff on the same seed.
    let mut off = sc;
    off.speculation = false;
    let without = off.run();
    let spec_makespan = first.report.makespan_secs().expect("all jobs complete");
    let off_makespan = without.report.makespan_secs().expect("all jobs complete");
    let spec_p99 = sojourn_quantile(&first.report, 0.99);
    let off_p99 = sojourn_quantile(&without.report, 0.99);
    println!(
        "sojourn p50/p95/p99/max   : {:.1}/{:.1}/{:.1}/{:.1}s with speculation, \
         {:.1}/{:.1}/{:.1}/{:.1}s without",
        sojourn_quantile(&first.report, 0.5),
        sojourn_quantile(&first.report, 0.95),
        spec_p99,
        sojourn_quantile(&first.report, 1.0),
        sojourn_quantile(&without.report, 0.5),
        sojourn_quantile(&without.report, 0.95),
        off_p99,
        sojourn_quantile(&without.report, 1.0),
    );
    assert!(
        first.report.faults.speculative_launched >= 1,
        "stragglers under churn must draw backups: {faults:?}"
    );
    assert_eq!(without.report.faults.speculative_launched, 0);
    if bench.is_test() {
        // The shrunken smoke cluster has too few stranding opportunities for
        // a guaranteed strict win; it still must never regress the tail.
        assert!(
            spec_p99 <= off_p99 && spec_makespan <= off_makespan,
            "speculation must not hurt tail completion time: \
             p99 {spec_p99:.1}s/{off_p99:.1}s, makespan {spec_makespan:.1}s/{off_makespan:.1}s"
        );
    } else {
        assert!(
            spec_p99 < off_p99,
            "speculative re-execution must reduce tail completion time: \
             p99 sojourn {spec_p99:.1}s (on) vs {off_p99:.1}s (off)"
        );
    }

    let mut wall = first.wall_secs.min(second.wall_secs);
    if !bench.is_test() {
        let sc = FaultChurnScenario::full();
        wall = wall.min(sc.run().wall_secs);
    }
    let events_per_sec = first.events as f64 / wall;

    println!("events                    : {}", first.events);
    println!("suspend cycles            : {suspends}");
    println!(
        "node failures / decomm.   : {} / {} ({} rejoins)",
        faults.node_failures, faults.node_decommissions, faults.node_rejoins
    );
    println!(
        "suspended state lost      : {} tasks / {:.1}s of preserved work",
        faults.suspended_tasks_lost, faults.lost_suspended_work_secs
    );
    println!(
        "re-executed / re-replicated: {} tasks / {} blocks ({} blocks lost)",
        faults.re_executed_tasks, faults.re_replicated_blocks, faults.lost_blocks
    );
    println!(
        "speculation               : {} launched, {} won, {:.1}s wasted",
        faults.speculative_launched, faults.speculative_won, faults.speculative_wasted_secs
    );
    println!(
        "makespan                  : {spec_makespan:.1}s with speculation, \
         {off_makespan:.1}s without ({:+.1}%)",
        (spec_makespan / off_makespan - 1.0) * 100.0
    );
    println!("wall seconds (best)       : {wall:.3}");
    println!("events/sec                : {events_per_sec:.0}");
    let ratio_vs_200node = sim_throughput_baseline().map(|base| events_per_sec / base);
    if let Some(ratio) = ratio_vs_200node {
        println!(
            "vs 200-node sim_throughput baseline: {:.2}x (acceptance: >= 1/3x)",
            ratio
        );
    }

    if !bench.is_test() {
        let mut fields = vec![
            (
                "scenario",
                Json::obj(vec![
                    (
                        "racks",
                        Json::Num(f64::from(FaultChurnScenario::full().racks)),
                    ),
                    (
                        "nodes",
                        Json::Num(f64::from(FaultChurnScenario::full().nodes())),
                    ),
                    ("jobs", Json::Num(summary.jobs as f64)),
                    ("tasks", Json::Num(summary.tasks as f64)),
                    (
                        "scheduler",
                        Json::Str("hfsp+suspend-resume+speculation".into()),
                    ),
                    (
                        "rack_mtbf_secs",
                        Json::Num(FaultChurnScenario::full().rack_mtbf_secs),
                    ),
                    ("suspend_cycles", Json::Num(f64::from(suspends))),
                ]),
            ),
            ("events", Json::Num(first.events as f64)),
            ("wall_secs", Json::Num(wall)),
            ("events_per_sec", Json::Num(events_per_sec.round())),
            (
                "faults",
                Json::obj(vec![
                    ("node_failures", Json::Num(faults.node_failures as f64)),
                    (
                        "node_decommissions",
                        Json::Num(faults.node_decommissions as f64),
                    ),
                    ("node_rejoins", Json::Num(faults.node_rejoins as f64)),
                    (
                        "suspended_tasks_lost",
                        Json::Num(faults.suspended_tasks_lost as f64),
                    ),
                    (
                        "lost_suspended_work_secs",
                        Json::Num(faults.lost_suspended_work_secs.round()),
                    ),
                    (
                        "re_executed_tasks",
                        Json::Num(faults.re_executed_tasks as f64),
                    ),
                    (
                        "re_replicated_blocks",
                        Json::Num(faults.re_replicated_blocks as f64),
                    ),
                    ("lost_blocks", Json::Num(faults.lost_blocks as f64)),
                ]),
            ),
            (
                "speculation",
                Json::obj(vec![
                    ("launched", Json::Num(faults.speculative_launched as f64)),
                    ("won", Json::Num(faults.speculative_won as f64)),
                    (
                        "wasted_secs",
                        Json::Num(faults.speculative_wasted_secs.round()),
                    ),
                    ("makespan_secs", Json::Num(spec_makespan.round())),
                    ("makespan_secs_without", Json::Num(off_makespan.round())),
                    ("p99_sojourn_secs", Json::Num(spec_p99.round())),
                    ("p99_sojourn_secs_without", Json::Num(off_p99.round())),
                ]),
            ),
        ];
        if let Some(ratio) = ratio_vs_200node {
            fields.push((
                "events_per_sec_vs_200node_baseline",
                Json::Num((ratio * 100.0).round() / 100.0),
            ));
        }
        let json = Json::obj(fields);
        let path = baseline_path();
        match std::fs::write(&path, json.pretty() + "\n") {
            Ok(()) => println!("baseline written to {}", path.display()),
            Err(e) => eprintln!("could not write baseline {}: {e}", path.display()),
        }
    }
}
