//! Rack-sharded cluster engine at production scale: a 10k-node / 100-rack
//! cluster driven by a SWIM-generated, DFS-file-backed trace of >100k map
//! tasks under HFSP suspend/resume churn.
//!
//! Measurements:
//!
//! 1. **events/sec** of the full multi-rack scenario (the number tracked
//!    across PRs in `BENCH_swim_cluster.json`). The acceptance bar is that
//!    per-event cost stays near-O(1) in cluster size: events/sec within 3x of
//!    the 200-node `sim_throughput` rate (checked against the checked-in
//!    `BENCH_sim_throughput.json` when present, and enforced ratio-wise by
//!    the `check_bench` CI gate);
//! 2. **locality-hit ratios** — node-local / rack-local / off-rack map launch
//!    fractions from the engine's maintained `LocalityStats`;
//! 3. fixed-seed determinism: two runs must produce byte-identical
//!    `ClusterReport`s, asserted on every invocation (including `--test`).
//!
//! The scenario itself lives in `mrp_bench::scenarios::swim_cluster` so the
//! CI regression gate runs exactly the same workload. `--test` runs the
//! shrunken 64-node variant so CI can keep the scenario compiling and
//! deterministic on every PR without the 10k-node cost.

use mrp_bench::scenarios::swim_cluster::SwimScenario;
use mrp_bench::Bench;
use mrp_preempt::json::Json;
use mrp_sim::GIB;
use mrp_workload::{summarize, SwimGenerator};

fn sim_throughput_baseline() -> Option<f64> {
    mrp_bench::scenarios::baseline_events_per_sec("BENCH_sim_throughput.json")
}

fn baseline_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_swim_cluster.json")
}

fn main() {
    let bench = Bench::from_args();
    let sc = if bench.is_test() {
        SwimScenario::small()
    } else {
        SwimScenario::full()
    };
    let summary = summarize(&SwimGenerator::new(sc.swim_config(), sc.seed).generate());
    println!(
        "swim_cluster: {} racks x {} nodes x {} map slots, {} jobs / {} tasks \
         ({:.1} GB), HFSP suspend/resume, SWIM trace seed {:#x}",
        sc.racks,
        sc.nodes_per_rack,
        sc.map_slots,
        summary.jobs,
        summary.tasks,
        summary.total_bytes as f64 / GIB as f64,
        sc.seed,
    );
    assert!(
        summary.tasks >= sc.min_tasks,
        "trace too small: {} tasks < {}",
        summary.tasks,
        sc.min_tasks
    );

    // Run twice and pin fixed-seed report equality on every invocation.
    let first = sc.run();
    let second = sc.run();
    assert_eq!(
        first.report, second.report,
        "fixed-seed ClusterReport must be byte-identical"
    );
    assert_eq!(first.events, second.events);
    let suspends: u32 = first
        .report
        .jobs
        .iter()
        .flat_map(|j| j.tasks.iter())
        .map(|t| t.suspend_cycles)
        .sum();
    assert!(suspends > 0, "the scenario must exercise preemption churn");
    let locality = first.report.locality;
    assert!(
        locality.rack_local + locality.off_rack > 0,
        "a multi-rack run must exercise remote launches"
    );

    let mut wall = first.wall_secs.min(second.wall_secs);
    if !bench.is_test() {
        wall = wall.min(sc.run().wall_secs);
    }
    let events_per_sec = first.events as f64 / wall;

    println!("events                  : {}", first.events);
    println!("suspend cycles          : {suspends}");
    println!("wall seconds (best)     : {wall:.3}");
    println!("events/sec              : {events_per_sec:.0}");
    println!(
        "locality hits           : node-local {:.1}% / rack-local {:.1}% / off-rack {:.1}% \
         ({} launches)",
        locality.node_local_ratio() * 100.0,
        locality.rack_local_ratio() * 100.0,
        locality.off_rack_ratio() * 100.0,
        locality.total(),
    );
    let ratio_vs_200node = sim_throughput_baseline().map(|base| events_per_sec / base);
    if let Some(ratio) = ratio_vs_200node {
        println!(
            "vs 200-node sim_throughput baseline: {:.2}x (acceptance: >= 1/3x)",
            ratio
        );
    }

    // Observability pass: the same scenario with the full obs layer on must
    // stay byte-identical, and its span trace must export as a schema-valid
    // Chrome `trace_event` JSON (balanced B/E pairs, non-decreasing
    // timestamps). This is the CI schema check for the trace exporter.
    let observed = sc.run_with_config(|cfg| {
        cfg.obs = mrp_engine::ObsConfig::full();
    });
    assert_eq!(
        observed.report, first.report,
        "observation must not change the simulation outcome"
    );
    assert_eq!(observed.events, first.events);
    let obs = observed.obs.expect("obs enabled");
    let trace =
        mrp_preempt::obs_export::chrome_trace_json(obs.spans(), observed.report.finished_at)
            .pretty();
    mrp_preempt::obs_export::validate_chrome_trace(&trace)
        .unwrap_or_else(|e| panic!("exported Chrome trace failed schema check: {e}"));
    println!(
        "obs trace               : {} spans ({} dropped), {} KiB of trace_event JSON, schema ok",
        obs.spans().len(),
        obs.dropped_spans(),
        trace.len() / 1024,
    );
    let profile = obs.profile().expect("profiling on");
    assert!(
        profile.attribution() >= 0.95,
        "profiler attributed only {:.1}% of loop wall time",
        100.0 * profile.attribution()
    );
    println!("per-event-kind profile (obs-on run):");
    println!("{}", profile.table());

    if !bench.is_test() {
        let mut fields = vec![
            (
                "scenario",
                Json::obj(vec![
                    ("racks", Json::Num(f64::from(sc.racks))),
                    ("nodes_per_rack", Json::Num(f64::from(sc.nodes_per_rack))),
                    ("nodes", Json::Num(f64::from(sc.nodes()))),
                    ("map_slots_per_node", Json::Num(f64::from(sc.map_slots))),
                    ("jobs", Json::Num(summary.jobs as f64)),
                    ("tasks", Json::Num(summary.tasks as f64)),
                    ("scheduler", Json::Str("hfsp+suspend-resume".into())),
                    ("suspend_cycles", Json::Num(f64::from(suspends))),
                ]),
            ),
            ("events", Json::Num(first.events as f64)),
            ("wall_secs", Json::Num(wall)),
            ("events_per_sec", Json::Num(events_per_sec.round())),
            (
                "locality",
                Json::obj(vec![
                    ("node_local", Json::Num(locality.node_local as f64)),
                    ("rack_local", Json::Num(locality.rack_local as f64)),
                    ("off_rack", Json::Num(locality.off_rack as f64)),
                    (
                        "node_local_ratio",
                        Json::Num((locality.node_local_ratio() * 1000.0).round() / 1000.0),
                    ),
                    (
                        "rack_local_ratio",
                        Json::Num((locality.rack_local_ratio() * 1000.0).round() / 1000.0),
                    ),
                    (
                        "off_rack_ratio",
                        Json::Num((locality.off_rack_ratio() * 1000.0).round() / 1000.0),
                    ),
                ]),
            ),
        ];
        if let Some(ratio) = ratio_vs_200node {
            fields.push((
                "events_per_sec_vs_200node_baseline",
                Json::Num((ratio * 100.0).round() / 100.0),
            ));
        }
        let json = Json::obj(fields);
        let path = baseline_path();
        match std::fs::write(&path, json.pretty() + "\n") {
            Ok(()) => println!("baseline written to {}", path.display()),
            Err(e) => eprintln!("could not write baseline {}: {e}", path.display()),
        }
    }
}
