//! Rack-sharded cluster engine at production scale: a 10k-node / 100-rack
//! cluster driven by a SWIM-generated, DFS-file-backed trace of >100k map
//! tasks under HFSP suspend/resume churn.
//!
//! Measurements:
//!
//! 1. **events/sec** of the full multi-rack scenario (the number tracked
//!    across PRs in `BENCH_swim_cluster.json`). The acceptance bar is that
//!    per-event cost stays near-O(1) in cluster size: events/sec within 3x of
//!    the 200-node `sim_throughput` rate (checked against the checked-in
//!    `BENCH_sim_throughput.json` when present);
//! 2. **locality-hit ratios** — node-local / rack-local / off-rack map launch
//!    fractions from the engine's maintained `LocalityStats`;
//! 3. fixed-seed determinism: two runs must produce byte-identical
//!    `ClusterReport`s, asserted on every invocation (including `--test`).
//!
//! `--test` runs a shrunken cluster (64 nodes) so CI can keep the scenario
//! compiling and deterministic on every PR without the 10k-node cost.

use mrp_bench::Bench;
use mrp_engine::{Cluster, ClusterConfig, NodeId, TraceLevel};
use mrp_preempt::json::Json;
use mrp_preempt::{EvictionPolicy, HfspScheduler, PreemptionPrimitive};
use mrp_sim::{SimTime, GIB, MIB};
use mrp_workload::{dfs_backed, summarize, SwimConfig, SwimGenerator};
use std::time::Instant;

/// Scenario shape; `small()` is the CI smoke variant.
struct Scenario {
    racks: u32,
    nodes_per_rack: u32,
    map_slots: u32,
    jobs: usize,
    min_job_bytes: u64,
    max_job_bytes: u64,
    mean_interarrival_secs: f64,
    /// Sanity floor on the generated map-task count.
    min_tasks: usize,
    seed: u64,
}

impl Scenario {
    fn full() -> Self {
        Scenario {
            racks: 100,
            nodes_per_rack: 100,
            map_slots: 2,
            jobs: 2_400,
            min_job_bytes: GIB,
            max_job_bytes: 128 * GIB,
            // Total work ~= tasks x 23s over 20k slots ~= 120s saturated;
            // arrivals paced slightly faster than drain keeps a preemption-
            // heavy backlog without collapsing into one giant batch.
            mean_interarrival_secs: 0.06,
            min_tasks: 100_000,
            seed: 0x5717,
        }
    }

    fn small() -> Self {
        Scenario {
            racks: 8,
            nodes_per_rack: 8,
            map_slots: 2,
            jobs: 60,
            min_job_bytes: 256 * MIB,
            max_job_bytes: 8 * GIB,
            mean_interarrival_secs: 0.4,
            min_tasks: 200,
            seed: 0x5717,
        }
    }

    fn nodes(&self) -> u32 {
        self.racks * self.nodes_per_rack
    }

    fn swim_config(&self) -> SwimConfig {
        SwimConfig {
            jobs: self.jobs,
            mean_interarrival_secs: self.mean_interarrival_secs,
            size_shape: 0.9,
            min_job_bytes: self.min_job_bytes,
            max_job_bytes: self.max_job_bytes,
            bytes_per_task: 128 * MIB,
            stateful_fraction: 0.05,
            stateful_memory: GIB,
            high_priority_fraction: 0.25,
        }
    }
}

struct RunOutcome {
    report: mrp_engine::ClusterReport,
    events: u64,
    wall_secs: f64,
}

fn run_scenario(sc: &Scenario) -> RunOutcome {
    let mut cfg = ClusterConfig::racked_cluster(sc.racks, sc.nodes_per_rack, sc.map_slots, 1);
    cfg.trace_level = TraceLevel::Off;
    let mut cluster = Cluster::new(
        cfg,
        Box::new(HfspScheduler::new(
            PreemptionPrimitive::SuspendResume,
            EvictionPolicy::ClosestToCompletion,
        )),
    );
    // SWIM trace, DFS-backed so replica placement and rack-aware assignment
    // actually matter; writers are spread deterministically over the cluster.
    let trace = SwimGenerator::new(sc.swim_config(), sc.seed).generate();
    let (jobs, files) = dfs_backed(&trace, "/swim");
    let n = sc.nodes() as u64;
    for (i, (path, bytes)) in files.iter().enumerate() {
        let writer = NodeId(((i as u64 * 37) % n) as u32);
        cluster
            .create_input_file_from(path, *bytes, Some(writer))
            .expect("swim input files are unique");
    }
    for job in jobs {
        cluster.submit_job_at(job.spec, job.arrival);
    }
    let start = Instant::now();
    cluster.run(SimTime::from_secs(24 * 3_600));
    let wall_secs = start.elapsed().as_secs_f64();
    let report = cluster.report();
    assert!(
        report.all_jobs_complete(),
        "swim_cluster scenario must run to completion"
    );
    RunOutcome {
        report,
        events: cluster.events_processed(),
        wall_secs,
    }
}

/// The `sim_throughput` events/sec baseline, if its JSON is checked in and
/// parseable; used to report the events/sec ratio the acceptance criterion
/// ("within 3x of the 200-node rate") is defined against.
fn sim_throughput_baseline() -> Option<f64> {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sim_throughput.json");
    let text = std::fs::read_to_string(path).ok()?;
    Json::parse(&text).ok()?.get("events_per_sec")?.as_f64()
}

fn baseline_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_swim_cluster.json")
}

fn main() {
    let bench = Bench::from_args();
    let sc = if bench.is_test() {
        Scenario::small()
    } else {
        Scenario::full()
    };
    let summary = summarize(&SwimGenerator::new(sc.swim_config(), sc.seed).generate());
    println!(
        "swim_cluster: {} racks x {} nodes x {} map slots, {} jobs / {} tasks \
         ({:.1} GB), HFSP suspend/resume, SWIM trace seed {:#x}",
        sc.racks,
        sc.nodes_per_rack,
        sc.map_slots,
        summary.jobs,
        summary.tasks,
        summary.total_bytes as f64 / GIB as f64,
        sc.seed,
    );
    assert!(
        summary.tasks >= sc.min_tasks,
        "trace too small: {} tasks < {}",
        summary.tasks,
        sc.min_tasks
    );

    // Run twice and pin fixed-seed report equality on every invocation.
    let first = run_scenario(&sc);
    let second = run_scenario(&sc);
    assert_eq!(
        first.report, second.report,
        "fixed-seed ClusterReport must be byte-identical"
    );
    assert_eq!(first.events, second.events);
    let suspends: u32 = first
        .report
        .jobs
        .iter()
        .flat_map(|j| j.tasks.iter())
        .map(|t| t.suspend_cycles)
        .sum();
    assert!(suspends > 0, "the scenario must exercise preemption churn");
    let locality = first.report.locality;
    assert!(
        locality.rack_local + locality.off_rack > 0,
        "a multi-rack run must exercise remote launches"
    );

    let mut wall = first.wall_secs.min(second.wall_secs);
    if !bench.is_test() {
        let extra = run_scenario(&sc);
        wall = wall.min(extra.wall_secs);
    }
    let events_per_sec = first.events as f64 / wall;

    println!("events                  : {}", first.events);
    println!("suspend cycles          : {suspends}");
    println!("wall seconds (best)     : {wall:.3}");
    println!("events/sec              : {events_per_sec:.0}");
    println!(
        "locality hits           : node-local {:.1}% / rack-local {:.1}% / off-rack {:.1}% \
         ({} launches)",
        locality.node_local_ratio() * 100.0,
        locality.rack_local_ratio() * 100.0,
        locality.off_rack_ratio() * 100.0,
        locality.total(),
    );
    let ratio_vs_200node = sim_throughput_baseline().map(|base| events_per_sec / base);
    if let Some(ratio) = ratio_vs_200node {
        println!(
            "vs 200-node sim_throughput baseline: {:.2}x (acceptance: >= 1/3x)",
            ratio
        );
    }

    if !bench.is_test() {
        let mut fields = vec![
            (
                "scenario",
                Json::obj(vec![
                    ("racks", Json::Num(f64::from(sc.racks))),
                    ("nodes_per_rack", Json::Num(f64::from(sc.nodes_per_rack))),
                    ("nodes", Json::Num(f64::from(sc.nodes()))),
                    ("map_slots_per_node", Json::Num(f64::from(sc.map_slots))),
                    ("jobs", Json::Num(summary.jobs as f64)),
                    ("tasks", Json::Num(summary.tasks as f64)),
                    ("scheduler", Json::Str("hfsp+suspend-resume".into())),
                    ("suspend_cycles", Json::Num(f64::from(suspends))),
                ]),
            ),
            ("events", Json::Num(first.events as f64)),
            ("wall_secs", Json::Num(wall)),
            ("events_per_sec", Json::Num(events_per_sec.round())),
            (
                "locality",
                Json::obj(vec![
                    ("node_local", Json::Num(locality.node_local as f64)),
                    ("rack_local", Json::Num(locality.rack_local as f64)),
                    ("off_rack", Json::Num(locality.off_rack as f64)),
                    (
                        "node_local_ratio",
                        Json::Num((locality.node_local_ratio() * 1000.0).round() / 1000.0),
                    ),
                    (
                        "rack_local_ratio",
                        Json::Num((locality.rack_local_ratio() * 1000.0).round() / 1000.0),
                    ),
                    (
                        "off_rack_ratio",
                        Json::Num((locality.off_rack_ratio() * 1000.0).round() / 1000.0),
                    ),
                ]),
            ),
        ];
        if let Some(ratio) = ratio_vs_200node {
            fields.push((
                "events_per_sec_vs_200node_baseline",
                Json::Num((ratio * 100.0).round() / 100.0),
            ));
        }
        let json = Json::obj(fields);
        let path = baseline_path();
        match std::fs::write(&path, json.pretty() + "\n") {
            Ok(()) => println!("baseline written to {}", path.display()),
            Err(e) => eprintln!("could not write baseline {}: {e}", path.display()),
        }
    }
}
