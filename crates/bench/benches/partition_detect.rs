//! Suspicion-based failure detection under network partitions at cluster
//! scale: a 200-node / 20-rack cluster under random churn with the
//! missed-heartbeat detector on, plus scripted partitions (a whole rack dark
//! past the timeout, a node-scoped partition outliving it, one healing
//! before it) and a gray-failing node — speculation, fault-tolerant shuffle
//! and the reliability predictor all enabled.
//!
//! Asserted on every invocation (including the 36-node `--test` smoke):
//!
//! 1. **fixed-seed determinism** — two detector-on runs produce
//!    byte-identical `ClusterReport`s, partitions and reconciliation
//!    included;
//! 2. **first-commit-wins** — healed partitions re-contribute buffered
//!    completions (`reconciled_commits + reconciled_discards >= 1`) with
//!    `duplicate_commits == 0`;
//! 3. **bounded detection lag** — `detection_lag_secs_max` never exceeds
//!    the detector timeout plus one heartbeat interval;
//! 4. **the ablation is real** — the detector-off side of the same seed
//!    observes zero detections and zero lag (faults strike instantly), and
//!    both sides drain the workload;
//! 5. **near-O(1) per-event cost** — events/sec is reported against the
//!    checked-in `sim_throughput` baseline; the acceptance bar (within 3x)
//!    is enforced ratio-wise by the `check_bench` CI gate on fresh runs.
//!
//! The scenario lives in `mrp_bench::scenarios::partition_detect` so the CI
//! gate runs exactly the same workload. Full runs write
//! `BENCH_partition_detect.json`.

use mrp_bench::scenarios::partition_detect::{assert_quality, PartitionDetectScenario};
use mrp_bench::Bench;
use mrp_experiments::sojourn_quantile;
use mrp_preempt::json::Json;
use mrp_workload::{summarize, SwimGenerator};

fn sim_throughput_baseline() -> Option<f64> {
    mrp_bench::scenarios::baseline_events_per_sec("BENCH_sim_throughput.json")
}

fn baseline_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_partition_detect.json")
}

fn main() {
    let bench = Bench::from_args();
    let sc = if bench.is_test() {
        PartitionDetectScenario::small()
    } else {
        PartitionDetectScenario::full()
    };
    let summary = summarize(&SwimGenerator::new(sc.swim_config(), sc.seed).generate());
    println!(
        "partition_detect: {} racks x {} nodes x {} map slots, {} jobs / {} tasks, \
         HFSP suspend/resume + speculation + FT shuffle + predictor, \
         detector on (lag bound {:.1}s), rack MTBF {:.0}s, seed {:#x}",
        sc.racks,
        sc.nodes_per_rack,
        sc.map_slots,
        summary.jobs,
        summary.tasks,
        sc.lag_bound_secs(),
        sc.rack_mtbf_secs,
        sc.seed,
    );

    // 1. Fixed-seed determinism: two detector-on runs must be identical.
    let first = sc.run(true);
    let second = sc.run(true);
    assert_eq!(
        first.report, second.report,
        "fixed-seed ClusterReport must be byte-identical under detector + partitions"
    );
    assert_eq!(first.events, second.events);

    // 2 + 3. The quality bars shared with the check_bench gate.
    assert_quality(&sc, &first);
    let faults = first.report.faults;

    // 4. Detector-off ablation on the same seed: faults are observed the
    // instant they strike, so no suspicion, no detections, no lag — and the
    // partitions still heal and reconcile without double commits.
    let without = sc.run(false);
    let off = &without.report.faults;
    assert_eq!(off.nodes_suspected, 0);
    assert_eq!(off.failures_detected, 0);
    assert_eq!(off.detection_lag_secs_max, 0.0);
    assert_eq!(off.duplicate_commits, 0);

    let on_makespan = first.report.makespan_secs().expect("all jobs complete");
    let off_makespan = without.report.makespan_secs().expect("all jobs complete");
    let on_p99 = sojourn_quantile(&first.report, 0.99);
    let off_p99 = sojourn_quantile(&without.report, 0.99);
    let lag_mean = if faults.failures_detected > 0 {
        faults.detection_lag_secs_sum / faults.failures_detected as f64
    } else {
        0.0
    };

    println!("events                    : {}", first.events);
    println!(
        "suspected / detected      : {} / {} (lag mean {:.1}s, max {:.1}s, bound {:.1}s)",
        faults.nodes_suspected,
        faults.failures_detected,
        lag_mean,
        faults.detection_lag_secs_max,
        sc.lag_bound_secs(),
    );
    println!(
        "partitions / heals        : {} / {}",
        faults.partitions, faults.partition_heals
    );
    println!(
        "reconciled commit/discard : {} / {} ({} duplicate commits)",
        faults.reconciled_commits, faults.reconciled_discards, faults.duplicate_commits
    );
    println!(
        "gray failures / heals     : {} / {}",
        faults.gray_failures, faults.gray_heals
    );
    println!(
        "node failures / rejoins   : {} / {} ({} re-executed tasks)",
        faults.node_failures, faults.node_rejoins, faults.re_executed_tasks
    );
    println!(
        "sojourn p50/p95/p99/max   : {:.1}/{:.1}/{:.1}/{:.1}s detector on, \
         {:.1}/{:.1}/{:.1}/{:.1}s off",
        sojourn_quantile(&first.report, 0.5),
        sojourn_quantile(&first.report, 0.95),
        on_p99,
        sojourn_quantile(&first.report, 1.0),
        sojourn_quantile(&without.report, 0.5),
        sojourn_quantile(&without.report, 0.95),
        off_p99,
        sojourn_quantile(&without.report, 1.0),
    );
    println!(
        "makespan                  : {on_makespan:.1}s detector on, \
         {off_makespan:.1}s off ({:+.1}%)",
        (on_makespan / off_makespan - 1.0) * 100.0
    );

    let mut wall = first.wall_secs.min(second.wall_secs);
    if !bench.is_test() {
        wall = wall.min(sc.run(true).wall_secs);
    }
    let events_per_sec = first.events as f64 / wall;
    println!("wall seconds (best)       : {wall:.3}");
    println!("events/sec                : {events_per_sec:.0}");
    let ratio_vs_200node = sim_throughput_baseline().map(|base| events_per_sec / base);
    if let Some(ratio) = ratio_vs_200node {
        println!(
            "vs 200-node sim_throughput baseline: {:.2}x (acceptance: >= 1/3x)",
            ratio
        );
    }

    if !bench.is_test() {
        let mut fields = vec![
            (
                "scenario",
                Json::obj(vec![
                    (
                        "racks",
                        Json::Num(f64::from(PartitionDetectScenario::full().racks)),
                    ),
                    (
                        "nodes",
                        Json::Num(f64::from(PartitionDetectScenario::full().nodes())),
                    ),
                    ("jobs", Json::Num(summary.jobs as f64)),
                    ("tasks", Json::Num(summary.tasks as f64)),
                    (
                        "scheduler",
                        Json::Str("hfsp+suspend-resume+speculation+detector".into()),
                    ),
                    ("lag_bound_secs", Json::Num(sc.lag_bound_secs())),
                ]),
            ),
            ("events", Json::Num(first.events as f64)),
            ("wall_secs", Json::Num(wall)),
            ("events_per_sec", Json::Num(events_per_sec.round())),
            (
                "detector",
                Json::obj(vec![
                    ("nodes_suspected", Json::Num(faults.nodes_suspected as f64)),
                    (
                        "failures_detected",
                        Json::Num(faults.failures_detected as f64),
                    ),
                    (
                        "detection_lag_mean_secs",
                        Json::Num((lag_mean * 100.0).round() / 100.0),
                    ),
                    (
                        "detection_lag_max_secs",
                        Json::Num((faults.detection_lag_secs_max * 100.0).round() / 100.0),
                    ),
                    ("partitions", Json::Num(faults.partitions as f64)),
                    ("partition_heals", Json::Num(faults.partition_heals as f64)),
                    (
                        "reconciled_commits",
                        Json::Num(faults.reconciled_commits as f64),
                    ),
                    (
                        "reconciled_discards",
                        Json::Num(faults.reconciled_discards as f64),
                    ),
                    (
                        "duplicate_commits",
                        Json::Num(faults.duplicate_commits as f64),
                    ),
                    ("gray_failures", Json::Num(faults.gray_failures as f64)),
                    ("gray_heals", Json::Num(faults.gray_heals as f64)),
                    ("makespan_secs", Json::Num(on_makespan.round())),
                    ("makespan_secs_without", Json::Num(off_makespan.round())),
                    ("p99_sojourn_secs", Json::Num(on_p99.round())),
                    ("p99_sojourn_secs_without", Json::Num(off_p99.round())),
                ]),
            ),
        ];
        if let Some(ratio) = ratio_vs_200node {
            fields.push((
                "events_per_sec_vs_200node_baseline",
                Json::Num((ratio * 100.0).round() / 100.0),
            ));
        }
        let json = Json::obj(fields);
        let path = baseline_path();
        match std::fs::write(&path, json.pretty() + "\n") {
            Ok(()) => println!("baseline written to {}", path.display()),
            Err(e) => eprintln!("could not write baseline {}: {e}", path.display()),
        }
    }
}
