//! Section V-A ablation: resume locality — resuming a suspended task on its
//! original node vs. restarting it from scratch on another node.

use mrp_bench::Bench;
use mrp_experiments::{resume_locality_ablation, to_table};

fn main() {
    let bench = Bench::from_args();
    bench.measure("resume_locality/local_vs_nonlocal", || {
        resume_locality_ablation(1)
    });

    println!("\n{}", to_table(&resume_locality_ablation(1)));
}
