//! Section V-A ablation: resume locality — resuming a suspended task on its
//! original node vs. restarting it from scratch on another node.

use criterion::{criterion_group, criterion_main, Criterion};
use mrp_experiments::{resume_locality_ablation, to_table};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("resume_locality");
    group.sample_size(10);
    group.bench_function("local_vs_nonlocal", |b| b.iter(|| resume_locality_ablation(1)));
    group.finish();

    println!("\n{}", to_table(&resume_locality_ablation(1)));
}

criterion_group!(benches, bench);
criterion_main!(benches);
