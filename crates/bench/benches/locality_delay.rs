//! Delay scheduling on the `swim_cluster`-shaped workload: the
//! locality-vs-latency trade-off, measured.
//!
//! Runs the same SWIM trace (multi-rack, DFS-backed inputs, HFSP
//! suspend/resume) twice on the same seed — greedy placement vs delay
//! scheduling at 1+1 heartbeat intervals — and records:
//!
//! 1. the **node-local launch rate** with and without delay (acceptance on
//!    the full shape: >= 30% with delay, against the sub-percent greedy
//!    baseline);
//! 2. the **makespan cost** of waiting (acceptance: <= 5% same-seed
//!    regression);
//! 3. **events/sec** of the delay-on run (tracked in
//!    `BENCH_locality_delay.json`; the per-event cost must stay within the
//!    existing 3x bar against the 200-node `sim_throughput` rate, enforced
//!    ratio-wise by `check_bench`);
//! 4. fixed-seed determinism: two delay-on runs must produce byte-identical
//!    `ClusterReport`s, asserted on every invocation (including `--test`).
//!
//! The scenario lives in `mrp_bench::scenarios::locality_delay` so the CI
//! regression gate runs exactly the same workload. `--test` runs the
//! shrunken 64-node variant.

use mrp_bench::scenarios::{baseline_events_per_sec, locality_delay};
use mrp_bench::Bench;
use mrp_preempt::json::Json;
use mrp_sim::GIB;
use mrp_workload::{summarize, SwimGenerator};

fn baseline_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_locality_delay.json")
}

fn main() {
    let bench = Bench::from_args();
    let sc = if bench.is_test() {
        locality_delay::small()
    } else {
        locality_delay::full()
    };
    let summary = summarize(&SwimGenerator::new(sc.swim_config(), sc.seed).generate());
    println!(
        "locality_delay: {} racks x {} nodes x {} map slots, {} jobs / {} tasks ({:.1} GB), \
         HFSP suspend/resume, delay {}+{} heartbeat intervals, SWIM seed {:#x}",
        sc.racks,
        sc.nodes_per_rack,
        sc.map_slots,
        summary.jobs,
        summary.tasks,
        summary.total_bytes as f64 / GIB as f64,
        locality_delay::NODE_WAIT_INTERVALS,
        locality_delay::RACK_WAIT_INTERVALS,
        sc.seed,
    );
    assert!(
        summary.tasks >= sc.min_tasks,
        "trace too small: {} tasks < {}",
        summary.tasks,
        sc.min_tasks
    );

    let off = locality_delay::run(&sc, false);
    let on = locality_delay::run(&sc, true);
    let again = locality_delay::run(&sc, true);
    assert_eq!(
        on.report, again.report,
        "fixed-seed delay-on ClusterReport must be byte-identical"
    );
    assert_eq!(on.events, again.events);

    let off_loc = off.report.locality;
    let on_loc = on.report.locality;
    let off_makespan = off.report.makespan_secs().expect("all jobs complete");
    let on_makespan = on.report.makespan_secs().expect("all jobs complete");
    let makespan_ratio = on_makespan / off_makespan;

    println!(
        "  greedy : node-local {:>5.1}% / rack-local {:>5.1}% / off-rack {:>5.1}%  \
         makespan {:.0}s",
        off_loc.node_local_ratio() * 100.0,
        off_loc.rack_local_ratio() * 100.0,
        off_loc.off_rack_ratio() * 100.0,
        off_makespan,
    );
    println!(
        "  delayed: node-local {:>5.1}% / rack-local {:>5.1}% / off-rack {:>5.1}%  \
         makespan {:.0}s ({:+.1}%)",
        on_loc.node_local_ratio() * 100.0,
        on_loc.rack_local_ratio() * 100.0,
        on_loc.off_rack_ratio() * 100.0,
        on_makespan,
        (makespan_ratio - 1.0) * 100.0,
    );
    println!(
        "  skipped launch opportunities: {}, completed waits: {} (hist {:?})",
        on_loc.delayed_skips,
        on_loc.delay_waits_total(),
        on_loc.delay_wait_hist,
    );

    // Delay scheduling must actually engage and pay off on every shape.
    assert_eq!(off_loc.delayed_skips, 0, "greedy runs never skip");
    assert!(on_loc.delayed_skips > 0, "delay must decline opportunities");
    assert!(
        on_loc.delay_waits_total() > 0,
        "waits must end in local wins"
    );
    assert!(
        on_loc.node_local_ratio() > off_loc.node_local_ratio(),
        "delay must improve the node-local rate: {:.4} vs {:.4}",
        on_loc.node_local_ratio(),
        off_loc.node_local_ratio()
    );
    if !bench.is_test() {
        // The recorded acceptance bars from the delay-scheduling PR.
        assert!(
            on_loc.node_local_ratio() >= 0.30,
            "full-shape node-local rate must reach 30%, got {:.1}%",
            on_loc.node_local_ratio() * 100.0
        );
        assert!(
            makespan_ratio <= 1.05,
            "full-shape makespan regression must stay within 5%, got {:+.1}%",
            (makespan_ratio - 1.0) * 100.0
        );
    }

    let mut wall = on.wall_secs.min(again.wall_secs);
    if !bench.is_test() {
        wall = wall.min(locality_delay::run(&sc, true).wall_secs);
    }
    let events_per_sec = on.events as f64 / wall;
    println!("events (delay-on)       : {}", on.events);
    println!("wall seconds (best)     : {wall:.3}");
    println!("events/sec              : {events_per_sec:.0}");
    let ratio_vs_200node =
        baseline_events_per_sec("BENCH_sim_throughput.json").map(|base| events_per_sec / base);
    if let Some(ratio) = ratio_vs_200node {
        println!(
            "vs 200-node sim_throughput baseline: {:.2}x (acceptance: >= 1/3x)",
            ratio
        );
    }

    if !bench.is_test() {
        let locality_json = |loc: &mrp_engine::LocalityStats| {
            Json::obj(vec![
                ("node_local", Json::Num(loc.node_local as f64)),
                ("rack_local", Json::Num(loc.rack_local as f64)),
                ("off_rack", Json::Num(loc.off_rack as f64)),
                (
                    "node_local_ratio",
                    Json::Num((loc.node_local_ratio() * 1000.0).round() / 1000.0),
                ),
            ])
        };
        let mut fields = vec![
            (
                "scenario",
                Json::obj(vec![
                    ("racks", Json::Num(f64::from(sc.racks))),
                    ("nodes", Json::Num(f64::from(sc.nodes()))),
                    ("jobs", Json::Num(summary.jobs as f64)),
                    ("tasks", Json::Num(summary.tasks as f64)),
                    (
                        "scheduler",
                        Json::Str("hfsp+suspend-resume+delay-scheduling".into()),
                    ),
                    (
                        "node_wait_intervals",
                        Json::Num(locality_delay::NODE_WAIT_INTERVALS),
                    ),
                    (
                        "rack_wait_intervals",
                        Json::Num(locality_delay::RACK_WAIT_INTERVALS),
                    ),
                ]),
            ),
            ("events", Json::Num(on.events as f64)),
            ("wall_secs", Json::Num(wall)),
            ("events_per_sec", Json::Num(events_per_sec.round())),
            ("locality_with_delay", locality_json(&on_loc)),
            ("locality_without_delay", locality_json(&off_loc)),
            ("delayed_skips", Json::Num(on_loc.delayed_skips as f64)),
            (
                "delay_waits_completed",
                Json::Num(on_loc.delay_waits_total() as f64),
            ),
            ("makespan_secs", Json::Num(on_makespan.round())),
            (
                "makespan_secs_without_delay",
                Json::Num(off_makespan.round()),
            ),
            (
                "makespan_ratio",
                Json::Num((makespan_ratio * 1000.0).round() / 1000.0),
            ),
        ];
        if let Some(ratio) = ratio_vs_200node {
            fields.push((
                "events_per_sec_vs_200node_baseline",
                Json::Num((ratio * 100.0).round() / 100.0),
            ));
        }
        let json = Json::obj(fields);
        let path = baseline_path();
        match std::fs::write(&path, json.pretty() + "\n") {
            Ok(()) => println!("baseline written to {}", path.display()),
            Err(e) => eprintln!("could not write baseline {}: {e}", path.display()),
        }
    }
}
