//! Offline stand-in for the real `serde` crate.
//!
//! The container this workspace builds in has no access to crates.io, so this
//! crate provides just enough surface for `use serde::{Deserialize,
//! Serialize}` + `#[derive(...)]` + `#[serde(...)]` attributes to compile:
//! the derives are re-exported no-ops (see the sibling `serde_derive` crate).
//! Actual serialization in the workspace is hand-rolled (`mrp_preempt::json`).

pub use serde_derive::{Deserialize, Serialize};
