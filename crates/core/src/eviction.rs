//! Task eviction policies (Section V-A).
//!
//! The paper deliberately separates the preemption *primitive* (how a task is
//! evicted) from the eviction *policy* (which task is evicted). Two policies
//! are discussed:
//!
//! * suspend the tasks **closest to completion** (Natjam's SRT heuristic) to
//!   keep all tasks of a job close together and improve job sojourn times;
//! * suspend the tasks with the **smallest memory footprint**, which minimises
//!   paging overhead and therefore makespan under the OS-assisted primitive.
//!
//! A couple of extra baselines (least progress, largest memory, random) are
//! provided for the ablation benchmarks.

use mrp_engine::TaskId;
use mrp_sim::SimRng;
use serde::{Deserialize, Serialize};

/// A task that could be evicted, with the attributes policies rank by.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EvictionCandidate {
    /// The task.
    pub task: TaskId,
    /// Its reported progress in `[0, 1]`.
    pub progress: f64,
    /// Its (estimated) memory footprint in bytes.
    pub memory_bytes: u64,
}

/// Which task(s) to evict when a higher-priority job needs slots.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum EvictionPolicy {
    /// Evict the task closest to completion first (Natjam SRT): it will be
    /// resumed soon and all tasks of the victim job stay close together.
    ClosestToCompletion,
    /// Evict the task with the least progress first: it has the least work to
    /// lose if the eviction turns into a kill.
    LeastProgress,
    /// Evict the task with the smallest memory footprint first: cheapest to
    /// page out and back in under the OS-assisted primitive.
    SmallestMemory,
    /// Evict the task with the largest memory footprint first (worst case for
    /// the OS-assisted primitive; included for the ablation).
    LargestMemory,
    /// Evict uniformly at random.
    Random,
}

impl EvictionPolicy {
    /// All policies, for ablation sweeps.
    pub const ALL: [EvictionPolicy; 5] = [
        EvictionPolicy::ClosestToCompletion,
        EvictionPolicy::LeastProgress,
        EvictionPolicy::SmallestMemory,
        EvictionPolicy::LargestMemory,
        EvictionPolicy::Random,
    ];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            EvictionPolicy::ClosestToCompletion => "closest-to-completion",
            EvictionPolicy::LeastProgress => "least-progress",
            EvictionPolicy::SmallestMemory => "smallest-memory",
            EvictionPolicy::LargestMemory => "largest-memory",
            EvictionPolicy::Random => "random",
        }
    }

    /// Orders `candidates` from first-to-evict to last-to-evict.
    ///
    /// Ties are broken by task id so the ordering is deterministic; the
    /// `Random` policy uses the provided seeded generator.
    pub fn rank(self, candidates: &[EvictionCandidate], rng: &mut SimRng) -> Vec<TaskId> {
        let mut ranked: Vec<EvictionCandidate> = candidates.to_vec();
        match self {
            EvictionPolicy::ClosestToCompletion => {
                ranked.sort_by(|a, b| {
                    b.progress
                        .partial_cmp(&a.progress)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.task.cmp(&b.task))
                });
            }
            EvictionPolicy::LeastProgress => {
                ranked.sort_by(|a, b| {
                    a.progress
                        .partial_cmp(&b.progress)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.task.cmp(&b.task))
                });
            }
            EvictionPolicy::SmallestMemory => {
                ranked.sort_by(|a, b| {
                    a.memory_bytes
                        .cmp(&b.memory_bytes)
                        .then(a.task.cmp(&b.task))
                });
            }
            EvictionPolicy::LargestMemory => {
                ranked.sort_by(|a, b| {
                    b.memory_bytes
                        .cmp(&a.memory_bytes)
                        .then(a.task.cmp(&b.task))
                });
            }
            EvictionPolicy::Random => {
                // Deterministic given the seed: sort first for a stable base
                // order, then shuffle.
                ranked.sort_by_key(|c| c.task);
                rng.shuffle(&mut ranked);
            }
        }
        ranked.into_iter().map(|c| c.task).collect()
    }

    /// Picks the first `count` victims according to the policy.
    pub fn pick(
        self,
        candidates: &[EvictionCandidate],
        count: usize,
        rng: &mut SimRng,
    ) -> Vec<TaskId> {
        self.rank(candidates, rng).into_iter().take(count).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_engine::{JobId, TaskKind};
    use mrp_sim::MIB;

    fn candidate(index: u32, progress: f64, memory_mib: u64) -> EvictionCandidate {
        EvictionCandidate {
            task: TaskId {
                job: JobId(1),
                kind: TaskKind::Map,
                index,
            },
            progress,
            memory_bytes: memory_mib * MIB,
        }
    }

    fn rng() -> SimRng {
        SimRng::new(99)
    }

    #[test]
    fn closest_to_completion_prefers_most_progressed() {
        let c = [
            candidate(0, 0.2, 100),
            candidate(1, 0.9, 100),
            candidate(2, 0.5, 100),
        ];
        let order = EvictionPolicy::ClosestToCompletion.rank(&c, &mut rng());
        assert_eq!(
            order.iter().map(|t| t.index).collect::<Vec<_>>(),
            vec![1, 2, 0]
        );
    }

    #[test]
    fn least_progress_is_the_reverse() {
        let c = [
            candidate(0, 0.2, 100),
            candidate(1, 0.9, 100),
            candidate(2, 0.5, 100),
        ];
        let order = EvictionPolicy::LeastProgress.rank(&c, &mut rng());
        assert_eq!(
            order.iter().map(|t| t.index).collect::<Vec<_>>(),
            vec![0, 2, 1]
        );
    }

    #[test]
    fn memory_policies_sort_by_footprint() {
        let c = [
            candidate(0, 0.5, 2048),
            candidate(1, 0.5, 128),
            candidate(2, 0.5, 512),
        ];
        let small = EvictionPolicy::SmallestMemory.rank(&c, &mut rng());
        assert_eq!(
            small.iter().map(|t| t.index).collect::<Vec<_>>(),
            vec![1, 2, 0]
        );
        let large = EvictionPolicy::LargestMemory.rank(&c, &mut rng());
        assert_eq!(
            large.iter().map(|t| t.index).collect::<Vec<_>>(),
            vec![0, 2, 1]
        );
    }

    #[test]
    fn random_is_a_deterministic_permutation() {
        let c: Vec<EvictionCandidate> = (0..10).map(|i| candidate(i, 0.1, 64)).collect();
        let a = EvictionPolicy::Random.rank(&c, &mut SimRng::new(7));
        let b = EvictionPolicy::Random.rank(&c, &mut SimRng::new(7));
        assert_eq!(a, b, "same seed, same order");
        let mut sorted = a.clone();
        sorted.sort();
        assert_eq!(sorted.len(), 10);
        let original: Vec<TaskId> = c.iter().map(|x| x.task).collect();
        let mut orig_sorted = original.clone();
        orig_sorted.sort();
        assert_eq!(sorted, orig_sorted, "must be a permutation");
    }

    #[test]
    fn pick_limits_the_victim_count() {
        let c: Vec<EvictionCandidate> = (0..5).map(|i| candidate(i, i as f64 / 10.0, 64)).collect();
        let victims = EvictionPolicy::ClosestToCompletion.pick(&c, 2, &mut rng());
        assert_eq!(victims.len(), 2);
        assert_eq!(victims[0].index, 4);
        let none = EvictionPolicy::ClosestToCompletion.pick(&[], 3, &mut rng());
        assert!(none.is_empty());
    }

    #[test]
    fn ties_break_deterministically() {
        let c = [
            candidate(3, 0.5, 100),
            candidate(1, 0.5, 100),
            candidate(2, 0.5, 100),
        ];
        let order = EvictionPolicy::ClosestToCompletion.rank(&c, &mut rng());
        assert_eq!(
            order.iter().map(|t| t.index).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(EvictionPolicy::ALL.len(), 5);
        assert_eq!(EvictionPolicy::SmallestMemory.label(), "smallest-memory");
    }
}
