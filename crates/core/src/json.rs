//! A minimal, dependency-free JSON value, parser and pretty-printer.
//!
//! The dummy scheduler's static configuration files (Section III-B of the
//! paper) are JSON; the build environment has no access to crates.io, so this
//! module supplies the small slice of JSON the plan files need: objects,
//! arrays, strings, numbers, booleans and null, with deterministic
//! (insertion-ordered) object keys so serialised plans are stable.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers up to 2^53 round-trip).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as pretty-printed JSON (two-space indentation).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_inner = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    // `{:?}` is Rust's shortest round-trip f64 formatting.
                    let _ = write!(out, "{n:?}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_inner);
                    item.write_pretty(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad_inner);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document; trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON syntax error with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex_escape()?;
                            let c = match code {
                                // High surrogate: must pair with a following
                                // \uDC00..\uDFFF low surrogate (how JSON
                                // escapes non-BMP characters).
                                0xD800..=0xDBFF => {
                                    if self.bytes.get(self.pos + 1) != Some(&b'\\')
                                        || self.bytes.get(self.pos + 2) != Some(&b'u')
                                    {
                                        return Err(self.err("unpaired high surrogate"));
                                    }
                                    self.pos += 2;
                                    let low = self.hex_escape()?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                }
                                0xDC00..=0xDFFF => return Err(self.err("unpaired low surrogate")),
                                other => char::from_u32(other)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?,
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one multi-byte UTF-8 scalar. Only the scalar's
                    // own bytes are sliced and validated — validating from
                    // `pos` to the end of the input here would make parsing
                    // quadratic in the document size.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid UTF-8")),
                    };
                    let end = self.pos + len;
                    let rest = self
                        .bytes
                        .get(self.pos..end)
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty scalar");
                    out.push(c);
                    self.pos += len;
                }
            }
        }
    }

    /// Reads the four hex digits of a `\uXXXX` escape; on entry `pos` is at
    /// the `u`, on exit at its last hex digit (the caller's shared
    /// post-escape advance consumes it).
    fn hex_escape(&mut self) -> Result<u32, JsonError> {
        if self.pos + 5 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            offset: start,
            message: format!("invalid number '{text}'"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for doc in ["null", "true", "false", "42", "-3.5", "\"hi\\nthere\""] {
            let v = Json::parse(doc).unwrap();
            let back = Json::parse(&v.pretty()).unwrap();
            assert_eq!(v, back, "{doc}");
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::obj(vec![
            ("name", Json::Str("tl".into())),
            ("fraction", Json::Num(0.5)),
            (
                "submit",
                Json::Arr(vec![Json::Num(1.0), Json::Null, Json::Bool(true)]),
            ),
            ("empty_obj", Json::Obj(vec![])),
            ("empty_arr", Json::Arr(vec![])),
        ]);
        let text = v.pretty();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn accessors() {
        let v = Json::obj(vec![("a", Json::Num(3.0)), ("b", Json::Str("x".into()))]);
        assert_eq!(v.get("a").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("a").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
        assert!(v.get("c").is_none());
        assert!(v.as_arr().is_none());
        assert_eq!(Json::Arr(vec![]).as_arr().unwrap().len(), 0);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(Json::parse("{not json").is_err());
        assert!(Json::parse("").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("{\"a\": 1} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn float_precision_survives_round_trips() {
        let values = [0.1, 0.75, 1.0 / 3.0, 1e-9, 123456.789];
        for v in values {
            let text = Json::Num(v).pretty();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(v, back, "{v} reparsed as {back}");
        }
    }

    #[test]
    fn unicode_and_escapes_parse() {
        let v = Json::parse("\"caf\\u00e9 \\t ok\"").unwrap();
        assert_eq!(v.as_str(), Some("café \t ok"));
        let v = Json::parse("\"naïve\"").unwrap();
        assert_eq!(v.as_str(), Some("naïve"));
    }

    #[test]
    fn surrogate_pairs_decode_non_bmp_characters() {
        // U+1F600 as a standard JSON surrogate-pair escape.
        let v = Json::parse("\"\\ud83d\\ude00-job\"").unwrap();
        assert_eq!(v.as_str(), Some("😀-job"));
        // Raw non-BMP characters round-trip through the writer.
        let text = Json::Str("😀-job".into()).pretty();
        assert_eq!(Json::parse(&text).unwrap().as_str(), Some("😀-job"));
        // Lone or malformed surrogates are rejected, not silently replaced.
        assert!(Json::parse("\"\\ud83d\"").is_err());
        assert!(Json::parse("\"\\ud83d x\"").is_err());
        assert!(Json::parse("\"\\ud83d\\u0041\"").is_err());
        assert!(Json::parse("\"\\ude00\"").is_err());
    }
}
