//! The Volcano-style scheduling-action pipeline.
//!
//! A [`SchedulerPolicy`] built from this module is a *composition of
//! actions* — [`Allocate`], [`Preempt`], [`Reclaim`], [`Backfill`] —
//! parameterized by the engine's plugin functions ([`mrp_engine::JobOrder`],
//! [`mrp_engine::TaskOrderFn`], [`mrp_engine::NodeScoreFn`],
//! [`mrp_engine::PreemptableSetFn`], [`TenantLedger`]). Each JobTracker
//! event is dispatched through the actions in order over the same immutable
//! [`SchedulerContext`], concatenating their action outputs — exactly the
//! fill-then-preempt round structure the legacy schedulers used, now with
//! the policy logic factored into replaceable plugins.
//!
//! The legacy `FairScheduler` / `HfspScheduler` types are thin wrappers
//! over [`ActionPipeline::fair`] / [`ActionPipeline::hfsp`]: the bundles
//! run the *same* machinery (`fill_node`, `EvictionPolicy::pick` on the
//! same seeded RNG streams), so plugin-composed and legacy schedulers are
//! byte-identical on every pinned seed — the determinism suites assert it.
//!
//! On top of the re-expressed legacy policies,
//! [`ActionPipeline::multi_tenant`] composes the scenario family the paper
//! never touched: DRF dominant-share allocation over tenants, quota
//! [`Reclaim`] evicting over-quota tenants via kill *or* OS-assisted
//! suspend (the paper's trade-off as a plugin knob), and [`Backfill`] of
//! best-effort jobs into leftover capacity.

use crate::eviction::{EvictionCandidate, EvictionPolicy};
use crate::primitive::PreemptionPrimitive;
use crate::schedulers::{candidates_of, fill_node, LocalityIndex};
use mrp_engine::{
    FifoScheduler, JobId, JobOrder, JobOrderFn, JobRuntime, NodeId, NodeScoreFn, PreemptableSetFn,
    PreemptableTask, SchedulerAction, SchedulerContext, SchedulerPolicy, TaskId, TaskKind,
    TaskOrderFn, TaskState, TenantLedger,
};
use mrp_sim::{SimDuration, SimRng, SimTime};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// One stage of an [`ActionPipeline`]. Actions receive every
/// [`SchedulerPolicy`] hook with the accumulated output of the actions
/// before them, so a later action (e.g. [`Backfill`]) can account for slots
/// an earlier one already claimed this round.
pub trait Action {
    /// The action's name, for reports and traces.
    fn name(&self) -> &'static str;

    /// A node heartbeated with capacity; append launches/evictions to `out`.
    fn on_heartbeat(
        &mut self,
        ctx: &SchedulerContext<'_>,
        node: NodeId,
        out: &mut Vec<SchedulerAction>,
    );

    /// A job was submitted.
    fn on_job_submitted(
        &mut self,
        _ctx: &SchedulerContext<'_>,
        _job: JobId,
        _out: &mut Vec<SchedulerAction>,
    ) {
    }

    /// A job completed (cache-eviction hook).
    fn on_job_finished(&mut self, _ctx: &SchedulerContext<'_>, _job: JobId) {}
}

/// Remaining virtual size of a job in bytes (HFSP's ordering metric):
/// the input bytes of its unfinished tasks scaled by reported progress.
/// Exposed for custom size-based [`JobOrder`] plugins.
pub fn remaining_size(job: &JobRuntime) -> u64 {
    job.tasks
        .iter()
        .filter(|t| !t.state.is_terminal())
        .map(|t| ((1.0 - t.progress).max(0.0) * t.input_bytes as f64) as u64)
        .sum()
}

/// The default preemptable-set plugin: a job's `Running` tasks, in task
/// order, with the legacy footprint estimate.
pub fn running_tasks_preemptable() -> PreemptableSetFn {
    Box::new(|ctx, job| {
        ctx.jobs
            .get(&job)
            .map(|j| {
                candidates_of(j)
                    .into_iter()
                    .map(|c| PreemptableTask {
                        task: c.task,
                        progress: c.progress,
                        memory_bytes: c.memory_bytes,
                    })
                    .collect()
            })
            .unwrap_or_default()
    })
}

/// Wraps an [`EvictionPolicy`] (and its seeded RNG) as a victim-selection
/// plugin. The RNG is drawn only inside `pick`, so a bundle seeded like its
/// legacy scheduler reproduces the legacy victim stream exactly.
pub fn eviction_select(eviction: EvictionPolicy, seed: u64) -> TaskOrderFn {
    let mut rng = SimRng::new(seed);
    Box::new(move |_ctx, tasks, take| {
        let candidates: Vec<EvictionCandidate> = tasks
            .iter()
            .map(|t| EvictionCandidate {
                task: t.task,
                progress: t.progress,
                memory_bytes: t.memory_bytes,
            })
            .collect();
        eviction.pick(&candidates, take, &mut rng)
    })
}

/// FAIR's job-ordering plugin: jobs with launchable or resumable work,
/// most-starved (fewest occupied slots) first, then submission order.
#[derive(Default)]
pub struct FairJobOrder {
    scratch: Vec<(u32, SimTime, JobId)>,
}

impl JobOrder for FairJobOrder {
    fn refresh(
        &mut self,
        ctx: &SchedulerContext<'_>,
        _node: NodeId,
        order: &mut Vec<JobId>,
    ) -> bool {
        self.scratch.clear();
        self.scratch.extend(
            ctx.jobs
                .values()
                .filter(|j| !j.is_finished())
                // Jobs with nothing to launch or resume contribute nothing
                // to `fill_node`; this order is rebuilt per heartbeat, so
                // the filter is exact (no staleness).
                .filter(|j| j.schedulable_count() > 0 || j.suspended_count > 0)
                .map(|j| (j.occupying_count, j.submitted_at, j.id)),
        );
        self.scratch.sort_unstable();
        order.clear();
        order.extend(self.scratch.iter().map(|(_, _, id)| *id));
        true
    }
}

/// HFSP's job-ordering plugin: smallest remaining size first, cached for up
/// to one simulated second. The zero-free-slot gate runs *before* the cache
/// refresh — exactly like the legacy scheduler — so the once-per-second
/// refresh happens at the same virtual instants and the order (whose sizes
/// drift with progress) stays byte-identical.
#[derive(Default)]
pub struct HfspJobOrder {
    scratch: Vec<(u64, JobId)>,
    /// Virtual second the cached order was computed in; invalidated on job
    /// arrival/completion.
    stamp: Option<u64>,
}

impl JobOrder for HfspJobOrder {
    fn refresh(
        &mut self,
        ctx: &SchedulerContext<'_>,
        node: NodeId,
        order: &mut Vec<JobId>,
    ) -> bool {
        // Skip the O(jobs x tasks) size estimation entirely when this node
        // has nothing to hand out — the common case at cluster scale.
        let Some(view) = ctx.node(node) else {
            return false;
        };
        if view.free_map_slots == 0 && view.free_reduce_slots == 0 {
            return false;
        }
        let bucket = ctx.now.as_micros() / 1_000_000;
        if self.stamp == Some(bucket) {
            return true;
        }
        self.stamp = Some(bucket);
        self.scratch.clear();
        self.scratch.extend(
            ctx.jobs
                .iter()
                .filter(|(_, j)| !j.is_finished())
                // Fully-launched jobs have nothing for `fill_node` to hand
                // out; dropping them keeps the fill loop proportional to
                // jobs with actual pending work (see the legacy HFSP notes).
                .filter(|(_, j)| j.schedulable_count() > 0 || j.suspended_count > 0)
                .map(|(id, j)| (remaining_size(j), *id)),
        );
        self.scratch.sort_unstable();
        order.clear();
        order.extend(self.scratch.iter().map(|(_, id)| *id));
        true
    }

    fn job_submitted(&mut self, _job: JobId) {
        self.stamp = None; // a new job invalidates the cached order
    }

    fn job_finished(&mut self, _job: JobId) {
        self.stamp = None; // a finished job invalidates the cached order
    }
}

/// DRF's job-ordering plugin: jobs of the tenant with the lowest dominant
/// share first (ties by submission order), best-effort jobs excluded — they
/// only launch through [`Backfill`]. Also the pipeline stage that feeds the
/// shared [`TenantLedger`] its usage observations.
pub struct DrfJobOrder {
    ledger: Rc<RefCell<TenantLedger>>,
    scratch: Vec<(u64, SimTime, JobId)>,
    /// Virtual second of the cached order and ledger observation. Shares
    /// and quota drift move on task timescales, so one refresh per
    /// simulated second bounds the O(jobs) scans the way the HFSP order
    /// cache bounds sorts — and keeps the per-heartbeat cost flat.
    stamp: Option<u64>,
    /// Membership changed since the cache was built (job arrived or
    /// finished): refresh immediately instead of waiting out the second.
    dirty: bool,
}

impl DrfJobOrder {
    /// Creates the plugin around a shared ledger.
    pub fn new(ledger: Rc<RefCell<TenantLedger>>) -> Self {
        DrfJobOrder {
            ledger,
            scratch: Vec::new(),
            stamp: None,
            dirty: false,
        }
    }
}

impl JobOrder for DrfJobOrder {
    fn refresh(
        &mut self,
        ctx: &SchedulerContext<'_>,
        node: NodeId,
        order: &mut Vec<JobId>,
    ) -> bool {
        // Refresh policy, two cadences. A heartbeat that can actually hand
        // out capacity (free slots, or suspended work to resume here) gets
        // a *fresh* observation and order: launching on stale shares sends
        // every freed slot to a head tenant that may already be back at
        // quota, which Reclaim then has to undo — a suspend/resume churn
        // cycle per slot. Saturated heartbeats can do nothing, so they only
        // keep the ledger current once per simulated second for Reclaim
        // (running after Allocate on that same cadence) and for the
        // time-integrated share statistics.
        // "Can place" mirrors `fill_node`'s own early-exit: a free slot
        // only counts when pending work of its kind exists somewhere (the
        // always-free reduce slots of a map-only workload must not defeat
        // the cache).
        let can_place = ctx.node(node).is_some_and(|view| {
            view.free_map_slots > 0
                && (ctx.totals.schedulable_maps > 0
                    || ctx.speculation.enabled
                    || view.suspended.iter().any(|t| t.kind == TaskKind::Map))
                || view.free_reduce_slots > 0
                    && (ctx.totals.schedulable_reduces > 0
                        || view.suspended.iter().any(|t| t.kind == TaskKind::Reduce))
        });
        let bucket = ctx.now.as_micros() / 1_000_000;
        if !can_place && self.stamp == Some(bucket) && !self.dirty {
            return false;
        }
        self.stamp = Some(bucket);
        self.dirty = false;
        let mut ledger = self.ledger.borrow_mut();
        // Piecewise-constant integration at every refresh keeps the
        // ledger's time-weighted shares accurate to the refresh cadence.
        ledger.observe(ctx);
        if !can_place {
            // The order is only consumed by `fill_node`, which this
            // heartbeat cannot use; the next placing heartbeat rebuilds it.
            return false;
        }
        self.scratch.clear();
        for j in ctx.jobs.values() {
            if j.is_finished() || j.spec.best_effort {
                continue;
            }
            if j.schedulable_count() == 0 && j.suspended_count == 0 {
                continue;
            }
            let tenant = ledger.tenant_of(j.spec.tenant);
            // Weighted DRF: rank by dominant share *relative to quota*, so
            // free capacity fills tenants proportionally to their weights
            // instead of equalizing raw shares (progressive filling of
            // s_i / w_i). Fixed-point key keeps the sort total and
            // deterministic.
            let share_key = (ledger.dominant_share(tenant) / ledger.quota(tenant) * 1e9) as u64;
            self.scratch.push((share_key, j.submitted_at, j.id));
        }
        self.scratch.sort_unstable();
        order.clear();
        order.extend(self.scratch.iter().map(|(_, _, id)| *id));
        true
    }

    fn job_submitted(&mut self, _job: JobId) {
        self.dirty = true; // new demand must be visible to this round
    }

    fn job_finished(&mut self, _job: JobId) {
        self.dirty = true; // freed share should reorder tenants promptly
    }
}

enum AllocateStrategy {
    /// The engine's FIFO policy verbatim: one global task order, filled
    /// locality tier by locality tier.
    LocalityMajor(FifoScheduler),
    /// Job-major fill: a [`JobOrder`] plugin ranks jobs, `fill_node` serves
    /// them rack-aware (resume-first, delay- and reliability-gated).
    JobMajor {
        job_order: JobOrderFn,
        order: Vec<JobId>,
        locality: LocalityIndex,
    },
}

/// The `allocate` action: fills a heartbeating node's free slots with
/// pending (or suspended) work.
pub struct Allocate {
    strategy: AllocateStrategy,
}

impl Allocate {
    /// FIFO's allocation strategy: one global (priority, submission) task
    /// order, served locality tier by locality tier.
    pub fn locality_major() -> Self {
        Allocate {
            strategy: AllocateStrategy::LocalityMajor(FifoScheduler::new()),
        }
    }

    /// Job-major allocation parameterized by a job-ordering plugin (FAIR,
    /// HFSP and DRF all use this strategy with different orders).
    pub fn job_major(job_order: JobOrderFn) -> Self {
        Allocate {
            strategy: AllocateStrategy::JobMajor {
                job_order,
                order: Vec::new(),
                locality: LocalityIndex::default(),
            },
        }
    }
}

impl Action for Allocate {
    fn name(&self) -> &'static str {
        "allocate"
    }

    fn on_heartbeat(
        &mut self,
        ctx: &SchedulerContext<'_>,
        node: NodeId,
        out: &mut Vec<SchedulerAction>,
    ) {
        match &mut self.strategy {
            AllocateStrategy::LocalityMajor(fifo) => out.extend(fifo.on_heartbeat(ctx, node)),
            AllocateStrategy::JobMajor {
                job_order,
                order,
                locality,
            } => {
                if job_order.refresh(ctx, node, order) {
                    out.extend(fill_node(ctx, node, order, locality));
                }
            }
        }
    }

    fn on_job_submitted(
        &mut self,
        _ctx: &SchedulerContext<'_>,
        job: JobId,
        _out: &mut Vec<SchedulerAction>,
    ) {
        if let AllocateStrategy::JobMajor { job_order, .. } = &mut self.strategy {
            job_order.job_submitted(job);
        }
    }

    fn on_job_finished(&mut self, _ctx: &SchedulerContext<'_>, job: JobId) {
        if let AllocateStrategy::JobMajor {
            job_order,
            locality,
            ..
        } = &mut self.strategy
        {
            job_order.job_finished(job);
            locality.forget(job);
        }
    }
}

enum PreemptTrigger {
    /// FAIR's starvation deficit: preempt when a job has sat below its fair
    /// share past the timeout.
    FairShare {
        total_map_slots: usize,
        timeout: SimDuration,
        starved_since: HashMap<JobId, SimTime>,
    },
    /// HFSP's arrival trigger: preempt larger running jobs the moment a
    /// smaller job arrives and free slots cannot cover its demand.
    SizeOnSubmit,
}

/// The `preempt` action: evicts running tasks of other jobs through the
/// configured [`PreemptionPrimitive`], victims enumerated by a
/// [`PreemptableSetFn`] and chosen by a [`TaskOrderFn`].
pub struct Preempt {
    primitive: PreemptionPrimitive,
    preemptable: PreemptableSetFn,
    select: TaskOrderFn,
    trigger: PreemptTrigger,
}

impl Preempt {
    /// FAIR's preemption: deficit-triggered, victims from over-share jobs.
    /// Seeded like the legacy `FairScheduler` so victim streams match.
    pub fn fair_share(
        primitive: PreemptionPrimitive,
        eviction: EvictionPolicy,
        total_map_slots: usize,
        timeout: SimDuration,
    ) -> Self {
        Preempt {
            primitive,
            preemptable: running_tasks_preemptable(),
            select: eviction_select(eviction, 0xFA1),
            trigger: PreemptTrigger::FairShare {
                total_map_slots: total_map_slots.max(1),
                timeout,
                starved_since: HashMap::new(),
            },
        }
    }

    /// HFSP's preemption: arrival-triggered, victims from strictly larger
    /// jobs. Seeded like the legacy `HfspScheduler`.
    pub fn size_on_submit(primitive: PreemptionPrimitive, eviction: EvictionPolicy) -> Self {
        Preempt {
            primitive,
            preemptable: running_tasks_preemptable(),
            select: eviction_select(eviction, 0x45F5),
            trigger: PreemptTrigger::SizeOnSubmit,
        }
    }

    /// Picks up to `take` victims of `job` and appends their evictions,
    /// returning how many were actually claimed.
    fn evict_from(
        &mut self,
        ctx: &SchedulerContext<'_>,
        job: JobId,
        take: usize,
        out: &mut Vec<SchedulerAction>,
    ) -> usize {
        let candidates = (self.preemptable)(ctx, job);
        let victims = (self.select)(ctx, &candidates, take);
        let mut claimed = 0;
        for v in victims {
            if let Some(a) = self.primitive.preempt_action(v) {
                out.push(a);
                claimed += 1;
            }
        }
        claimed
    }
}

impl Action for Preempt {
    fn name(&self) -> &'static str {
        "preempt"
    }

    fn on_heartbeat(
        &mut self,
        ctx: &SchedulerContext<'_>,
        _node: NodeId,
        out: &mut Vec<SchedulerAction>,
    ) {
        let PreemptTrigger::FairShare {
            total_map_slots,
            timeout,
            ..
        } = &self.trigger
        else {
            return;
        };
        let (total_map_slots, timeout) = (*total_map_slots, *timeout);
        // Deficit tracking is O(1) per job via the engine-maintained
        // counters: no task-list scans, no candidate Vecs until a victim
        // job is actually chosen.
        let incomplete = ctx.jobs.values().filter(|j| !j.is_finished()).count();
        let share = total_map_slots
            .checked_div(incomplete)
            .map_or(total_map_slots, |s| s.max(1));

        // Track starvation times and find jobs with a legitimate claim. A
        // job voluntarily declining slots under delay scheduling
        // (`delay_gated`) has no claim: preempting victims to free slots it
        // would decline again is pure churn, and its bounded wait ends (by
        // local launch or escalation) within the configured delay.
        let mut claims: usize = 0;
        for job in ctx.jobs.values().filter(|j| !j.is_finished()) {
            let wants_more =
                job.suspended_count > 0 || (job.schedulable_count() > 0 && !ctx.delay_gated(job));
            let running = job.occupying_count as usize;
            let starving = wants_more && running < share;
            let PreemptTrigger::FairShare { starved_since, .. } = &mut self.trigger else {
                unreachable!("checked above");
            };
            if starving {
                let since = *starved_since.entry(job.id).or_insert(ctx.now);
                if ctx.now - since >= timeout {
                    claims += share - running;
                }
            } else {
                starved_since.remove(&job.id);
            }
        }
        // No-deficit early return: nothing has starved past the timeout, so
        // the (allocating, sorting) victim-selection phase never runs.
        if claims == 0 {
            return;
        }

        // Victims come from jobs above their share, most-over-share first.
        let mut over_share: Vec<(u32, JobId)> = ctx
            .jobs
            .values()
            .filter(|j| !j.is_finished())
            .filter(|j| j.occupying_count as usize > share)
            .map(|j| (j.occupying_count, j.id))
            .collect();
        over_share.sort_by_key(|(occupying, _)| std::cmp::Reverse(*occupying));
        for (occupying, job) in over_share {
            if claims == 0 {
                break;
            }
            let surplus = occupying as usize - share;
            let take = surplus.min(claims);
            claims = claims.saturating_sub(self.evict_from(ctx, job, take, out));
        }
    }

    fn on_job_submitted(
        &mut self,
        ctx: &SchedulerContext<'_>,
        job: JobId,
        out: &mut Vec<SchedulerAction>,
    ) {
        if !matches!(self.trigger, PreemptTrigger::SizeOnSubmit) {
            return;
        }
        let Some(new_job) = ctx.jobs.get(&job) else {
            return;
        };
        // Demand is the job's *map* demand: it is compared against free map
        // slots and satisfied by preempting map tasks below.
        let new_demand = new_job.schedulable_maps as usize;
        if new_demand == 0 {
            return;
        }
        // Cluster-wide capacity from the engine-maintained per-rack
        // counters: O(racks) per arrival.
        let free_slots = ctx.free_map_slots_total();
        if free_slots as usize >= new_demand {
            return;
        }
        let new_size = remaining_size(new_job);
        // Preempt tasks of strictly larger running jobs, largest first,
        // until the new job's demand could be satisfied. The O(1)
        // occupying-count filter runs before the O(tasks) size estimate.
        let mut needed = new_demand - free_slots as usize;
        let mut larger: Vec<(u64, JobId)> = ctx
            .jobs
            .values()
            .filter(|j| j.id != job && !j.is_finished())
            .filter(|j| j.occupying_count > 0)
            .map(|j| (remaining_size(j), j.id))
            .filter(|(size, _)| *size > new_size)
            .collect();
        larger.sort_by_key(|(size, _)| std::cmp::Reverse(*size));
        for (_, victim_job) in larger {
            if needed == 0 {
                break;
            }
            needed = needed.saturating_sub(self.evict_from(ctx, victim_job, needed, out));
        }
    }
}

/// The `reclaim` action: pulls tenants back toward their DRF quotas. Once
/// per simulated second it compares each tenant's slot usage against its
/// quota entitlement; when starved tenants' claims cannot be covered by
/// free slots, it evicts — best-effort jobs first, then the most over-quota
/// tenants (lowest-priority jobs first within a tenant) — through the
/// configured primitive. With `SuspendResume` that is the paper's
/// OS-assisted preemption (no work lost); with `Kill` it is the classic
/// Hadoop reclaim the paper argues against.
pub struct Reclaim {
    ledger: Rc<RefCell<TenantLedger>>,
    primitive: PreemptionPrimitive,
    select: TaskOrderFn,
    stamp: Option<u64>,
}

impl Reclaim {
    /// Creates the action around the pipeline's shared ledger.
    pub fn new(
        ledger: Rc<RefCell<TenantLedger>>,
        primitive: PreemptionPrimitive,
        select: TaskOrderFn,
    ) -> Self {
        Reclaim {
            ledger,
            primitive,
            select,
            stamp: None,
        }
    }

    /// Running tasks of `job` of the given kind, as preemptable candidates.
    fn candidates_of_kind(job: &JobRuntime, kind: TaskKind) -> Vec<PreemptableTask> {
        candidates_of(job)
            .into_iter()
            .filter(|c| c.task.kind == kind)
            .map(|c| PreemptableTask {
                task: c.task,
                progress: c.progress,
                memory_bytes: c.memory_bytes,
            })
            .collect()
    }
}

impl Action for Reclaim {
    fn name(&self) -> &'static str {
        "reclaim"
    }

    fn on_heartbeat(
        &mut self,
        ctx: &SchedulerContext<'_>,
        _node: NodeId,
        out: &mut Vec<SchedulerAction>,
    ) {
        // Quota drift moves on task timescales; once per simulated second
        // bounds eviction churn the way the HFSP order cache bounds sorts.
        let bucket = ctx.now.as_micros() / 1_000_000;
        if self.stamp == Some(bucket) {
            return;
        }
        self.stamp = Some(bucket);

        let ledger = self.ledger.clone();
        let ledger = ledger.borrow();
        for kind in [TaskKind::Map, TaskKind::Reduce] {
            // What quota entitles starved tenants to right now.
            let mut claims = 0usize;
            for t in 0..ledger.tenants() {
                let (usage, quota, demand) = match kind {
                    TaskKind::Map => (
                        ledger.usage_maps(t),
                        ledger.quota_map_slots(t),
                        ledger.demand_maps(t),
                    ),
                    TaskKind::Reduce => (
                        ledger.usage_reduces(t),
                        ledger.quota_reduce_slots(t),
                        ledger.demand_reduces(t),
                    ),
                };
                if demand > 0 && usage < quota {
                    claims += (quota - usage).min(demand) as usize;
                }
            }
            // Free slots serve claims without eviction.
            let free = match kind {
                TaskKind::Map => ctx.free_map_slots_total(),
                TaskKind::Reduce => ctx.free_reduce_slots_total(),
            };
            let mut claims = claims.saturating_sub(free as usize);
            if claims == 0 {
                continue;
            }

            // Best-effort jobs yield first: they run on borrowed capacity.
            for job in ctx.jobs.values() {
                if claims == 0 {
                    break;
                }
                if !job.spec.best_effort || job.is_finished() || job.occupying_count == 0 {
                    continue;
                }
                let candidates = Reclaim::candidates_of_kind(job, kind);
                if candidates.is_empty() {
                    continue;
                }
                for v in (self.select)(ctx, &candidates, claims) {
                    if let Some(a) = self.primitive.preempt_action(v) {
                        out.push(a);
                        claims = claims.saturating_sub(1);
                    }
                }
            }
            if claims == 0 {
                continue;
            }

            // Then over-quota tenants, most over first — capped at their
            // excess so reclaim never pushes a tenant *below* quota.
            let mut over: Vec<(u32, usize)> = (0..ledger.tenants())
                .filter_map(|t| {
                    let (usage, quota) = match kind {
                        TaskKind::Map => (ledger.usage_maps(t), ledger.quota_map_slots(t)),
                        TaskKind::Reduce => (ledger.usage_reduces(t), ledger.quota_reduce_slots(t)),
                    };
                    (usage > quota).then(|| (usage - quota, t))
                })
                .collect();
            over.sort_by_key(|(excess, t)| (std::cmp::Reverse(*excess), *t));
            for (excess, tenant) in over {
                if claims == 0 {
                    break;
                }
                let mut budget = (excess as usize).min(claims);
                // Lowest-priority, youngest jobs of the tenant yield first
                // (priority classes: a tenant's high-priority work is
                // reclaimed last).
                let mut jobs: Vec<(i32, std::cmp::Reverse<JobId>, JobId)> = ctx
                    .jobs
                    .values()
                    .filter(|j| {
                        !j.is_finished()
                            && !j.spec.best_effort
                            && ledger.tenant_of(j.spec.tenant) == tenant
                            && j.occupying_count > 0
                    })
                    .map(|j| (j.spec.priority, std::cmp::Reverse(j.id), j.id))
                    .collect();
                jobs.sort_unstable();
                for (_, _, job_id) in jobs {
                    if budget == 0 {
                        break;
                    }
                    let Some(job) = ctx.jobs.get(&job_id) else {
                        continue;
                    };
                    let candidates = Reclaim::candidates_of_kind(job, kind);
                    if candidates.is_empty() {
                        continue;
                    }
                    for v in (self.select)(ctx, &candidates, budget) {
                        if let Some(a) = self.primitive.preempt_action(v) {
                            out.push(a);
                            budget -= 1;
                            claims = claims.saturating_sub(1);
                        }
                    }
                }
            }
        }
    }
}

/// The `backfill` action: launches best-effort (scavenger-class) jobs into
/// whatever capacity is left after the actions before it — including slots
/// freed by suspension, the paper's key enabler: a suspended task's memory
/// pages out, its slot backfills, and no work is lost when the suspension
/// ends. Resumes its own suspended tasks first, scores candidate placements
/// through a [`NodeScoreFn`] (negative vetoes the node), and respects the
/// engine's placement vetoes for fresh launches.
pub struct Backfill {
    score: NodeScoreFn,
    /// Live best-effort jobs in submission order, maintained through the
    /// submit/finish hooks: a backfill round visits exactly these instead
    /// of scanning the whole job table, and a heartbeat with no scavenger
    /// work costs O(1).
    best_effort_alive: Vec<JobId>,
}

impl Backfill {
    /// Backfill with a node-scoring plugin.
    pub fn new(score: NodeScoreFn) -> Self {
        Backfill {
            score,
            best_effort_alive: Vec::new(),
        }
    }

    /// Backfill that scores every node equally (placement governed solely
    /// by the engine's vetoes).
    pub fn any_node() -> Self {
        Backfill::new(Box::new(|_, _, _| 0))
    }
}

impl Action for Backfill {
    fn name(&self) -> &'static str {
        "backfill"
    }

    fn on_heartbeat(
        &mut self,
        ctx: &SchedulerContext<'_>,
        node: NodeId,
        out: &mut Vec<SchedulerAction>,
    ) {
        if self.best_effort_alive.is_empty() {
            return;
        }
        let Some(view) = ctx.node(node) else {
            return;
        };
        // Slots the actions before us already claimed this round (actions
        // apply only after the whole round returns, so the view alone
        // over-counts).
        let mut free_map = view.free_map_slots as usize;
        let mut free_reduce = view.free_reduce_slots as usize;
        for a in out.iter() {
            let claimed_kind = match a {
                SchedulerAction::Launch { task, node: n }
                | SchedulerAction::LaunchSpeculative { task, node: n } => {
                    (*n == node).then_some(task.kind)
                }
                SchedulerAction::Resume { task } => ctx
                    .task(*task)
                    .filter(|t| t.node == Some(node))
                    .map(|t| t.id.kind),
                _ => None,
            };
            match claimed_kind {
                Some(TaskKind::Map) => free_map = free_map.saturating_sub(1),
                Some(TaskKind::Reduce) => free_reduce = free_reduce.saturating_sub(1),
                None => {}
            }
        }
        if free_map == 0 && free_reduce == 0 {
            return;
        }

        for job_id in &self.best_effort_alive {
            if free_map == 0 && free_reduce == 0 {
                break;
            }
            let Some(job) = ctx.jobs.get(job_id) else {
                continue;
            };
            if job.is_finished() {
                continue;
            }
            // O(1) skip on the engine-maintained counters: task lists are
            // only walked when a slot of a kind this job can use is free.
            let can_launch = (free_map > 0 && job.schedulable_maps > 0)
                || (free_reduce > 0 && job.schedulable_reduces > 0);
            if !can_launch && job.suspended_count == 0 {
                continue;
            }
            if (self.score)(ctx, job.id, node) < 0 {
                continue;
            }
            // Resume-first: this node already holds the suspended task's
            // paged-out state.
            if job.suspended_count > 0 {
                for t in &job.tasks {
                    let free = match t.id.kind {
                        TaskKind::Map => &mut free_map,
                        TaskKind::Reduce => &mut free_reduce,
                    };
                    if *free == 0 {
                        continue;
                    }
                    if t.state == TaskState::Suspended && t.node == Some(node) {
                        out.push(SchedulerAction::Resume { task: t.id });
                        *free -= 1;
                    }
                }
            }
            if job.schedulable_count() > 0 {
                for t in &job.tasks {
                    if !t.state.is_schedulable() {
                        continue;
                    }
                    let kind = t.id.kind;
                    let free = match kind {
                        TaskKind::Map => &mut free_map,
                        TaskKind::Reduce => &mut free_reduce,
                    };
                    if *free == 0 {
                        continue;
                    }
                    if ctx.reliability_avoid(node, kind) {
                        continue;
                    }
                    out.push(SchedulerAction::Launch { task: t.id, node });
                    *free -= 1;
                }
            }
        }
    }

    fn on_job_submitted(
        &mut self,
        ctx: &SchedulerContext<'_>,
        job: JobId,
        _out: &mut Vec<SchedulerAction>,
    ) {
        if ctx.jobs.get(&job).is_some_and(|j| j.spec.best_effort) {
            self.best_effort_alive.push(job);
        }
    }

    fn on_job_finished(&mut self, _ctx: &SchedulerContext<'_>, job: JobId) {
        self.best_effort_alive.retain(|id| *id != job);
    }
}

/// Configuration of the multi-tenant bundle
/// ([`ActionPipeline::multi_tenant`]).
pub struct MultiTenantConfig {
    /// Per-tenant weights; quota is `weight / Σ weights`.
    pub weights: Vec<f64>,
    /// Map slots in the cluster (DRF denominator).
    pub total_map_slots: u32,
    /// Reduce slots in the cluster (DRF denominator).
    pub total_reduce_slots: u32,
    /// Warm-up horizon excluded from the ledger's steady-state statistics.
    pub steady_after: SimTime,
    /// How reclaim evicts: `Kill` (work lost) or `SuspendResume` (the
    /// paper's OS-assisted primitive, work preserved).
    pub primitive: PreemptionPrimitive,
    /// Victim selection within a job.
    pub eviction: EvictionPolicy,
}

/// A [`SchedulerPolicy`] that is a composition of [`Action`]s dispatched in
/// order over the same immutable context, their outputs concatenated.
pub struct ActionPipeline {
    label: &'static str,
    actions: Vec<Box<dyn Action>>,
}

impl ActionPipeline {
    /// Composes a pipeline from actions, dispatched in the given order.
    pub fn new(label: &'static str, actions: Vec<Box<dyn Action>>) -> Self {
        ActionPipeline { label, actions }
    }

    /// FIFO as a plugin bundle: a single locality-major [`Allocate`].
    /// Byte-identical to [`FifoScheduler`] (it *is* the same code).
    pub fn fifo() -> Self {
        ActionPipeline::new("fifo", vec![Box::new(Allocate::locality_major())])
    }

    /// FAIR as a plugin bundle: job-major [`Allocate`] under
    /// [`FairJobOrder`], then deficit-triggered [`Preempt`]. Byte-identical
    /// to the legacy `FairScheduler` (which now wraps this).
    pub fn fair(
        primitive: PreemptionPrimitive,
        eviction: EvictionPolicy,
        total_map_slots: usize,
        preemption_timeout: SimDuration,
    ) -> Self {
        ActionPipeline::new(
            "fair",
            vec![
                Box::new(Allocate::job_major(Box::new(FairJobOrder::default()))),
                Box::new(Preempt::fair_share(
                    primitive,
                    eviction,
                    total_map_slots,
                    preemption_timeout,
                )),
            ],
        )
    }

    /// HFSP as a plugin bundle: job-major [`Allocate`] under
    /// [`HfspJobOrder`], then arrival-triggered [`Preempt`]. Byte-identical
    /// to the legacy `HfspScheduler` (which now wraps this).
    pub fn hfsp(primitive: PreemptionPrimitive, eviction: EvictionPolicy) -> Self {
        ActionPipeline::new(
            "hfsp",
            vec![
                Box::new(Allocate::job_major(Box::new(HfspJobOrder::default()))),
                Box::new(Preempt::size_on_submit(primitive, eviction)),
            ],
        )
    }

    /// The multi-tenant bundle: DRF [`Allocate`], quota [`Reclaim`] (kill
    /// or suspend — the paper's trade-off as a knob), and best-effort
    /// [`Backfill`]. Returns the pipeline plus the shared [`TenantLedger`]
    /// for end-of-run share statistics.
    pub fn multi_tenant(config: MultiTenantConfig) -> (Self, Rc<RefCell<TenantLedger>>) {
        let ledger = Rc::new(RefCell::new(TenantLedger::new(
            config.weights,
            config.total_map_slots,
            config.total_reduce_slots,
            config.steady_after,
        )));
        let pipeline = ActionPipeline::new(
            "multi_tenant",
            vec![
                Box::new(Allocate::job_major(Box::new(DrfJobOrder::new(
                    ledger.clone(),
                )))),
                Box::new(Reclaim::new(
                    ledger.clone(),
                    config.primitive,
                    eviction_select(config.eviction, 0xD2F),
                )),
                Box::new(Backfill::any_node()),
            ],
        );
        (pipeline, ledger)
    }
}

impl SchedulerPolicy for ActionPipeline {
    fn on_heartbeat(&mut self, ctx: &SchedulerContext<'_>, node: NodeId) -> Vec<SchedulerAction> {
        let mut out = Vec::new();
        for action in &mut self.actions {
            action.on_heartbeat(ctx, node, &mut out);
        }
        out
    }

    fn on_job_submitted(&mut self, ctx: &SchedulerContext<'_>, job: JobId) -> Vec<SchedulerAction> {
        let mut out = Vec::new();
        for action in &mut self.actions {
            action.on_job_submitted(ctx, job, &mut out);
        }
        out
    }

    fn on_job_finished(&mut self, ctx: &SchedulerContext<'_>, job: JobId) -> Vec<SchedulerAction> {
        for action in &mut self.actions {
            action.on_job_finished(ctx, job);
        }
        Vec::new()
    }

    fn on_task_finished(
        &mut self,
        _ctx: &SchedulerContext<'_>,
        _task: TaskId,
    ) -> Vec<SchedulerAction> {
        Vec::new()
    }

    fn name(&self) -> &str {
        self.label
    }
}
