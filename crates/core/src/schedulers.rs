//! Preemptive job schedulers built on top of the preemption primitives.
//!
//! The paper motivates the primitive with three scheduler families
//! (Section II): fairness schedulers (Hadoop FAIR/Capacity), deadline
//! schedulers, and size-based schedulers such as the authors' own HFSP. This
//! module provides working preemptive implementations of a FAIR-style
//! scheduler and an HFSP-style size-based scheduler, both parameterised by
//! the [`PreemptionPrimitive`] and the [`EvictionPolicy`], so the ablation
//! benches can measure how the choice of primitive affects realistic
//! scheduling policies rather than only the paper's two-job scenario.

use crate::eviction::{EvictionCandidate, EvictionPolicy};
use crate::pipeline::ActionPipeline;
use crate::primitive::PreemptionPrimitive;
use mrp_engine::{
    JobId, JobRuntime, Locality, NodeId, SchedulerAction, SchedulerContext, SchedulerPolicy,
    TaskKind, TaskState,
};
use mrp_sim::SimDuration;
use std::collections::HashMap;

const BASE_TASK_FOOTPRINT: u64 = 192 * 1024 * 1024;

pub(crate) fn candidates_of(job: &JobRuntime) -> Vec<EvictionCandidate> {
    job.tasks
        .iter()
        .filter(|t| t.state == TaskState::Running)
        .map(|t| EvictionCandidate {
            task: t.id,
            progress: t.progress,
            memory_bytes: job.spec.profile.state_memory + BASE_TASK_FOOTPRINT,
        })
        .collect()
}

/// A lazily-consumed list of candidate task positions (indices into
/// `JobRuntime::tasks`). Entries are skipped — and permanently consumed — when
/// their task is no longer schedulable by the time the cursor reaches them,
/// so each entry is visited at most once over the job's lifetime.
#[derive(Default)]
struct PendingList {
    items: Vec<u32>,
    cursor: usize,
}

impl PendingList {
    /// Next entry whose task is still schedulable and not already chosen in
    /// this round (a task picked from the node list may also sit on the rack
    /// list; the context's task states only change once the round's actions
    /// are applied, so the guard prevents double-launching).
    fn next_schedulable(&mut self, job: &JobRuntime, chosen: &[usize]) -> Option<usize> {
        while self.cursor < self.items.len() {
            let pos = self.items[self.cursor] as usize;
            self.cursor += 1;
            if chosen.contains(&pos) {
                continue;
            }
            if job.tasks.get(pos).is_some_and(|t| t.state.is_schedulable()) {
                return Some(pos);
            }
        }
        None
    }
}

/// Per-job rack-aware pending-task index, in the spirit of Hadoop's
/// `JobInProgress` non-running task caches: for every replica-holding node
/// (and its rack) a list of pending map tasks, plus a cursor for the
/// any-locality fallback scan. This is what keeps a free-slot heartbeat
/// O(launches) instead of O(job tasks): without it, every launch on a
/// 1000-task job re-scanned the whole task list per locality tier.
///
/// The lists are consume-once (see [`PendingList`]): a task killed after its
/// entry was consumed is simply no longer found *locally* — the fallback
/// scan, which rewinds when the job still reports schedulable work that the
/// cursor cannot see, guarantees it is found at all. Determinism holds
/// because the maps are only ever indexed by key, never iterated.
#[derive(Default)]
struct JobIndex {
    /// node id -> pending map tasks with a replica on that node.
    by_node: HashMap<u32, PendingList>,
    /// rack id -> pending map tasks with a replica in that rack.
    by_rack: HashMap<u32, PendingList>,
    /// Bit per node id: set while `by_node` *may* still hold unconsumed
    /// entries for that node, cleared once the node's list is exhausted. A
    /// delay-scheduling round visits many jobs that have nothing local on
    /// the heartbeating node; the bit test answers that in a dense read
    /// instead of a (SipHash) map lookup per job per heartbeat.
    node_bits: Vec<u64>,
    /// Same for rack ids over `by_rack`.
    rack_bits: Vec<u64>,
    /// First position of `tasks` that may still be schedulable; only ever
    /// advanced past non-schedulable tasks (and rewound after kills).
    cursor: usize,
}

#[inline]
fn test_bit(bits: &[u64], key: u32) -> bool {
    bits.get((key / 64) as usize)
        .is_some_and(|w| w & (1u64 << (key % 64)) != 0)
}

#[inline]
fn clear_bit(bits: &mut [u64], key: u32) {
    if let Some(w) = bits.get_mut((key / 64) as usize) {
        *w &= !(1u64 << (key % 64));
    }
}

fn bitset_of(keys: impl Iterator<Item = u32> + Clone) -> Vec<u64> {
    let max = keys.clone().max().map(|m| m as usize + 1).unwrap_or(0);
    let mut bits = vec![0u64; max.div_ceil(64)];
    for key in keys {
        bits[(key / 64) as usize] |= 1u64 << (key % 64);
    }
    bits
}

impl JobIndex {
    fn build(job: &JobRuntime, ctx: &SchedulerContext<'_>) -> Self {
        let mut index = JobIndex::default();
        let mut racks_seen: Vec<u32> = Vec::with_capacity(4);
        for (pos, t) in job.tasks.iter().enumerate() {
            racks_seen.clear();
            for holder in &t.preferred_nodes {
                index
                    .by_node
                    .entry(holder.0)
                    .or_default()
                    .items
                    .push(pos as u32);
                if let Some(rack) = ctx.topology.rack_of(*holder) {
                    if !racks_seen.contains(&rack.0) {
                        racks_seen.push(rack.0);
                        index
                            .by_rack
                            .entry(rack.0)
                            .or_default()
                            .items
                            .push(pos as u32);
                    }
                }
            }
        }
        index.node_bits = bitset_of(index.by_node.keys().copied());
        index.rack_bits = bitset_of(index.by_rack.keys().copied());
        index
    }
}

/// The per-job indices of one scheduler instance, built lazily per job and
/// dropped when the job finishes. Job ids are dense (sequential from 1), so
/// the table is a `Vec` indexed by `id - 1` — the per-job lookup on the
/// fill-loop hot path is a bounds check, not a hash.
#[derive(Default)]
pub(crate) struct LocalityIndex {
    jobs: Vec<Option<JobIndex>>,
    /// Reusable per-round buffer of task positions already chosen for launch
    /// from the current job (guards against double-launching a task that
    /// appears on several candidate lists).
    chosen: Vec<usize>,
    /// Reusable per-round buffer of speculative-launch candidates.
    spec_buf: Vec<mrp_engine::TaskId>,
    /// Simulated second of the last speculation scan. The O(tail-job tasks)
    /// straggler scan runs at most once per simulated second cluster-wide:
    /// straggler rates move on task timescales, while free-slot heartbeats
    /// arrive hundreds of times per second at cluster scale.
    spec_stamp: Option<u64>,
}

impl LocalityIndex {
    pub(crate) fn forget(&mut self, job: JobId) {
        if let Some(slot) = self.jobs.get_mut((job.0 as usize).wrapping_sub(1)) {
            *slot = None;
        }
    }

    /// The job's index, built on first touch.
    fn entry(&mut self, job: &JobRuntime, ctx: &SchedulerContext<'_>) -> &mut JobIndex {
        let idx = (job.id.0 as usize).saturating_sub(1);
        if idx >= self.jobs.len() {
            self.jobs.resize_with(idx + 1, || None);
        }
        self.jobs[idx].get_or_insert_with(|| JobIndex::build(job, ctx))
    }
}

/// Launches (and resumes) the tasks of jobs in the order produced by
/// `ordered_jobs`, filling free slots on `node`. Fresh launches are handed
/// out rack-aware — node-local tasks first, then rack-local, then anything —
/// via the per-job [`LocalityIndex`].
///
/// With delay scheduling enabled (`ClusterConfig::delay`), a job whose
/// allowed locality level has not yet escalated *declines* the non-local
/// tiers: its rack list is left untouched and the fallback scan skips the
/// map region, the declined opportunity is recorded (which starts/continues
/// the job's wait clock), and the loop moves on so the next job in policy
/// order can use the slot. Jobs whose tasks have no placement preference are
/// never restricted, and reduces always launch anywhere. Liveness holds
/// because the allowed level is a pure function of elapsed wait: every
/// declining job reaches `OffRack` within the configured waits, even when
/// all its replica holders are dead.
pub(crate) fn fill_node(
    ctx: &SchedulerContext<'_>,
    node: NodeId,
    ordered_jobs: &[JobId],
    index: &mut LocalityIndex,
) -> Vec<SchedulerAction> {
    let Some(view) = ctx.node(node) else {
        return Vec::new();
    };
    // Hot-path early exit, O(1) via the engine-maintained cluster totals:
    // skip everything when this node's free slots provably cannot be used —
    // no pending work of a matching kind exists anywhere and nothing is
    // suspended *on this node*. At 10k-node scale the overwhelming majority
    // of heartbeats hit this case (e.g. the always-free reduce slot of a
    // map-only workload).
    let any_slot_free = view.free_map_slots > 0 || view.free_reduce_slots > 0;
    let mut maps_unclaimed = ctx.totals.schedulable_maps;
    let mut reduces_unclaimed = ctx.totals.schedulable_reduces;
    let can_launch_map = view.free_map_slots > 0 && maps_unclaimed > 0;
    let can_launch_reduce = view.free_reduce_slots > 0 && reduces_unclaimed > 0;
    let can_resume = any_slot_free && !view.suspended.is_empty();
    // Speculation (when enabled) inspects only tail-phase jobs, and only
    // when this node still has a free map slot after regular assignment —
    // Hadoop's trigger: a slot nothing pending can use.
    let can_speculate = ctx.speculation.enabled && view.free_map_slots > 0;
    if !can_launch_map && !can_launch_reduce && !can_resume && !can_speculate {
        return Vec::new();
    }
    let rack = ctx.topology.rack_of(node);
    let delay_on = ctx.delay_enabled();
    // Failure-aware placement: while this node's failure history marks it
    // flaky *and* capacity exists elsewhere, withhold fresh launches (and
    // speculative backups) from it. Resumes are never gated — the suspended
    // state already lives here.
    let avoid_map = ctx.reliability_avoid(node, TaskKind::Map);
    let avoid_reduce = ctx.reliability_avoid(node, TaskKind::Reduce);
    let mut free_map = view.free_map_slots;
    let mut free_reduce = view.free_reduce_slots;
    let mut resumable = view.suspended.len();
    let mut actions = Vec::new();
    // Bound on declining jobs visited per round. Without it, a round where
    // every backlogged job waits for locality scans the whole job order on
    // every heartbeat — O(jobs) of pure declines. Past the cap the slot
    // simply stays free until the next heartbeat (by which point waits have
    // escalated); capped-out jobs' clocks start a few heartbeats later,
    // which only shifts their bounded wait, never starves them.
    const MAX_DECLINES_PER_ROUND: usize = 64;
    let mut declines = 0usize;
    for job_id in ordered_jobs {
        // Stop as soon as the remaining slots provably cannot be used by
        // anything further down the list (per-kind: a free reduce slot must
        // not keep the loop scanning map-only jobs).
        let want_map = free_map > 0 && maps_unclaimed > 0;
        let want_reduce = free_reduce > 0 && reduces_unclaimed > 0;
        let want_resume = resumable > 0 && (free_map > 0 || free_reduce > 0);
        if !want_map && !want_reduce && !want_resume {
            break;
        }
        let Some(job) = ctx.jobs.get(job_id) else {
            continue;
        };
        // O(1) skip via the engine-maintained per-job counters: a job with
        // nothing this node could take costs one map lookup here, not a scan
        // of its (potentially huge) task list.
        let job_maps = free_map > 0 && job.schedulable_maps > 0;
        let job_reduces = free_reduce > 0 && job.schedulable_reduces > 0;
        let job_resumes = want_resume && job.suspended_count > 0;
        if !job_maps && !job_reduces && !job_resumes {
            continue;
        }
        // Resume the job's own suspended tasks before launching new ones: a
        // suspended task already holds memory on its node and finishing it
        // releases that memory soonest. The node view lists exactly the
        // tasks suspended *here*, so the match is O(suspended-on-node), not
        // O(job tasks). The view is attempt-level and may still list a task
        // whose JobTracker state moved on to MustResume/MustKill (a resume
        // that could not be delivered retries via the command path, not
        // here), so re-check the task state before spending a slot on a
        // Resume the engine would discard.
        if job_resumes {
            for &task in view.suspended.iter().filter(|t| t.job == *job_id) {
                if !ctx
                    .task(task)
                    .is_some_and(|t| t.state == TaskState::Suspended)
                {
                    continue;
                }
                let free = match task.kind {
                    TaskKind::Map => &mut free_map,
                    TaskKind::Reduce => &mut free_reduce,
                };
                if *free > 0 {
                    *free -= 1;
                    resumable -= 1;
                    actions.push(SchedulerAction::Resume { task });
                }
            }
        }
        if !job_maps && !job_reduces {
            continue;
        }
        // Delay scheduling: the loosest locality this job may launch maps at
        // right now, decided *before* any index work — at scale most
        // delayed rounds visit many declining jobs, and the decline path
        // must stay a few dense reads, not hash lookups. Jobs with no
        // replica preferences (synthetic input; tasks are maps-first, so
        // the first task tells) are never restricted, and neither is a job
        // with no schedulable maps at all: the gate only ever withholds map
        // launches, and treating a pure-reduce-phase job as restricted
        // would also suppress the tier-3 rewind below — stranding a reduce
        // killed back to pending behind the cursor forever, since a job
        // without schedulable maps never declines anything and so never
        // escalates.
        let prefers_local = job
            .tasks
            .first()
            .is_some_and(|t| !t.preferred_nodes.is_empty());
        let allowed = if delay_on && prefers_local && job.schedulable_maps > 0 {
            ctx.delay_allowed(*job_id)
        } else {
            Locality::OffRack
        };
        let maps_any = allowed == Locality::OffRack;
        let mut chosen = std::mem::take(&mut index.chosen);
        chosen.clear();
        let mut maps_chosen = 0usize;
        let job_index = index.entry(job, ctx);
        // Fast decline: the job is locality-restricted, has provably nothing
        // it may launch on this node (the replica bitsets say so), and no
        // reduce work to place — the whole visit collapses to recording the
        // skipped opportunity. This is the common case of a delayed round at
        // scale, so it must stay a handful of dense reads.
        if !maps_any && free_map > 0 && job.schedulable_maps > 0 && !job_reduces {
            let node_possible = test_bit(&job_index.node_bits, node.0);
            let rack_possible = allowed >= Locality::RackLocal
                && rack.is_some_and(|r| test_bit(&job_index.rack_bits, r.0));
            if !node_possible && !rack_possible {
                index.chosen = chosen;
                ctx.note_delay_skip(*job_id);
                declines += 1;
                if declines >= MAX_DECLINES_PER_ROUND {
                    break;
                }
                continue;
            }
        }
        // Tier 1: map tasks with a replica on this very node. The bit test
        // keeps the overwhelmingly common "nothing local here" answer off
        // the hash; an exhausted list clears its bit so it is never probed
        // again.
        let mut node_local_chosen = false;
        if free_map > 0 && !avoid_map && test_bit(&job_index.node_bits, node.0) {
            if let Some(list) = job_index.by_node.get_mut(&node.0) {
                while free_map > 0 {
                    let Some(pos) = list.next_schedulable(job, &chosen) else {
                        break;
                    };
                    free_map -= 1;
                    maps_unclaimed = maps_unclaimed.saturating_sub(1);
                    maps_chosen += 1;
                    node_local_chosen = true;
                    chosen.push(pos);
                    actions.push(SchedulerAction::Launch {
                        task: job.tasks[pos].id,
                        node,
                    });
                }
                if list.cursor >= list.items.len() {
                    clear_bit(&mut job_index.node_bits, node.0);
                }
            }
        }
        // Tier 2: map tasks with a replica somewhere in this node's rack —
        // skipped entirely (lists untouched) while the job's delay level is
        // still node-local-only.
        if free_map > 0 && !avoid_map && allowed >= Locality::RackLocal {
            if let Some(r) = rack.filter(|r| test_bit(&job_index.rack_bits, r.0)) {
                if let Some(list) = job_index.by_rack.get_mut(&r.0) {
                    while free_map > 0 {
                        let Some(pos) = list.next_schedulable(job, &chosen) else {
                            break;
                        };
                        free_map -= 1;
                        maps_unclaimed = maps_unclaimed.saturating_sub(1);
                        maps_chosen += 1;
                        chosen.push(pos);
                        actions.push(SchedulerAction::Launch {
                            task: job.tasks[pos].id,
                            node,
                        });
                    }
                    if list.cursor >= list.items.len() {
                        clear_bit(&mut job_index.rack_bits, r.0);
                    }
                }
            }
        }
        // Tier 3: anything still schedulable (off-rack maps, reduces, and
        // synthetic tasks, which have no locality preference at all), scanned
        // from the fallback cursor. The cursor only ever moves past
        // non-schedulable tasks, so the scan is O(new work) per heartbeat; a
        // rewind pass catches tasks re-made schedulable (kills) behind it.
        // Tier-3 maps are off-rack by construction (anything node- or
        // rack-local was reachable through the tier-1/2 lists), so the whole
        // map region is skipped while delay keeps the job below `OffRack`.
        // The one loss is a task re-made schedulable after its consume-once
        // list entries were spent (kill/reschedule): it stays invisible to
        // the local tiers and only launches once the job escalates to
        // `OffRack` — a wait bounded by the configured delay, never a
        // livelock.
        //
        // Rack-aware reduce placement: decline this node's reduce slots while
        // the rack holding most of the job's map-output bytes still has free
        // ones (the helper's free-slot check keeps the decline
        // starvation-free), or while the reliability predictor steers fresh
        // work away from the node.
        let decline_reduce = avoid_reduce || ctx.prefer_reduce_elsewhere(*job_id, node);
        for attempt in 0..2 {
            // Per-kind satisfaction: stop when every remaining slot kind is
            // either full or exhausted for this job, so a free reduce slot
            // never drags the scan across a map-only job's task list.
            // "Left" counts schedulable tasks of the job not yet *seen* by
            // this pass (already-chosen ones count as seen when reached).
            let mut maps_left = job.schedulable_maps as usize;
            let mut reduces_left = job.schedulable_reduces as usize;
            while job_index.cursor < job.tasks.len()
                && !job.tasks[job_index.cursor].state.is_schedulable()
            {
                job_index.cursor += 1;
            }
            let mut launched_any = false;
            let mut pos = job_index.cursor;
            // Tasks are laid out maps-first, then reduces (a JobRuntime
            // invariant). When no map slot is free — or delay scheduling
            // still withholds this job's off-rack launches — nothing in the
            // map region can launch, so jump straight to the reduce region
            // instead of dragging the scan across up to thousands of pending
            // maps on every reduce-slot heartbeat.
            if free_map == 0 || !maps_any || avoid_map {
                let map_region = job
                    .tasks
                    .len()
                    .saturating_sub(job.spec.reduce_tasks as usize);
                pos = pos.max(map_region);
                maps_left = 0;
            }
            while pos < job.tasks.len() {
                let maps_satisfied = free_map == 0 || maps_left == 0;
                let reduces_satisfied = free_reduce == 0 || reduces_left == 0;
                if maps_satisfied && reduces_satisfied {
                    break;
                }
                let t = &job.tasks[pos];
                if t.state.is_schedulable() {
                    let already_chosen = chosen.contains(&pos);
                    match t.id.kind {
                        TaskKind::Map => {
                            if !already_chosen && free_map > 0 {
                                free_map -= 1;
                                maps_unclaimed = maps_unclaimed.saturating_sub(1);
                                maps_chosen += 1;
                                launched_any = true;
                                chosen.push(pos);
                                actions.push(SchedulerAction::Launch { task: t.id, node });
                            }
                            maps_left = maps_left.saturating_sub(1);
                        }
                        TaskKind::Reduce => {
                            if !already_chosen && free_reduce > 0 && !decline_reduce {
                                free_reduce -= 1;
                                reduces_unclaimed = reduces_unclaimed.saturating_sub(1);
                                launched_any = true;
                                chosen.push(pos);
                                actions.push(SchedulerAction::Launch { task: t.id, node });
                            }
                            reduces_left = reduces_left.saturating_sub(1);
                        }
                    }
                }
                pos += 1;
            }
            // The job claims schedulable work the cursor cannot see (a task
            // behind it was killed back to pending): rewind once and retry.
            // A delay-declining job's unlaunched maps are *withheld*, not
            // invisible — rewinding for them would rescan every heartbeat.
            let invisible = !launched_any
                && attempt == 0
                && maps_any
                && job_index.cursor > 0
                && chosen.len() < job.schedulable_count() as usize;
            if !invisible {
                break;
            }
            job_index.cursor = 0;
        }
        index.chosen = chosen;
        // The job declined map launches it had slots for: record the skipped
        // opportunity so its wait clock runs and its allowed level escalates.
        // A round that launched a node-local map did NOT skip the
        // opportunity — the engine resets the wait on that launch anyway, so
        // noting a skip here would only mint a spurious zero-length entry in
        // the wait histogram.
        if !maps_any
            && !node_local_chosen
            && free_map > 0
            && (job.schedulable_maps as usize) > maps_chosen
        {
            ctx.note_delay_skip(*job_id);
            declines += 1;
            if declines >= MAX_DECLINES_PER_ROUND {
                break;
            }
        }
    }

    // Map slots still free after regular assignment: nothing pending can
    // use them, so offer them to stragglers as speculative backups. All
    // incomplete jobs are considered (not just `ordered_jobs`, which
    // policies prune to jobs with launchable/resumable work): a tail-phase
    // job whose tasks are all running or suspended is exactly the
    // speculation target.
    if can_speculate && free_map > 0 && !avoid_map {
        let second = ctx.now.as_micros() / 1_000_000;
        if index.spec_stamp != Some(second) {
            index.spec_stamp = Some(second);
            let mut candidates = std::mem::take(&mut index.spec_buf);
            for job in ctx.jobs.values() {
                if free_map == 0 {
                    break;
                }
                if job.is_finished() {
                    continue;
                }
                candidates.clear();
                ctx.push_speculative_candidates(job, node, free_map as usize, &mut candidates);
                for &task in &candidates {
                    free_map -= 1;
                    actions.push(SchedulerAction::LaunchSpeculative { task, node });
                }
            }
            candidates.clear();
            index.spec_buf = candidates;
        }
    }
    actions
}

/// A FAIR-style scheduler with preemption.
///
/// Every job is its own pool with an equal share of the cluster's map slots.
/// A job that has been running fewer slots than its fair share for longer
/// than `preemption_timeout` triggers preemption: tasks of over-share jobs
/// are evicted with the configured primitive, victims chosen by the eviction
/// policy (this is how the Hadoop FAIR scheduler warrants fairness, with
/// kill replaced by suspend/resume).
///
/// Since the action-pipeline redesign this type is a thin wrapper over
/// [`ActionPipeline::fair`] — a job-major `allocate` under the fair-share
/// job order, followed by a deficit-triggered `preempt`. Constructing the
/// bundle directly is equivalent; this wrapper exists for API stability.
pub struct FairScheduler {
    /// Primitive used to evict tasks of over-share jobs.
    pub primitive: PreemptionPrimitive,
    /// Victim selection policy.
    pub eviction: EvictionPolicy,
    /// How long a job may stay under its fair share before preemption kicks in.
    pub preemption_timeout: SimDuration,
    pipeline: ActionPipeline,
}

impl FairScheduler {
    /// Creates a FAIR scheduler for a cluster with `total_map_slots` map slots.
    pub fn new(
        primitive: PreemptionPrimitive,
        eviction: EvictionPolicy,
        total_map_slots: usize,
        preemption_timeout: SimDuration,
    ) -> Self {
        FairScheduler {
            primitive,
            eviction,
            preemption_timeout,
            pipeline: ActionPipeline::fair(
                primitive,
                eviction,
                total_map_slots,
                preemption_timeout,
            ),
        }
    }
}

impl SchedulerPolicy for FairScheduler {
    fn on_heartbeat(&mut self, ctx: &SchedulerContext<'_>, node: NodeId) -> Vec<SchedulerAction> {
        self.pipeline.on_heartbeat(ctx, node)
    }

    fn on_job_submitted(&mut self, ctx: &SchedulerContext<'_>, job: JobId) -> Vec<SchedulerAction> {
        self.pipeline.on_job_submitted(ctx, job)
    }

    fn on_job_finished(&mut self, ctx: &SchedulerContext<'_>, job: JobId) -> Vec<SchedulerAction> {
        self.pipeline.on_job_finished(ctx, job)
    }

    fn name(&self) -> &str {
        "fair"
    }
}

/// An HFSP-style size-based scheduler with preemption.
///
/// Jobs are ordered by remaining size (estimated from the input bytes of
/// their unfinished tasks, scaled by reported progress); the smallest job
/// runs first. When a newly submitted job is smaller than what is currently
/// running and no slots are free, tasks of the largest running job are
/// preempted with the configured primitive.
/// Since the action-pipeline redesign this type is a thin wrapper over
/// [`ActionPipeline::hfsp`] — a job-major `allocate` under the cached
/// smallest-remaining-size job order, followed by an arrival-triggered
/// `preempt`. Constructing the bundle directly is equivalent; this wrapper
/// exists for API stability.
pub struct HfspScheduler {
    /// Primitive used to evict tasks of larger jobs.
    pub primitive: PreemptionPrimitive,
    /// Victim selection policy.
    pub eviction: EvictionPolicy,
    pipeline: ActionPipeline,
}

impl HfspScheduler {
    /// Creates an HFSP-style scheduler.
    pub fn new(primitive: PreemptionPrimitive, eviction: EvictionPolicy) -> Self {
        HfspScheduler {
            primitive,
            eviction,
            pipeline: ActionPipeline::hfsp(primitive, eviction),
        }
    }

    /// Remaining virtual size of a job in bytes (HFSP's ordering metric).
    pub fn remaining_size(job: &JobRuntime) -> u64 {
        crate::pipeline::remaining_size(job)
    }
}

impl SchedulerPolicy for HfspScheduler {
    fn on_heartbeat(&mut self, ctx: &SchedulerContext<'_>, node: NodeId) -> Vec<SchedulerAction> {
        self.pipeline.on_heartbeat(ctx, node)
    }

    fn on_job_submitted(&mut self, ctx: &SchedulerContext<'_>, job: JobId) -> Vec<SchedulerAction> {
        self.pipeline.on_job_submitted(ctx, job)
    }

    fn on_job_finished(&mut self, ctx: &SchedulerContext<'_>, job: JobId) -> Vec<SchedulerAction> {
        self.pipeline.on_job_finished(ctx, job)
    }

    fn name(&self) -> &str {
        "hfsp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_engine::{Cluster, ClusterConfig, JobSpec, TaskId};
    use mrp_sim::{SimTime, MIB};

    fn two_job_cluster(scheduler: Box<dyn SchedulerPolicy>) -> mrp_engine::ClusterReport {
        let mut cluster = Cluster::new(ClusterConfig::paper_single_node(), scheduler);
        cluster.create_input_file("/big", 512 * MIB).unwrap();
        cluster.create_input_file("/small", 128 * MIB).unwrap();
        cluster.submit_job(JobSpec::map_only("big", "/big"));
        cluster.submit_job_at(JobSpec::map_only("small", "/small"), SimTime::from_secs(20));
        cluster.run(SimTime::from_secs(4 * 3_600));
        cluster.report()
    }

    #[test]
    fn hfsp_suspend_lets_the_small_job_jump_the_queue() {
        let report = two_job_cluster(Box::new(HfspScheduler::new(
            PreemptionPrimitive::SuspendResume,
            EvictionPolicy::ClosestToCompletion,
        )));
        assert!(report.all_jobs_complete());
        let small = report.sojourn_secs("small").unwrap();
        let big_job = report.job("big").unwrap();
        assert!(
            small < 60.0,
            "with preemption the small job should finish in ~25-40s, got {small}"
        );
        assert_eq!(big_job.tasks[0].suspend_cycles, 1);
        assert_eq!(big_job.tasks[0].attempts, 1, "no work lost");
    }

    #[test]
    fn hfsp_kill_wastes_the_big_jobs_work() {
        let report = two_job_cluster(Box::new(HfspScheduler::new(
            PreemptionPrimitive::Kill,
            EvictionPolicy::ClosestToCompletion,
        )));
        assert!(report.all_jobs_complete());
        let big_job = report.job("big").unwrap();
        assert!(big_job.wasted_work_secs() > 5.0);
        assert!(big_job.tasks[0].attempts >= 2);
    }

    #[test]
    fn hfsp_wait_does_not_preempt() {
        let report = two_job_cluster(Box::new(HfspScheduler::new(
            PreemptionPrimitive::Wait,
            EvictionPolicy::ClosestToCompletion,
        )));
        assert!(report.all_jobs_complete());
        let small = report.sojourn_secs("small").unwrap();
        assert!(
            small > 60.0,
            "without preemption the small job waits, got {small}"
        );
        assert_eq!(report.job("big").unwrap().tasks[0].suspend_cycles, 0);
    }

    #[test]
    fn hfsp_suspend_beats_kill_on_makespan_and_ties_on_small_job_latency() {
        let susp = two_job_cluster(Box::new(HfspScheduler::new(
            PreemptionPrimitive::SuspendResume,
            EvictionPolicy::ClosestToCompletion,
        )));
        let kill = two_job_cluster(Box::new(HfspScheduler::new(
            PreemptionPrimitive::Kill,
            EvictionPolicy::ClosestToCompletion,
        )));
        assert!(susp.makespan_secs().unwrap() < kill.makespan_secs().unwrap());
        assert!(susp.sojourn_secs("small").unwrap() <= kill.sojourn_secs("small").unwrap() + 5.0);
    }

    #[test]
    fn fair_scheduler_shares_a_two_slot_node() {
        let mut cfg = ClusterConfig::paper_single_node();
        cfg.nodes[0].map_slots = 2;
        let scheduler = FairScheduler::new(
            PreemptionPrimitive::SuspendResume,
            EvictionPolicy::ClosestToCompletion,
            2,
            SimDuration::from_secs(10),
        );
        let mut cluster = Cluster::new(cfg, Box::new(scheduler));
        // A job with many tasks hogs both slots; a later job should get one
        // of them back through fairness preemption.
        cluster.submit_job(JobSpec::synthetic("hog", 6, 256 * MIB));
        cluster.submit_job_at(
            JobSpec::synthetic("latecomer", 1, 256 * MIB),
            SimTime::from_secs(30),
        );
        cluster.run(SimTime::from_secs(8 * 3_600));
        let report = cluster.report();
        assert!(report.all_jobs_complete());
        let late = report.sojourn_secs("latecomer").unwrap();
        // Without preemption the latecomer would wait for a full task of the
        // hog to finish (~40s+); with fairness preemption it starts sooner.
        assert!(late < 140.0, "latecomer sojourn {late}");
        let hog = report.job("hog").unwrap();
        let suspensions: u32 = hog.tasks.iter().map(|t| t.suspend_cycles).sum();
        assert!(
            suspensions >= 1,
            "fairness should have suspended at least one hog task"
        );
    }

    #[test]
    fn fair_scheduler_without_contention_never_preempts() {
        let scheduler = FairScheduler::new(
            PreemptionPrimitive::SuspendResume,
            EvictionPolicy::ClosestToCompletion,
            1,
            SimDuration::from_secs(10),
        );
        let mut cluster = Cluster::new(ClusterConfig::paper_single_node(), Box::new(scheduler));
        cluster.submit_job(JobSpec::synthetic("solo", 2, 128 * MIB));
        cluster.run(SimTime::from_secs(4 * 3_600));
        let report = cluster.report();
        assert!(report.all_jobs_complete());
        assert_eq!(
            report
                .job("solo")
                .unwrap()
                .tasks
                .iter()
                .map(|t| t.suspend_cycles)
                .sum::<u32>(),
            0
        );
    }

    #[test]
    fn hfsp_on_racked_cluster_prefers_local_launches() {
        let mut cfg = ClusterConfig::racked_cluster(2, 2, 1, 1);
        cfg.dfs_replication = 1;
        let mut cluster = Cluster::new(
            cfg,
            Box::new(HfspScheduler::new(
                PreemptionPrimitive::SuspendResume,
                EvictionPolicy::ClosestToCompletion,
            )),
        );
        // All replicas on node 3 (rack 1): the first launch should be
        // node-local there, and the scheduler should still spill the
        // remaining blocks to rack-local/off-rack nodes rather than starve.
        cluster
            .create_input_file_from("/pinned", 512 * MIB, Some(mrp_engine::NodeId(3)))
            .unwrap();
        cluster.submit_job(JobSpec::map_only("pinned", "/pinned"));
        cluster.run(SimTime::from_secs(4 * 3_600));
        let report = cluster.report();
        assert!(report.all_jobs_complete());
        assert_eq!(report.locality.total(), 4, "four 128MB blocks, four maps");
        assert!(
            report.locality.node_local >= 1,
            "the replica holder must get node-local work: {:?}",
            report.locality
        );
        assert!(
            report.locality.rack_local + report.locality.off_rack >= 1,
            "non-holders must still get (remote) work: {:?}",
            report.locality
        );
    }

    #[test]
    fn speculation_re_executes_a_stranded_suspended_task() {
        // Two nodes, one map slot each. A four-task "big" job runs in two
        // waves; mid-wave-2 a smaller "medium" job arrives, and HFSP suspends
        // one wave-2 task to make room. The medium job then pins that node
        // while the other node drains — the suspended task is stranded: its
        // progress rate decays below half the job mean (anchored by the three
        // completed siblings). With speculation the idle node runs a backup
        // that finishes before the original can even resume
        // (first-finisher-wins), shrinking the makespan; without it the job
        // waits for the resume.
        let run = |speculation: bool| {
            let mut cfg = ClusterConfig::small_cluster(2, 1, 0);
            if speculation {
                cfg.speculation = mrp_engine::SpeculationConfig::enabled();
            }
            let mut cluster = Cluster::new(
                cfg,
                Box::new(HfspScheduler::new(
                    PreemptionPrimitive::SuspendResume,
                    EvictionPolicy::ClosestToCompletion,
                )),
            );
            cluster.submit_job(JobSpec::synthetic("big", 4, 256 * MIB));
            cluster.submit_job_at(
                JobSpec::synthetic("medium", 1, 320 * MIB),
                SimTime::from_secs(55),
            );
            cluster.run(SimTime::from_secs(8 * 3_600));
            let report = cluster.report();
            assert!(report.all_jobs_complete());
            report
        };
        let with_spec = run(true);
        let without = run(false);
        assert!(
            without.faults.speculative_launched == 0,
            "speculation off must not speculate"
        );
        assert!(
            with_spec.faults.speculative_launched >= 1,
            "the stranded suspended task must draw a backup: {:?}",
            with_spec.faults
        );
        assert!(
            with_spec.faults.speculative_won >= 1,
            "the backup finishes before the stranded original can resume: {:?}",
            with_spec.faults
        );
        assert!(
            with_spec.makespan_secs().unwrap() < without.makespan_secs().unwrap(),
            "speculative re-execution must shrink the makespan: {} vs {}",
            with_spec.makespan_secs().unwrap(),
            without.makespan_secs().unwrap()
        );
    }

    #[test]
    fn remaining_size_shrinks_with_progress() {
        // Direct unit check of the HFSP size estimator.
        let spec = JobSpec::synthetic("x", 2, 100 * MIB);
        let mut job = JobRuntime {
            id: JobId(1),
            spec,
            submitted_at: SimTime::ZERO,
            completed_at: None,
            schedulable_maps: 0,
            schedulable_reduces: 0,
            suspended_count: 0,
            occupying_count: 0,
            speculative_live: 0,
            tasks: vec![
                mrp_engine::TaskRuntime::new(
                    TaskId {
                        job: JobId(1),
                        kind: TaskKind::Map,
                        index: 0,
                    },
                    100 * MIB,
                    vec![],
                ),
                mrp_engine::TaskRuntime::new(
                    TaskId {
                        job: JobId(1),
                        kind: TaskKind::Map,
                        index: 1,
                    },
                    100 * MIB,
                    vec![],
                ),
            ],
        };
        let full = HfspScheduler::remaining_size(&job);
        job.tasks[0].progress = 0.5;
        let half = HfspScheduler::remaining_size(&job);
        assert!(half < full);
        job.tasks[0].set_state(TaskState::Running);
        job.tasks[0].set_state(TaskState::Succeeded);
        let done_one = HfspScheduler::remaining_size(&job);
        assert_eq!(done_one, 100 * MIB);
    }
}
