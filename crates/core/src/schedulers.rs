//! Preemptive job schedulers built on top of the preemption primitives.
//!
//! The paper motivates the primitive with three scheduler families
//! (Section II): fairness schedulers (Hadoop FAIR/Capacity), deadline
//! schedulers, and size-based schedulers such as the authors' own HFSP. This
//! module provides working preemptive implementations of a FAIR-style
//! scheduler and an HFSP-style size-based scheduler, both parameterised by
//! the [`PreemptionPrimitive`] and the [`EvictionPolicy`], so the ablation
//! benches can measure how the choice of primitive affects realistic
//! scheduling policies rather than only the paper's two-job scenario.

use crate::eviction::{EvictionCandidate, EvictionPolicy};
use crate::primitive::PreemptionPrimitive;
use mrp_engine::{
    JobId, JobRuntime, NodeId, SchedulerAction, SchedulerContext, SchedulerPolicy, TaskId,
    TaskKind, TaskState,
};
use mrp_sim::{SimDuration, SimRng, SimTime};
use std::collections::HashMap;

const BASE_TASK_FOOTPRINT: u64 = 192 * 1024 * 1024;

fn candidates_of(job: &JobRuntime) -> Vec<EvictionCandidate> {
    job.tasks
        .iter()
        .filter(|t| t.state == TaskState::Running)
        .map(|t| EvictionCandidate {
            task: t.id,
            progress: t.progress,
            memory_bytes: job.spec.profile.state_memory + BASE_TASK_FOOTPRINT,
        })
        .collect()
}

fn running_slots(job: &JobRuntime) -> usize {
    job.tasks.iter().filter(|t| t.state.occupies_slot()).count()
}

fn schedulable_of(job: &JobRuntime) -> Vec<TaskId> {
    job.tasks
        .iter()
        .filter(|t| t.state.is_schedulable())
        .map(|t| t.id)
        .collect()
}

fn suspended_of(job: &JobRuntime) -> Vec<TaskId> {
    job.tasks
        .iter()
        .filter(|t| t.state == TaskState::Suspended)
        .map(|t| t.id)
        .collect()
}

/// Launches (and resumes) the tasks of jobs in the order produced by
/// `ordered_jobs`, filling free slots on `node`.
fn fill_node(
    ctx: &SchedulerContext<'_>,
    node: NodeId,
    ordered_jobs: &[JobId],
) -> Vec<SchedulerAction> {
    let Some(view) = ctx.node(node) else {
        return Vec::new();
    };
    // Hot-path early exit: a fully occupied node can neither launch nor
    // resume anything, so skip the per-job task scans. At cluster scale most
    // heartbeats hit this case.
    if view.free_map_slots == 0 && view.free_reduce_slots == 0 {
        return Vec::new();
    }
    let mut free_map = view.free_map_slots;
    let mut free_reduce = view.free_reduce_slots;
    let mut actions = Vec::new();
    for job_id in ordered_jobs {
        // Once every slot is spoken for there is nothing left to decide;
        // do not keep scanning the remaining (potentially huge) task lists.
        if free_map == 0 && free_reduce == 0 {
            break;
        }
        let Some(job) = ctx.jobs.get(job_id) else {
            continue;
        };
        // Resume the job's own suspended tasks before launching new ones: a
        // suspended task already holds memory on its node and finishing it
        // releases that memory soonest. Iterate the task list directly — no
        // intermediate Vec per job on this per-heartbeat path.
        for t in job.tasks.iter().filter(|t| t.state == TaskState::Suspended) {
            if t.node != Some(node) {
                continue;
            }
            let free = match t.id.kind {
                TaskKind::Map => &mut free_map,
                TaskKind::Reduce => &mut free_reduce,
            };
            if *free > 0 {
                *free -= 1;
                actions.push(SchedulerAction::Resume { task: t.id });
            }
        }
        for t in job.tasks.iter().filter(|t| t.state.is_schedulable()) {
            if free_map == 0 && free_reduce == 0 {
                break;
            }
            let free = match t.id.kind {
                TaskKind::Map => &mut free_map,
                TaskKind::Reduce => &mut free_reduce,
            };
            if *free > 0 {
                *free -= 1;
                actions.push(SchedulerAction::Launch { task: t.id, node });
            }
        }
    }
    actions
}

/// A FAIR-style scheduler with preemption.
///
/// Every job is its own pool with an equal share of the cluster's map slots.
/// A job that has been running fewer slots than its fair share for longer
/// than `preemption_timeout` triggers preemption: tasks of over-share jobs
/// are evicted with the configured primitive, victims chosen by the eviction
/// policy (this is how the Hadoop FAIR scheduler warrants fairness, with
/// kill replaced by suspend/resume).
pub struct FairScheduler {
    /// Primitive used to evict tasks of over-share jobs.
    pub primitive: PreemptionPrimitive,
    /// Victim selection policy.
    pub eviction: EvictionPolicy,
    /// How long a job may stay under its fair share before preemption kicks in.
    pub preemption_timeout: SimDuration,
    total_map_slots: usize,
    starved_since: HashMap<JobId, SimTime>,
    rng: SimRng,
}

impl FairScheduler {
    /// Creates a FAIR scheduler for a cluster with `total_map_slots` map slots.
    pub fn new(
        primitive: PreemptionPrimitive,
        eviction: EvictionPolicy,
        total_map_slots: usize,
        preemption_timeout: SimDuration,
    ) -> Self {
        FairScheduler {
            primitive,
            eviction,
            preemption_timeout,
            total_map_slots: total_map_slots.max(1),
            starved_since: HashMap::new(),
            rng: SimRng::new(0xFA1),
        }
    }

    fn incomplete_jobs<'c>(ctx: &'c SchedulerContext<'_>) -> Vec<&'c JobRuntime> {
        ctx.jobs.values().filter(|j| !j.is_finished()).collect()
    }

    fn fair_share(&self, incomplete: usize) -> usize {
        self.total_map_slots
            .checked_div(incomplete)
            .map_or(self.total_map_slots, |share| share.max(1))
    }

    fn preemption_pass(&mut self, ctx: &SchedulerContext<'_>) -> Vec<SchedulerAction> {
        let incomplete = Self::incomplete_jobs(ctx);
        let share = self.fair_share(incomplete.len());
        let mut actions = Vec::new();

        // Track starvation times and find jobs with a legitimate claim.
        let mut claims: usize = 0;
        for job in &incomplete {
            let wants_more = !schedulable_of(job).is_empty() || !suspended_of(job).is_empty();
            let starving = wants_more && running_slots(job) < share;
            if starving {
                let since = *self.starved_since.entry(job.id).or_insert(ctx.now);
                if ctx.now - since >= self.preemption_timeout {
                    claims += share - running_slots(job);
                }
            } else {
                self.starved_since.remove(&job.id);
            }
        }
        if claims == 0 {
            return actions;
        }

        // Victims come from jobs above their share, most-over-share first.
        let mut over_share: Vec<&&JobRuntime> = incomplete
            .iter()
            .filter(|j| running_slots(j) > share)
            .collect();
        over_share.sort_by_key(|j| std::cmp::Reverse(running_slots(j)));
        for job in over_share {
            if claims == 0 {
                break;
            }
            let surplus = running_slots(job) - share;
            let take = surplus.min(claims);
            let victims = self.eviction.pick(&candidates_of(job), take, &mut self.rng);
            for v in victims {
                if let Some(a) = self.primitive.preempt_action(v) {
                    actions.push(a);
                    claims = claims.saturating_sub(1);
                }
            }
        }
        actions
    }
}

impl SchedulerPolicy for FairScheduler {
    fn on_heartbeat(&mut self, ctx: &SchedulerContext<'_>, node: NodeId) -> Vec<SchedulerAction> {
        // Order jobs by how far below their fair share they are (most starved
        // first), then by submission time.
        let mut jobs: Vec<&JobRuntime> = Self::incomplete_jobs(ctx);
        jobs.sort_by_key(|j| (running_slots(j), j.submitted_at, j.id));
        let order: Vec<JobId> = jobs.iter().map(|j| j.id).collect();
        let mut actions = fill_node(ctx, node, &order);
        actions.extend(self.preemption_pass(ctx));
        actions
    }

    fn name(&self) -> &str {
        "fair"
    }
}

/// An HFSP-style size-based scheduler with preemption.
///
/// Jobs are ordered by remaining size (estimated from the input bytes of
/// their unfinished tasks, scaled by reported progress); the smallest job
/// runs first. When a newly submitted job is smaller than what is currently
/// running and no slots are free, tasks of the largest running job are
/// preempted with the configured primitive.
pub struct HfspScheduler {
    /// Primitive used to evict tasks of larger jobs.
    pub primitive: PreemptionPrimitive,
    /// Victim selection policy.
    pub eviction: EvictionPolicy,
    rng: SimRng,
    /// Reusable (size, job) scratch for the per-heartbeat size ordering.
    order_scratch: Vec<(u64, JobId)>,
    /// Reusable ordered-job buffer handed to `fill_node`.
    order: Vec<JobId>,
    /// Virtual second the cached order was computed in; remaining sizes drift
    /// with task progress far slower than heartbeats arrive, so the order is
    /// recomputed at most once per simulated second (and immediately when a
    /// job arrives or finishes). Purely a function of simulation state, so
    /// determinism is preserved.
    order_stamp: Option<u64>,
}

impl HfspScheduler {
    /// Creates an HFSP-style scheduler.
    pub fn new(primitive: PreemptionPrimitive, eviction: EvictionPolicy) -> Self {
        HfspScheduler {
            primitive,
            eviction,
            rng: SimRng::new(0x45F5),
            order_scratch: Vec::new(),
            order: Vec::new(),
            order_stamp: None,
        }
    }

    /// Remaining virtual size of a job in bytes.
    fn remaining_size(job: &JobRuntime) -> u64 {
        job.tasks
            .iter()
            .filter(|t| !t.state.is_terminal())
            .map(|t| ((1.0 - t.progress).max(0.0) * t.input_bytes as f64) as u64)
            .sum()
    }

    /// Rebuilds the smallest-remaining-size-first job order into the reusable
    /// `order` buffer (no per-call allocations once warm), at most once per
    /// simulated second unless invalidated.
    fn refresh_size_order(&mut self, ctx: &SchedulerContext<'_>) {
        let bucket = ctx.now.as_micros() / 1_000_000;
        if self.order_stamp == Some(bucket) {
            return;
        }
        self.order_stamp = Some(bucket);
        self.order_scratch.clear();
        self.order_scratch.extend(
            ctx.jobs
                .iter()
                .filter(|(_, j)| !j.is_finished())
                .map(|(id, j)| (Self::remaining_size(j), *id)),
        );
        self.order_scratch.sort_unstable();
        self.order.clear();
        self.order
            .extend(self.order_scratch.iter().map(|(_, id)| *id));
    }
}

impl SchedulerPolicy for HfspScheduler {
    fn on_heartbeat(&mut self, ctx: &SchedulerContext<'_>, node: NodeId) -> Vec<SchedulerAction> {
        // Skip the O(jobs x tasks) size estimation entirely when this node
        // has nothing to hand out — the common case at cluster scale.
        let Some(view) = ctx.node(node) else {
            return Vec::new();
        };
        if view.free_map_slots == 0 && view.free_reduce_slots == 0 {
            return Vec::new();
        }
        self.refresh_size_order(ctx);
        fill_node(ctx, node, &self.order)
    }

    fn on_job_submitted(&mut self, ctx: &SchedulerContext<'_>, job: JobId) -> Vec<SchedulerAction> {
        self.order_stamp = None; // a new job invalidates the cached order
        let Some(new_job) = ctx.jobs.get(&job) else {
            return Vec::new();
        };
        let new_size = Self::remaining_size(new_job);
        let new_demand = schedulable_of(new_job).len();
        if new_demand == 0 {
            return Vec::new();
        }
        let free_slots: u32 = ctx.nodes.iter().map(|n| n.free_map_slots).sum();
        if free_slots as usize >= new_demand {
            return Vec::new();
        }
        // Preempt tasks of strictly larger running jobs, largest first, until
        // the new job's demand could be satisfied.
        let mut needed = new_demand - free_slots as usize;
        let mut larger: Vec<&JobRuntime> = ctx
            .jobs
            .values()
            .filter(|j| j.id != job && !j.is_finished())
            .filter(|j| Self::remaining_size(j) > new_size)
            .filter(|j| running_slots(j) > 0)
            .collect();
        larger.sort_by_key(|j| std::cmp::Reverse(Self::remaining_size(j)));
        let mut actions = Vec::new();
        for victim_job in larger {
            if needed == 0 {
                break;
            }
            let victims = self
                .eviction
                .pick(&candidates_of(victim_job), needed, &mut self.rng);
            for v in victims {
                if let Some(a) = self.primitive.preempt_action(v) {
                    actions.push(a);
                    needed = needed.saturating_sub(1);
                }
            }
        }
        actions
    }

    fn on_job_finished(
        &mut self,
        _ctx: &SchedulerContext<'_>,
        _job: JobId,
    ) -> Vec<SchedulerAction> {
        self.order_stamp = None; // a finished job invalidates the cached order
        Vec::new()
    }

    fn name(&self) -> &str {
        "hfsp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_engine::{Cluster, ClusterConfig, JobSpec};
    use mrp_sim::{SimTime, MIB};

    fn two_job_cluster(scheduler: Box<dyn SchedulerPolicy>) -> mrp_engine::ClusterReport {
        let mut cluster = Cluster::new(ClusterConfig::paper_single_node(), scheduler);
        cluster.create_input_file("/big", 512 * MIB).unwrap();
        cluster.create_input_file("/small", 128 * MIB).unwrap();
        cluster.submit_job(JobSpec::map_only("big", "/big"));
        cluster.submit_job_at(JobSpec::map_only("small", "/small"), SimTime::from_secs(20));
        cluster.run(SimTime::from_secs(4 * 3_600));
        cluster.report()
    }

    #[test]
    fn hfsp_suspend_lets_the_small_job_jump_the_queue() {
        let report = two_job_cluster(Box::new(HfspScheduler::new(
            PreemptionPrimitive::SuspendResume,
            EvictionPolicy::ClosestToCompletion,
        )));
        assert!(report.all_jobs_complete());
        let small = report.sojourn_secs("small").unwrap();
        let big_job = report.job("big").unwrap();
        assert!(
            small < 60.0,
            "with preemption the small job should finish in ~25-40s, got {small}"
        );
        assert_eq!(big_job.tasks[0].suspend_cycles, 1);
        assert_eq!(big_job.tasks[0].attempts, 1, "no work lost");
    }

    #[test]
    fn hfsp_kill_wastes_the_big_jobs_work() {
        let report = two_job_cluster(Box::new(HfspScheduler::new(
            PreemptionPrimitive::Kill,
            EvictionPolicy::ClosestToCompletion,
        )));
        assert!(report.all_jobs_complete());
        let big_job = report.job("big").unwrap();
        assert!(big_job.wasted_work_secs() > 5.0);
        assert!(big_job.tasks[0].attempts >= 2);
    }

    #[test]
    fn hfsp_wait_does_not_preempt() {
        let report = two_job_cluster(Box::new(HfspScheduler::new(
            PreemptionPrimitive::Wait,
            EvictionPolicy::ClosestToCompletion,
        )));
        assert!(report.all_jobs_complete());
        let small = report.sojourn_secs("small").unwrap();
        assert!(
            small > 60.0,
            "without preemption the small job waits, got {small}"
        );
        assert_eq!(report.job("big").unwrap().tasks[0].suspend_cycles, 0);
    }

    #[test]
    fn hfsp_suspend_beats_kill_on_makespan_and_ties_on_small_job_latency() {
        let susp = two_job_cluster(Box::new(HfspScheduler::new(
            PreemptionPrimitive::SuspendResume,
            EvictionPolicy::ClosestToCompletion,
        )));
        let kill = two_job_cluster(Box::new(HfspScheduler::new(
            PreemptionPrimitive::Kill,
            EvictionPolicy::ClosestToCompletion,
        )));
        assert!(susp.makespan_secs().unwrap() < kill.makespan_secs().unwrap());
        assert!(susp.sojourn_secs("small").unwrap() <= kill.sojourn_secs("small").unwrap() + 5.0);
    }

    #[test]
    fn fair_scheduler_shares_a_two_slot_node() {
        let mut cfg = ClusterConfig::paper_single_node();
        cfg.nodes[0].map_slots = 2;
        let scheduler = FairScheduler::new(
            PreemptionPrimitive::SuspendResume,
            EvictionPolicy::ClosestToCompletion,
            2,
            SimDuration::from_secs(10),
        );
        let mut cluster = Cluster::new(cfg, Box::new(scheduler));
        // A job with many tasks hogs both slots; a later job should get one
        // of them back through fairness preemption.
        cluster.submit_job(JobSpec::synthetic("hog", 6, 256 * MIB));
        cluster.submit_job_at(
            JobSpec::synthetic("latecomer", 1, 256 * MIB),
            SimTime::from_secs(30),
        );
        cluster.run(SimTime::from_secs(8 * 3_600));
        let report = cluster.report();
        assert!(report.all_jobs_complete());
        let late = report.sojourn_secs("latecomer").unwrap();
        // Without preemption the latecomer would wait for a full task of the
        // hog to finish (~40s+); with fairness preemption it starts sooner.
        assert!(late < 140.0, "latecomer sojourn {late}");
        let hog = report.job("hog").unwrap();
        let suspensions: u32 = hog.tasks.iter().map(|t| t.suspend_cycles).sum();
        assert!(
            suspensions >= 1,
            "fairness should have suspended at least one hog task"
        );
    }

    #[test]
    fn fair_scheduler_without_contention_never_preempts() {
        let scheduler = FairScheduler::new(
            PreemptionPrimitive::SuspendResume,
            EvictionPolicy::ClosestToCompletion,
            1,
            SimDuration::from_secs(10),
        );
        let mut cluster = Cluster::new(ClusterConfig::paper_single_node(), Box::new(scheduler));
        cluster.submit_job(JobSpec::synthetic("solo", 2, 128 * MIB));
        cluster.run(SimTime::from_secs(4 * 3_600));
        let report = cluster.report();
        assert!(report.all_jobs_complete());
        assert_eq!(
            report
                .job("solo")
                .unwrap()
                .tasks
                .iter()
                .map(|t| t.suspend_cycles)
                .sum::<u32>(),
            0
        );
    }

    #[test]
    fn remaining_size_shrinks_with_progress() {
        // Direct unit check of the HFSP size estimator.
        let spec = JobSpec::synthetic("x", 2, 100 * MIB);
        let mut job = JobRuntime {
            id: JobId(1),
            spec,
            submitted_at: SimTime::ZERO,
            completed_at: None,
            tasks: vec![
                mrp_engine::TaskRuntime::new(
                    TaskId {
                        job: JobId(1),
                        kind: TaskKind::Map,
                        index: 0,
                    },
                    100 * MIB,
                    vec![],
                ),
                mrp_engine::TaskRuntime::new(
                    TaskId {
                        job: JobId(1),
                        kind: TaskKind::Map,
                        index: 1,
                    },
                    100 * MIB,
                    vec![],
                ),
            ],
        };
        let full = HfspScheduler::remaining_size(&job);
        job.tasks[0].progress = 0.5;
        let half = HfspScheduler::remaining_size(&job);
        assert!(half < full);
        job.tasks[0].set_state(TaskState::Running);
        job.tasks[0].set_state(TaskState::Succeeded);
        let done_one = HfspScheduler::remaining_size(&job);
        assert_eq!(done_one, 100 * MIB);
    }
}
