//! An analytical model of application-level (Natjam-style) checkpointing,
//! used as the comparison point the paper argues against (Section II).
//!
//! Natjam suspends tasks at the "application layer": it saves progress
//! counters, and for stateful tasks it relies on hooks that serialize and
//! deserialize the task's in-JVM state. Two consequences follow:
//!
//! 1. the serialization / write / read / deserialization cost is paid on
//!    **every** preemption, whether or not the machine is under memory
//!    pressure — unlike the OS-assisted primitive, which pays only when (and
//!    only as much as) physical memory actually runs short;
//! 2. tasks that keep implicit state in the JVM (common for jobs compiled by
//!    Pig or Hive) cannot be suspended transparently at all.
//!
//! The Natjam authors report roughly a 7% makespan overhead in a setting
//! comparable to the paper's baseline experiments. The model below lets the
//! benchmark harness contrast a measured suspend/resume run with the cost a
//! checkpoint-based primitive would have paid on the same workload.

use mrp_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Cost parameters of a checkpoint-based suspend/resume implementation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NatjamModel {
    /// Rate at which task state is serialized (CPU-bound), bytes/second.
    pub serialize_bytes_per_sec: f64,
    /// Disk write bandwidth for the checkpoint file, bytes/second.
    pub disk_write_bytes_per_sec: f64,
    /// Disk read bandwidth when loading the checkpoint, bytes/second.
    pub disk_read_bytes_per_sec: f64,
    /// Rate at which state is deserialized, bytes/second.
    pub deserialize_bytes_per_sec: f64,
    /// Fixed per-checkpoint overhead (RPCs, file creation, commit), seconds.
    pub fixed_overhead_secs: f64,
    /// Fraction of a task's work that is redone after resuming from the last
    /// saved progress counter (checkpoint granularity).
    pub replay_fraction: f64,
}

impl Default for NatjamModel {
    fn default() -> Self {
        NatjamModel {
            serialize_bytes_per_sec: 400.0 * 1024.0 * 1024.0,
            disk_write_bytes_per_sec: 110.0 * 1024.0 * 1024.0,
            disk_read_bytes_per_sec: 120.0 * 1024.0 * 1024.0,
            deserialize_bytes_per_sec: 500.0 * 1024.0 * 1024.0,
            fixed_overhead_secs: 1.0,
            replay_fraction: 0.02,
        }
    }
}

/// Cost breakdown of one checkpoint-based suspend/resume cycle.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CheckpointCost {
    /// Time to serialize and write the state at suspension.
    pub suspend: SimDuration,
    /// Time to read and deserialize the state at resumption.
    pub resume: SimDuration,
    /// Extra work-phase time re-executed because the checkpoint is coarser
    /// than the exact interruption point.
    pub replay: SimDuration,
}

impl CheckpointCost {
    /// Total overhead of the cycle.
    pub fn total(&self) -> SimDuration {
        self.suspend + self.resume + self.replay
    }
}

impl NatjamModel {
    /// Cost of suspending and later resuming a task whose serializable state
    /// is `state_bytes` and whose uninterrupted work phase lasts
    /// `work_duration`.
    pub fn cycle_cost(&self, state_bytes: u64, work_duration: SimDuration) -> CheckpointCost {
        let b = state_bytes as f64;
        let suspend = self.fixed_overhead_secs
            + b / self.serialize_bytes_per_sec
            + b / self.disk_write_bytes_per_sec;
        let resume = self.fixed_overhead_secs
            + b / self.disk_read_bytes_per_sec
            + b / self.deserialize_bytes_per_sec;
        CheckpointCost {
            suspend: SimDuration::from_secs_f64(suspend),
            resume: SimDuration::from_secs_f64(resume),
            replay: work_duration.mul_f64(self.replay_fraction),
        }
    }

    /// Predicted makespan of the paper's two-job scenario under checkpointing:
    /// the measured `wait` makespan (no preemption, no wasted work) plus one
    /// full checkpoint cycle for the preempted task.
    pub fn predicted_makespan_secs(
        &self,
        wait_makespan_secs: f64,
        state_bytes: u64,
        work_duration: SimDuration,
    ) -> f64 {
        wait_makespan_secs
            + self
                .cycle_cost(state_bytes, work_duration)
                .total()
                .as_secs_f64()
    }

    /// Predicted sojourn time of the high-priority task under checkpointing:
    /// it must wait for the victim's state to be serialized and written
    /// before the slot frees (suspend part of the cycle), on top of the
    /// latency floor measured with the kill primitive minus its cleanup.
    pub fn predicted_sojourn_secs(
        &self,
        suspend_sojourn_floor_secs: f64,
        state_bytes: u64,
        work_duration: SimDuration,
    ) -> f64 {
        suspend_sojourn_floor_secs
            + self
                .cycle_cost(state_bytes, work_duration)
                .suspend
                .as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_sim::{GIB, MIB};

    #[test]
    fn stateless_tasks_pay_only_the_fixed_overhead() {
        let m = NatjamModel::default();
        let cost = m.cycle_cost(0, SimDuration::from_secs(80));
        assert!((cost.suspend.as_secs_f64() - 1.0).abs() < 1e-9);
        assert!((cost.resume.as_secs_f64() - 1.0).abs() < 1e-9);
        assert!(cost.replay.as_secs_f64() > 0.0);
        assert!(cost.total().as_secs_f64() < 5.0);
    }

    #[test]
    fn large_state_makes_checkpointing_expensive() {
        let m = NatjamModel::default();
        let small = m.cycle_cost(64 * MIB, SimDuration::from_secs(80)).total();
        let big = m.cycle_cost(2 * GIB, SimDuration::from_secs(80)).total();
        assert!(big.as_secs_f64() > small.as_secs_f64() * 5.0);
        // 2 GB of state must serialize + write + read + deserialize: tens of seconds.
        assert!(big.as_secs_f64() > 30.0, "got {}", big.as_secs_f64());
    }

    #[test]
    fn checkpoint_cost_is_paid_even_without_memory_pressure() {
        // The key qualitative contrast with the OS-assisted primitive: for a
        // light-weight task on an idle machine the OS-assisted suspend costs
        // nothing, but the checkpoint still costs the full cycle.
        let m = NatjamModel::default();
        let cost = m.cycle_cost(512 * MIB, SimDuration::from_secs(80));
        assert!(cost.total().as_secs_f64() > 5.0);
    }

    #[test]
    fn predicted_overheads_compose() {
        let m = NatjamModel::default();
        let makespan = m.predicted_makespan_secs(170.0, 256 * MIB, SimDuration::from_secs(78));
        assert!(makespan > 170.0);
        let sojourn = m.predicted_sojourn_secs(84.0, 256 * MIB, SimDuration::from_secs(78));
        assert!(sojourn > 84.0);
        // Natjam's reported ballpark: mid-single-digit percent overhead on the
        // light-weight workload.
        let overhead = (makespan - 170.0) / 170.0;
        assert!(overhead > 0.01 && overhead < 0.15, "overhead {overhead}");
    }
}
