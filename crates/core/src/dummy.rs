//! The paper's "dummy scheduler": trigger-driven task eviction from a static
//! configuration.
//!
//! Section III-B: *"We factor out the role of task eviction policies
//! implemented by the scheduler […] by building a new scheduling component for
//! Hadoop — a dummy scheduler — which dictates task eviction according to
//! static configuration files. This allows to specify, using a series of
//! simple triggers, which jobs/tasks are run in the cluster and which are
//! preempted. In addition to executing jobs and preempting tasks with our
//! suspend/resume primitives, the dummy scheduler also allows using the kill
//! primitive and to wait, for the purpose of a comparative analysis."*
//!
//! The scheduler is a thin layer over the engine's priority FIFO launcher:
//!
//! * **triggers** fire when a watched task first reaches a progress fraction
//!   (delivered exactly via [`mrp_engine::Cluster::add_progress_trigger`]);
//!   each trigger can submit new jobs and preempt the tasks of existing jobs
//!   with the configured [`PreemptionPrimitive`];
//! * **restore rules** give slots back when a job completes: suspended tasks
//!   are resumed (suspend/resume primitive), killed tasks are already pending
//!   and get relaunched by the FIFO layer.
//!
//! Trigger plans can also be loaded from JSON files, mirroring the paper's
//! static configuration files.

use crate::eviction::{EvictionCandidate, EvictionPolicy};
use crate::json::{Json, JsonError};
use crate::primitive::PreemptionPrimitive;
use mrp_engine::{
    FifoScheduler, JobSpec, MapInput, NodeId, SchedulerAction, SchedulerContext, SchedulerPolicy,
    TaskId, TaskProfile, TaskState,
};
use mrp_sim::SimRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One trigger of the dummy scheduler's static plan.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TriggerRule {
    /// Name of the job whose task is watched (e.g. `tl`).
    pub watch_job: String,
    /// Index of the watched map task within that job.
    pub watch_task: u32,
    /// Progress fraction at which the trigger fires (the paper's `r`).
    pub fraction: f64,
    /// Jobs to submit when the trigger fires (e.g. `th`).
    #[serde(default)]
    pub submit: Vec<JobSpec>,
    /// Names of jobs whose running tasks are preempted when the trigger fires.
    #[serde(default)]
    pub preempt_jobs: Vec<String>,
    /// Maximum number of tasks to preempt per job (`None` = all running).
    #[serde(default)]
    pub max_victims: Option<usize>,
}

/// A restore rule: when `when_job_completes` finishes, give slots back to the
/// previously preempted jobs listed in `restore_jobs`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RestoreRule {
    /// Job whose completion triggers the restore (e.g. `th`).
    pub when_job_completes: String,
    /// Jobs whose suspended tasks should be resumed (e.g. `tl`).
    pub restore_jobs: Vec<String>,
}

/// The full static plan: primitive, eviction policy, triggers and restores.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DummyPlan {
    /// Which preemption primitive the plan uses.
    pub primitive: PreemptionPrimitive,
    /// Which tasks to evict first when a trigger preempts a job.
    pub eviction: EvictionPolicy,
    /// The trigger rules.
    #[serde(default)]
    pub triggers: Vec<TriggerRule>,
    /// The restore rules.
    #[serde(default)]
    pub restores: Vec<RestoreRule>,
}

impl DummyPlan {
    /// A plan with no triggers: plain priority FIFO behaviour.
    pub fn empty(primitive: PreemptionPrimitive) -> Self {
        DummyPlan {
            primitive,
            eviction: EvictionPolicy::ClosestToCompletion,
            triggers: Vec::new(),
            restores: Vec::new(),
        }
    }

    /// The paper's two-job scenario: when map 0 of `low_job` reaches
    /// `fraction`, submit `high_spec` and preempt `low_job` with `primitive`;
    /// when `high_spec` completes, restore `low_job`.
    pub fn paper_scenario(
        primitive: PreemptionPrimitive,
        low_job: &str,
        high_spec: JobSpec,
        fraction: f64,
    ) -> Self {
        let high_name = high_spec.name.clone();
        DummyPlan {
            primitive,
            eviction: EvictionPolicy::ClosestToCompletion,
            triggers: vec![TriggerRule {
                watch_job: low_job.to_string(),
                watch_task: 0,
                fraction,
                submit: vec![high_spec],
                preempt_jobs: vec![low_job.to_string()],
                max_victims: None,
            }],
            restores: vec![RestoreRule {
                when_job_completes: high_name,
                restore_jobs: vec![low_job.to_string()],
            }],
        }
    }

    /// Serialises the plan to the JSON format used by configuration files.
    pub fn to_json(&self) -> String {
        Json::obj(vec![
            (
                "primitive",
                Json::Str(primitive_name(self.primitive).to_string()),
            ),
            (
                "eviction",
                Json::Str(eviction_name(self.eviction).to_string()),
            ),
            (
                "triggers",
                Json::Arr(self.triggers.iter().map(trigger_to_json).collect()),
            ),
            (
                "restores",
                Json::Arr(self.restores.iter().map(restore_to_json).collect()),
            ),
        ])
        .pretty()
    }

    /// Parses a plan from JSON.
    pub fn from_json(json: &str) -> Result<Self, PlanJsonError> {
        let root = Json::parse(json)?;
        Ok(DummyPlan {
            primitive: parse_primitive(str_field(&root, "primitive")?)?,
            eviction: parse_eviction(str_field(&root, "eviction")?)?,
            triggers: arr_field(&root, "triggers")?
                .iter()
                .map(trigger_from_json)
                .collect::<Result<_, _>>()?,
            restores: arr_field(&root, "restores")?
                .iter()
                .map(restore_from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

/// Error from reading a plan configuration file.
#[derive(Clone, Debug, PartialEq)]
pub enum PlanJsonError {
    /// The document is not valid JSON.
    Syntax(JsonError),
    /// The document is JSON but does not describe a valid plan.
    Invalid(String),
}

impl fmt::Display for PlanJsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanJsonError::Syntax(e) => write!(f, "invalid plan JSON: {e}"),
            PlanJsonError::Invalid(msg) => write!(f, "invalid plan: {msg}"),
        }
    }
}

impl std::error::Error for PlanJsonError {}

impl From<JsonError> for PlanJsonError {
    fn from(e: JsonError) -> Self {
        PlanJsonError::Syntax(e)
    }
}

fn invalid(msg: impl Into<String>) -> PlanJsonError {
    PlanJsonError::Invalid(msg.into())
}

fn str_field<'j>(obj: &'j Json, key: &str) -> Result<&'j str, PlanJsonError> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| invalid(format!("missing string field '{key}'")))
}

fn num_field(obj: &Json, key: &str) -> Result<f64, PlanJsonError> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| invalid(format!("missing numeric field '{key}'")))
}

fn u64_field(obj: &Json, key: &str) -> Result<u64, PlanJsonError> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| invalid(format!("missing integer field '{key}'")))
}

/// Missing array fields default to empty, mirroring `#[serde(default)]`.
fn arr_field<'j>(obj: &'j Json, key: &str) -> Result<&'j [Json], PlanJsonError> {
    match obj.get(key) {
        None => Ok(&[]),
        Some(v) => v
            .as_arr()
            .ok_or_else(|| invalid(format!("field '{key}' must be an array"))),
    }
}

fn primitive_name(p: PreemptionPrimitive) -> &'static str {
    match p {
        PreemptionPrimitive::Wait => "Wait",
        PreemptionPrimitive::Kill => "Kill",
        PreemptionPrimitive::SuspendResume => "SuspendResume",
        PreemptionPrimitive::NatjamCheckpoint => "NatjamCheckpoint",
    }
}

fn parse_primitive(name: &str) -> Result<PreemptionPrimitive, PlanJsonError> {
    match name {
        "Wait" => Ok(PreemptionPrimitive::Wait),
        "Kill" => Ok(PreemptionPrimitive::Kill),
        "SuspendResume" => Ok(PreemptionPrimitive::SuspendResume),
        "NatjamCheckpoint" => Ok(PreemptionPrimitive::NatjamCheckpoint),
        other => other
            .parse()
            .map_err(|_| invalid(format!("unknown primitive '{other}'"))),
    }
}

fn eviction_name(e: EvictionPolicy) -> &'static str {
    match e {
        EvictionPolicy::ClosestToCompletion => "ClosestToCompletion",
        EvictionPolicy::LeastProgress => "LeastProgress",
        EvictionPolicy::SmallestMemory => "SmallestMemory",
        EvictionPolicy::LargestMemory => "LargestMemory",
        EvictionPolicy::Random => "Random",
    }
}

fn parse_eviction(name: &str) -> Result<EvictionPolicy, PlanJsonError> {
    match name {
        "ClosestToCompletion" => Ok(EvictionPolicy::ClosestToCompletion),
        "LeastProgress" => Ok(EvictionPolicy::LeastProgress),
        "SmallestMemory" => Ok(EvictionPolicy::SmallestMemory),
        "LargestMemory" => Ok(EvictionPolicy::LargestMemory),
        "Random" => Ok(EvictionPolicy::Random),
        other => Err(invalid(format!("unknown eviction policy '{other}'"))),
    }
}

fn opt_num(v: Option<f64>) -> Json {
    match v {
        Some(n) => Json::Num(n),
        None => Json::Null,
    }
}

fn profile_to_json(p: &TaskProfile) -> Json {
    Json::obj(vec![
        (
            "parse_rate_bytes_per_sec",
            opt_num(p.parse_rate_bytes_per_sec),
        ),
        ("state_memory", Json::Num(p.state_memory as f64)),
        ("state_dirty_fraction", Json::Num(p.state_dirty_fraction)),
        ("output_ratio", opt_num(p.output_ratio)),
    ])
}

fn profile_from_json(v: &Json) -> Result<TaskProfile, PlanJsonError> {
    Ok(TaskProfile {
        parse_rate_bytes_per_sec: v.get("parse_rate_bytes_per_sec").and_then(Json::as_f64),
        state_memory: u64_field(v, "state_memory")?,
        state_dirty_fraction: num_field(v, "state_dirty_fraction")?,
        output_ratio: v.get("output_ratio").and_then(Json::as_f64),
    })
}

fn input_to_json(input: &MapInput) -> Json {
    match input {
        MapInput::DfsFile { path } => Json::obj(vec![(
            "DfsFile",
            Json::obj(vec![("path", Json::Str(path.clone()))]),
        )]),
        MapInput::Synthetic {
            tasks,
            bytes_per_task,
        } => Json::obj(vec![(
            "Synthetic",
            Json::obj(vec![
                ("tasks", Json::Num(f64::from(*tasks))),
                ("bytes_per_task", Json::Num(*bytes_per_task as f64)),
            ]),
        )]),
    }
}

fn input_from_json(v: &Json) -> Result<MapInput, PlanJsonError> {
    if let Some(dfs) = v.get("DfsFile") {
        return Ok(MapInput::DfsFile {
            path: str_field(dfs, "path")?.to_string(),
        });
    }
    if let Some(synth) = v.get("Synthetic") {
        return Ok(MapInput::Synthetic {
            tasks: u64_field(synth, "tasks")? as u32,
            bytes_per_task: u64_field(synth, "bytes_per_task")?,
        });
    }
    Err(invalid("map input must be 'DfsFile' or 'Synthetic'"))
}

fn spec_to_json(spec: &JobSpec) -> Json {
    let mut fields = vec![
        ("name", Json::Str(spec.name.clone())),
        ("priority", Json::Num(f64::from(spec.priority))),
        ("input", input_to_json(&spec.input)),
        ("reduce_tasks", Json::Num(f64::from(spec.reduce_tasks))),
        ("profile", profile_to_json(&spec.profile)),
    ];
    // Tenant metadata is emitted only when set, so single-tenant plan files
    // round-trip byte-identically to pre-tenant ones.
    if spec.tenant != 0 {
        fields.push(("tenant", Json::Num(f64::from(spec.tenant))));
    }
    if spec.best_effort {
        fields.push(("best_effort", Json::Bool(true)));
    }
    Json::obj(fields)
}

fn spec_from_json(v: &Json) -> Result<JobSpec, PlanJsonError> {
    let priority = num_field(v, "priority")?;
    Ok(JobSpec {
        name: str_field(v, "name")?.to_string(),
        priority: priority as i32,
        input: input_from_json(
            v.get("input")
                .ok_or_else(|| invalid("job spec missing 'input'"))?,
        )?,
        reduce_tasks: u64_field(v, "reduce_tasks")? as u32,
        profile: profile_from_json(
            v.get("profile")
                .ok_or_else(|| invalid("job spec missing 'profile'"))?,
        )?,
        tenant: v.get("tenant").and_then(Json::as_f64).unwrap_or(0.0) as u32,
        best_effort: matches!(v.get("best_effort"), Some(Json::Bool(true))),
    })
}

fn trigger_to_json(rule: &TriggerRule) -> Json {
    Json::obj(vec![
        ("watch_job", Json::Str(rule.watch_job.clone())),
        ("watch_task", Json::Num(f64::from(rule.watch_task))),
        ("fraction", Json::Num(rule.fraction)),
        (
            "submit",
            Json::Arr(rule.submit.iter().map(spec_to_json).collect()),
        ),
        (
            "preempt_jobs",
            Json::Arr(
                rule.preempt_jobs
                    .iter()
                    .map(|j| Json::Str(j.clone()))
                    .collect(),
            ),
        ),
        (
            "max_victims",
            match rule.max_victims {
                Some(n) => Json::Num(n as f64),
                None => Json::Null,
            },
        ),
    ])
}

fn trigger_from_json(v: &Json) -> Result<TriggerRule, PlanJsonError> {
    Ok(TriggerRule {
        watch_job: str_field(v, "watch_job")?.to_string(),
        watch_task: u64_field(v, "watch_task")? as u32,
        fraction: num_field(v, "fraction")?,
        submit: arr_field(v, "submit")?
            .iter()
            .map(spec_from_json)
            .collect::<Result<_, _>>()?,
        preempt_jobs: arr_field(v, "preempt_jobs")?
            .iter()
            .map(|j| {
                j.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| invalid("preempt_jobs entries must be strings"))
            })
            .collect::<Result<_, _>>()?,
        max_victims: v
            .get("max_victims")
            .and_then(Json::as_u64)
            .map(|n| n as usize),
    })
}

fn restore_to_json(rule: &RestoreRule) -> Json {
    Json::obj(vec![
        (
            "when_job_completes",
            Json::Str(rule.when_job_completes.clone()),
        ),
        (
            "restore_jobs",
            Json::Arr(
                rule.restore_jobs
                    .iter()
                    .map(|j| Json::Str(j.clone()))
                    .collect(),
            ),
        ),
    ])
}

fn restore_from_json(v: &Json) -> Result<RestoreRule, PlanJsonError> {
    Ok(RestoreRule {
        when_job_completes: str_field(v, "when_job_completes")?.to_string(),
        restore_jobs: arr_field(v, "restore_jobs")?
            .iter()
            .map(|j| {
                j.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| invalid("restore_jobs entries must be strings"))
            })
            .collect::<Result<_, _>>()?,
    })
}

/// The dummy scheduler itself.
pub struct DummyScheduler {
    plan: DummyPlan,
    launcher: FifoScheduler,
    rng: SimRng,
}

impl DummyScheduler {
    /// Creates a dummy scheduler from a static plan.
    pub fn new(plan: DummyPlan) -> Self {
        DummyScheduler {
            plan,
            // The dummy scheduler controls resumption explicitly through its
            // restore rules, so the underlying launcher must not resume
            // suspended tasks on its own.
            launcher: FifoScheduler::non_resuming(),
            rng: SimRng::new(0x0D_D0),
        }
    }

    /// The plan this scheduler executes.
    pub fn plan(&self) -> &DummyPlan {
        &self.plan
    }

    /// The progress triggers the cluster must register (job name, task index,
    /// fraction) for this plan to work; convenience for experiment harnesses:
    ///
    /// ```ignore
    /// for (job, task, fraction) in scheduler.required_triggers() {
    ///     cluster.add_progress_trigger(&job, task, fraction);
    /// }
    /// ```
    pub fn required_triggers(&self) -> Vec<(String, u32, f64)> {
        self.plan
            .triggers
            .iter()
            .map(|t| (t.watch_job.clone(), t.watch_task, t.fraction))
            .collect()
    }

    fn job_id_by_name(ctx: &SchedulerContext<'_>, name: &str) -> Option<mrp_engine::JobId> {
        ctx.jobs
            .values()
            .find(|j| j.spec.name == name)
            .map(|j| j.id)
    }

    fn preempt_job(
        &mut self,
        ctx: &SchedulerContext<'_>,
        job_name: &str,
        max_victims: Option<usize>,
    ) -> Vec<SchedulerAction> {
        let Some(job_id) = Self::job_id_by_name(ctx, job_name) else {
            return Vec::new();
        };
        let job = &ctx.jobs[&job_id];
        let candidates: Vec<EvictionCandidate> = job
            .tasks
            .iter()
            .filter(|t| t.state == TaskState::Running)
            .map(|t| EvictionCandidate {
                task: t.id,
                progress: t.progress,
                memory_bytes: job.spec.profile.state_memory + 192 * 1024 * 1024, // base task footprint estimate
            })
            .collect();
        let count = max_victims.unwrap_or(candidates.len());
        self.plan
            .eviction
            .pick(&candidates, count, &mut self.rng)
            .into_iter()
            .filter_map(|task| self.plan.primitive.preempt_action(task))
            .collect()
    }

    fn restore_job(&self, ctx: &SchedulerContext<'_>, job_name: &str) -> Vec<SchedulerAction> {
        let Some(job_id) = Self::job_id_by_name(ctx, job_name) else {
            return Vec::new();
        };
        ctx.jobs[&job_id]
            .tasks
            .iter()
            .filter_map(|t| self.plan.primitive.restore_action(t.id, t.state))
            .collect()
    }
}

impl SchedulerPolicy for DummyScheduler {
    fn on_heartbeat(&mut self, ctx: &SchedulerContext<'_>, node: NodeId) -> Vec<SchedulerAction> {
        self.launcher.on_heartbeat(ctx, node)
    }

    fn on_progress_trigger(
        &mut self,
        ctx: &SchedulerContext<'_>,
        task: TaskId,
        fraction: f64,
    ) -> Vec<SchedulerAction> {
        let Some(job) = ctx.jobs.get(&task.job) else {
            return Vec::new();
        };
        let job_name = job.spec.name.clone();
        let matching: Vec<TriggerRule> = self
            .plan
            .triggers
            .iter()
            .filter(|r| {
                r.watch_job == job_name
                    && r.watch_task == task.index
                    && (r.fraction - fraction).abs() < 1e-9
            })
            .cloned()
            .collect();
        let mut actions = Vec::new();
        for rule in matching {
            for spec in &rule.submit {
                actions.push(SchedulerAction::SubmitJob(spec.clone()));
            }
            for victim_job in &rule.preempt_jobs {
                actions.extend(self.preempt_job(ctx, victim_job, rule.max_victims));
            }
        }
        actions
    }

    fn on_job_finished(
        &mut self,
        ctx: &SchedulerContext<'_>,
        job: mrp_engine::JobId,
    ) -> Vec<SchedulerAction> {
        let Some(finished) = ctx.jobs.get(&job) else {
            return Vec::new();
        };
        let name = finished.spec.name.clone();
        let mut actions = Vec::new();
        let restores: Vec<RestoreRule> = self
            .plan
            .restores
            .iter()
            .filter(|r| r.when_job_completes == name)
            .cloned()
            .collect();
        for rule in restores {
            for job_name in &rule.restore_jobs {
                actions.extend(self.restore_job(ctx, job_name));
            }
        }
        actions
    }

    fn name(&self) -> &str {
        "dummy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_engine::{Cluster, ClusterConfig, TaskProfile};
    use mrp_sim::{SimTime, MIB};

    fn lightweight_scenario(
        primitive: PreemptionPrimitive,
        fraction: f64,
    ) -> mrp_engine::ClusterReport {
        let high = JobSpec::map_only("th", "/input-high").with_priority(10);
        let plan = DummyPlan::paper_scenario(primitive, "tl", high, fraction);
        let scheduler = DummyScheduler::new(plan);
        let triggers = scheduler.required_triggers();
        let mut cluster = Cluster::new(ClusterConfig::paper_single_node(), Box::new(scheduler));
        cluster.create_input_file("/input-low", 512 * MIB).unwrap();
        cluster.create_input_file("/input-high", 512 * MIB).unwrap();
        for (job, task, fraction) in triggers {
            cluster.add_progress_trigger(&job, task, fraction);
        }
        cluster.submit_job(JobSpec::map_only("tl", "/input-low").with_priority(0));
        cluster.run(SimTime::from_secs(4 * 3_600));
        cluster.report()
    }

    #[test]
    fn plan_json_round_trips() {
        let plan = DummyPlan::paper_scenario(
            PreemptionPrimitive::SuspendResume,
            "tl",
            JobSpec::synthetic("th", 1, 512 * MIB).with_priority(10),
            0.5,
        );
        let json = plan.to_json();
        let back = DummyPlan::from_json(&json).unwrap();
        assert_eq!(plan, back);
        assert!(json.contains("SuspendResume"));
        assert!(DummyPlan::from_json("{not json").is_err());
    }

    #[test]
    fn suspend_scenario_completes_and_preserves_work() {
        let report = lightweight_scenario(PreemptionPrimitive::SuspendResume, 0.5);
        assert!(report.all_jobs_complete());
        let tl = report.job("tl").unwrap();
        assert_eq!(
            tl.tasks[0].suspend_cycles, 1,
            "tl must be suspended exactly once"
        );
        assert_eq!(
            tl.tasks[0].attempts, 1,
            "suspend/resume keeps the same attempt"
        );
        assert_eq!(
            tl.wasted_work_secs(),
            0.0,
            "no work is wasted by suspension"
        );
        let th = report.job("th").unwrap();
        assert!(th.sojourn_secs.unwrap() < 100.0, "th must not wait for tl");
    }

    #[test]
    fn kill_scenario_wastes_work() {
        let report = lightweight_scenario(PreemptionPrimitive::Kill, 0.5);
        assert!(report.all_jobs_complete());
        let tl = report.job("tl").unwrap();
        assert_eq!(
            tl.tasks[0].attempts, 2,
            "the killed task restarts from scratch"
        );
        assert!(tl.wasted_work_secs() > 20.0, "about half the work is lost");
        let th = report.job("th").unwrap();
        assert!(th.sojourn_secs.unwrap() < 110.0);
    }

    #[test]
    fn wait_scenario_delays_the_high_priority_job() {
        let report = lightweight_scenario(PreemptionPrimitive::Wait, 0.5);
        assert!(report.all_jobs_complete());
        let tl = report.job("tl").unwrap();
        assert_eq!(tl.tasks[0].suspend_cycles, 0);
        assert_eq!(tl.tasks[0].attempts, 1);
        let th = report.job("th").unwrap();
        assert!(
            th.sojourn_secs.unwrap() > 110.0,
            "th has to wait ~half of tl plus its own runtime"
        );
    }

    #[test]
    fn sojourn_ordering_matches_the_paper() {
        let susp = lightweight_scenario(PreemptionPrimitive::SuspendResume, 0.5);
        let kill = lightweight_scenario(PreemptionPrimitive::Kill, 0.5);
        let wait = lightweight_scenario(PreemptionPrimitive::Wait, 0.5);
        let s = susp.sojourn_secs("th").unwrap();
        let k = kill.sojourn_secs("th").unwrap();
        let w = wait.sojourn_secs("th").unwrap();
        assert!(s <= k, "suspend sojourn ({s}) should not exceed kill ({k})");
        assert!(k < w, "kill sojourn ({k}) must beat wait ({w})");

        let ms = susp.makespan_secs().unwrap();
        let mk = kill.makespan_secs().unwrap();
        let mw = wait.makespan_secs().unwrap();
        assert!(mw <= ms + 5.0, "wait has (near-)optimal makespan");
        assert!(ms < mk, "suspend makespan ({ms}) must beat kill ({mk})");
    }

    #[test]
    fn memory_hungry_scenario_pages_and_still_completes() {
        let high = JobSpec::map_only("th", "/input-high")
            .with_priority(10)
            .with_profile(TaskProfile::memory_hungry(2048 * MIB));
        let plan = DummyPlan::paper_scenario(PreemptionPrimitive::SuspendResume, "tl", high, 0.5);
        let scheduler = DummyScheduler::new(plan);
        let triggers = scheduler.required_triggers();
        let mut cluster = Cluster::new(ClusterConfig::paper_single_node(), Box::new(scheduler));
        cluster.create_input_file("/input-low", 512 * MIB).unwrap();
        cluster.create_input_file("/input-high", 512 * MIB).unwrap();
        for (job, task, fraction) in triggers {
            cluster.add_progress_trigger(&job, task, fraction);
        }
        cluster.submit_job(
            JobSpec::map_only("tl", "/input-low")
                .with_priority(0)
                .with_profile(TaskProfile::memory_hungry(2048 * MIB)),
        );
        cluster.run(SimTime::from_secs(4 * 3_600));
        let report = cluster.report();
        assert!(report.all_jobs_complete());
        assert!(
            report.total_swap_out_bytes() > 0,
            "2 GB + 2 GB on a 4 GB node must page"
        );
        let tl = report.job("tl").unwrap();
        assert!(
            tl.tasks[0].paged_out_bytes > 0,
            "the suspended task is the paging victim"
        );
    }

    #[test]
    fn empty_plan_behaves_like_fifo() {
        let scheduler = DummyScheduler::new(DummyPlan::empty(PreemptionPrimitive::SuspendResume));
        assert!(scheduler.required_triggers().is_empty());
        let mut cluster = Cluster::new(ClusterConfig::paper_single_node(), Box::new(scheduler));
        cluster.create_input_file("/a", 256 * MIB).unwrap();
        cluster.submit_job(JobSpec::map_only("only", "/a"));
        cluster.run(SimTime::from_secs(3_600));
        assert!(cluster.report().all_jobs_complete());
    }
}
