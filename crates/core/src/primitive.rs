//! The three task preemption primitives compared in the paper, plus the
//! checkpoint-based alternative (Natjam) used as a qualitative reference.
//!
//! * [`PreemptionPrimitive::Wait`] — do nothing; the high-priority task waits
//!   for the slot. No work is wasted, but latency can be the entire remaining
//!   runtime of the low-priority task.
//! * [`PreemptionPrimitive::Kill`] — kill the low-priority task. The slot is
//!   released quickly (after a cleanup attempt removes partial output), but
//!   all work done so far is thrown away and re-done later.
//! * [`PreemptionPrimitive::SuspendResume`] — the paper's contribution: stop
//!   the task process with `SIGTSTP` and continue it later with `SIGCONT`.
//!   State stays in memory and is paged to swap only under actual memory
//!   pressure.
//! * [`PreemptionPrimitive::NatjamCheckpoint`] — application-level
//!   suspend/resume that serializes task state to disk on every preemption
//!   (and reads it back on resume), regardless of memory pressure; modelled
//!   analytically in [`crate::natjam`].

use mrp_engine::{SchedulerAction, TaskId, TaskState};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A preemption primitive: what to do with a running low-priority task when a
/// high-priority task needs its slot.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum PreemptionPrimitive {
    /// Wait for the task to finish.
    Wait,
    /// Kill the task and reschedule it from scratch later.
    Kill,
    /// Suspend the task with `SIGTSTP`, resume it later with `SIGCONT`.
    SuspendResume,
    /// Application-level checkpointing (Natjam-style); behaves like
    /// suspend/resume for scheduling purposes but pays serialization costs
    /// accounted by [`crate::natjam::NatjamModel`].
    NatjamCheckpoint,
}

impl PreemptionPrimitive {
    /// All primitives evaluated in the paper's figures, in plot order.
    pub const PAPER_SET: [PreemptionPrimitive; 3] = [
        PreemptionPrimitive::Wait,
        PreemptionPrimitive::Kill,
        PreemptionPrimitive::SuspendResume,
    ];

    /// The action (if any) that evicts a task under this primitive.
    pub fn preempt_action(self, task: TaskId) -> Option<SchedulerAction> {
        match self {
            PreemptionPrimitive::Wait => None,
            PreemptionPrimitive::Kill => Some(SchedulerAction::Kill { task }),
            PreemptionPrimitive::SuspendResume | PreemptionPrimitive::NatjamCheckpoint => {
                Some(SchedulerAction::Suspend { task })
            }
        }
    }

    /// The action (if any) that gives the slot back to a previously preempted
    /// task in `state` under this primitive.
    pub fn restore_action(self, task: TaskId, state: TaskState) -> Option<SchedulerAction> {
        match self {
            PreemptionPrimitive::Wait => None,
            // A killed task is already schedulable; the launch policy will
            // relaunch it. Nothing explicit to do.
            PreemptionPrimitive::Kill => None,
            PreemptionPrimitive::SuspendResume | PreemptionPrimitive::NatjamCheckpoint => {
                if state == TaskState::Suspended {
                    Some(SchedulerAction::Resume { task })
                } else {
                    None
                }
            }
        }
    }

    /// Whether this primitive preserves the work done before preemption.
    pub fn preserves_work(self) -> bool {
        !matches!(self, PreemptionPrimitive::Kill)
    }

    /// Whether this primitive releases the slot promptly (bounded by a
    /// heartbeat plus, for kill, the cleanup attempt).
    pub fn releases_slot_promptly(self) -> bool {
        !matches!(self, PreemptionPrimitive::Wait)
    }

    /// Short label used in plots, traces and CSV output (`wait`, `kill`,
    /// `susp`, `natjam`) — matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            PreemptionPrimitive::Wait => "wait",
            PreemptionPrimitive::Kill => "kill",
            PreemptionPrimitive::SuspendResume => "susp",
            PreemptionPrimitive::NatjamCheckpoint => "natjam",
        }
    }
}

impl fmt::Display for PreemptionPrimitive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error returned when parsing an unknown primitive name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownPrimitive(pub String);

impl fmt::Display for UnknownPrimitive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown preemption primitive: {}", self.0)
    }
}

impl std::error::Error for UnknownPrimitive {}

impl FromStr for PreemptionPrimitive {
    type Err = UnknownPrimitive;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "wait" => Ok(PreemptionPrimitive::Wait),
            "kill" => Ok(PreemptionPrimitive::Kill),
            "susp" | "suspend" | "suspend-resume" | "suspend_resume" => {
                Ok(PreemptionPrimitive::SuspendResume)
            }
            "natjam" | "checkpoint" => Ok(PreemptionPrimitive::NatjamCheckpoint),
            other => Err(UnknownPrimitive(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_engine::{JobId, TaskKind};

    fn task() -> TaskId {
        TaskId {
            job: JobId(1),
            kind: TaskKind::Map,
            index: 0,
        }
    }

    #[test]
    fn preempt_actions_match_semantics() {
        assert_eq!(PreemptionPrimitive::Wait.preempt_action(task()), None);
        assert!(matches!(
            PreemptionPrimitive::Kill.preempt_action(task()),
            Some(SchedulerAction::Kill { .. })
        ));
        assert!(matches!(
            PreemptionPrimitive::SuspendResume.preempt_action(task()),
            Some(SchedulerAction::Suspend { .. })
        ));
        assert!(matches!(
            PreemptionPrimitive::NatjamCheckpoint.preempt_action(task()),
            Some(SchedulerAction::Suspend { .. })
        ));
    }

    #[test]
    fn restore_actions() {
        assert_eq!(
            PreemptionPrimitive::SuspendResume.restore_action(task(), TaskState::Suspended),
            Some(SchedulerAction::Resume { task: task() })
        );
        assert_eq!(
            PreemptionPrimitive::SuspendResume.restore_action(task(), TaskState::Pending),
            None
        );
        assert_eq!(
            PreemptionPrimitive::Kill.restore_action(task(), TaskState::Pending),
            None
        );
        assert_eq!(
            PreemptionPrimitive::Wait.restore_action(task(), TaskState::Suspended),
            None
        );
    }

    #[test]
    fn semantic_predicates() {
        assert!(PreemptionPrimitive::Wait.preserves_work());
        assert!(!PreemptionPrimitive::Kill.preserves_work());
        assert!(PreemptionPrimitive::SuspendResume.preserves_work());
        assert!(!PreemptionPrimitive::Wait.releases_slot_promptly());
        assert!(PreemptionPrimitive::Kill.releases_slot_promptly());
        assert!(PreemptionPrimitive::SuspendResume.releases_slot_promptly());
    }

    #[test]
    fn parsing_and_labels() {
        for p in [
            PreemptionPrimitive::Wait,
            PreemptionPrimitive::Kill,
            PreemptionPrimitive::SuspendResume,
            PreemptionPrimitive::NatjamCheckpoint,
        ] {
            assert_eq!(p.label().parse::<PreemptionPrimitive>().unwrap(), p);
            assert_eq!(p.to_string(), p.label());
        }
        assert_eq!(
            "SUSPEND".parse::<PreemptionPrimitive>().unwrap(),
            PreemptionPrimitive::SuspendResume
        );
        assert!("teleport".parse::<PreemptionPrimitive>().is_err());
        assert_eq!(PreemptionPrimitive::PAPER_SET.len(), 3);
    }
}
