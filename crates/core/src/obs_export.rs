//! Exporters for the engine's observability state: Chrome `trace_event`
//! JSON for the span trace, plain JSON dumps for the sampled time series and
//! the event-loop profile, and a schema validator for exported traces.
//!
//! The exporters sit here rather than in `mrp-engine` because this crate is
//! the one that already owns a JSON value type ([`crate::json::Json`]) and
//! depends on the engine. Everything renders from the public accessors on
//! [`ObsState`](mrp_engine::ObsState), so harnesses can also roll their own
//! formats.
//!
//! Chrome traces load in `chrome://tracing` or <https://ui.perfetto.dev>:
//! each span family becomes a category (`attempt`, `suspend`,
//! `shuffle_stall`, `partition`), each node a thread lane, and virtual
//! simulation time maps directly onto the trace's microsecond timestamps.

use crate::json::Json;
use mrp_engine::Span;
use mrp_sim::{ProfileReport, SimTime, TimeSeriesSampler};
use std::collections::HashMap;

/// Renders spans as a Chrome `trace_event` JSON array of `B`/`E` pairs.
///
/// Spans still open when the run ended are clamped to `finished_at` (never
/// before their begin), so the output always balances. Timestamps are
/// virtual-time microseconds; the node id becomes the `tid` lane and the
/// span family the `cat` category.
///
/// ```
/// use mrp_engine::{Cluster, ClusterConfig, FifoScheduler, JobSpec, ObsConfig};
/// use mrp_preempt::obs_export::{chrome_trace_json, validate_chrome_trace};
/// use mrp_sim::{SimTime, MIB};
///
/// let cfg = ClusterConfig::paper_single_node().with_obs(ObsConfig::full());
/// let mut cluster = Cluster::new(cfg, Box::new(FifoScheduler::new()));
/// cluster.create_input_file("/in", 256 * MIB).unwrap();
/// cluster.submit_job(JobSpec::map_only("tl", "/in"));
/// cluster.run(SimTime::from_secs(3_600));
/// let obs = cluster.observability().unwrap();
/// let trace = chrome_trace_json(obs.spans(), cluster.now()).pretty();
/// validate_chrome_trace(&trace).unwrap();
/// ```
pub fn chrome_trace_json(spans: &[Span], finished_at: SimTime) -> Json {
    let mut events = Vec::with_capacity(spans.len() * 2);
    for span in spans {
        let end = span.end.unwrap_or(finished_at).max(span.begin);
        for (ph, ts) in [("B", span.begin), ("E", end)] {
            events.push(Json::obj(vec![
                ("name", Json::Str(span.name.clone())),
                ("cat", Json::Str(span.kind.category().to_string())),
                ("ph", Json::Str(ph.to_string())),
                ("ts", Json::Num(ts.as_micros() as f64)),
                ("pid", Json::Num(1.0)),
                ("tid", Json::Num(span.node.0 as f64)),
            ]));
        }
    }
    // Chrome requires begin/end events in timestamp order per thread;
    // sorting the whole array (stably, so B precedes its zero-length E)
    // satisfies that and keeps the output deterministic.
    events.sort_by_key(|e| e.get("ts").and_then(Json::as_u64).unwrap_or(0));
    Json::Arr(events)
}

/// Renders the sampled time series as JSON:
/// `{"interval_us": .., "columns": [..], "rows": [[at_us, v0, v1, ..], ..]}`.
pub fn series_json(sampler: &TimeSeriesSampler) -> Json {
    let rows = sampler
        .rows()
        .iter()
        .map(|row| {
            let mut cells = Vec::with_capacity(row.values.len() + 1);
            cells.push(Json::Num(row.at.as_micros() as f64));
            cells.extend(row.values.iter().map(|v| Json::Num(*v as f64)));
            Json::Arr(cells)
        })
        .collect();
    Json::obj(vec![
        (
            "interval_us",
            Json::Num(sampler.interval().as_micros() as f64),
        ),
        (
            "columns",
            Json::Arr(
                sampler
                    .columns()
                    .iter()
                    .map(|c| Json::Str(c.clone()))
                    .collect(),
            ),
        ),
        ("rows", Json::Arr(rows)),
    ])
}

/// Renders an event-loop profile as JSON, mirroring
/// [`ProfileReport::table`] but machine-readable.
pub fn profile_json(report: &ProfileReport) -> Json {
    let rows = |rows: &[mrp_sim::ProfileRow]| {
        Json::Arr(
            rows.iter()
                .map(|r| {
                    Json::obj(vec![
                        ("name", Json::Str(r.name.clone())),
                        ("count", Json::Num(r.count as f64)),
                        ("wall_secs", Json::Num(r.wall_secs)),
                    ])
                })
                .collect(),
        )
    };
    Json::obj(vec![
        ("loop_wall_secs", Json::Num(report.loop_wall_secs)),
        ("attributed_secs", Json::Num(report.attributed_secs)),
        ("idle_secs", Json::Num(report.idle_secs)),
        ("attribution", Json::Num(report.attribution())),
        ("events", rows(&report.events)),
        ("actions", rows(&report.actions)),
    ])
}

/// Validates a Chrome `trace_event` export: the text must parse as a JSON
/// array of `B`/`E` events carrying `name`/`cat`/`ts`/`pid`/`tid`, every
/// `E` must close a matching open `B` at a timestamp no earlier than its
/// begin, and nothing may remain open at the end.
///
/// This is the schema check CI runs against a `swim_cluster` export; it is
/// deliberately stricter than what the Chrome viewer tolerates.
pub fn validate_chrome_trace(text: &str) -> Result<(), String> {
    let json = Json::parse(text).map_err(|e| format!("not valid JSON: {e:?}"))?;
    let Json::Arr(events) = json else {
        return Err("trace must be a JSON array of events".to_string());
    };
    // LIFO per (lane, category, name): nested same-name spans would close in
    // reverse begin order, which is also what the trace viewer assumes.
    let mut open: HashMap<(u64, String, String), Vec<u64>> = HashMap::new();
    let mut last_ts = 0u64;
    for (i, event) in events.iter().enumerate() {
        let field = |key: &str| {
            event
                .get(key)
                .ok_or_else(|| format!("event {i}: missing field `{key}`"))
        };
        let ph = field("ph")?
            .as_str()
            .ok_or_else(|| format!("event {i}: `ph` must be a string"))?;
        let name = field("name")?
            .as_str()
            .ok_or_else(|| format!("event {i}: `name` must be a string"))?;
        let cat = field("cat")?
            .as_str()
            .ok_or_else(|| format!("event {i}: `cat` must be a string"))?;
        let ts = field("ts")?
            .as_u64()
            .ok_or_else(|| format!("event {i}: `ts` must be a non-negative integer"))?;
        field("pid")?
            .as_u64()
            .ok_or_else(|| format!("event {i}: `pid` must be a non-negative integer"))?;
        let tid = field("tid")?
            .as_u64()
            .ok_or_else(|| format!("event {i}: `tid` must be a non-negative integer"))?;
        if ts < last_ts {
            return Err(format!(
                "event {i}: timestamps must be non-decreasing ({ts} after {last_ts})"
            ));
        }
        last_ts = ts;
        let key = (tid, cat.to_string(), name.to_string());
        match ph {
            "B" => open.entry(key).or_default().push(ts),
            "E" => {
                let begun = open
                    .get_mut(&key)
                    .and_then(Vec::pop)
                    .ok_or_else(|| format!("event {i}: E `{name}` without a matching B"))?;
                if ts < begun {
                    return Err(format!(
                        "event {i}: span `{name}` ends at {ts}, before its begin {begun}"
                    ));
                }
            }
            other => return Err(format!("event {i}: unsupported phase `{other}`")),
        }
    }
    let unclosed: usize = open.values().map(Vec::len).sum();
    if unclosed > 0 {
        return Err(format!("{unclosed} span(s) left open at end of trace"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ph: &str, name: &str, ts: u64, tid: u64) -> Json {
        Json::obj(vec![
            ("name", Json::Str(name.to_string())),
            ("cat", Json::Str("attempt".to_string())),
            ("ph", Json::Str(ph.to_string())),
            ("ts", Json::Num(ts as f64)),
            ("pid", Json::Num(1.0)),
            ("tid", Json::Num(tid as f64)),
        ])
    }

    #[test]
    fn validator_accepts_balanced_trace() {
        let trace = Json::Arr(vec![
            ev("B", "a", 0, 1),
            ev("B", "b", 5, 2),
            ev("E", "a", 10, 1),
            ev("E", "b", 10, 2),
        ]);
        validate_chrome_trace(&trace.pretty()).unwrap();
    }

    #[test]
    fn validator_rejects_unbalanced_and_unordered_traces() {
        let open = Json::Arr(vec![ev("B", "a", 0, 1)]);
        assert!(validate_chrome_trace(&open.pretty())
            .unwrap_err()
            .contains("left open"));
        let stray = Json::Arr(vec![ev("E", "a", 4, 1)]);
        assert!(validate_chrome_trace(&stray.pretty())
            .unwrap_err()
            .contains("without a matching B"));
        let unordered = Json::Arr(vec![
            ev("B", "a", 9, 1),
            ev("E", "a", 9, 1),
            ev("B", "b", 3, 1),
        ]);
        assert!(validate_chrome_trace(&unordered.pretty())
            .unwrap_err()
            .contains("non-decreasing"));
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
    }

    #[test]
    fn series_and_profile_render() {
        use mrp_sim::{SimDuration, SimTime, TimeSeriesSampler};
        let mut sampler = TimeSeriesSampler::new(
            SimDuration::from_secs(1),
            vec!["x".to_string(), "y".to_string()],
        );
        sampler.record(SimTime::from_secs(1), vec![3, 4]);
        let json = series_json(&sampler);
        assert_eq!(json.get("columns").unwrap().as_arr().unwrap().len(), 2);
        let rows = json.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].as_arr().unwrap()[0].as_u64(), Some(1_000_000));

        let report = ProfileReport {
            events: vec![mrp_sim::ProfileRow {
                name: "heartbeat_wheel".to_string(),
                count: 10,
                wall_secs: 0.5,
            }],
            actions: vec![],
            loop_wall_secs: 0.5,
            attributed_secs: 0.5,
            idle_secs: 0.0,
        };
        let json = profile_json(&report);
        assert_eq!(
            json.get("events").unwrap().as_arr().unwrap()[0]
                .get("count")
                .unwrap()
                .as_u64(),
            Some(10)
        );
    }
}
