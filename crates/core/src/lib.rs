//! # mrp-preempt — OS-assisted task preemption for Hadoop
//!
//! This crate is the reproduction of the paper's contribution ("OS-Assisted
//! Task Preemption for Hadoop", Pastorelli, Dell'Amico, Michiardi — ICDCS
//! 2014) as a library:
//!
//! * [`PreemptionPrimitive`] — the `wait` / `kill` / `suspend-resume`
//!   primitives (plus a Natjam-style checkpoint reference point) and their
//!   mapping onto JobTracker actions;
//! * [`DummyScheduler`] / [`DummyPlan`] — the paper's trigger-driven "dummy"
//!   scheduler, configurable from static (JSON) files, used by every
//!   experiment in Section IV;
//! * [`EvictionPolicy`] — the task eviction policies discussed in Section V-A
//!   (closest-to-completion, smallest-memory-footprint, …);
//! * [`FairScheduler`] and [`HfspScheduler`] — preemptive fairness and
//!   size-based schedulers showing the primitive plugged into realistic
//!   policies (Section II's motivation and the HFSP follow-up);
//! * [`NatjamModel`] — an analytical cost model of application-level
//!   checkpointing for the comparison the paper makes qualitatively.
//!
//! The mechanics of suspension (heartbeat-piggybacked commands, `SIGTSTP` /
//! `SIGCONT` on the task processes, paging of suspended tasks under memory
//! pressure) live in the `mrp-engine` and `mrp-simos` substrate crates; this
//! crate supplies the policies and the user-facing vocabulary.
//!
//! ```
//! use mrp_preempt::{DummyPlan, DummyScheduler, PreemptionPrimitive};
//! use mrp_engine::{Cluster, ClusterConfig, JobSpec};
//! use mrp_sim::{SimTime, MIB};
//!
//! // The paper's scenario: suspend tl at 50% progress to run th.
//! let high = JobSpec::map_only("th", "/input-high").with_priority(10);
//! let plan = DummyPlan::paper_scenario(PreemptionPrimitive::SuspendResume, "tl", high, 0.5);
//! let scheduler = DummyScheduler::new(plan);
//! let triggers = scheduler.required_triggers();
//!
//! let mut cluster = Cluster::new(ClusterConfig::paper_single_node(), Box::new(scheduler));
//! cluster.create_input_file("/input-low", 512 * MIB).unwrap();
//! cluster.create_input_file("/input-high", 512 * MIB).unwrap();
//! for (job, task, fraction) in triggers {
//!     cluster.add_progress_trigger(&job, task, fraction);
//! }
//! cluster.submit_job(JobSpec::map_only("tl", "/input-low"));
//! cluster.run(SimTime::from_secs(3_600));
//!
//! let report = cluster.report();
//! assert!(report.all_jobs_complete());
//! assert_eq!(report.job("tl").unwrap().tasks[0].suspend_cycles, 1);
//! ```

#![warn(missing_docs)]

mod dummy;
mod eviction;
pub mod json;
mod natjam;
pub mod obs_export;
mod pipeline;
mod primitive;
mod schedulers;

pub use dummy::{DummyPlan, DummyScheduler, PlanJsonError, RestoreRule, TriggerRule};
pub use eviction::{EvictionCandidate, EvictionPolicy};
pub use natjam::{CheckpointCost, NatjamModel};
pub use pipeline::{
    eviction_select, remaining_size, running_tasks_preemptable, Action, ActionPipeline, Allocate,
    Backfill, DrfJobOrder, FairJobOrder, HfspJobOrder, MultiTenantConfig, Preempt, Reclaim,
};
pub use primitive::{PreemptionPrimitive, UnknownPrimitive};
pub use schedulers::{FairScheduler, HfspScheduler};

#[cfg(test)]
mod randomized_tests {
    //! Property-style tests driven by seeded randomization (the container has
    //! no proptest); fixed seeds keep every failure reproducible.

    use super::*;
    use mrp_engine::{Cluster, ClusterConfig, JobSpec};
    use mrp_sim::{SimRng, SimTime, MIB};

    fn run_scenario(primitive: PreemptionPrimitive, fraction: f64) -> mrp_engine::ClusterReport {
        let high = JobSpec::map_only("th", "/h").with_priority(10);
        let plan = DummyPlan::paper_scenario(primitive, "tl", high, fraction);
        let scheduler = DummyScheduler::new(plan);
        let triggers = scheduler.required_triggers();
        let mut cluster = Cluster::new(ClusterConfig::paper_single_node(), Box::new(scheduler));
        cluster.create_input_file("/l", 512 * MIB).unwrap();
        cluster.create_input_file("/h", 512 * MIB).unwrap();
        for (job, task, f) in triggers {
            cluster.add_progress_trigger(&job, task, f);
        }
        cluster.submit_job(JobSpec::map_only("tl", "/l"));
        cluster.run(SimTime::from_secs(8 * 3_600));
        cluster.report()
    }

    /// For any preemption point, the paper's qualitative ordering holds:
    /// suspend/resume never wastes work, kill always restarts the victim,
    /// wait never preempts, and all three complete the workload.
    #[test]
    fn primitive_semantics_hold_for_any_preemption_point() {
        let mut rng = SimRng::new(0xC0E01);
        for _ in 0..12 {
            let fraction = 0.05 + rng.unit() * 0.90;
            let susp = run_scenario(PreemptionPrimitive::SuspendResume, fraction);
            let kill = run_scenario(PreemptionPrimitive::Kill, fraction);
            let wait = run_scenario(PreemptionPrimitive::Wait, fraction);
            for r in [&susp, &kill, &wait] {
                assert!(r.all_jobs_complete());
            }
            assert_eq!(susp.job("tl").unwrap().tasks[0].attempts, 1);
            assert_eq!(susp.job("tl").unwrap().tasks[0].suspend_cycles, 1);
            assert!(susp.total_wasted_work_secs() == 0.0);
            assert!(kill.job("tl").unwrap().tasks[0].attempts >= 2);
            assert!(kill.total_wasted_work_secs() > 0.0);
            assert_eq!(wait.job("tl").unwrap().tasks[0].suspend_cycles, 0);
            // Latency: suspension and killing both beat waiting.
            let s = susp.sojourn_secs("th").unwrap();
            let k = kill.sojourn_secs("th").unwrap();
            let w = wait.sojourn_secs("th").unwrap();
            assert!(s <= k + 1.0);
            assert!(s < w + 1.0);
            // Makespan: suspension tracks wait; kill pays for redone work.
            let ms = susp.makespan_secs().unwrap();
            let mk = kill.makespan_secs().unwrap();
            assert!(ms <= mk + 1.0);
        }
    }

    /// Wait's sojourn time decreases as the preemption point moves later,
    /// while kill's makespan increases: the monotonic trends behind
    /// Figures 2a and 2b.
    #[test]
    fn figure2_trends_are_monotone() {
        let mut rng = SimRng::new(0xC0E02);
        for _ in 0..4 {
            let lo = 0.1 + rng.unit() * 0.3;
            let hi = 0.6 + rng.unit() * 0.3;
            let wait_lo = run_scenario(PreemptionPrimitive::Wait, lo);
            let wait_hi = run_scenario(PreemptionPrimitive::Wait, hi);
            assert!(
                wait_hi.sojourn_secs("th").unwrap() < wait_lo.sojourn_secs("th").unwrap(),
                "wait sojourn must shrink when th arrives later"
            );
            let kill_lo = run_scenario(PreemptionPrimitive::Kill, lo);
            let kill_hi = run_scenario(PreemptionPrimitive::Kill, hi);
            assert!(
                kill_hi.makespan_secs().unwrap() > kill_lo.makespan_secs().unwrap(),
                "kill makespan must grow when more work is thrown away"
            );
        }
    }
}
