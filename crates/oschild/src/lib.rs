//! # mrp-oschild — the preemption primitive on a real operating system
//!
//! The simulated stack reproduces the paper's *evaluation*; this crate
//! demonstrates that the *mechanism* is exactly what the paper says it is:
//! Hadoop tasks are ordinary child processes, so a TaskTracker can suspend
//! them with `SIGTSTP`, resume them with `SIGCONT`, and let the OS keep (or
//! page) their memory in the meantime.
//!
//! [`WorkerProcess`] spawns a real child process (by default a small
//! shell loop standing in for a task JVM), delivers job-control signals to
//! it, and observes its state through `/proc/<pid>/stat` — the same
//! information a TaskTracker would use. The example `os_prototype` and the
//! `os_prototype` bench measure real suspend/resume round-trip latencies.
//!
//! Everything here is Unix-only; on other platforms the API returns
//! [`OsChildError::Unsupported`].

#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::fmt;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Errors from driving a real worker process.
#[derive(Debug)]
pub enum OsChildError {
    /// Spawning the child failed.
    Spawn(std::io::Error),
    /// Sending a signal failed (e.g. the process is gone).
    Signal(std::io::Error),
    /// `/proc` could not be read for the child.
    ProcRead(std::io::Error),
    /// The child did not reach the expected state within the timeout.
    Timeout {
        /// The state that was expected (`T`, `R`/`S`, …).
        expected: char,
        /// The state observed when the timeout expired.
        observed: char,
    },
    /// The platform does not support POSIX job-control signals.
    Unsupported,
}

impl fmt::Display for OsChildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsChildError::Spawn(e) => write!(f, "failed to spawn worker: {e}"),
            OsChildError::Signal(e) => write!(f, "failed to signal worker: {e}"),
            OsChildError::ProcRead(e) => write!(f, "failed to read /proc for worker: {e}"),
            OsChildError::Timeout { expected, observed } => {
                write!(
                    f,
                    "worker did not reach state '{expected}' (still '{observed}')"
                )
            }
            OsChildError::Unsupported => {
                write!(f, "POSIX job control is not supported on this platform")
            }
        }
    }
}

impl std::error::Error for OsChildError {}

/// POSIX signal numbers. Only `SIGKILL` is universal; the job-control
/// signals differ between Linux (SIGTSTP=20, SIGCONT=18 on x86/arm/riscv)
/// and the BSD family including macOS (SIGTSTP=18, SIGCONT=19). Linux on
/// mips/sparc uses yet another numbering and is reported as unsupported by
/// [`prototype_supported`].
const SIGKILL: i32 = 9;
#[cfg(target_os = "linux")]
const SIGTSTP: i32 = 20;
#[cfg(target_os = "linux")]
const SIGCONT: i32 = 18;
#[cfg(not(target_os = "linux"))]
const SIGTSTP: i32 = 18;
#[cfg(not(target_os = "linux"))]
const SIGCONT: i32 = 19;

/// Observed state of the worker, mirroring `/proc/<pid>/stat` field 3.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum WorkerState {
    /// Running or runnable (`R`) or sleeping in the kernel (`S`/`D`).
    Running,
    /// Stopped by a job-control signal (`T`).
    Stopped,
    /// Zombie / exited (`Z`, `X`) or no longer present.
    Exited,
}

/// Timing of one suspend/resume round trip on the real OS.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RoundTrip {
    /// Time from sending `SIGTSTP` to observing the `T` state.
    pub suspend_latency: Duration,
    /// Time from sending `SIGCONT` to observing the process runnable again.
    pub resume_latency: Duration,
    /// Resident set size (bytes) observed while the process was stopped.
    pub rss_while_stopped: u64,
}

/// A real child worker process that can be suspended and resumed.
#[derive(Debug)]
pub struct WorkerProcess {
    child: Child,
}

impl WorkerProcess {
    /// Spawns the default synthetic worker: a shell loop that keeps a small
    /// amount of state and burns CPU, standing in for a task JVM.
    pub fn spawn_busy_loop() -> Result<Self, OsChildError> {
        Self::spawn_command(Command::new("sh").args(["-c", "i=0; while true; do i=$((i+1)); done"]))
    }

    /// Spawns a worker that allocates roughly `mib` MiB of dirty memory and
    /// then idles, for memory-retention experiments.
    pub fn spawn_memory_hog(mib: usize) -> Result<Self, OsChildError> {
        // `head -c` from /dev/zero into a shell variable keeps the allocation
        // alive in the shell's memory; fall back to a sleep loop afterwards.
        let script = format!(
            "data=$(head -c {} /dev/zero | tr '\\0' 'x'); while true; do sleep 1; done",
            mib * 1024 * 1024
        );
        Self::spawn_command(Command::new("sh").args(["-c", &script]))
    }

    /// Spawns an arbitrary command as the worker.
    pub fn spawn_command(command: &mut Command) -> Result<Self, OsChildError> {
        if !cfg!(unix) {
            return Err(OsChildError::Unsupported);
        }
        let child = command
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .map_err(OsChildError::Spawn)?;
        Ok(WorkerProcess { child })
    }

    /// The worker's process id.
    pub fn pid(&self) -> u32 {
        self.child.id()
    }

    #[cfg(unix)]
    fn send_signal(&self, signal: i32) -> Result<(), OsChildError> {
        // Declared directly instead of through the libc crate: the build
        // environment is offline and `kill(2)` is part of every Unix libc the
        // workspace targets.
        extern "C" {
            fn kill(pid: i32, sig: i32) -> i32;
        }
        let rc = unsafe { kill(self.child.id() as i32, signal) };
        if rc == 0 {
            Ok(())
        } else {
            Err(OsChildError::Signal(std::io::Error::last_os_error()))
        }
    }

    #[cfg(not(unix))]
    fn send_signal(&self, _signal: i32) -> Result<(), OsChildError> {
        Err(OsChildError::Unsupported)
    }

    /// Reads the worker's state from `/proc/<pid>/stat` (falls back to
    /// [`WorkerState::Exited`] when the entry is gone).
    pub fn state(&self) -> Result<WorkerState, OsChildError> {
        let path = format!("/proc/{}/stat", self.child.id());
        let stat = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(WorkerState::Exited),
            Err(e) => return Err(OsChildError::ProcRead(e)),
        };
        // Field 3 follows the parenthesised command name.
        let state_char = stat
            .rsplit(") ")
            .next()
            .and_then(|rest| rest.chars().next())
            .unwrap_or('?');
        Ok(match state_char {
            'T' | 't' => WorkerState::Stopped,
            'Z' | 'X' | 'x' => WorkerState::Exited,
            _ => WorkerState::Running,
        })
    }

    /// Resident set size in bytes, from `/proc/<pid>/statm`.
    pub fn rss_bytes(&self) -> Result<u64, OsChildError> {
        let path = format!("/proc/{}/statm", self.child.id());
        let statm = std::fs::read_to_string(&path).map_err(OsChildError::ProcRead)?;
        let pages: u64 = statm
            .split_whitespace()
            .nth(1)
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let page_size = 4096u64;
        Ok(pages * page_size)
    }

    fn wait_for(
        &self,
        predicate: impl Fn(WorkerState) -> bool,
        expected: char,
    ) -> Result<Duration, OsChildError> {
        let start = Instant::now();
        let timeout = Duration::from_secs(5);
        loop {
            let state = self.state()?;
            if predicate(state) {
                return Ok(start.elapsed());
            }
            if start.elapsed() > timeout {
                return Err(OsChildError::Timeout {
                    expected,
                    observed: match state {
                        WorkerState::Running => 'R',
                        WorkerState::Stopped => 'T',
                        WorkerState::Exited => 'Z',
                    },
                });
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Suspends the worker with `SIGTSTP` and waits for the `T` state.
    /// Returns the observed suspension latency.
    pub fn suspend(&self) -> Result<Duration, OsChildError> {
        self.send_signal(SIGTSTP)?;
        self.wait_for(|s| s == WorkerState::Stopped, 'T')
    }

    /// Resumes the worker with `SIGCONT` and waits for it to leave the `T`
    /// state. Returns the observed resume latency.
    pub fn resume(&self) -> Result<Duration, OsChildError> {
        self.send_signal(SIGCONT)?;
        self.wait_for(|s| s != WorkerState::Stopped, 'R')
    }

    /// Performs a full suspend/resume round trip and reports its timings,
    /// including the RSS retained while stopped (the paper's key point: the
    /// state stays in memory, nothing is serialized).
    pub fn suspend_resume_roundtrip(&self) -> Result<RoundTrip, OsChildError> {
        let suspend_latency = self.suspend()?;
        let rss_while_stopped = self.rss_bytes().unwrap_or(0);
        let resume_latency = self.resume()?;
        Ok(RoundTrip {
            suspend_latency,
            resume_latency,
            rss_while_stopped,
        })
    }

    /// Kills the worker with `SIGKILL` and reaps it.
    pub fn kill(mut self) -> Result<(), OsChildError> {
        let _ = self.send_signal(SIGKILL);
        let _ = self.child.wait();
        Ok(())
    }
}

impl Drop for WorkerProcess {
    fn drop(&mut self) {
        let _ = self.send_signal(SIGKILL);
        let _ = self.child.wait();
    }
}

/// True if the current environment supports the prototype (Unix with /proc).
pub fn prototype_supported() -> bool {
    // mips/sparc Linux number the job-control signals differently from the
    // constants above; refuse rather than deliver the wrong signal.
    let odd_signal_numbering = cfg!(all(
        target_os = "linux",
        any(
            target_arch = "mips",
            target_arch = "mips64",
            target_arch = "sparc",
            target_arch = "sparc64"
        )
    ));
    cfg!(unix) && !odd_signal_numbering && std::path::Path::new("/proc/self/stat").exists()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skip() -> bool {
        if prototype_supported() {
            false
        } else {
            eprintln!("skipping: /proc or POSIX signals unavailable");
            true
        }
    }

    #[test]
    fn worker_spawns_and_reports_running() {
        if skip() {
            return;
        }
        let w = WorkerProcess::spawn_busy_loop().unwrap();
        assert!(w.pid() > 0);
        assert_eq!(w.state().unwrap(), WorkerState::Running);
        w.kill().unwrap();
    }

    #[test]
    fn sigtstp_stops_and_sigcont_continues() {
        if skip() {
            return;
        }
        let w = WorkerProcess::spawn_busy_loop().unwrap();
        let suspend_latency = w.suspend().unwrap();
        assert_eq!(w.state().unwrap(), WorkerState::Stopped);
        assert!(suspend_latency < Duration::from_secs(1));
        let resume_latency = w.resume().unwrap();
        assert_ne!(w.state().unwrap(), WorkerState::Stopped);
        assert!(resume_latency < Duration::from_secs(1));
        w.kill().unwrap();
    }

    #[test]
    fn repeated_cycles_are_idempotent() {
        if skip() {
            return;
        }
        let w = WorkerProcess::spawn_busy_loop().unwrap();
        for _ in 0..3 {
            let rt = w.suspend_resume_roundtrip().unwrap();
            assert!(rt.suspend_latency < Duration::from_secs(1));
            assert!(rt.resume_latency < Duration::from_secs(1));
        }
        // Redundant SIGCONT to a running process is harmless.
        w.resume().unwrap();
        w.kill().unwrap();
    }

    #[test]
    fn memory_is_retained_across_suspension() {
        if skip() {
            return;
        }
        let w = match WorkerProcess::spawn_memory_hog(32) {
            Ok(w) => w,
            Err(_) => return, // the helper tools may be missing in minimal containers
        };
        // Give the shell a moment to build up its state.
        std::thread::sleep(Duration::from_millis(800));
        let before = w.rss_bytes().unwrap_or(0);
        let rt = w.suspend_resume_roundtrip().unwrap();
        // The stopped process keeps (at least most of) its resident memory:
        // nothing is serialized or dropped by the suspension itself.
        if before > 8 * 1024 * 1024 {
            assert!(
                rt.rss_while_stopped > before / 2,
                "stopped RSS {} vs before {}",
                rt.rss_while_stopped,
                before
            );
        }
        w.kill().unwrap();
    }

    #[test]
    fn signalling_a_dead_worker_fails_cleanly() {
        if skip() {
            return;
        }
        let w = WorkerProcess::spawn_busy_loop().unwrap();
        let pid = w.pid();
        w.kill().unwrap();
        // Either the proc entry is gone or it shows a zombie briefly; both are
        // acceptable "not alive" answers.
        let path = format!("/proc/{pid}/stat");
        if let Ok(stat) = std::fs::read_to_string(path) {
            assert!(!stat.is_empty());
        }
    }
}
