//! Simulated processes.
//!
//! Hadoop map and reduce tasks are ordinary Unix child processes spawned by
//! the TaskTracker (one JVM per task attempt). The simulated kernel keeps a
//! process table with exactly the information the preemption primitive relies
//! on: run state, lifetimes, and a per-process view of memory (resident,
//! swapped) maintained by the [`crate::memory::MemoryManager`].

use crate::signal::{ProcessState, Signal};
use mrp_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a simulated process, unique within one simulated node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Pid(pub u32);

impl fmt::Debug for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid:{}", self.0)
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A process table entry.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Process {
    /// The process identifier.
    pub pid: Pid,
    /// Human-readable name (e.g. `attempt_0001_m_000000_0`).
    pub name: String,
    /// Current run state.
    pub state: ProcessState,
    /// Virtual time at which the process was spawned.
    pub spawned_at: SimTime,
    /// Virtual time of the last state change.
    pub state_changed_at: SimTime,
    /// Number of times the process has been stopped (suspend cycles).
    pub suspend_count: u32,
    /// Number of times the process has been continued.
    pub resume_count: u32,
}

impl Process {
    /// Creates a new running process entry.
    pub fn new(pid: Pid, name: impl Into<String>, now: SimTime) -> Self {
        Process {
            pid,
            name: name.into(),
            state: ProcessState::Running,
            spawned_at: now,
            state_changed_at: now,
            suspend_count: 0,
            resume_count: 0,
        }
    }

    /// True if the process has not terminated.
    pub fn is_alive(&self) -> bool {
        self.state.is_alive()
    }

    /// Records a state change at `now`, updating suspend/resume counters when
    /// the transition stops or continues the process.
    pub fn set_state(&mut self, state: ProcessState, now: SimTime) {
        if self.state.is_alive()
            && state == ProcessState::Stopped
            && self.state != ProcessState::Stopped
        {
            self.suspend_count += 1;
        }
        if self.state == ProcessState::Stopped && state == ProcessState::Running {
            self.resume_count += 1;
        }
        self.state = state;
        self.state_changed_at = now;
    }

    /// Terminal exit triggered by the process itself.
    pub fn exit(&mut self, code: i32, now: SimTime) {
        self.set_state(ProcessState::Exited(code), now);
    }

    /// Terminal exit caused by a signal.
    pub fn killed_by(&mut self, signal: Signal, now: SimTime) {
        self.set_state(ProcessState::Killed(signal), now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_process_is_running() {
        let p = Process::new(Pid(1), "attempt_0001_m_000000_0", SimTime::from_secs(5));
        assert!(p.is_alive());
        assert_eq!(p.state, ProcessState::Running);
        assert_eq!(p.spawned_at, SimTime::from_secs(5));
        assert_eq!(p.suspend_count, 0);
    }

    #[test]
    fn suspend_resume_counters() {
        let mut p = Process::new(Pid(1), "t", SimTime::ZERO);
        p.set_state(ProcessState::Stopped, SimTime::from_secs(1));
        p.set_state(ProcessState::Running, SimTime::from_secs(2));
        p.set_state(ProcessState::Stopped, SimTime::from_secs(3));
        assert_eq!(p.suspend_count, 2);
        assert_eq!(p.resume_count, 1);
        assert_eq!(p.state_changed_at, SimTime::from_secs(3));
    }

    #[test]
    fn redundant_stop_does_not_double_count() {
        let mut p = Process::new(Pid(1), "t", SimTime::ZERO);
        p.set_state(ProcessState::Stopped, SimTime::from_secs(1));
        p.set_state(ProcessState::Stopped, SimTime::from_secs(2));
        assert_eq!(p.suspend_count, 1);
    }

    #[test]
    fn termination() {
        let mut p = Process::new(Pid(2), "t", SimTime::ZERO);
        p.exit(0, SimTime::from_secs(1));
        assert!(!p.is_alive());
        assert_eq!(p.state, ProcessState::Exited(0));
        let mut q = Process::new(Pid(3), "t", SimTime::ZERO);
        q.killed_by(Signal::Sigkill, SimTime::from_secs(1));
        assert_eq!(q.state, ProcessState::Killed(Signal::Sigkill));
    }

    #[test]
    fn pid_display() {
        assert_eq!(Pid(42).to_string(), "42");
        assert_eq!(format!("{:?}", Pid(42)), "pid:42");
    }
}
