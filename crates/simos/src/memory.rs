//! Virtual memory accounting: resident/swapped anonymous memory, file cache,
//! LRU victim selection and swap capacity.
//!
//! This module captures the Linux behaviours the paper's evaluation depends
//! on (Section III-A):
//!
//! * With `swappiness = 0` (the recommended Hadoop configuration) the kernel
//!   reclaims file-cache pages before it pages out anonymous memory, so
//!   paging of task memory only happens to avoid out-of-memory conditions.
//! * Pages belonging to **suspended** processes are preferential eviction
//!   victims: they are outside every working set, so an LRU-style policy
//!   evicts them before pages of running processes.
//! * Clean pages are dropped without disk writes; dirty pages must be written
//!   to the swap device.
//! * Page-out is clustered and the approximate page-replacement implementation
//!   reclaims somewhat more than strictly necessary under pressure, which is
//!   why the paper observes swapped bytes growing "more than linearly" with
//!   the memory footprint (Figure 4).
//!
//! The manager is pure bookkeeping: it returns *byte quantities*; the
//! [`crate::kernel::Kernel`] turns them into virtual-time charges using the
//! [`crate::disk::Disk`] model.

use crate::process::Pid;
use crate::signal::OsError;
use crate::swapdev::{SwapConfig, SwapDevice};
use mrp_sim::{SimTime, GIB, MIB};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// Static memory configuration of a simulated node.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Physical RAM installed, in bytes.
    pub total_ram: u64,
    /// Memory permanently claimed by the OS, the DataNode and the TaskTracker
    /// daemons; never available to task processes.
    pub os_reserve: u64,
    /// Capacity of the swap area, in bytes.
    pub swap_capacity: u64,
    /// Linux `vm.swappiness`: 0 means file cache is always reclaimed before
    /// anonymous memory (the Hadoop best practice the paper follows); larger
    /// values make the kernel page out anonymous memory proportionally
    /// earlier.
    pub swappiness: u8,
    /// Extra fraction of pages reclaimed beyond the immediate shortfall when
    /// the kernel is under pressure, modelling watermark-based batched
    /// reclaim. This produces the super-linear swapped-bytes growth of
    /// Figure 4.
    pub over_eviction_factor: f64,
    /// Granularity of page-out batches; reclaim amounts are rounded up to a
    /// multiple of this (Linux `page-cluster` behaviour).
    pub page_cluster_bytes: u64,
    /// Block-granular swap-device model (see [`SwapConfig`]); off by default,
    /// in which case swap occupancy stays byte-granular.
    #[serde(default)]
    pub swap: SwapConfig,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        // The paper's evaluation machine: 4 GB of RAM, of which roughly 0.6 GB
        // is used by the OS and the Hadoop daemons, swap on a local disk.
        MemoryConfig {
            total_ram: 4 * GIB,
            os_reserve: 600 * MIB,
            swap_capacity: 8 * GIB,
            swappiness: 0,
            over_eviction_factor: 0.18,
            page_cluster_bytes: 2 * MIB,
            swap: SwapConfig::default(),
        }
    }
}

impl MemoryConfig {
    /// RAM usable by task processes and the file cache.
    pub fn usable_ram(&self) -> u64 {
        self.total_ram.saturating_sub(self.os_reserve)
    }
}

/// Per-process memory accounting.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ProcMemory {
    /// Resident anonymous bytes that have been written (must go to swap if
    /// evicted).
    pub resident_dirty: u64,
    /// Resident bytes that can be dropped without writing (code, mmapped
    /// read-only data, or anonymous pages already backed by swap).
    pub resident_clean: u64,
    /// Bytes currently in the swap area.
    pub swapped: u64,
    /// Whether the process is suspended (its pages are preferred eviction
    /// victims).
    pub suspended: bool,
    /// Last time the process touched its memory; used for LRU ordering among
    /// same-priority victims.
    pub last_touch: SimTime,
    /// Cumulative bytes this process has had paged out (the quantity plotted
    /// on the left axis of Figure 4).
    pub total_paged_out: u64,
    /// Cumulative bytes paged back in.
    pub total_paged_in: u64,
}

impl ProcMemory {
    /// Total resident bytes.
    pub fn resident(&self) -> u64 {
        self.resident_dirty + self.resident_clean
    }

    /// Total virtual size (resident + swapped).
    pub fn virtual_size(&self) -> u64 {
        self.resident() + self.swapped
    }
}

/// Byte quantities moved during one reclaim / allocation operation.
///
/// The kernel converts these into stall time: `dirty_paged_out` and
/// `self_thrash_bytes` cost swap-write bandwidth, `paged_in` costs swap-read
/// bandwidth, everything else is free.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MemoryCharge {
    /// File-cache bytes reclaimed (no I/O charge).
    pub cache_reclaimed: u64,
    /// Clean pages dropped (no I/O charge).
    pub clean_dropped: u64,
    /// Dirty pages written to the swap area.
    pub dirty_paged_out: u64,
    /// Bytes paged in from swap (on touch/resume).
    pub paged_in: u64,
    /// Bytes the allocating process had to cycle through swap itself because
    /// its own working set exceeds usable RAM (thrashing).
    pub self_thrash_bytes: u64,
    /// Per-victim paged-out bytes `(pid, bytes)`, suspended victims first.
    pub victims: Vec<(Pid, u64)>,
}

impl MemoryCharge {
    /// Total bytes that will be written to the swap device.
    pub fn swap_write_bytes(&self) -> u64 {
        self.dirty_paged_out + self.self_thrash_bytes
    }

    /// Total bytes that will be read from the swap device.
    pub fn swap_read_bytes(&self) -> u64 {
        self.paged_in + self.self_thrash_bytes
    }

    /// Merges another charge into this one.
    pub fn merge(&mut self, other: MemoryCharge) {
        self.cache_reclaimed += other.cache_reclaimed;
        self.clean_dropped += other.clean_dropped;
        self.dirty_paged_out += other.dirty_paged_out;
        self.paged_in += other.paged_in;
        self.self_thrash_bytes += other.self_thrash_bytes;
        self.victims.extend(other.victims);
    }

    /// True if the operation required no paging at all.
    pub fn is_free(&self) -> bool {
        self.swap_write_bytes() == 0 && self.swap_read_bytes() == 0
    }
}

/// Cumulative node-wide memory statistics.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MemoryStats {
    /// Total bytes ever written to swap.
    pub swap_out_bytes: u64,
    /// Total bytes ever read back from swap.
    pub swap_in_bytes: u64,
    /// Total file-cache bytes reclaimed under pressure.
    pub cache_reclaimed_bytes: u64,
    /// Number of allocation requests that needed reclaim.
    pub pressure_events: u64,
    /// Number of OOM-killer invocations.
    pub oom_kills: u64,
    /// Number of operations in which a process cycled part of its own working
    /// set through swap because it exceeds usable RAM (thrashing under
    /// overcommit).
    #[serde(default)]
    pub thrash_events: u64,
}

/// Ordering key of the LRU victim index: suspended processes first (their
/// pages are outside every working set), then by least-recent touch, ties
/// broken by pid for determinism.
type VictimKey = (u8, SimTime, Pid);

fn victim_key(pm: &ProcMemory, pid: Pid) -> VictimKey {
    (u8::from(!pm.suspended), pm.last_touch, pid)
}

/// The per-node memory manager.
///
/// Victim selection is backed by an ordered index (`lru`) maintained
/// incrementally on register / touch / suspend / remove, so each `reclaim`
/// walks candidates in eviction order directly instead of collecting and
/// sorting every process table entry per call. Total resident bytes are a
/// counter updated on every byte movement, not an O(processes) sum — both
/// matter because `free_ram()` runs on every allocation in the simulation's
/// hot path.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MemoryManager {
    config: MemoryConfig,
    procs: HashMap<Pid, ProcMemory>,
    /// Ordered eviction-victim index; one entry per registered process.
    lru: BTreeSet<VictimKey>,
    /// Sum of `resident()` over all registered processes.
    resident_total: u64,
    file_cache: u64,
    swap_used: u64,
    stats: MemoryStats,
    /// Block-granular swap device, present iff `config.swap.enabled`. When
    /// present it owns swap occupancy: `swap_used` mirrors its
    /// `allocated_bytes()` (whole blocks, including retained swap cache).
    #[serde(default)]
    swapdev: Option<SwapDevice>,
}

impl MemoryManager {
    /// Creates a memory manager for a node with the given configuration.
    pub fn new(config: MemoryConfig) -> Self {
        assert!(
            config.total_ram > config.os_reserve,
            "RAM must exceed the OS reserve"
        );
        assert!(config.over_eviction_factor >= 0.0);
        config
            .swap
            .validate()
            .unwrap_or_else(|e| panic!("invalid swap config: {e}"));
        let swapdev = config
            .swap
            .enabled
            .then(|| SwapDevice::new(config.swap_capacity, config.swap.block_size));
        MemoryManager {
            config,
            procs: HashMap::new(),
            lru: BTreeSet::new(),
            resident_total: 0,
            file_cache: 0,
            swap_used: 0,
            stats: MemoryStats::default(),
            swapdev,
        }
    }

    /// Re-keys `pid`'s entry in the victim index around a mutation of its
    /// `suspended` flag or `last_touch` stamp.
    fn reindex<R>(
        &mut self,
        pid: Pid,
        mutate: impl FnOnce(&mut ProcMemory) -> R,
    ) -> Result<R, OsError> {
        let pm = self.procs.get_mut(&pid).ok_or(OsError::NoSuchProcess)?;
        self.lru.remove(&victim_key(pm, pid));
        let out = mutate(pm);
        self.lru.insert(victim_key(pm, pid));
        Ok(out)
    }

    /// The node's memory configuration.
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// Node-wide statistics.
    pub fn stats(&self) -> &MemoryStats {
        &self.stats
    }

    /// Current file-cache size in bytes.
    pub fn file_cache(&self) -> u64 {
        self.file_cache
    }

    /// Current swap-area occupancy in bytes. With the block-granular device
    /// enabled this counts whole blocks, including retained swap cache.
    pub fn swap_used(&self) -> u64 {
        self.swap_used
    }

    /// The block-granular swap device, if [`SwapConfig::enabled`] is set.
    pub fn swap_device(&self) -> Option<&SwapDevice> {
        self.swapdev.as_ref()
    }

    /// Mutable device access; the kernel records swap I/O timings through it.
    pub fn swap_device_mut(&mut self) -> Option<&mut SwapDevice> {
        self.swapdev.as_mut()
    }

    /// Reconciles `pid`'s device extent with its byte-level `swapped` total
    /// and refreshes `swap_used` from block occupancy. `to_cache` routes a
    /// shrink into the swap cache (page-in: content now lives in RAM *and*
    /// on disk) instead of the free list (release). No-op while the device
    /// is disabled.
    fn sync_backing(&mut self, pid: Pid, to_cache: bool) {
        if let Some(dev) = self.swapdev.as_mut() {
            let pm = &self.procs[&pid];
            dev.set_backing(pid, pm.swapped, to_cache)
                .expect("swap capacity pre-checked by reclaim");
            dev.trim_cache(pid, pm.resident_clean);
            self.swap_used = dev.allocated_bytes();
        }
    }

    /// Registers a new process with an empty address space.
    pub fn register(&mut self, pid: Pid, now: SimTime) {
        if let Some(old) = self.procs.get(&pid) {
            // Re-registering an existing pid replaces its accounting.
            self.lru.remove(&victim_key(old, pid));
            self.resident_total -= old.resident();
            self.swap_used = self.swap_used.saturating_sub(old.swapped);
            if let Some(dev) = self.swapdev.as_mut() {
                dev.remove(pid);
                self.swap_used = dev.allocated_bytes();
            }
        }
        let pm = ProcMemory {
            last_touch: now,
            ..ProcMemory::default()
        };
        self.lru.insert(victim_key(&pm, pid));
        self.procs.insert(pid, pm);
    }

    /// Per-process memory view, if the process is registered.
    pub fn process(&self, pid: Pid) -> Option<&ProcMemory> {
        self.procs.get(&pid)
    }

    /// Sum of resident bytes over all registered processes (an incrementally
    /// maintained counter; this runs on every allocation).
    pub fn total_resident(&self) -> u64 {
        self.resident_total
    }

    /// RAM not used by processes, the file cache, or the OS reserve.
    pub fn free_ram(&self) -> u64 {
        self.config
            .usable_ram()
            .saturating_sub(self.total_resident() + self.file_cache)
    }

    /// Marks a process as suspended or running for victim-selection purposes.
    pub fn set_suspended(&mut self, pid: Pid, suspended: bool) -> Result<(), OsError> {
        self.reindex(pid, |p| p.suspended = suspended)
    }

    /// Inserts bytes into the file cache (called when HDFS blocks are read);
    /// the cache only grows into otherwise-free RAM, so this never causes
    /// paging.
    pub fn populate_file_cache(&mut self, bytes: u64) {
        let room = self.free_ram();
        self.file_cache += bytes.min(room);
    }

    fn round_cluster(&self, bytes: u64) -> u64 {
        let c = self.config.page_cluster_bytes.max(1);
        bytes.div_ceil(c) * c
    }

    /// Orders eviction victims: suspended processes first (their pages are
    /// outside every working set), then stopped-but-not-suspended or idle
    /// processes by least-recent touch. The allocating process itself is
    /// excluded. Backed by the incrementally maintained ordered index — no
    /// per-reclaim sort of the process table.
    fn victim_order(&self, exclude: Pid) -> Vec<Pid> {
        self.lru
            .iter()
            .map(|(_, _, pid)| *pid)
            .filter(|pid| *pid != exclude && self.procs[pid].resident() > 0)
            .collect()
    }

    /// Evicts up to `target` bytes from `victim`, clean pages first, then
    /// dirty pages. Returns `(clean_dropped, dirty_paged_out)`.
    fn evict_from(&mut self, victim: Pid, target: u64) -> (u64, u64) {
        let pm = self
            .procs
            .get_mut(&victim)
            .expect("victim must be registered");
        let clean = pm.resident_clean.min(target);
        pm.resident_clean -= clean;
        pm.swapped += clean;
        let remaining = target - clean;
        let dirty = pm.resident_dirty.min(remaining);
        pm.resident_dirty -= dirty;
        pm.swapped += dirty;
        pm.total_paged_out += clean + dirty;
        self.resident_total -= clean + dirty;
        (clean, dirty)
    }

    /// Reclaims at least `needed` bytes of RAM for the benefit of `for_pid`.
    ///
    /// Reclaim order: file cache (modulated by swappiness), then pages of
    /// other processes with suspended ones first, then — as a last resort —
    /// the requesting process thrashes against its own pages.
    fn reclaim(&mut self, for_pid: Pid, needed: u64) -> Result<MemoryCharge, OsError> {
        let mut charge = MemoryCharge::default();
        if needed == 0 {
            return Ok(charge);
        }
        self.stats.pressure_events += 1;
        let mut shortfall = needed;

        // 1. Reclaim file cache. With swappiness 0 the whole shortfall is taken
        //    from the cache if possible; with higher swappiness a proportional
        //    share is deliberately left to anonymous-page eviction.
        let cache_share = 1.0 - f64::from(self.config.swappiness.min(100)) / 200.0;
        let from_cache = ((shortfall as f64 * cache_share) as u64)
            .max(if self.config.swappiness == 0 {
                shortfall
            } else {
                0
            })
            .min(self.file_cache);
        self.file_cache -= from_cache;
        self.stats.cache_reclaimed_bytes += from_cache;
        charge.cache_reclaimed = from_cache;
        shortfall = shortfall.saturating_sub(from_cache);
        if shortfall == 0 {
            return Ok(charge);
        }

        // 2. Page out other processes' memory, suspended victims first. The
        //    kernel reclaims in clustered batches and overshoots the strict
        //    need under pressure (approximate LRU), hence the over-eviction
        //    factor scaled by how large the shortfall is relative to RAM.
        let pressure = shortfall as f64 / self.config.usable_ram().max(1) as f64;
        let target_total = self.round_cluster(
            (shortfall as f64 * (1.0 + self.config.over_eviction_factor * (1.0 + pressure))) as u64,
        );
        let mut to_reclaim = target_total;
        for victim in self.victim_order(for_pid) {
            if to_reclaim == 0 || shortfall == 0 {
                break;
            }
            let available = self.procs[&victim].resident();
            let take = available.min(to_reclaim);
            // Swap capacity check: clean pages do not consume new swap space in
            // real kernels if they are file-backed; we conservatively charge
            // everything against swap capacity. The block device additionally
            // counts whole blocks and droppable swap cache.
            let fits = match self.swapdev.as_ref() {
                Some(dev) => dev.can_back(victim, self.procs[&victim].swapped + take),
                None => self.swap_used + take <= self.config.swap_capacity,
            };
            if !fits {
                self.stats.oom_kills += 1;
                return Err(OsError::OutOfMemory);
            }
            let (clean, dirty) = self.evict_from(victim, take);
            if self.swapdev.is_some() {
                self.sync_backing(victim, false);
            } else {
                self.swap_used += clean + dirty;
            }
            self.stats.swap_out_bytes += dirty;
            charge.clean_dropped += clean;
            charge.dirty_paged_out += dirty;
            charge.victims.push((victim, clean + dirty));
            to_reclaim = to_reclaim.saturating_sub(take);
            shortfall = shortfall.saturating_sub(take);
        }
        if shortfall == 0 {
            return Ok(charge);
        }

        // 3. The requesting process's own working set does not fit: it will
        //    thrash, cycling `shortfall` bytes through swap.
        let fits = match self.swapdev.as_ref() {
            Some(dev) => {
                let own = self.procs.get(&for_pid).map_or(0, |p| p.swapped);
                dev.can_back(for_pid, own + shortfall)
            }
            None => self.swap_used + shortfall <= self.config.swap_capacity,
        };
        if !fits {
            self.stats.oom_kills += 1;
            return Err(OsError::OutOfMemory);
        }
        charge.self_thrash_bytes = shortfall;
        self.stats.swap_out_bytes += shortfall;
        self.stats.swap_in_bytes += shortfall;
        self.stats.thrash_events += 1;
        Ok(charge)
    }

    /// Allocates `bytes` of anonymous memory to `pid`; `dirty_fraction` of it
    /// is written immediately (the paper's memory-hungry tasks write random
    /// values to their whole allocation, making every page dirty).
    ///
    /// Returns the byte movements the allocation caused; the caller charges
    /// the corresponding stall time to the allocating process.
    pub fn allocate(
        &mut self,
        pid: Pid,
        bytes: u64,
        dirty_fraction: f64,
        now: SimTime,
    ) -> Result<MemoryCharge, OsError> {
        assert!((0.0..=1.0).contains(&dirty_fraction));
        if !self.procs.contains_key(&pid) {
            return Err(OsError::NoSuchProcess);
        }
        let shortfall = bytes.saturating_sub(self.free_ram());
        let charge = self.reclaim(pid, shortfall)?;
        let mut moved = 0;
        self.reindex(pid, |pm| {
            let dirty = (bytes as f64 * dirty_fraction) as u64;
            pm.resident_dirty += dirty;
            pm.resident_clean += bytes - dirty;
            pm.last_touch = now;
            // A thrashing allocation cannot keep everything resident: the
            // excess lives in swap and cycles in and out while the process
            // runs.
            let thrash = charge.self_thrash_bytes;
            if thrash > 0 {
                let from_dirty = pm.resident_dirty.min(thrash);
                pm.resident_dirty -= from_dirty;
                let from_clean = (thrash - from_dirty).min(pm.resident_clean);
                pm.resident_clean -= from_clean;
                moved = from_dirty + from_clean;
                pm.swapped += moved;
                pm.total_paged_out += moved;
            }
        })
        .expect("checked above");
        self.resident_total += bytes - moved;
        if self.swapdev.is_some() {
            self.sync_backing(pid, false);
        } else {
            self.swap_used += moved;
        }
        Ok(charge)
    }

    /// Releases `bytes` of `pid`'s memory (dirty first), e.g. when a task
    /// disposes of a large buffer.
    pub fn release(&mut self, pid: Pid, bytes: u64) -> Result<(), OsError> {
        let pm = self.procs.get_mut(&pid).ok_or(OsError::NoSuchProcess)?;
        let from_dirty = pm.resident_dirty.min(bytes);
        pm.resident_dirty -= from_dirty;
        let mut left = bytes - from_dirty;
        let from_clean = pm.resident_clean.min(left);
        pm.resident_clean -= from_clean;
        left -= from_clean;
        let from_swap = pm.swapped.min(left);
        pm.swapped -= from_swap;
        self.resident_total -= from_dirty + from_clean;
        if self.swapdev.is_some() {
            self.sync_backing(pid, false);
        } else {
            self.swap_used = self.swap_used.saturating_sub(from_swap);
        }
        Ok(())
    }

    /// Removes a terminated process, freeing all its resident and swapped
    /// memory instantly (the kernel tears down the address space without any
    /// disk I/O).
    pub fn remove(&mut self, pid: Pid) -> Result<(), OsError> {
        let pm = self.procs.remove(&pid).ok_or(OsError::NoSuchProcess)?;
        self.lru.remove(&victim_key(&pm, pid));
        self.resident_total -= pm.resident();
        if let Some(dev) = self.swapdev.as_mut() {
            dev.remove(pid);
            self.swap_used = dev.allocated_bytes();
        } else {
            self.swap_used = self.swap_used.saturating_sub(pm.swapped);
        }
        Ok(())
    }

    /// Touches the whole address space of `pid` (as a resumed task does while
    /// it warms back up), faulting in everything that was swapped out.
    ///
    /// Returns the charge whose `paged_in` field is the number of bytes read
    /// back from the swap device; bringing them in may in turn evict memory of
    /// other (suspended) processes.
    pub fn page_in_all(&mut self, pid: Pid, now: SimTime) -> Result<MemoryCharge, OsError> {
        self.page_in_some(pid, u64::MAX, now)
    }

    /// Faults in at most `max_bytes` of `pid`'s swapped memory — the lazy
    /// resume path: only the configured prefetch window is read eagerly at
    /// `SIGCONT` time, everything else faults back in on touch.
    pub fn page_in_partial(
        &mut self,
        pid: Pid,
        max_bytes: u64,
        now: SimTime,
    ) -> Result<MemoryCharge, OsError> {
        self.page_in_some(pid, max_bytes, now)
    }

    fn page_in_some(
        &mut self,
        pid: Pid,
        limit: u64,
        now: SimTime,
    ) -> Result<MemoryCharge, OsError> {
        let swapped = self.procs.get(&pid).ok_or(OsError::NoSuchProcess)?.swapped;
        let goal = swapped.min(limit);
        if goal == 0 {
            self.reindex(pid, |pm| pm.last_touch = now)?;
            return Ok(MemoryCharge::default());
        }
        let shortfall = goal.saturating_sub(self.free_ram());
        let mut charge = self.reclaim(pid, shortfall)?;
        // If even evicting every other process cannot make room, part of the
        // address space has to stay in swap (the process will thrash).
        let stay_swapped = (swapped - goal) + charge.self_thrash_bytes.min(goal);
        let bring_in = swapped - stay_swapped;
        self.reindex(pid, |pm| {
            pm.swapped = stay_swapped;
            // Swapped-in pages come back clean (they are backed by their swap
            // slots until rewritten); a process that keeps writing will dirty
            // them again through subsequent allocations.
            pm.resident_clean += bring_in;
            pm.total_paged_in += bring_in;
            pm.last_touch = now;
        })
        .expect("checked above");
        self.resident_total += bring_in;
        if self.swapdev.is_some() {
            // Blocks that were just read stay allocated as swap cache until
            // capacity pressure or a cache trim sheds them.
            self.sync_backing(pid, true);
        } else {
            self.swap_used = self.swap_used.saturating_sub(bring_in);
        }
        self.stats.swap_in_bytes += bring_in;
        charge.paged_in = bring_in;
        Ok(charge)
    }

    /// Marks `pid`'s memory as recently used (it is actively computing).
    pub fn touch(&mut self, pid: Pid, now: SimTime) -> Result<(), OsError> {
        self.reindex(pid, |pm| pm.last_touch = now)
    }

    /// Chooses the process the OOM killer would sacrifice: the one with the
    /// largest virtual size, preferring suspended processes (smallest harm to
    /// the running workload).
    pub fn oom_victim(&self) -> Option<Pid> {
        self.procs
            .iter()
            .max_by_key(|(pid, pm)| (pm.suspended, pm.virtual_size(), std::cmp::Reverse(pid.0)))
            .map(|(pid, _)| *pid)
    }

    /// Verifies internal accounting invariants; used by property tests and
    /// debug assertions in the kernel.
    pub fn check_invariants(&self) -> Result<(), String> {
        let resident = self.total_resident();
        let recomputed: u64 = self.procs.values().map(|p| p.resident()).sum();
        if resident != recomputed {
            return Err(format!(
                "resident counter ({resident}) != recomputed sum ({recomputed})"
            ));
        }
        if self.lru.len() != self.procs.len() {
            return Err(format!(
                "victim index has {} entries for {} processes",
                self.lru.len(),
                self.procs.len()
            ));
        }
        if resident + self.file_cache > self.config.usable_ram() {
            return Err(format!(
                "resident ({resident}) + cache ({}) exceeds usable RAM ({})",
                self.file_cache,
                self.config.usable_ram()
            ));
        }
        for (pid, pm) in &self.procs {
            if !self.lru.contains(&victim_key(pm, *pid)) {
                return Err(format!(
                    "victim index disagrees with last_touch/suspended of {pid:?}"
                ));
            }
        }
        match &self.swapdev {
            None => {
                let swapped: u64 = self.procs.values().map(|p| p.swapped).sum();
                if swapped != self.swap_used {
                    return Err(format!(
                        "per-process swapped sum ({swapped}) != swap_used ({})",
                        self.swap_used
                    ));
                }
            }
            Some(dev) => {
                dev.check_invariants();
                if self.swap_used != dev.allocated_bytes() {
                    return Err(format!(
                        "swap_used ({}) != device occupancy ({})",
                        self.swap_used,
                        dev.allocated_bytes()
                    ));
                }
                if !self.swap_used.is_multiple_of(dev.block_size()) {
                    return Err("device occupancy not block-aligned".into());
                }
                let bs = dev.block_size();
                for (pid, pm) in &self.procs {
                    if u64::from(dev.active_blocks_of(*pid)) != pm.swapped.div_ceil(bs) {
                        return Err(format!(
                            "{pid:?}: active blocks != ceil(swapped / block_size)"
                        ));
                    }
                    if u64::from(dev.cached_blocks_of(*pid)) > pm.resident_clean.div_ceil(bs) {
                        return Err(format!("{pid:?}: swap cache exceeds resident clean"));
                    }
                }
            }
        }
        if self.swap_used > self.config.swap_capacity {
            return Err("swap used exceeds swap capacity".into());
        }
        Ok(())
    }

    /// The current eviction order over all registered processes: suspended
    /// first, then least-recently touched, pid as the tiebreaker. Exposed so
    /// the differential tests can compare victim order across models.
    pub fn victim_order_snapshot(&self) -> Vec<Pid> {
        self.lru.iter().map(|&(_, _, pid)| pid).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> MemoryManager {
        MemoryManager::new(MemoryConfig::default())
    }

    #[test]
    fn allocation_within_free_ram_is_free() {
        let mut m = mgr();
        m.register(Pid(1), SimTime::ZERO);
        let charge = m.allocate(Pid(1), GIB, 1.0, SimTime::ZERO).unwrap();
        assert!(charge.is_free());
        assert_eq!(m.process(Pid(1)).unwrap().resident_dirty, GIB);
        assert_eq!(m.swap_used(), 0);
        m.check_invariants().unwrap();
    }

    #[test]
    fn file_cache_reclaimed_before_anonymous_memory() {
        let mut m = mgr();
        m.register(Pid(1), SimTime::ZERO);
        m.register(Pid(2), SimTime::ZERO);
        m.allocate(Pid(1), GIB, 1.0, SimTime::ZERO).unwrap();
        m.populate_file_cache(2 * GIB);
        assert!(m.file_cache() > GIB);
        // Allocating 2 GiB now exceeds free RAM but the cache absorbs it.
        let charge = m
            .allocate(Pid(2), 2 * GIB, 1.0, SimTime::from_secs(1))
            .unwrap();
        assert!(charge.cache_reclaimed > 0);
        assert_eq!(
            charge.dirty_paged_out, 0,
            "no anonymous paging while cache is available"
        );
        m.check_invariants().unwrap();
    }

    #[test]
    fn suspended_process_is_paged_out_first() {
        let mut m = mgr();
        m.register(Pid(1), SimTime::ZERO);
        m.register(Pid(2), SimTime::from_secs(1));
        m.register(Pid(3), SimTime::from_secs(2));
        m.allocate(Pid(1), GIB, 1.0, SimTime::ZERO).unwrap();
        m.allocate(Pid(2), GIB, 1.0, SimTime::from_secs(1)).unwrap();
        m.set_suspended(Pid(2), true).unwrap();
        // Node has 4 GiB - 0.6 reserve = ~3.4 usable; 2 GiB used; allocating
        // 2 GiB more must evict ~0.6 GiB and the victim must be pid 2.
        let charge = m
            .allocate(Pid(3), 2 * GIB, 1.0, SimTime::from_secs(2))
            .unwrap();
        assert!(charge.dirty_paged_out > 0);
        assert_eq!(charge.victims.len(), 1);
        assert_eq!(charge.victims[0].0, Pid(2));
        assert!(m.process(Pid(2)).unwrap().swapped > 0);
        assert_eq!(m.process(Pid(1)).unwrap().swapped, 0);
        m.check_invariants().unwrap();
    }

    #[test]
    fn lru_breaks_ties_between_running_victims() {
        let mut m = mgr();
        m.register(Pid(1), SimTime::ZERO);
        m.register(Pid(2), SimTime::ZERO);
        m.register(Pid(3), SimTime::ZERO);
        m.allocate(Pid(1), GIB, 1.0, SimTime::from_secs(1)).unwrap();
        m.allocate(Pid(2), GIB, 1.0, SimTime::from_secs(5)).unwrap();
        // pid 1 touched longest ago: it is the first victim.
        let charge = m
            .allocate(Pid(3), 2 * GIB, 1.0, SimTime::from_secs(6))
            .unwrap();
        assert_eq!(charge.victims[0].0, Pid(1));
    }

    #[test]
    fn clean_pages_are_dropped_without_swap_writes() {
        let mut m = mgr();
        m.register(Pid(1), SimTime::ZERO);
        m.register(Pid(2), SimTime::ZERO);
        // 1 GiB fully clean (e.g. mapped code/readonly data).
        m.allocate(Pid(1), GIB, 0.0, SimTime::ZERO).unwrap();
        m.set_suspended(Pid(1), true).unwrap();
        let charge = m
            .allocate(Pid(2), 3 * GIB, 1.0, SimTime::from_secs(1))
            .unwrap();
        assert!(charge.clean_dropped > 0);
        assert_eq!(charge.dirty_paged_out, 0);
        m.check_invariants().unwrap();
    }

    #[test]
    fn over_eviction_makes_swap_grow_superlinearly() {
        // Paging out for a small shortfall vs a large shortfall: the ratio of
        // swapped bytes should exceed the ratio of shortfalls.
        let run = |alloc: u64| -> u64 {
            let mut m = mgr();
            m.register(Pid(1), SimTime::ZERO);
            m.register(Pid(2), SimTime::ZERO);
            m.allocate(Pid(1), 2 * GIB + 512 * MIB, 1.0, SimTime::ZERO)
                .unwrap();
            m.set_suspended(Pid(1), true).unwrap();
            m.allocate(Pid(2), alloc, 1.0, SimTime::from_secs(1))
                .unwrap();
            m.process(Pid(1)).unwrap().total_paged_out
        };
        let small = run(GIB);
        let large = run(2 * GIB);
        assert!(small > 0);
        let shortfall_ratio = 2.0; // the second allocation's shortfall is ~2x... (approximately)
        let swap_ratio = large as f64 / small as f64;
        assert!(
            swap_ratio > shortfall_ratio * 0.9,
            "swapped bytes should grow at least roughly linearly: {swap_ratio}"
        );
    }

    #[test]
    fn page_in_restores_resident_memory() {
        let mut m = mgr();
        m.register(Pid(1), SimTime::ZERO);
        m.register(Pid(2), SimTime::ZERO);
        m.allocate(Pid(1), 2 * GIB, 1.0, SimTime::ZERO).unwrap();
        m.set_suspended(Pid(1), true).unwrap();
        m.allocate(Pid(2), 2 * GIB, 1.0, SimTime::from_secs(1))
            .unwrap();
        let swapped_before = m.process(Pid(1)).unwrap().swapped;
        assert!(swapped_before > 0);
        // pid 2 finishes and its memory is freed; pid 1 resumes.
        m.remove(Pid(2)).unwrap();
        m.set_suspended(Pid(1), false).unwrap();
        let charge = m.page_in_all(Pid(1), SimTime::from_secs(100)).unwrap();
        assert_eq!(charge.paged_in, swapped_before);
        let pm = m.process(Pid(1)).unwrap();
        assert_eq!(pm.swapped, 0);
        assert_eq!(pm.virtual_size(), 2 * GIB);
        assert_eq!(m.swap_used(), 0);
        m.check_invariants().unwrap();
    }

    #[test]
    fn page_in_with_no_swapped_bytes_is_free() {
        let mut m = mgr();
        m.register(Pid(1), SimTime::ZERO);
        m.allocate(Pid(1), GIB, 1.0, SimTime::ZERO).unwrap();
        let charge = m.page_in_all(Pid(1), SimTime::from_secs(1)).unwrap();
        assert!(charge.is_free());
    }

    #[test]
    fn release_and_remove_free_memory() {
        let mut m = mgr();
        m.register(Pid(1), SimTime::ZERO);
        m.allocate(Pid(1), GIB, 1.0, SimTime::ZERO).unwrap();
        m.release(Pid(1), 512 * MIB).unwrap();
        assert_eq!(m.process(Pid(1)).unwrap().resident(), GIB - 512 * MIB);
        m.remove(Pid(1)).unwrap();
        assert!(m.process(Pid(1)).is_none());
        assert_eq!(m.total_resident(), 0);
    }

    #[test]
    fn swap_exhaustion_is_oom() {
        let cfg = MemoryConfig {
            total_ram: 2 * GIB,
            os_reserve: 256 * MIB,
            swap_capacity: 256 * MIB,
            ..MemoryConfig::default()
        };
        let mut m = MemoryManager::new(cfg);
        m.register(Pid(1), SimTime::ZERO);
        m.register(Pid(2), SimTime::ZERO);
        m.allocate(Pid(1), GIB + 512 * MIB, 1.0, SimTime::ZERO)
            .unwrap();
        m.set_suspended(Pid(1), true).unwrap();
        let err = m
            .allocate(Pid(2), GIB + 512 * MIB, 1.0, SimTime::from_secs(1))
            .unwrap_err();
        assert_eq!(err, OsError::OutOfMemory);
        assert_eq!(m.stats().oom_kills, 1);
        assert!(m.oom_victim().is_some());
    }

    #[test]
    fn thrashing_when_working_set_exceeds_ram() {
        let mut m = mgr();
        m.register(Pid(1), SimTime::ZERO);
        // A single process asking for more than usable RAM must thrash.
        let charge = m.allocate(Pid(1), 5 * GIB, 1.0, SimTime::ZERO).unwrap();
        assert!(charge.self_thrash_bytes > 0);
        assert!(charge.swap_read_bytes() > 0 && charge.swap_write_bytes() > 0);
    }

    #[test]
    fn unknown_pid_is_an_error() {
        let mut m = mgr();
        assert_eq!(
            m.allocate(Pid(9), 1, 1.0, SimTime::ZERO).unwrap_err(),
            OsError::NoSuchProcess
        );
        assert_eq!(
            m.page_in_all(Pid(9), SimTime::ZERO).unwrap_err(),
            OsError::NoSuchProcess
        );
        assert_eq!(m.release(Pid(9), 1).unwrap_err(), OsError::NoSuchProcess);
        assert_eq!(m.remove(Pid(9)).unwrap_err(), OsError::NoSuchProcess);
        assert_eq!(
            m.set_suspended(Pid(9), true).unwrap_err(),
            OsError::NoSuchProcess
        );
        assert_eq!(
            m.touch(Pid(9), SimTime::ZERO).unwrap_err(),
            OsError::NoSuchProcess
        );
    }

    #[test]
    fn higher_swappiness_pages_anon_even_with_cache_available() {
        let cfg = MemoryConfig {
            swappiness: 100,
            ..MemoryConfig::default()
        };
        let mut m = MemoryManager::new(cfg);
        m.register(Pid(1), SimTime::ZERO);
        m.register(Pid(2), SimTime::ZERO);
        m.allocate(Pid(1), GIB, 1.0, SimTime::ZERO).unwrap();
        m.set_suspended(Pid(1), true).unwrap();
        m.populate_file_cache(3 * GIB);
        let charge = m
            .allocate(Pid(2), 2 * GIB, 1.0, SimTime::from_secs(1))
            .unwrap();
        // With swappiness=100 only ~half the shortfall is taken from the cache.
        assert!(
            charge.dirty_paged_out > 0,
            "expected anonymous paging with high swappiness"
        );
    }
}
