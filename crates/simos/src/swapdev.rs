//! Block-granular swap-device model.
//!
//! [`SwapDevice`] models the swap area as an array of fixed-size blocks with
//! a word-packed allocation bitmap, a parallel *cached* bitmap (a cached
//! block holds content that is **also** resident in RAM — the swap cache),
//! per-process block extents, and KernelX-style swap-in/swap-out timing
//! counters. The device is an *occupancy* model layered under
//! [`crate::MemoryManager`]: byte-exact charge accounting stays in the
//! manager, while the device answers block-granular capacity questions
//! (fragmentation makes swap fill earlier than the byte total suggests),
//! retains freed backing store as reclaimable swap cache after page-ins,
//! and records the I/O counters the benches report.
//!
//! Everything is gated behind [`SwapConfig::enabled`], which defaults to
//! `false` so every pre-existing fixed-seed pin stays byte-identical.

use crate::process::Pid;
use crate::signal::OsError;
use mrp_sim::{SimDuration, MIB};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Knobs of the block-granular swap-device model. Default-off.
///
/// ```
/// use mrp_simos::SwapConfig;
///
/// // The default configuration leaves the device off: the memory manager
/// // keeps its legacy byte-granular accounting, bit for bit.
/// let off = SwapConfig::default();
/// assert!(!off.enabled);
/// assert!(off.validate().is_ok());
///
/// // `enabled()` switches block-granular swap accounting on with eager
/// // resume (the whole working set pages back in at SIGCONT time).
/// let eager = SwapConfig::enabled();
/// assert!(eager.enabled && !eager.lazy_resume);
///
/// // `lazy()` additionally makes resume lazy: only `resume_prefetch` of the
/// // swapped bytes page in up front, the rest faults back in on touch.
/// let lazy = SwapConfig::lazy();
/// assert!(lazy.lazy_resume && lazy.resume_prefetch < 1.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SwapConfig {
    /// Master switch. `false` (the default) keeps the legacy byte-granular
    /// swap accounting and leaves every existing pinned trace untouched.
    pub enabled: bool,
    /// Size of one swap block in bytes. Occupancy is charged in whole
    /// blocks, so a process with 1 byte swapped holds a full block.
    pub block_size: u64,
    /// When `true`, a resumed process pages in only
    /// [`resume_prefetch`](Self::resume_prefetch) of its swapped bytes at
    /// SIGCONT time; the remainder faults back in on touch (and at the
    /// latest when the task finalizes and re-reads its state).
    pub lazy_resume: bool,
    /// Fraction of swapped bytes paged in eagerly on a lazy resume, in
    /// `[0, 1]`. Ignored unless [`lazy_resume`](Self::lazy_resume) is set.
    pub resume_prefetch: f64,
}

impl Default for SwapConfig {
    fn default() -> Self {
        SwapConfig {
            enabled: false,
            block_size: MIB,
            lazy_resume: false,
            resume_prefetch: 0.25,
        }
    }
}

impl SwapConfig {
    /// Block-granular swap accounting on, resume still eager.
    ///
    /// ```
    /// use mrp_simos::SwapConfig;
    /// assert!(SwapConfig::enabled().validate().is_ok());
    /// ```
    pub fn enabled() -> Self {
        SwapConfig {
            enabled: true,
            ..SwapConfig::default()
        }
    }

    /// Block-granular swap accounting on with lazy (fault-on-touch) resume.
    ///
    /// ```
    /// use mrp_simos::SwapConfig;
    /// let cfg = SwapConfig::lazy();
    /// assert!(cfg.enabled && cfg.lazy_resume);
    /// ```
    pub fn lazy() -> Self {
        SwapConfig {
            lazy_resume: true,
            ..SwapConfig::enabled()
        }
    }

    /// Checks the knobs for consistency. Always `Ok` while disabled.
    ///
    /// ```
    /// use mrp_simos::SwapConfig;
    /// let mut cfg = SwapConfig::lazy();
    /// cfg.resume_prefetch = 1.5;
    /// assert!(cfg.validate().is_err());
    /// cfg.enabled = false; // disabled configs are never rejected
    /// assert!(cfg.validate().is_ok());
    /// ```
    pub fn validate(&self) -> Result<(), String> {
        if !self.enabled {
            return Ok(());
        }
        if self.block_size == 0 {
            return Err("swap.block_size must be positive".into());
        }
        if self.block_size > 64 * MIB {
            return Err("swap.block_size above 64 MiB defeats the model".into());
        }
        if !(self.resume_prefetch >= 0.0 && self.resume_prefetch <= 1.0) {
            return Err("swap.resume_prefetch must be in [0, 1]".into());
        }
        Ok(())
    }
}

/// Swap-device counters, in the style of the KernelX anonymous swapper's
/// perf counters (op counts plus cumulative transfer time, maintained by the
/// kernel disk layer; block-level cache counters maintained by the device).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SwapStats {
    /// Swap-out (write) operations charged to the device.
    pub swap_out_ops: u64,
    /// Swap-in (read) operations charged to the device.
    pub swap_in_ops: u64,
    /// Cumulative simulated time spent writing to swap.
    pub swap_out_time: SimDuration,
    /// Cumulative simulated time spent reading from swap.
    pub swap_in_time: SimDuration,
    /// Blocks re-activated from the swap cache (clean pages evicted again
    /// without a fresh block allocation).
    pub cache_reactivated_blocks: u64,
    /// Cached blocks dropped to make room for new swap-outs.
    pub cache_dropped_blocks: u64,
}

/// Per-process block extent: which blocks back swapped-out bytes (`active`)
/// and which are swap cache (`cached` — content also resident in RAM).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
struct Extent {
    active: Vec<u32>,
    cached: Vec<u32>,
}

/// The block-granular swap device. See the module docs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SwapDevice {
    block_size: u64,
    total_blocks: u32,
    /// Word-packed allocation bitmap: bit set = block in use (active or
    /// cached).
    allocated: Vec<u64>,
    /// Word-packed cache bitmap: bit set = block content also lives in RAM.
    /// Always a subset of `allocated`.
    cached: Vec<u64>,
    extents: BTreeMap<Pid, Extent>,
    stats: SwapStats,
}

fn bit(words: &[u64], idx: u32) -> bool {
    words[(idx / 64) as usize] >> (idx % 64) & 1 == 1
}

fn set_bit(words: &mut [u64], idx: u32, value: bool) {
    let word = &mut words[(idx / 64) as usize];
    if value {
        *word |= 1 << (idx % 64);
    } else {
        *word &= !(1 << (idx % 64));
    }
}

impl SwapDevice {
    /// A device covering `capacity` bytes in blocks of `block_size` (partial
    /// trailing blocks are not usable).
    pub fn new(capacity: u64, block_size: u64) -> Self {
        assert!(block_size > 0, "swap block size must be positive");
        let total_blocks = u32::try_from(capacity / block_size).expect("swap area fits in u32");
        let words = (total_blocks as usize).div_ceil(64);
        SwapDevice {
            block_size,
            total_blocks,
            allocated: vec![0; words],
            cached: vec![0; words],
            extents: BTreeMap::new(),
            stats: SwapStats::default(),
        }
    }

    /// Size of one block in bytes.
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Total blocks the device can hold.
    pub fn total_blocks(&self) -> u32 {
        self.total_blocks
    }

    /// Blocks currently allocated (active + cached).
    pub fn allocated_blocks(&self) -> u32 {
        self.allocated.iter().map(|w| w.count_ones()).sum()
    }

    /// Bytes of swap area occupied (`allocated_blocks * block_size`).
    pub fn allocated_bytes(&self) -> u64 {
        u64::from(self.allocated_blocks()) * self.block_size
    }

    /// Blocks currently held as swap cache across all processes.
    pub fn cached_blocks(&self) -> u32 {
        self.cached.iter().map(|w| w.count_ones()).sum()
    }

    /// The device's I/O and cache counters.
    pub fn stats(&self) -> &SwapStats {
        &self.stats
    }

    /// Records one swap write of `time` against the KernelX-style counters.
    pub fn record_out(&mut self, time: SimDuration) {
        self.stats.swap_out_ops += 1;
        self.stats.swap_out_time += time;
    }

    /// Records one swap read of `time` against the KernelX-style counters.
    pub fn record_in(&mut self, time: SimDuration) {
        self.stats.swap_in_ops += 1;
        self.stats.swap_in_time += time;
    }

    /// Blocks backing `pid`'s swapped-out bytes.
    pub fn active_blocks_of(&self, pid: Pid) -> u32 {
        self.extents.get(&pid).map_or(0, |e| e.active.len() as u32)
    }

    /// Swap-cache blocks held for `pid`.
    pub fn cached_blocks_of(&self, pid: Pid) -> u32 {
        self.extents.get(&pid).map_or(0, |e| e.cached.len() as u32)
    }

    fn blocks_for(&self, bytes: u64) -> u32 {
        u32::try_from(bytes.div_ceil(self.block_size)).expect("extent fits in u32")
    }

    fn free_blocks(&self) -> u32 {
        self.total_blocks - self.allocated_blocks()
    }

    /// Lowest-index free block, if any (first-fit keeps runs deterministic).
    fn alloc_block(&mut self) -> Option<u32> {
        for (w, word) in self.allocated.iter().enumerate() {
            if *word != u64::MAX {
                let idx = w as u32 * 64 + word.trailing_ones();
                if idx < self.total_blocks {
                    set_bit(&mut self.allocated, idx, true);
                    return Some(idx);
                }
            }
        }
        None
    }

    /// Drops one cached block (lowest pid, most recently cached first) to
    /// make room. Returns false when no cache is left to shed.
    fn drop_one_cached(&mut self) -> bool {
        for extent in self.extents.values_mut() {
            if let Some(block) = extent.cached.pop() {
                set_bit(&mut self.cached, block, false);
                set_bit(&mut self.allocated, block, false);
                self.stats.cache_dropped_blocks += 1;
                return true;
            }
        }
        false
    }

    /// Could `pid`'s backing grow to cover `swapped_bytes`, counting free
    /// blocks plus every droppable cached block (its own included)?
    pub fn can_back(&self, pid: Pid, swapped_bytes: u64) -> bool {
        let want = self.blocks_for(swapped_bytes);
        let have = self.active_blocks_of(pid);
        let need = want.saturating_sub(have);
        need <= self.free_blocks() + self.cached_blocks()
    }

    /// Grows or shrinks `pid`'s active extent to cover `swapped_bytes`.
    ///
    /// Growth consumes the process's own swap cache first (re-activation:
    /// the clean copy on disk is still valid, no new block needed), then
    /// free blocks, then drops other processes' cache. Shrink sends blocks
    /// to the swap cache when `to_cache` is set (page-in: content now lives
    /// in both places) and frees them otherwise (release/exit).
    pub fn set_backing(
        &mut self,
        pid: Pid,
        swapped_bytes: u64,
        to_cache: bool,
    ) -> Result<(), OsError> {
        let want = self.blocks_for(swapped_bytes);
        if !self.can_back(pid, swapped_bytes) {
            return Err(OsError::OutOfMemory);
        }
        let mut extent = self.extents.remove(&pid).unwrap_or_default();
        while (extent.active.len() as u32) < want {
            if let Some(block) = extent.cached.pop() {
                set_bit(&mut self.cached, block, false);
                self.stats.cache_reactivated_blocks += 1;
                extent.active.push(block);
            } else if let Some(block) = self.alloc_block() {
                extent.active.push(block);
            } else {
                let dropped = self.drop_one_cached();
                debug_assert!(dropped, "can_back admitted an unbackable extent");
                if !dropped {
                    self.extents.insert(pid, extent);
                    return Err(OsError::OutOfMemory);
                }
            }
        }
        while (extent.active.len() as u32) > want {
            let block = extent.active.pop().expect("len checked above");
            if to_cache {
                set_bit(&mut self.cached, block, true);
                extent.cached.push(block);
            } else {
                set_bit(&mut self.allocated, block, false);
            }
        }
        if extent.active.is_empty() && extent.cached.is_empty() {
            self.extents.remove(&pid);
        } else {
            self.extents.insert(pid, extent);
        }
        Ok(())
    }

    /// Caps `pid`'s swap cache at what `resident_clean_bytes` can still
    /// mirror; excess blocks are freed.
    pub fn trim_cache(&mut self, pid: Pid, resident_clean_bytes: u64) {
        let cap = self.blocks_for(resident_clean_bytes);
        let Some(extent) = self.extents.get_mut(&pid) else {
            return;
        };
        while (extent.cached.len() as u32) > cap {
            let block = extent.cached.pop().expect("len checked above");
            set_bit(&mut self.cached, block, false);
            set_bit(&mut self.allocated, block, false);
            self.stats.cache_dropped_blocks += 1;
        }
        if extent.active.is_empty() && extent.cached.is_empty() {
            self.extents.remove(&pid);
        }
    }

    /// Frees everything the process held (exit / OOM kill).
    pub fn remove(&mut self, pid: Pid) {
        if let Some(extent) = self.extents.remove(&pid) {
            for block in extent.active.into_iter().chain(extent.cached) {
                set_bit(&mut self.cached, block, false);
                set_bit(&mut self.allocated, block, false);
            }
        }
    }

    /// Internal consistency: bitmap popcounts match the extents, the cached
    /// bitmap is a subset of the allocated bitmap, and no block appears in
    /// two extents.
    ///
    /// # Panics
    /// On any violated invariant (used by tests and debug assertions).
    pub fn check_invariants(&self) {
        let mut seen = vec![false; self.total_blocks as usize];
        let mut active_total = 0u32;
        let mut cached_total = 0u32;
        for (pid, extent) in &self.extents {
            for &block in &extent.active {
                assert!(bit(&self.allocated, block), "{pid:?}: active block free");
                assert!(!bit(&self.cached, block), "{pid:?}: active block cached");
                assert!(!seen[block as usize], "{pid:?}: block double-owned");
                seen[block as usize] = true;
                active_total += 1;
            }
            for &block in &extent.cached {
                assert!(bit(&self.allocated, block), "{pid:?}: cached block free");
                assert!(bit(&self.cached, block), "{pid:?}: cache bit missing");
                assert!(!seen[block as usize], "{pid:?}: block double-owned");
                seen[block as usize] = true;
                cached_total += 1;
            }
        }
        assert_eq!(
            self.allocated_blocks(),
            active_total + cached_total,
            "allocation bitmap disagrees with the extents"
        );
        assert_eq!(
            self.cached_blocks(),
            cached_total,
            "cache bitmap disagrees with the extents"
        );
        for (w, (a, c)) in self.allocated.iter().zip(&self.cached).enumerate() {
            assert_eq!(c & !a, 0, "word {w}: cached block not allocated");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PID: Pid = Pid(1);
    const OTHER: Pid = Pid(2);

    #[test]
    fn config_validation() {
        assert!(SwapConfig::default().validate().is_ok());
        assert!(SwapConfig::enabled().validate().is_ok());
        assert!(SwapConfig::lazy().validate().is_ok());
        let mut bad = SwapConfig::enabled();
        bad.block_size = 0;
        assert!(bad.validate().is_err());
        bad = SwapConfig::lazy();
        bad.resume_prefetch = f64::NAN;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn backing_is_block_granular() {
        let mut dev = SwapDevice::new(8 * MIB, MIB);
        dev.set_backing(PID, 1, false).unwrap();
        assert_eq!(dev.allocated_blocks(), 1, "1 byte still costs a block");
        dev.set_backing(PID, 3 * MIB + 1, false).unwrap();
        assert_eq!(dev.allocated_blocks(), 4);
        dev.set_backing(PID, 0, false).unwrap();
        assert_eq!(dev.allocated_blocks(), 0);
        dev.check_invariants();
    }

    #[test]
    fn page_in_retains_blocks_as_cache() {
        let mut dev = SwapDevice::new(8 * MIB, MIB);
        dev.set_backing(PID, 4 * MIB, false).unwrap();
        dev.set_backing(PID, 0, true).unwrap(); // full page-in
        assert_eq!(dev.active_blocks_of(PID), 0);
        assert_eq!(dev.cached_blocks_of(PID), 4);
        assert_eq!(dev.allocated_blocks(), 4, "cache still occupies swap");
        // Re-eviction re-activates the cached blocks without allocating.
        dev.set_backing(PID, 2 * MIB, false).unwrap();
        assert_eq!(dev.stats().cache_reactivated_blocks, 2);
        assert_eq!(dev.allocated_blocks(), 4);
        dev.check_invariants();
    }

    #[test]
    fn cache_is_shed_under_capacity_pressure() {
        let mut dev = SwapDevice::new(4 * MIB, MIB);
        dev.set_backing(PID, 3 * MIB, false).unwrap();
        dev.set_backing(PID, 0, true).unwrap(); // 3 cached blocks
        assert!(dev.can_back(OTHER, 4 * MIB), "cache is droppable");
        dev.set_backing(OTHER, 4 * MIB, false).unwrap();
        assert_eq!(dev.cached_blocks(), 0, "cache shed for real backing");
        assert!(dev.stats().cache_dropped_blocks >= 1);
        assert!(!dev.can_back(PID, MIB), "device genuinely full now");
        assert!(dev.set_backing(PID, MIB, false).is_err());
        dev.check_invariants();
    }

    #[test]
    fn trim_cache_follows_resident_clean() {
        let mut dev = SwapDevice::new(8 * MIB, MIB);
        dev.set_backing(PID, 4 * MIB, false).unwrap();
        dev.set_backing(PID, 0, true).unwrap();
        dev.trim_cache(PID, MIB + 1);
        assert_eq!(dev.cached_blocks_of(PID), 2, "ceil(1 MiB + 1) = 2 blocks");
        dev.trim_cache(PID, 0);
        assert_eq!(dev.cached_blocks_of(PID), 0);
        assert_eq!(dev.allocated_blocks(), 0);
        dev.check_invariants();
    }

    #[test]
    fn remove_frees_everything() {
        let mut dev = SwapDevice::new(8 * MIB, MIB);
        dev.set_backing(PID, 2 * MIB, false).unwrap();
        dev.set_backing(OTHER, 3 * MIB, false).unwrap();
        dev.set_backing(OTHER, MIB, true).unwrap();
        dev.remove(OTHER);
        assert_eq!(dev.allocated_blocks(), 2);
        assert_eq!(dev.cached_blocks(), 0);
        dev.check_invariants();
    }

    #[test]
    fn io_counters_accumulate() {
        let mut dev = SwapDevice::new(8 * MIB, MIB);
        dev.record_out(SimDuration::from_millis(250));
        dev.record_out(SimDuration::from_millis(250));
        dev.record_in(SimDuration::from_millis(100));
        let stats = dev.stats();
        assert_eq!(stats.swap_out_ops, 2);
        assert_eq!(stats.swap_in_ops, 1);
        assert_eq!(stats.swap_out_time, SimDuration::from_millis(500));
        assert_eq!(stats.swap_in_time, SimDuration::from_millis(100));
    }
}
