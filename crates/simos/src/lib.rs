//! # mrp-simos — a simulated node operating system
//!
//! The paper's preemption primitive ("OS-Assisted Task Preemption for
//! Hadoop") leans entirely on mechanisms the operating system already
//! provides: POSIX job-control signals to stop and continue task processes,
//! and demand paging to move the memory of stopped tasks out of the way only
//! when — and only as much as — physical memory pressure requires.
//!
//! This crate models those mechanisms for one node:
//!
//! * [`Kernel`] — the facade: process table, signal delivery, memory charges,
//!   disk I/O timing, OOM killing.
//! * [`Signal`], [`ProcessState`], [`transition`] — POSIX-style signal
//!   semantics (`SIGTSTP`, `SIGCONT`, `SIGKILL`, …).
//! * [`MemoryManager`] — resident/swapped accounting, file-cache-first reclaim
//!   (`swappiness = 0`), suspended-processes-first LRU victim selection,
//!   clustered page-out with over-eviction, swap-capacity limits.
//! * [`Disk`] — a bandwidth/latency model for block reads and swap traffic.
//!
//! All operations are pure state transitions that *return* their virtual-time
//! cost; the MapReduce engine integrates the costs into its discrete-event
//! simulation.
//!
//! ```
//! use mrp_simos::{Kernel, Signal};
//! use mrp_sim::{SimTime, GIB};
//!
//! let mut kernel = Kernel::default();
//! let low = kernel.spawn("task_low", SimTime::ZERO);
//! let high = kernel.spawn("task_high", SimTime::ZERO);
//!
//! // The low-priority task fills most of the RAM, then gets suspended.
//! kernel.allocate(low, 2 * GIB, 1.0, SimTime::ZERO).unwrap();
//! kernel.signal(low, Signal::Sigtstp, SimTime::from_secs(30)).unwrap();
//!
//! // The high-priority task's allocation pushes the suspended task to swap,
//! // and the stall for doing so is charged to the allocator.
//! let outcome = kernel.allocate(high, 2 * GIB, 1.0, SimTime::from_secs(31)).unwrap();
//! assert!(outcome.charge.dirty_paged_out > 0);
//! assert!(kernel.swapped_bytes(low) > 0);
//! ```

#![warn(missing_docs)]

mod disk;
mod kernel;
mod memory;
mod process;
mod refmodel;
mod signal;
mod swapdev;

pub use disk::{Disk, DiskConfig, DiskStats};
pub use kernel::{Kernel, MemOutcome, NodeOsConfig, SignalOutcome};
pub use memory::{MemoryCharge, MemoryConfig, MemoryManager, MemoryStats, ProcMemory};
pub use process::{Pid, Process};
pub use refmodel::ReferenceMemoryModel;
pub use signal::{transition, OsError, ProcessState, Signal, SignalEffect};
pub use swapdev::{SwapConfig, SwapDevice, SwapStats};

#[cfg(test)]
mod randomized_tests {
    //! Property-style tests driven by seeded randomization (the container has
    //! no proptest); fixed seeds keep every failure reproducible.

    use super::*;
    use mrp_sim::{SimRng, SimTime, GIB, MIB};

    /// Arbitrary interleavings of kernel operations never violate the memory
    /// manager's accounting invariants, never panic, and never leave swapped
    /// bytes attributed to dead processes.
    #[test]
    fn kernel_survives_arbitrary_interleavings() {
        for case in 0..64u64 {
            let mut rng = SimRng::new(0x5105 + case);
            let mut k = Kernel::new(NodeOsConfig {
                memory: MemoryConfig {
                    total_ram: 4 * GIB,
                    os_reserve: 512 * MIB,
                    swap_capacity: 16 * GIB,
                    ..MemoryConfig::default()
                },
                disk: DiskConfig::default(),
            });
            let mut pids: Vec<Pid> = Vec::new();
            let ops = 1 + rng.index(120);
            for t in 1..=ops as u64 {
                let now = SimTime::from_secs(t);
                let proc_idx = rng.index(8);
                match rng.index(8) {
                    0 => pids.push(k.spawn(format!("p{t}"), now)),
                    1 => {
                        if let Some(&pid) = pids.get(proc_idx) {
                            let mib = 1 + rng.index(2047) as u64;
                            let frac = if rng.chance(0.5) { 1.0 } else { 0.25 };
                            let _ = k.allocate(pid, mib * MIB, frac, now);
                        }
                    }
                    2 => {
                        if let Some(&pid) = pids.get(proc_idx) {
                            let _ = k.signal(pid, Signal::Sigtstp, now);
                        }
                    }
                    3 => {
                        if let Some(&pid) = pids.get(proc_idx) {
                            let _ = k.signal(pid, Signal::Sigcont, now);
                        }
                    }
                    4 => {
                        if let Some(&pid) = pids.get(proc_idx) {
                            let _ = k.signal(pid, Signal::Sigkill, now);
                        }
                    }
                    5 => {
                        if let Some(&pid) = pids.get(proc_idx) {
                            let _ = k.exit(pid, 0, now);
                        }
                    }
                    6 => {
                        if let Some(&pid) = pids.get(proc_idx) {
                            let _ = k.fault_in_all(pid, now);
                        }
                    }
                    _ => {
                        let _ = k.disk_read((1 + rng.index(1023) as u64) * MIB);
                    }
                }
                assert!(
                    k.memory().check_invariants().is_ok(),
                    "invariant violated (case {case}, op {t}): {:?}",
                    k.memory().check_invariants()
                );
            }
            // Dead processes must not hold memory.
            for &pid in &pids {
                if let Ok(state) = k.state(pid) {
                    if !state.is_alive() {
                        assert!(
                            k.proc_memory(pid).is_none()
                                || k.proc_memory(pid).unwrap().virtual_size() == 0
                        );
                    }
                }
            }
        }
    }

    /// Signal transition function is total over live states and never
    /// resurrects dead processes.
    #[test]
    fn signal_transitions_are_sane() {
        let sigs = [
            Signal::Sigtstp,
            Signal::Sigcont,
            Signal::Sigterm,
            Signal::Sigkill,
            Signal::Sigstop,
        ];
        for case in 0..64u64 {
            let mut rng = SimRng::new(0x5165 + case);
            let mut state = ProcessState::Running;
            let steps = 1 + rng.index(50);
            for _ in 0..steps {
                let sig = sigs[rng.index(sigs.len())];
                match transition(state, sig) {
                    Ok((next, _)) => {
                        // Once dead, transition must error forever after.
                        assert!(state.is_alive());
                        state = next;
                    }
                    Err(e) => {
                        assert_eq!(e, OsError::NoSuchProcess);
                        assert!(!state.is_alive());
                    }
                }
            }
        }
    }
}
