//! # mrp-simos — a simulated node operating system
//!
//! The paper's preemption primitive ("OS-Assisted Task Preemption for
//! Hadoop") leans entirely on mechanisms the operating system already
//! provides: POSIX job-control signals to stop and continue task processes,
//! and demand paging to move the memory of stopped tasks out of the way only
//! when — and only as much as — physical memory pressure requires.
//!
//! This crate models those mechanisms for one node:
//!
//! * [`Kernel`] — the facade: process table, signal delivery, memory charges,
//!   disk I/O timing, OOM killing.
//! * [`Signal`], [`ProcessState`], [`transition`] — POSIX-style signal
//!   semantics (`SIGTSTP`, `SIGCONT`, `SIGKILL`, …).
//! * [`MemoryManager`] — resident/swapped accounting, file-cache-first reclaim
//!   (`swappiness = 0`), suspended-processes-first LRU victim selection,
//!   clustered page-out with over-eviction, swap-capacity limits.
//! * [`Disk`] — a bandwidth/latency model for block reads and swap traffic.
//!
//! All operations are pure state transitions that *return* their virtual-time
//! cost; the MapReduce engine integrates the costs into its discrete-event
//! simulation.
//!
//! ```
//! use mrp_simos::{Kernel, Signal};
//! use mrp_sim::{SimTime, GIB};
//!
//! let mut kernel = Kernel::default();
//! let low = kernel.spawn("task_low", SimTime::ZERO);
//! let high = kernel.spawn("task_high", SimTime::ZERO);
//!
//! // The low-priority task fills most of the RAM, then gets suspended.
//! kernel.allocate(low, 2 * GIB, 1.0, SimTime::ZERO).unwrap();
//! kernel.signal(low, Signal::Sigtstp, SimTime::from_secs(30)).unwrap();
//!
//! // The high-priority task's allocation pushes the suspended task to swap,
//! // and the stall for doing so is charged to the allocator.
//! let outcome = kernel.allocate(high, 2 * GIB, 1.0, SimTime::from_secs(31)).unwrap();
//! assert!(outcome.charge.dirty_paged_out > 0);
//! assert!(kernel.swapped_bytes(low) > 0);
//! ```

#![warn(missing_docs)]

mod disk;
mod kernel;
mod memory;
mod process;
mod signal;

pub use disk::{Disk, DiskConfig, DiskStats};
pub use kernel::{Kernel, MemOutcome, NodeOsConfig, SignalOutcome};
pub use memory::{MemoryCharge, MemoryConfig, MemoryManager, MemoryStats, ProcMemory};
pub use process::{Pid, Process};
pub use signal::{transition, OsError, ProcessState, Signal, SignalEffect};

#[cfg(test)]
mod proptests {
    use super::*;
    use mrp_sim::{SimTime, GIB, MIB};
    use proptest::prelude::*;

    /// Arbitrary interleavings of kernel operations never violate the memory
    /// manager's accounting invariants, never panic, and never leave swapped
    /// bytes attributed to dead processes.
    #[derive(Debug, Clone)]
    enum Op {
        Spawn,
        Allocate { proc_idx: usize, mib: u64, dirty: bool },
        Suspend(usize),
        Resume(usize),
        Kill(usize),
        Exit(usize),
        FaultIn(usize),
        DiskRead { mib: u64 },
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            Just(Op::Spawn),
            (0usize..8, 1u64..2048, any::<bool>())
                .prop_map(|(p, m, d)| Op::Allocate { proc_idx: p, mib: m, dirty: d }),
            (0usize..8).prop_map(Op::Suspend),
            (0usize..8).prop_map(Op::Resume),
            (0usize..8).prop_map(Op::Kill),
            (0usize..8).prop_map(Op::Exit),
            (0usize..8).prop_map(Op::FaultIn),
            (1u64..1024).prop_map(|m| Op::DiskRead { mib: m }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn kernel_survives_arbitrary_interleavings(ops in proptest::collection::vec(op_strategy(), 1..120)) {
            let mut k = Kernel::new(NodeOsConfig {
                memory: MemoryConfig {
                    total_ram: 4 * GIB,
                    os_reserve: 512 * MIB,
                    swap_capacity: 16 * GIB,
                    ..MemoryConfig::default()
                },
                disk: DiskConfig::default(),
            });
            let mut pids: Vec<Pid> = Vec::new();
            let mut t = 0u64;
            for op in ops {
                t += 1;
                let now = SimTime::from_secs(t);
                match op {
                    Op::Spawn => pids.push(k.spawn(format!("p{t}"), now)),
                    Op::Allocate { proc_idx, mib, dirty } => {
                        if let Some(&pid) = pids.get(proc_idx) {
                            let frac = if dirty { 1.0 } else { 0.25 };
                            let _ = k.allocate(pid, mib * MIB, frac, now);
                        }
                    }
                    Op::Suspend(i) => {
                        if let Some(&pid) = pids.get(i) {
                            let _ = k.signal(pid, Signal::Sigtstp, now);
                        }
                    }
                    Op::Resume(i) => {
                        if let Some(&pid) = pids.get(i) {
                            let _ = k.signal(pid, Signal::Sigcont, now);
                        }
                    }
                    Op::Kill(i) => {
                        if let Some(&pid) = pids.get(i) {
                            let _ = k.signal(pid, Signal::Sigkill, now);
                        }
                    }
                    Op::Exit(i) => {
                        if let Some(&pid) = pids.get(i) {
                            let _ = k.exit(pid, 0, now);
                        }
                    }
                    Op::FaultIn(i) => {
                        if let Some(&pid) = pids.get(i) {
                            let _ = k.fault_in_all(pid, now);
                        }
                    }
                    Op::DiskRead { mib } => {
                        let _ = k.disk_read(mib * MIB);
                    }
                }
                prop_assert!(k.memory().check_invariants().is_ok(),
                    "invariant violated after {:?}: {:?}", op, k.memory().check_invariants());
            }
            // Dead processes must not hold memory.
            for &pid in &pids {
                if let Ok(state) = k.state(pid) {
                    if !state.is_alive() {
                        prop_assert!(k.proc_memory(pid).is_none() || k.proc_memory(pid).unwrap().virtual_size() == 0);
                    }
                }
            }
        }

        /// Signal transition function is total over live states and never
        /// resurrects dead processes.
        #[test]
        fn signal_transitions_are_sane(sig_seq in proptest::collection::vec(0u8..5, 1..50)) {
            let sigs = [Signal::Sigtstp, Signal::Sigcont, Signal::Sigterm, Signal::Sigkill, Signal::Sigstop];
            let mut state = ProcessState::Running;
            for s in sig_seq {
                let sig = sigs[s as usize];
                match transition(state, sig) {
                    Ok((next, _)) => {
                        // Once dead, transition must error forever after.
                        prop_assert!(state.is_alive());
                        state = next;
                    }
                    Err(e) => {
                        prop_assert_eq!(e, OsError::NoSuchProcess);
                        prop_assert!(!state.is_alive());
                    }
                }
            }
        }
    }
}
