//! A simple disk performance model.
//!
//! Two aspects of the disk matter for the paper's evaluation:
//!
//! * sequential reads of HDFS blocks by map tasks (which dominate task
//!   duration together with the CPU parse rate), and
//! * swap traffic caused by paging out the memory of suspended tasks and
//!   paging it back in on resume — the entire overhead of the
//!   suspend/resume primitive comes from here.
//!
//! Linux clusters page-out operations into large sequential writes to amortise
//! seek costs (Section III-A of the paper), so swap writes run near sequential
//! bandwidth; page-ins on resume are also mostly sequential because the
//! process touches its whole working set while warming back up, but we model a
//! configurable efficiency factor for both directions.

use mrp_sim::{SimDuration, MIB};
use serde::{Deserialize, Serialize};

/// Static description of a node-local disk.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DiskConfig {
    /// Sequential read bandwidth in bytes/second (HDFS block reads).
    pub seq_read_bytes_per_sec: f64,
    /// Sequential write bandwidth in bytes/second (task output, spills).
    pub seq_write_bytes_per_sec: f64,
    /// Fraction of sequential bandwidth achieved by clustered page-out writes.
    pub swap_out_efficiency: f64,
    /// Fraction of sequential bandwidth achieved by page-in reads.
    pub swap_in_efficiency: f64,
    /// Fixed per-operation latency (seek + queueing), in seconds.
    pub access_latency_secs: f64,
    /// Fraction of the spindle's bandwidth that queued background traffic
    /// (DFS re-replication after a node failure) steals from swap I/O while
    /// a backlog is pending, in `[0, 1)`. `0.0` (the default) disables the
    /// contention model entirely: [`Disk::queue_background`] becomes a no-op
    /// and swap timings are byte-identical to the legacy model.
    #[serde(default)]
    pub background_share: f64,
}

impl Default for DiskConfig {
    fn default() -> Self {
        // A single 7.2k RPM SATA disk of the kind used in 2013-era Hadoop
        // nodes: ~120 MB/s streaming, a few ms of positioning time.
        DiskConfig {
            seq_read_bytes_per_sec: 130.0 * MIB as f64,
            seq_write_bytes_per_sec: 120.0 * MIB as f64,
            swap_out_efficiency: 0.9,
            swap_in_efficiency: 0.75,
            access_latency_secs: 0.008,
            background_share: 0.0,
        }
    }
}

/// Cumulative I/O accounting for a disk.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DiskStats {
    /// Bytes read sequentially (block reads).
    pub bytes_read: u64,
    /// Bytes written sequentially (task output).
    pub bytes_written: u64,
    /// Bytes written to the swap area.
    pub swap_bytes_out: u64,
    /// Bytes read back from the swap area.
    pub swap_bytes_in: u64,
    /// Background (re-replication) bytes ever queued against this spindle.
    #[serde(default)]
    pub background_bytes: u64,
}

/// A disk with a bandwidth/latency cost model and cumulative statistics.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Disk {
    config: DiskConfig,
    stats: DiskStats,
    /// Background (re-replication) bytes still contending for the spindle.
    #[serde(default)]
    background_pending: u64,
}

impl Disk {
    /// Creates a disk with the given configuration.
    pub fn new(config: DiskConfig) -> Self {
        assert!(config.seq_read_bytes_per_sec > 0.0);
        assert!(config.seq_write_bytes_per_sec > 0.0);
        assert!(config.swap_out_efficiency > 0.0 && config.swap_out_efficiency <= 1.0);
        assert!(config.background_share >= 0.0 && config.background_share < 1.0);
        assert!(config.swap_in_efficiency > 0.0 && config.swap_in_efficiency <= 1.0);
        Disk {
            config,
            stats: DiskStats::default(),
            background_pending: 0,
        }
    }

    /// The disk's configuration.
    pub fn config(&self) -> &DiskConfig {
        &self.config
    }

    /// Cumulative I/O statistics.
    pub fn stats(&self) -> &DiskStats {
        &self.stats
    }

    fn transfer_time(&self, bytes: u64, bytes_per_sec: f64) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        let secs = self.config.access_latency_secs + bytes as f64 / bytes_per_sec;
        SimDuration::from_secs_f64(secs)
    }

    /// Time to sequentially read `bytes` (e.g. an HDFS block), and records it.
    pub fn read(&mut self, bytes: u64) -> SimDuration {
        self.stats.bytes_read += bytes;
        self.transfer_time(bytes, self.config.seq_read_bytes_per_sec)
    }

    /// Time to sequentially write `bytes` (e.g. task output), and records it.
    pub fn write(&mut self, bytes: u64) -> SimDuration {
        self.stats.bytes_written += bytes;
        self.transfer_time(bytes, self.config.seq_write_bytes_per_sec)
    }

    /// Slows `bw` down while a background backlog holds part of the spindle,
    /// then drains the backlog by what the background stream transferred
    /// during the foreground operation.
    fn contended(&mut self, bytes: u64, bw: f64) -> SimDuration {
        if self.background_pending == 0 || self.config.background_share <= 0.0 {
            return self.transfer_time(bytes, bw);
        }
        let share = self.config.background_share;
        let time = self.transfer_time(bytes, bw * (1.0 - share));
        let drained = (time.as_secs_f64() * self.config.seq_write_bytes_per_sec * share) as u64;
        self.background_pending = self.background_pending.saturating_sub(drained.max(1));
        time
    }

    /// Time to page out `bytes` of dirty anonymous memory to swap.
    pub fn swap_out(&mut self, bytes: u64) -> SimDuration {
        self.stats.swap_bytes_out += bytes;
        let bw = self.config.seq_write_bytes_per_sec * self.config.swap_out_efficiency;
        self.contended(bytes, bw)
    }

    /// Time to page `bytes` back in from swap.
    pub fn swap_in(&mut self, bytes: u64) -> SimDuration {
        self.stats.swap_bytes_in += bytes;
        let bw = self.config.seq_read_bytes_per_sec * self.config.swap_in_efficiency;
        self.contended(bytes, bw)
    }

    /// Queues `bytes` of background traffic (DFS re-replication) against the
    /// spindle. No-op while [`DiskConfig::background_share`] is zero, so the
    /// default configuration never perturbs swap timings.
    pub fn queue_background(&mut self, bytes: u64) {
        if self.config.background_share > 0.0 {
            self.background_pending += bytes;
            self.stats.background_bytes += bytes;
        }
    }

    /// Background bytes still pending on the spindle.
    pub fn background_pending(&self) -> u64 {
        self.background_pending
    }

    /// Estimates (without recording) how long paging out `bytes` would take.
    pub fn estimate_swap_out(&self, bytes: u64) -> SimDuration {
        let bw = self.config.seq_write_bytes_per_sec * self.config.swap_out_efficiency;
        self.transfer_time(bytes, bw)
    }

    /// Estimates (without recording) how long paging in `bytes` would take.
    pub fn estimate_swap_in(&self, bytes: u64) -> SimDuration {
        let bw = self.config.seq_read_bytes_per_sec * self.config.swap_in_efficiency;
        self.transfer_time(bytes, bw)
    }
}

impl Default for Disk {
    fn default() -> Self {
        Disk::new(DiskConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_sim::GIB;

    #[test]
    fn zero_bytes_costs_nothing() {
        let mut d = Disk::default();
        assert_eq!(d.read(0), SimDuration::ZERO);
        assert_eq!(d.write(0), SimDuration::ZERO);
        assert_eq!(d.swap_out(0), SimDuration::ZERO);
        assert_eq!(d.swap_in(0), SimDuration::ZERO);
    }

    #[test]
    fn read_time_scales_with_bytes() {
        let mut d = Disk::default();
        let one = d.read(100 * MIB).as_secs_f64();
        let two = d.read(200 * MIB).as_secs_f64();
        assert!(two > one * 1.8 && two < one * 2.2);
    }

    #[test]
    fn swap_is_slower_than_sequential_io() {
        let mut d = Disk::default();
        let seq = d.write(GIB).as_secs_f64();
        let swap = d.swap_out(GIB).as_secs_f64();
        assert!(swap >= seq, "swap out should not beat sequential writes");
        let seq_r = d.read(GIB).as_secs_f64();
        let swap_r = d.swap_in(GIB).as_secs_f64();
        assert!(swap_r >= seq_r);
    }

    #[test]
    fn stats_accumulate() {
        let mut d = Disk::default();
        d.read(10);
        d.read(20);
        d.write(5);
        d.swap_out(100);
        d.swap_in(50);
        assert_eq!(d.stats().bytes_read, 30);
        assert_eq!(d.stats().bytes_written, 5);
        assert_eq!(d.stats().swap_bytes_out, 100);
        assert_eq!(d.stats().swap_bytes_in, 50);
    }

    #[test]
    fn estimates_match_actuals_without_recording() {
        let mut d = Disk::default();
        let est = d.estimate_swap_out(512 * MIB);
        let act = d.swap_out(512 * MIB);
        assert_eq!(est, act);
        assert_eq!(d.stats().swap_bytes_out, 512 * MIB);
        let est_in = d.estimate_swap_in(256 * MIB);
        let act_in = d.swap_in(256 * MIB);
        assert_eq!(est_in, act_in);
    }

    #[test]
    fn gigabyte_swap_takes_seconds_not_minutes() {
        let mut d = Disk::default();
        let t = d.swap_out(GIB).as_secs_f64();
        assert!(t > 5.0 && t < 20.0, "1 GiB page-out took {t}s");
    }

    #[test]
    fn background_contention_slows_swap_then_drains() {
        let cfg = DiskConfig {
            background_share: 0.5,
            ..DiskConfig::default()
        };
        let mut d = Disk::new(cfg);
        let calm = d.swap_out(256 * MIB);
        d.queue_background(100 * MIB);
        assert!(d.background_pending() > 0);
        let contended = d.swap_out(256 * MIB);
        assert!(
            contended > calm,
            "swap writes should slow down while re-replication holds the spindle"
        );
        while d.background_pending() > 0 {
            d.swap_out(64 * MIB);
        }
        let after = d.swap_out(256 * MIB);
        assert_eq!(
            after, calm,
            "full bandwidth returns once the backlog drains"
        );
    }

    #[test]
    fn zero_share_makes_background_a_noop() {
        let mut d = Disk::default();
        d.queue_background(GIB);
        assert_eq!(d.background_pending(), 0);
        assert_eq!(d.stats().background_bytes, 0);
        let calm = d.estimate_swap_out(GIB);
        assert_eq!(d.swap_out(GIB), calm);
    }

    #[test]
    #[should_panic]
    fn invalid_config_rejected() {
        let cfg = DiskConfig {
            swap_out_efficiency: 0.0,
            ..DiskConfig::default()
        };
        let _ = Disk::new(cfg);
    }
}
