//! POSIX-style signals and process run states.
//!
//! The paper's preemption primitive is built on exactly two signals:
//! `SIGTSTP` to suspend a task process and `SIGCONT` to resume it, chosen over
//! `SIGSTOP` because they can be caught by handlers that need to tidy up
//! external state (e.g. network connections) before the process stops. The
//! simulated kernel reproduces the delivery semantics that matter for the
//! evaluation: state transitions, signals to dead processes failing with
//! `ESRCH`, and `SIGKILL`/`SIGTERM` releasing all memory.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Subset of POSIX signals used by Hadoop task management.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Signal {
    /// Terminal stop: suspends the process, keeping its memory image intact.
    /// Unlike `SIGSTOP` it can be caught, so tasks may close external
    /// connections before stopping.
    Sigtstp,
    /// Continue a stopped process.
    Sigcont,
    /// Graceful termination request (Hadoop's normal task kill path).
    Sigterm,
    /// Forced termination; cannot be caught.
    Sigkill,
    /// Unconditional stop; cannot be caught. Provided for completeness and
    /// used in tests contrasting it with `SIGTSTP`.
    Sigstop,
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Signal::Sigtstp => "SIGTSTP",
            Signal::Sigcont => "SIGCONT",
            Signal::Sigterm => "SIGTERM",
            Signal::Sigkill => "SIGKILL",
            Signal::Sigstop => "SIGSTOP",
        };
        f.write_str(name)
    }
}

/// Run state of a simulated process.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ProcessState {
    /// Schedulable and executing.
    Running,
    /// Stopped by `SIGTSTP`/`SIGSTOP`; memory image retained, not scheduled.
    Stopped,
    /// Exited voluntarily with a status code.
    Exited(i32),
    /// Terminated by a signal.
    Killed(Signal),
}

impl ProcessState {
    /// True if the process still exists (is not a terminated entry).
    pub fn is_alive(self) -> bool {
        matches!(self, ProcessState::Running | ProcessState::Stopped)
    }

    /// True if the process is currently stopped (suspended).
    pub fn is_stopped(self) -> bool {
        matches!(self, ProcessState::Stopped)
    }

    /// One-letter code in the style of `/proc/<pid>/stat` (`R`, `T`, `Z`).
    pub fn proc_code(self) -> char {
        match self {
            ProcessState::Running => 'R',
            ProcessState::Stopped => 'T',
            ProcessState::Exited(_) | ProcessState::Killed(_) => 'Z',
        }
    }
}

/// The observable effect of delivering a signal.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum SignalEffect {
    /// The process transitioned from running to stopped.
    Suspended,
    /// The process transitioned from stopped to running.
    Resumed,
    /// The process was terminated by the signal.
    Terminated,
    /// The signal had no effect (e.g. `SIGCONT` to a running process).
    Ignored,
}

/// Errors returned by simulated kernel operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OsError {
    /// The target process does not exist or has already terminated (`ESRCH`).
    NoSuchProcess,
    /// The swap device is full and memory cannot be reclaimed; the kernel's
    /// OOM killer had to intervene.
    OutOfMemory,
    /// The operation is invalid for the process's current state.
    InvalidState,
}

impl fmt::Display for OsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsError::NoSuchProcess => write!(f, "no such process (ESRCH)"),
            OsError::OutOfMemory => write!(f, "out of memory: swap exhausted"),
            OsError::InvalidState => write!(f, "operation invalid for the current process state"),
        }
    }
}

impl std::error::Error for OsError {}

/// Computes the state transition caused by delivering `signal` to a process in
/// `state`, without any side effects. The kernel uses this pure function so it
/// can be tested exhaustively.
pub fn transition(
    state: ProcessState,
    signal: Signal,
) -> Result<(ProcessState, SignalEffect), OsError> {
    if !state.is_alive() {
        return Err(OsError::NoSuchProcess);
    }
    let outcome = match (state, signal) {
        (ProcessState::Running, Signal::Sigtstp | Signal::Sigstop) => {
            (ProcessState::Stopped, SignalEffect::Suspended)
        }
        (ProcessState::Stopped, Signal::Sigtstp | Signal::Sigstop) => {
            (ProcessState::Stopped, SignalEffect::Ignored)
        }
        (ProcessState::Stopped, Signal::Sigcont) => (ProcessState::Running, SignalEffect::Resumed),
        (ProcessState::Running, Signal::Sigcont) => (ProcessState::Running, SignalEffect::Ignored),
        (_, Signal::Sigkill) => (
            ProcessState::Killed(Signal::Sigkill),
            SignalEffect::Terminated,
        ),
        (_, Signal::Sigterm) => (
            ProcessState::Killed(Signal::Sigterm),
            SignalEffect::Terminated,
        ),
        // Dead states were rejected above with ESRCH.
        (ProcessState::Exited(_) | ProcessState::Killed(_), _) => {
            unreachable!("dead states rejected above")
        }
    };
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tstp_suspends_running() {
        let (s, e) = transition(ProcessState::Running, Signal::Sigtstp).unwrap();
        assert_eq!(s, ProcessState::Stopped);
        assert_eq!(e, SignalEffect::Suspended);
    }

    #[test]
    fn cont_resumes_stopped() {
        let (s, e) = transition(ProcessState::Stopped, Signal::Sigcont).unwrap();
        assert_eq!(s, ProcessState::Running);
        assert_eq!(e, SignalEffect::Resumed);
    }

    #[test]
    fn redundant_signals_are_ignored() {
        let (s, e) = transition(ProcessState::Running, Signal::Sigcont).unwrap();
        assert_eq!(s, ProcessState::Running);
        assert_eq!(e, SignalEffect::Ignored);
        let (s, e) = transition(ProcessState::Stopped, Signal::Sigtstp).unwrap();
        assert_eq!(s, ProcessState::Stopped);
        assert_eq!(e, SignalEffect::Ignored);
    }

    #[test]
    fn kill_terminates_from_any_live_state() {
        for st in [ProcessState::Running, ProcessState::Stopped] {
            let (s, e) = transition(st, Signal::Sigkill).unwrap();
            assert_eq!(s, ProcessState::Killed(Signal::Sigkill));
            assert_eq!(e, SignalEffect::Terminated);
            let (s, _) = transition(st, Signal::Sigterm).unwrap();
            assert_eq!(s, ProcessState::Killed(Signal::Sigterm));
        }
    }

    #[test]
    fn signalling_dead_process_is_esrch() {
        for st in [
            ProcessState::Exited(0),
            ProcessState::Killed(Signal::Sigkill),
        ] {
            for sig in [Signal::Sigtstp, Signal::Sigcont, Signal::Sigkill] {
                assert_eq!(transition(st, sig), Err(OsError::NoSuchProcess));
            }
        }
    }

    #[test]
    fn proc_codes_match_linux_convention() {
        assert_eq!(ProcessState::Running.proc_code(), 'R');
        assert_eq!(ProcessState::Stopped.proc_code(), 'T');
        assert_eq!(ProcessState::Exited(0).proc_code(), 'Z');
    }

    #[test]
    fn display_names() {
        assert_eq!(Signal::Sigtstp.to_string(), "SIGTSTP");
        assert_eq!(Signal::Sigcont.to_string(), "SIGCONT");
        assert_eq!(
            OsError::NoSuchProcess.to_string(),
            "no such process (ESRCH)"
        );
    }
}
