//! A naive reference implementation of the memory path, for differential
//! testing.
//!
//! [`ReferenceMemoryModel`] re-implements the semantics of
//! [`MemoryManager`](crate::MemoryManager) (and, when enabled, the
//! block-granular [`SwapDevice`](crate::SwapDevice)) with the dumbest data
//! structures that can express them: an unsorted process vector scanned and
//! fully re-sorted on every victim selection, byte totals recomputed from
//! scratch on every query, and the swap area as one `Vec<Option<(Pid,
//! cached)>>` slot per block. No LRU index, no bitmaps, no incremental
//! counters — every derived value is an O(n) scan, so any bookkeeping bug in
//! the fast model's indexes shows up as a divergence.
//!
//! The randomized differential test in this module drives both models
//! through thousands of seeded allocate / touch / suspend / resume /
//! release / page-in / OOM steps and asserts identical charges, errors,
//! victim order, per-process accounting and statistics after every step —
//! the same methodology as the reference event queue of PR 1.

use crate::memory::{MemoryCharge, MemoryConfig, MemoryStats, ProcMemory};
use crate::process::Pid;
use crate::signal::OsError;

use mrp_sim::SimTime;

/// One swap block in the naive device: free, or owned by a pid with a
/// cached flag (`true` = the content is also resident in RAM).
type Slot = Option<(Pid, bool)>;

/// The naive O(n) re-implementation of the memory manager. See the
/// module docs.
#[derive(Clone, Debug)]
pub struct ReferenceMemoryModel {
    config: MemoryConfig,
    /// Insertion-ordered process table; every lookup is a linear scan.
    procs: Vec<(Pid, ProcMemory)>,
    file_cache: u64,
    stats: MemoryStats,
    /// One slot per swap block, present iff the device model is enabled.
    blocks: Option<Vec<Slot>>,
    cache_reactivated: u64,
    cache_dropped: u64,
}

impl ReferenceMemoryModel {
    /// Creates the reference model for the given configuration.
    pub fn new(config: MemoryConfig) -> Self {
        let blocks = config.swap.enabled.then(|| {
            let n = config.swap_capacity / config.swap.block_size;
            vec![None; usize::try_from(n).expect("swap area fits in usize")]
        });
        ReferenceMemoryModel {
            config,
            procs: Vec::new(),
            file_cache: 0,
            stats: MemoryStats::default(),
            blocks,
            cache_reactivated: 0,
            cache_dropped: 0,
        }
    }

    fn find(&self, pid: Pid) -> Option<usize> {
        self.procs.iter().position(|(p, _)| *p == pid)
    }

    fn pm(&self, pid: Pid) -> Option<&ProcMemory> {
        self.procs.iter().find(|(p, _)| *p == pid).map(|(_, pm)| pm)
    }

    /// Per-process memory view.
    pub fn process(&self, pid: Pid) -> Option<&ProcMemory> {
        self.pm(pid)
    }

    /// Node-wide statistics.
    pub fn stats(&self) -> &MemoryStats {
        &self.stats
    }

    /// Current file-cache size.
    pub fn file_cache(&self) -> u64 {
        self.file_cache
    }

    /// Blocks ever re-activated from the swap cache (device model only).
    pub fn cache_reactivated_blocks(&self) -> u64 {
        self.cache_reactivated
    }

    /// Cached blocks ever dropped for new swap-outs (device model only).
    pub fn cache_dropped_blocks(&self) -> u64 {
        self.cache_dropped
    }

    /// Total resident bytes, recomputed by scanning every process.
    pub fn total_resident(&self) -> u64 {
        self.procs.iter().map(|(_, pm)| pm.resident()).sum()
    }

    /// Swap occupancy: the block count when the device is on, the byte sum
    /// otherwise — recomputed from scratch on every call.
    pub fn swap_used(&self) -> u64 {
        match &self.blocks {
            Some(blocks) => {
                blocks.iter().filter(|s| s.is_some()).count() as u64 * self.config.swap.block_size
            }
            None => self.procs.iter().map(|(_, pm)| pm.swapped).sum(),
        }
    }

    /// Free RAM, recomputed from scratch.
    pub fn free_ram(&self) -> u64 {
        self.config
            .usable_ram()
            .saturating_sub(self.total_resident() + self.file_cache)
    }

    fn blocks_for(&self, bytes: u64) -> usize {
        usize::try_from(bytes.div_ceil(self.config.swap.block_size)).expect("fits")
    }

    fn count_blocks(&self, pid: Pid, cached: bool) -> usize {
        self.blocks.as_ref().map_or(0, |b| {
            b.iter()
                .flatten()
                .filter(|s| s.0 == pid && s.1 == cached)
                .count()
        })
    }

    fn cached_total(&self) -> usize {
        self.blocks
            .as_ref()
            .map_or(0, |b| b.iter().flatten().filter(|s| s.1).count())
    }

    fn free_blocks(&self) -> usize {
        self.blocks
            .as_ref()
            .map_or(0, |b| b.iter().filter(|s| s.is_none()).count())
    }

    fn can_back(&self, pid: Pid, swapped_bytes: u64) -> bool {
        let want = self.blocks_for(swapped_bytes);
        let have = self.count_blocks(pid, false);
        want.saturating_sub(have) <= self.free_blocks() + self.cached_total()
    }

    /// Mirrors `SwapDevice::set_backing` + `trim_cache`: grow from own cache
    /// first, then free blocks, then by dropping the lowest-pid cached
    /// block; shrink into the cache (page-in) or the free list (release),
    /// then cap the cache at what `resident_clean` can mirror.
    fn sync_backing(&mut self, pid: Pid, to_cache: bool) {
        if self.blocks.is_none() {
            return;
        }
        let (swapped, clean) = match self.pm(pid) {
            Some(pm) => (pm.swapped, pm.resident_clean),
            None => (0, 0),
        };
        let want = self.blocks_for(swapped);
        while self.count_blocks(pid, false) < want {
            let blocks = self.blocks.as_mut().expect("checked");
            if let Some(slot) = blocks.iter_mut().find(|s| **s == Some((pid, true))) {
                *slot = Some((pid, false));
                self.cache_reactivated += 1;
            } else if let Some(slot) = blocks.iter_mut().find(|s| s.is_none()) {
                *slot = Some((pid, false));
            } else {
                let victim = blocks
                    .iter()
                    .flatten()
                    .filter(|s| s.1)
                    .map(|s| s.0)
                    .min()
                    .expect("capacity pre-checked: a cached block must exist");
                let slot = blocks
                    .iter_mut()
                    .rev()
                    .find(|s| **s == Some((victim, true)))
                    .expect("found above");
                *slot = Some((pid, false));
                self.cache_dropped += 1;
            }
        }
        while self.count_blocks(pid, false) > want {
            let blocks = self.blocks.as_mut().expect("checked");
            let slot = blocks
                .iter_mut()
                .rev()
                .find(|s| **s == Some((pid, false)))
                .expect("count checked");
            *slot = if to_cache { Some((pid, true)) } else { None };
        }
        let cap = self.blocks_for(clean);
        while self.count_blocks(pid, true) > cap {
            let blocks = self.blocks.as_mut().expect("checked");
            let slot = blocks
                .iter_mut()
                .rev()
                .find(|s| **s == Some((pid, true)))
                .expect("count checked");
            *slot = None;
            self.cache_dropped += 1;
        }
    }

    fn drop_backing(&mut self, pid: Pid) {
        if let Some(blocks) = self.blocks.as_mut() {
            for slot in blocks.iter_mut() {
                if matches!(slot, Some((p, _)) if *p == pid) {
                    *slot = None;
                }
            }
        }
    }

    /// Registers (or re-registers) a process.
    pub fn register(&mut self, pid: Pid, now: SimTime) {
        self.drop_backing(pid);
        let pm = ProcMemory {
            last_touch: now,
            ..ProcMemory::default()
        };
        match self.find(pid) {
            Some(i) => self.procs[i].1 = pm,
            None => self.procs.push((pid, pm)),
        }
    }

    /// Marks a process suspended / resumed.
    pub fn set_suspended(&mut self, pid: Pid, suspended: bool) -> Result<(), OsError> {
        let i = self.find(pid).ok_or(OsError::NoSuchProcess)?;
        self.procs[i].1.suspended = suspended;
        Ok(())
    }

    /// Grows the file cache into free RAM only.
    pub fn populate_file_cache(&mut self, bytes: u64) {
        let room = self.free_ram();
        self.file_cache += bytes.min(room);
    }

    /// Refreshes a process's `last_touch` stamp.
    pub fn touch(&mut self, pid: Pid, now: SimTime) -> Result<(), OsError> {
        let i = self.find(pid).ok_or(OsError::NoSuchProcess)?;
        self.procs[i].1.last_touch = now;
        Ok(())
    }

    fn round_cluster(&self, bytes: u64) -> u64 {
        let c = self.config.page_cluster_bytes.max(1);
        bytes.div_ceil(c) * c
    }

    /// Victim order, rebuilt by fully sorting the process table every call.
    pub fn victim_order_snapshot(&self) -> Vec<Pid> {
        let mut keyed: Vec<_> = self
            .procs
            .iter()
            .map(|(pid, pm)| ((u8::from(!pm.suspended), pm.last_touch, *pid), *pid))
            .collect();
        keyed.sort();
        keyed.into_iter().map(|(_, pid)| pid).collect()
    }

    fn reclaim(&mut self, for_pid: Pid, needed: u64) -> Result<MemoryCharge, OsError> {
        let mut charge = MemoryCharge::default();
        if needed == 0 {
            return Ok(charge);
        }
        self.stats.pressure_events += 1;
        let mut shortfall = needed;

        let cache_share = 1.0 - f64::from(self.config.swappiness.min(100)) / 200.0;
        let from_cache = ((shortfall as f64 * cache_share) as u64)
            .max(if self.config.swappiness == 0 {
                shortfall
            } else {
                0
            })
            .min(self.file_cache);
        self.file_cache -= from_cache;
        self.stats.cache_reclaimed_bytes += from_cache;
        charge.cache_reclaimed = from_cache;
        shortfall = shortfall.saturating_sub(from_cache);
        if shortfall == 0 {
            return Ok(charge);
        }

        let pressure = shortfall as f64 / self.config.usable_ram().max(1) as f64;
        let target_total = self.round_cluster(
            (shortfall as f64 * (1.0 + self.config.over_eviction_factor * (1.0 + pressure))) as u64,
        );
        let mut to_reclaim = target_total;
        let victims: Vec<Pid> = self
            .victim_order_snapshot()
            .into_iter()
            .filter(|pid| *pid != for_pid && self.pm(*pid).unwrap().resident() > 0)
            .collect();
        for victim in victims {
            if to_reclaim == 0 || shortfall == 0 {
                break;
            }
            let available = self.pm(victim).unwrap().resident();
            let take = available.min(to_reclaim);
            let fits = match &self.blocks {
                Some(_) => self.can_back(victim, self.pm(victim).unwrap().swapped + take),
                None => self.swap_used() + take <= self.config.swap_capacity,
            };
            if !fits {
                self.stats.oom_kills += 1;
                return Err(OsError::OutOfMemory);
            }
            let i = self.find(victim).expect("victim scanned above");
            let pm = &mut self.procs[i].1;
            let clean = pm.resident_clean.min(take);
            pm.resident_clean -= clean;
            pm.swapped += clean;
            let dirty = pm.resident_dirty.min(take - clean);
            pm.resident_dirty -= dirty;
            pm.swapped += dirty;
            pm.total_paged_out += clean + dirty;
            self.sync_backing(victim, false);
            self.stats.swap_out_bytes += dirty;
            charge.clean_dropped += clean;
            charge.dirty_paged_out += dirty;
            charge.victims.push((victim, clean + dirty));
            to_reclaim = to_reclaim.saturating_sub(take);
            shortfall = shortfall.saturating_sub(take);
        }
        if shortfall == 0 {
            return Ok(charge);
        }

        let fits = match &self.blocks {
            Some(_) => {
                let own = self.pm(for_pid).map_or(0, |p| p.swapped);
                self.can_back(for_pid, own + shortfall)
            }
            None => self.swap_used() + shortfall <= self.config.swap_capacity,
        };
        if !fits {
            self.stats.oom_kills += 1;
            return Err(OsError::OutOfMemory);
        }
        charge.self_thrash_bytes = shortfall;
        self.stats.swap_out_bytes += shortfall;
        self.stats.swap_in_bytes += shortfall;
        self.stats.thrash_events += 1;
        Ok(charge)
    }

    /// Mirrors [`MemoryManager::allocate`](crate::MemoryManager::allocate).
    pub fn allocate(
        &mut self,
        pid: Pid,
        bytes: u64,
        dirty_fraction: f64,
        now: SimTime,
    ) -> Result<MemoryCharge, OsError> {
        if self.find(pid).is_none() {
            return Err(OsError::NoSuchProcess);
        }
        let shortfall = bytes.saturating_sub(self.free_ram());
        let charge = self.reclaim(pid, shortfall)?;
        let i = self.find(pid).expect("checked above");
        let pm = &mut self.procs[i].1;
        let dirty = (bytes as f64 * dirty_fraction) as u64;
        pm.resident_dirty += dirty;
        pm.resident_clean += bytes - dirty;
        pm.last_touch = now;
        let thrash = charge.self_thrash_bytes;
        if thrash > 0 {
            let from_dirty = pm.resident_dirty.min(thrash);
            pm.resident_dirty -= from_dirty;
            let from_clean = (thrash - from_dirty).min(pm.resident_clean);
            pm.resident_clean -= from_clean;
            let moved = from_dirty + from_clean;
            pm.swapped += moved;
            pm.total_paged_out += moved;
        }
        self.sync_backing(pid, false);
        Ok(charge)
    }

    /// Mirrors [`MemoryManager::release`](crate::MemoryManager::release).
    pub fn release(&mut self, pid: Pid, bytes: u64) -> Result<(), OsError> {
        let i = self.find(pid).ok_or(OsError::NoSuchProcess)?;
        let pm = &mut self.procs[i].1;
        let from_dirty = pm.resident_dirty.min(bytes);
        pm.resident_dirty -= from_dirty;
        let mut left = bytes - from_dirty;
        let from_clean = pm.resident_clean.min(left);
        pm.resident_clean -= from_clean;
        left -= from_clean;
        let from_swap = pm.swapped.min(left);
        pm.swapped -= from_swap;
        self.sync_backing(pid, false);
        Ok(())
    }

    /// Mirrors [`MemoryManager::remove`](crate::MemoryManager::remove).
    pub fn remove(&mut self, pid: Pid) -> Result<(), OsError> {
        let i = self.find(pid).ok_or(OsError::NoSuchProcess)?;
        self.procs.remove(i);
        self.drop_backing(pid);
        Ok(())
    }

    /// Mirrors [`MemoryManager::page_in_all`](crate::MemoryManager::page_in_all).
    pub fn page_in_all(&mut self, pid: Pid, now: SimTime) -> Result<MemoryCharge, OsError> {
        self.page_in_some(pid, u64::MAX, now)
    }

    /// Mirrors
    /// [`MemoryManager::page_in_partial`](crate::MemoryManager::page_in_partial).
    pub fn page_in_partial(
        &mut self,
        pid: Pid,
        max_bytes: u64,
        now: SimTime,
    ) -> Result<MemoryCharge, OsError> {
        self.page_in_some(pid, max_bytes, now)
    }

    fn page_in_some(
        &mut self,
        pid: Pid,
        limit: u64,
        now: SimTime,
    ) -> Result<MemoryCharge, OsError> {
        let swapped = self.pm(pid).ok_or(OsError::NoSuchProcess)?.swapped;
        let goal = swapped.min(limit);
        if goal == 0 {
            self.touch(pid, now)?;
            return Ok(MemoryCharge::default());
        }
        let shortfall = goal.saturating_sub(self.free_ram());
        let mut charge = self.reclaim(pid, shortfall)?;
        let stay_swapped = (swapped - goal) + charge.self_thrash_bytes.min(goal);
        let bring_in = swapped - stay_swapped;
        let i = self.find(pid).expect("checked above");
        let pm = &mut self.procs[i].1;
        pm.swapped = stay_swapped;
        pm.resident_clean += bring_in;
        pm.total_paged_in += bring_in;
        pm.last_touch = now;
        self.sync_backing(pid, true);
        self.stats.swap_in_bytes += bring_in;
        charge.paged_in = bring_in;
        Ok(charge)
    }

    /// Mirrors [`MemoryManager::oom_victim`](crate::MemoryManager::oom_victim).
    pub fn oom_victim(&self) -> Option<Pid> {
        self.procs
            .iter()
            .max_by_key(|(pid, pm)| (pm.suspended, pm.virtual_size(), std::cmp::Reverse(pid.0)))
            .map(|(pid, _)| *pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryManager;
    use crate::swapdev::SwapConfig;
    use mrp_sim::{SimDuration, SimRng, GIB, MIB};

    /// Drives the fast model and the reference through the same seeded step
    /// sequence, comparing every output after every step.
    fn differential_case(seed: u64, swap: SwapConfig, steps: usize) {
        let config = MemoryConfig {
            total_ram: 2 * GIB,
            os_reserve: 256 * MIB,
            // Small swap so OOM paths are exercised; an odd size leaves a
            // partial trailing block when the device is on.
            swap_capacity: GIB + 3 * MIB,
            swap,
            ..MemoryConfig::default()
        };
        let mut fast = MemoryManager::new(config.clone());
        let mut reference = ReferenceMemoryModel::new(config);
        let mut rng = SimRng::new(seed);
        let mut pids: Vec<Pid> = Vec::new();
        let mut next_pid = 1u32;
        let mut now = SimTime::ZERO;

        for step in 0..steps {
            now += SimDuration::from_millis(1 + rng.index(5_000) as u64);
            let ctx = format!("seed {seed:#x} step {step}");
            let pick = pids.get(rng.index(pids.len().max(1))).copied();
            match rng.index(12) {
                0 | 1 => {
                    let pid = Pid(next_pid);
                    next_pid += 1;
                    pids.push(pid);
                    fast.register(pid, now);
                    reference.register(pid, now);
                }
                2..=4 => {
                    if let Some(pid) = pick {
                        let bytes = (1 + rng.index(600)) as u64 * MIB;
                        let dirty = [0.0, 0.3, 1.0][rng.index(3)];
                        let f = fast.allocate(pid, bytes, dirty, now);
                        let r = reference.allocate(pid, bytes, dirty, now);
                        assert_eq!(f, r, "{ctx}: allocate({bytes}, {dirty})");
                    }
                }
                5 => {
                    if let Some(pid) = pick {
                        let bytes = (1 + rng.index(400)) as u64 * MIB;
                        assert_eq!(
                            fast.release(pid, bytes),
                            reference.release(pid, bytes),
                            "{ctx}: release"
                        );
                    }
                }
                6 => {
                    if let Some(pid) = pick {
                        assert_eq!(fast.remove(pid), reference.remove(pid), "{ctx}: remove");
                        pids.retain(|p| *p != pid);
                    }
                }
                7 => {
                    if let Some(pid) = pick {
                        let suspended = rng.chance(0.5);
                        assert_eq!(
                            fast.set_suspended(pid, suspended),
                            reference.set_suspended(pid, suspended),
                            "{ctx}: set_suspended"
                        );
                    }
                }
                8 => {
                    if let Some(pid) = pick {
                        assert_eq!(fast.touch(pid, now), reference.touch(pid, now), "{ctx}");
                    }
                }
                9 => {
                    if let Some(pid) = pick {
                        assert_eq!(
                            fast.page_in_all(pid, now),
                            reference.page_in_all(pid, now),
                            "{ctx}: page_in_all"
                        );
                    }
                }
                10 => {
                    if let Some(pid) = pick {
                        let limit = rng.index(512) as u64 * MIB;
                        assert_eq!(
                            fast.page_in_partial(pid, limit, now),
                            reference.page_in_partial(pid, limit, now),
                            "{ctx}: page_in_partial({limit})"
                        );
                    }
                }
                _ => {
                    let bytes = rng.index(1024) as u64 * MIB;
                    fast.populate_file_cache(bytes);
                    reference.populate_file_cache(bytes);
                }
            }

            // Every derived quantity must agree after every step.
            assert_eq!(fast.free_ram(), reference.free_ram(), "{ctx}: free_ram");
            assert_eq!(fast.swap_used(), reference.swap_used(), "{ctx}: swap_used");
            assert_eq!(
                fast.file_cache(),
                reference.file_cache(),
                "{ctx}: file_cache"
            );
            assert_eq!(fast.stats(), reference.stats(), "{ctx}: stats");
            assert_eq!(
                fast.victim_order_snapshot(),
                reference.victim_order_snapshot(),
                "{ctx}: victim order"
            );
            assert_eq!(fast.oom_victim(), reference.oom_victim(), "{ctx}: oom");
            for pid in &pids {
                let f = fast.process(*pid);
                let r = reference.process(*pid);
                assert_eq!(f, r, "{ctx}: ProcMemory of {pid:?}");
                if let Some(pm) = f {
                    assert_eq!(
                        pm.resident() + pm.swapped,
                        pm.virtual_size(),
                        "{ctx}: virtual size identity"
                    );
                }
            }
            if let Some(dev) = fast.swap_device() {
                assert_eq!(
                    u64::from(dev.cached_blocks()),
                    reference.cached_total() as u64,
                    "{ctx}: cached blocks"
                );
                assert_eq!(
                    dev.stats().cache_reactivated_blocks,
                    reference.cache_reactivated_blocks(),
                    "{ctx}: reactivations"
                );
                assert_eq!(
                    dev.stats().cache_dropped_blocks,
                    reference.cache_dropped_blocks(),
                    "{ctx}: cache drops"
                );
            }
            fast.check_invariants()
                .unwrap_or_else(|e| panic!("{ctx}: {e}"));
        }
    }

    /// The headline differential test: 6 seeded cases x 1,200 steps each
    /// (7,200 steps total), half with the legacy byte-granular accounting
    /// and half with the block device enabled.
    #[test]
    fn differential_fast_model_vs_naive_reference() {
        for case in 0..6u64 {
            let swap = if case % 2 == 0 {
                SwapConfig::default()
            } else {
                SwapConfig::enabled()
            };
            differential_case(0x5EED_0000 + case, swap, 1_200);
        }
    }

    /// Small block sizes hit block-rounding corners (many blocks per op).
    #[test]
    fn differential_with_small_blocks() {
        let swap = SwapConfig {
            block_size: 256 * 1024,
            ..SwapConfig::enabled()
        };
        differential_case(0xB10C_5EED, swap, 400);
    }
}
