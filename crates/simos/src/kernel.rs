//! The per-node kernel facade: process table + memory manager + disk.
//!
//! The kernel converts the byte-level accounting of the
//! [`MemoryManager`](crate::memory::MemoryManager) into virtual-time charges
//! using the [`Disk`](crate::disk::Disk) model, and wires POSIX signal
//! delivery to both the process table and the memory manager (a `SIGTSTP`ed
//! process becomes a preferred paging victim, a killed process releases its
//! memory immediately).
//!
//! Nothing in this crate schedules events: every operation returns the time it
//! costs, and the MapReduce engine (crate `mrp-engine`) integrates those costs
//! into its discrete-event simulation.

use crate::disk::{Disk, DiskConfig, DiskStats};
use crate::memory::{MemoryCharge, MemoryConfig, MemoryManager, MemoryStats, ProcMemory};
use crate::process::{Pid, Process};
use crate::signal::{transition, OsError, ProcessState, Signal, SignalEffect};
use mrp_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Full OS configuration of one simulated node.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct NodeOsConfig {
    /// Memory subsystem configuration.
    pub memory: MemoryConfig,
    /// Disk performance model.
    pub disk: DiskConfig,
}

/// Result of a memory operation, with both the byte movements and the stall
/// time charged to the calling process.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MemOutcome {
    /// Byte-level movements (cache reclaim, page-out, page-in, thrash).
    pub charge: MemoryCharge,
    /// Wall-clock (virtual) time the faulting process is stalled by paging.
    pub stall: SimDuration,
}

/// Result of delivering a signal.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SignalOutcome {
    /// What the signal did to the target.
    pub effect: SignalEffect,
    /// Bytes of RAM and swap released, if the signal terminated the process.
    pub released_bytes: u64,
}

/// The simulated per-node operating system kernel.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Kernel {
    config: NodeOsConfig,
    processes: HashMap<Pid, Process>,
    memory: MemoryManager,
    disk: Disk,
    next_pid: u32,
}

impl Kernel {
    /// Boots a kernel with the given configuration.
    pub fn new(config: NodeOsConfig) -> Self {
        Kernel {
            memory: MemoryManager::new(config.memory.clone()),
            disk: Disk::new(config.disk.clone()),
            config,
            processes: HashMap::new(),
            next_pid: 1000,
        }
    }

    /// The kernel's configuration.
    pub fn config(&self) -> &NodeOsConfig {
        &self.config
    }

    /// Read-only view of the memory manager.
    pub fn memory(&self) -> &MemoryManager {
        &self.memory
    }

    /// Node-wide memory statistics.
    pub fn memory_stats(&self) -> &MemoryStats {
        self.memory.stats()
    }

    /// Disk statistics (block I/O and swap traffic).
    pub fn disk_stats(&self) -> &DiskStats {
        self.disk.stats()
    }

    /// Read-only view of the disk device (queued background I/O, timing
    /// model); the engine's observability sampler reads the swap/background
    /// backlog from here.
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// Iterates over all process table entries (including terminated ones).
    pub fn processes(&self) -> impl Iterator<Item = &Process> {
        self.processes.values()
    }

    /// Spawns a new process (a task JVM forked by the TaskTracker).
    pub fn spawn(&mut self, name: impl Into<String>, now: SimTime) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.processes.insert(pid, Process::new(pid, name, now));
        self.memory.register(pid, now);
        pid
    }

    /// Looks up a process table entry.
    pub fn process(&self, pid: Pid) -> Option<&Process> {
        self.processes.get(&pid)
    }

    /// The run state of a process, or an error if it never existed.
    pub fn state(&self, pid: Pid) -> Result<ProcessState, OsError> {
        self.processes
            .get(&pid)
            .map(|p| p.state)
            .ok_or(OsError::NoSuchProcess)
    }

    /// Per-process memory view.
    pub fn proc_memory(&self, pid: Pid) -> Option<&ProcMemory> {
        self.memory.process(pid)
    }

    fn stall_for(&mut self, charge: &MemoryCharge) -> SimDuration {
        let mut stall = SimDuration::ZERO;
        if charge.swap_write_bytes() > 0 {
            let t = self.disk.swap_out(charge.swap_write_bytes());
            if let Some(dev) = self.memory.swap_device_mut() {
                dev.record_out(t);
            }
            stall += t;
        }
        if charge.swap_read_bytes() > 0 {
            let t = self.disk.swap_in(charge.swap_read_bytes());
            if let Some(dev) = self.memory.swap_device_mut() {
                dev.record_in(t);
            }
            stall += t;
        }
        stall
    }

    /// Delivers `signal` to `pid`.
    ///
    /// * `SIGTSTP`/`SIGSTOP` stop the process and mark its memory as a
    ///   preferred eviction victim. Stopping is cheap: no pages move until
    ///   another process actually needs the RAM.
    /// * `SIGCONT` makes the process runnable again; its swapped pages are
    ///   *not* eagerly read back — they fault in when the process touches
    ///   them (see [`Kernel::fault_in_all`]).
    /// * `SIGKILL`/`SIGTERM` terminate it and release all its memory.
    pub fn signal(
        &mut self,
        pid: Pid,
        signal: Signal,
        now: SimTime,
    ) -> Result<SignalOutcome, OsError> {
        let proc_state = self.state(pid)?;
        let (new_state, effect) = transition(proc_state, signal)?;
        let mut released = 0;
        match effect {
            SignalEffect::Suspended => {
                self.memory.set_suspended(pid, true)?;
            }
            SignalEffect::Resumed => {
                self.memory.set_suspended(pid, false)?;
            }
            SignalEffect::Terminated => {
                released = self
                    .memory
                    .process(pid)
                    .map(|m| m.virtual_size())
                    .unwrap_or(0);
                self.memory.remove(pid)?;
            }
            SignalEffect::Ignored => {}
        }
        let entry = self
            .processes
            .get_mut(&pid)
            .expect("state() checked existence");
        match new_state {
            ProcessState::Killed(sig) => entry.killed_by(sig, now),
            other => entry.set_state(other, now),
        }
        Ok(SignalOutcome {
            effect,
            released_bytes: released,
        })
    }

    /// Voluntary process exit; releases all memory instantly.
    pub fn exit(&mut self, pid: Pid, code: i32, now: SimTime) -> Result<u64, OsError> {
        let state = self.state(pid)?;
        if !state.is_alive() {
            return Err(OsError::NoSuchProcess);
        }
        let released = self
            .memory
            .process(pid)
            .map(|m| m.virtual_size())
            .unwrap_or(0);
        self.memory.remove(pid)?;
        self.processes
            .get_mut(&pid)
            .expect("checked above")
            .exit(code, now);
        Ok(released)
    }

    /// Allocates anonymous memory on behalf of `pid`, returning the paging
    /// stall this caused (zero when enough RAM is free).
    pub fn allocate(
        &mut self,
        pid: Pid,
        bytes: u64,
        dirty_fraction: f64,
        now: SimTime,
    ) -> Result<MemOutcome, OsError> {
        if !self.state(pid)?.is_alive() {
            return Err(OsError::NoSuchProcess);
        }
        let charge = self.memory.allocate(pid, bytes, dirty_fraction, now)?;
        let stall = self.stall_for(&charge);
        debug_assert!(
            self.memory.check_invariants().is_ok(),
            "{:?}",
            self.memory.check_invariants()
        );
        Ok(MemOutcome { charge, stall })
    }

    /// Releases part of a process's memory (e.g. disposing of a buffer).
    pub fn release(&mut self, pid: Pid, bytes: u64) -> Result<(), OsError> {
        self.memory.release(pid, bytes)
    }

    /// Faults back in everything `pid` has in swap — what happens when a
    /// resumed task starts touching its working set again. Returns the stall
    /// charged to the process.
    pub fn fault_in_all(&mut self, pid: Pid, now: SimTime) -> Result<MemOutcome, OsError> {
        if !self.state(pid)?.is_alive() {
            return Err(OsError::NoSuchProcess);
        }
        let charge = self.memory.page_in_all(pid, now)?;
        let stall = self.stall_for(&charge);
        debug_assert!(self.memory.check_invariants().is_ok());
        Ok(MemOutcome { charge, stall })
    }

    /// The lazy-resume fault path: brings in only the configured prefetch
    /// window of `pid`'s swapped memory
    /// ([`resume_prefetch`](crate::SwapConfig::resume_prefetch)); the rest
    /// faults back in on touch — at the latest through
    /// [`Kernel::fault_in_all`] when the task re-reads its state.
    pub fn fault_in_prefetch(&mut self, pid: Pid, now: SimTime) -> Result<MemOutcome, OsError> {
        if !self.state(pid)?.is_alive() {
            return Err(OsError::NoSuchProcess);
        }
        let prefetch = self.config.memory.swap.resume_prefetch;
        let want = (self.swapped_bytes(pid) as f64 * prefetch).ceil() as u64;
        let charge = self.memory.page_in_partial(pid, want, now)?;
        let stall = self.stall_for(&charge);
        debug_assert!(self.memory.check_invariants().is_ok());
        Ok(MemOutcome { charge, stall })
    }

    /// Queues `bytes` of background disk traffic (DFS re-replication sharing
    /// the spindle with the swap area); swap I/O runs at reduced bandwidth
    /// until the backlog drains. No-op unless the disk's `background_share`
    /// is positive.
    pub fn queue_background_write(&mut self, bytes: u64) {
        self.disk.queue_background(bytes);
    }

    /// Marks a running process's memory as recently used.
    pub fn touch(&mut self, pid: Pid, now: SimTime) -> Result<(), OsError> {
        self.memory.touch(pid, now)
    }

    /// Reads `bytes` sequentially from the local disk (an HDFS block read),
    /// populating the file cache, and returns the time it takes.
    pub fn disk_read(&mut self, bytes: u64) -> SimDuration {
        self.memory.populate_file_cache(bytes);
        self.disk.read(bytes)
    }

    /// Writes `bytes` sequentially to the local disk (task output or spills).
    pub fn disk_write(&mut self, bytes: u64) -> SimDuration {
        self.disk.write(bytes)
    }

    /// Runs the OOM killer: terminates the victim chosen by the memory
    /// manager and returns its pid, or `None` if there was nothing to kill.
    pub fn oom_kill(&mut self, now: SimTime) -> Option<Pid> {
        let victim = self.memory.oom_victim()?;
        // SIGKILL the victim; ignore errors (it cannot be dead if it still has memory).
        let _ = self.signal(victim, Signal::Sigkill, now);
        Some(victim)
    }

    /// Swapped bytes currently attributed to `pid` (0 if unknown).
    pub fn swapped_bytes(&self, pid: Pid) -> u64 {
        self.memory.process(pid).map(|m| m.swapped).unwrap_or(0)
    }

    /// Cumulative bytes ever paged out for `pid` (Figure 4's "paged bytes").
    pub fn total_paged_out(&self, pid: Pid) -> u64 {
        self.memory
            .process(pid)
            .map(|m| m.total_paged_out)
            .unwrap_or(0)
    }
}

impl Default for Kernel {
    fn default() -> Self {
        Kernel::new(NodeOsConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_sim::{GIB, MIB};

    fn kernel() -> Kernel {
        Kernel::default()
    }

    #[test]
    fn spawn_assigns_unique_pids() {
        let mut k = kernel();
        let a = k.spawn("task-a", SimTime::ZERO);
        let b = k.spawn("task-b", SimTime::ZERO);
        assert_ne!(a, b);
        assert_eq!(k.state(a).unwrap(), ProcessState::Running);
        assert!(k.proc_memory(a).is_some());
    }

    #[test]
    fn suspend_resume_cycle_via_signals() {
        let mut k = kernel();
        let pid = k.spawn("task", SimTime::ZERO);
        let out = k
            .signal(pid, Signal::Sigtstp, SimTime::from_secs(1))
            .unwrap();
        assert_eq!(out.effect, SignalEffect::Suspended);
        assert_eq!(k.state(pid).unwrap(), ProcessState::Stopped);
        assert!(k.memory().process(pid).unwrap().suspended);
        let out = k
            .signal(pid, Signal::Sigcont, SimTime::from_secs(2))
            .unwrap();
        assert_eq!(out.effect, SignalEffect::Resumed);
        assert_eq!(k.state(pid).unwrap(), ProcessState::Running);
        assert!(!k.memory().process(pid).unwrap().suspended);
        assert_eq!(k.process(pid).unwrap().suspend_count, 1);
        assert_eq!(k.process(pid).unwrap().resume_count, 1);
    }

    #[test]
    fn kill_releases_memory() {
        let mut k = kernel();
        let pid = k.spawn("task", SimTime::ZERO);
        k.allocate(pid, GIB, 1.0, SimTime::ZERO).unwrap();
        assert_eq!(k.memory().total_resident(), GIB);
        let out = k
            .signal(pid, Signal::Sigkill, SimTime::from_secs(1))
            .unwrap();
        assert_eq!(out.effect, SignalEffect::Terminated);
        assert_eq!(out.released_bytes, GIB);
        assert_eq!(k.memory().total_resident(), 0);
        assert_eq!(k.state(pid).unwrap(), ProcessState::Killed(Signal::Sigkill));
        // Further signals fail with ESRCH.
        assert_eq!(
            k.signal(pid, Signal::Sigcont, SimTime::from_secs(2))
                .unwrap_err(),
            OsError::NoSuchProcess
        );
    }

    #[test]
    fn exit_releases_memory() {
        let mut k = kernel();
        let pid = k.spawn("task", SimTime::ZERO);
        k.allocate(pid, 512 * MIB, 1.0, SimTime::ZERO).unwrap();
        let released = k.exit(pid, 0, SimTime::from_secs(1)).unwrap();
        assert_eq!(released, 512 * MIB);
        assert_eq!(k.state(pid).unwrap(), ProcessState::Exited(0));
        assert_eq!(
            k.exit(pid, 0, SimTime::from_secs(2)).unwrap_err(),
            OsError::NoSuchProcess
        );
    }

    #[test]
    fn allocation_under_pressure_stalls_the_allocator() {
        let mut k = kernel();
        let victim = k.spawn("low-priority", SimTime::ZERO);
        let newcomer = k.spawn("high-priority", SimTime::ZERO);
        k.allocate(victim, 2 * GIB, 1.0, SimTime::ZERO).unwrap();
        k.signal(victim, Signal::Sigtstp, SimTime::from_secs(1))
            .unwrap();
        let out = k
            .allocate(newcomer, 2 * GIB, 1.0, SimTime::from_secs(2))
            .unwrap();
        assert!(out.charge.dirty_paged_out > 0);
        assert!(out.stall > SimDuration::ZERO);
        assert!(
            out.stall.as_secs_f64() < 60.0,
            "page-out stall should be seconds, not minutes"
        );
        assert!(k.swapped_bytes(victim) > 0);
        assert_eq!(k.swapped_bytes(newcomer), 0);
    }

    #[test]
    fn fault_in_after_resume_costs_swap_reads() {
        let mut k = kernel();
        let victim = k.spawn("tl", SimTime::ZERO);
        let hp = k.spawn("th", SimTime::ZERO);
        k.allocate(victim, 2 * GIB, 1.0, SimTime::ZERO).unwrap();
        k.signal(victim, Signal::Sigtstp, SimTime::from_secs(1))
            .unwrap();
        k.allocate(hp, 2 * GIB, 1.0, SimTime::from_secs(2)).unwrap();
        let swapped = k.swapped_bytes(victim);
        assert!(swapped > 0);
        k.exit(hp, 0, SimTime::from_secs(50)).unwrap();
        k.signal(victim, Signal::Sigcont, SimTime::from_secs(51))
            .unwrap();
        let out = k.fault_in_all(victim, SimTime::from_secs(51)).unwrap();
        assert_eq!(out.charge.paged_in, swapped);
        assert!(out.stall > SimDuration::ZERO);
        assert_eq!(k.swapped_bytes(victim), 0);
        assert_eq!(k.disk_stats().swap_bytes_in, swapped);
    }

    #[test]
    fn suspension_without_pressure_is_free() {
        let mut k = kernel();
        let pid = k.spawn("light", SimTime::ZERO);
        k.allocate(pid, 200 * MIB, 1.0, SimTime::ZERO).unwrap();
        k.signal(pid, Signal::Sigtstp, SimTime::from_secs(1))
            .unwrap();
        // Nothing else needs memory, so nothing is paged: this is the key
        // advantage over checkpoint-based preemption.
        assert_eq!(k.swapped_bytes(pid), 0);
        k.signal(pid, Signal::Sigcont, SimTime::from_secs(2))
            .unwrap();
        let out = k.fault_in_all(pid, SimTime::from_secs(2)).unwrap();
        assert_eq!(out.stall, SimDuration::ZERO);
        assert_eq!(k.disk_stats().swap_bytes_out, 0);
    }

    #[test]
    fn disk_read_populates_file_cache() {
        let mut k = kernel();
        let t = k.disk_read(512 * MIB);
        assert!(t.as_secs_f64() > 1.0);
        assert!(k.memory().file_cache() > 0);
    }

    #[test]
    fn oom_killer_picks_a_victim() {
        let cfg = NodeOsConfig {
            memory: MemoryConfig {
                total_ram: 2 * GIB,
                os_reserve: 256 * MIB,
                swap_capacity: 128 * MIB,
                ..MemoryConfig::default()
            },
            disk: DiskConfig::default(),
        };
        let mut k = Kernel::new(cfg);
        let a = k.spawn("a", SimTime::ZERO);
        let b = k.spawn("b", SimTime::ZERO);
        k.allocate(a, GIB + 256 * MIB, 1.0, SimTime::ZERO).unwrap();
        k.signal(a, Signal::Sigtstp, SimTime::ZERO).unwrap();
        let err = k
            .allocate(b, GIB + 256 * MIB, 1.0, SimTime::from_secs(1))
            .unwrap_err();
        assert_eq!(err, OsError::OutOfMemory);
        let victim = k.oom_kill(SimTime::from_secs(1)).unwrap();
        assert_eq!(victim, a, "the suspended memory hog should be sacrificed");
        assert!(!k.state(a).unwrap().is_alive());
    }

    #[test]
    fn unknown_pid_errors() {
        let mut k = kernel();
        let ghost = Pid(9999);
        assert!(k.signal(ghost, Signal::Sigtstp, SimTime::ZERO).is_err());
        assert!(k.allocate(ghost, 1, 1.0, SimTime::ZERO).is_err());
        assert!(k.fault_in_all(ghost, SimTime::ZERO).is_err());
        assert!(k.exit(ghost, 0, SimTime::ZERO).is_err());
        assert_eq!(k.swapped_bytes(ghost), 0);
        assert_eq!(k.total_paged_out(ghost), 0);
    }
}
