//! One experiment definition per figure of the paper, plus the ablations
//! suggested by its discussion section.

use crate::priority::PriorityPreemptingScheduler;
use crate::scenario::{run_scenario, ScenarioConfig};
use mrp_engine::{Cluster, ClusterConfig, JobSpec, TaskProfile};
use mrp_preempt::{EvictionPolicy, NatjamModel, PreemptionPrimitive};
use mrp_sim::{SimDuration, SimTime, GIB, MIB};
use serde::{Deserialize, Serialize};

/// The figures and tables reproduced from the paper, plus ablations.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Figure {
    /// Figure 2a: sojourn time of `th`, light-weight tasks.
    F2a,
    /// Figure 2b: makespan, light-weight tasks.
    F2b,
    /// Figure 3a: sojourn time of `th`, memory-hungry tasks.
    F3a,
    /// Figure 3b: makespan, memory-hungry tasks.
    F3b,
    /// Figure 4: paged bytes and overheads vs. memory allocated by `th`.
    F4,
    /// Section IV-C: comparison with Natjam's reported ~7% overhead.
    NatjamComparison,
    /// Section V-A ablation: eviction policies.
    EvictionPolicies,
    /// Section V-A ablation: resume locality (local resume vs. non-local restart).
    ResumeLocality,
}

impl Figure {
    /// Every figure, in paper order.
    pub const ALL: [Figure; 8] = [
        Figure::F2a,
        Figure::F2b,
        Figure::F3a,
        Figure::F3b,
        Figure::F4,
        Figure::NatjamComparison,
        Figure::EvictionPolicies,
        Figure::ResumeLocality,
    ];

    /// Short identifier used in file names and bench ids.
    pub fn id(self) -> &'static str {
        match self {
            Figure::F2a => "fig2a",
            Figure::F2b => "fig2b",
            Figure::F3a => "fig3a",
            Figure::F3b => "fig3b",
            Figure::F4 => "fig4",
            Figure::NatjamComparison => "natjam",
            Figure::EvictionPolicies => "eviction",
            Figure::ResumeLocality => "resume_locality",
        }
    }
}

/// A reproduced figure: a table of named columns, one row per x-axis point.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FigureData {
    /// Short identifier (e.g. `fig2a`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column names; the first column is the x axis.
    pub columns: Vec<String>,
    /// Rows of values, one per x-axis point.
    pub rows: Vec<Vec<f64>>,
    /// Free-form notes (what the paper reported, calibration caveats).
    pub notes: String,
}

impl FigureData {
    /// The values of a named column.
    pub fn column(&self, name: &str) -> Option<Vec<f64>> {
        let idx = self.columns.iter().position(|c| c == name)?;
        Some(self.rows.iter().map(|r| r[idx]).collect())
    }
}

/// The x-axis of Figures 2 and 3: `tl` progress at launch of `th`, 10%–90%.
pub fn paper_fractions() -> Vec<f64> {
    (1..=9).map(|i| i as f64 / 10.0).collect()
}

/// The x-axis of Figure 4: memory allocated by `th`.
pub fn figure4_memory_points() -> Vec<u64> {
    vec![0, 625 * MIB, 1250 * MIB, 1875 * MIB, 2500 * MIB]
}

fn preemption_sweep(
    id: &str,
    title: &str,
    metric: impl Fn(&crate::scenario::ScenarioOutcome) -> f64,
    state_memory: u64,
    repetitions: usize,
    notes: &str,
) -> FigureData {
    let mut rows = Vec::new();
    for fraction in paper_fractions() {
        let mut row = vec![fraction * 100.0];
        for primitive in PreemptionPrimitive::PAPER_SET {
            let config = ScenarioConfig {
                primitive,
                preempt_at: fraction,
                tl_state_memory: state_memory,
                th_state_memory: state_memory,
                repetitions,
                base_seed: 1,
                cluster: ClusterConfig::paper_single_node(),
            };
            row.push(metric(&run_scenario(&config)));
        }
        rows.push(row);
    }
    FigureData {
        id: id.to_string(),
        title: title.to_string(),
        columns: vec![
            "tl_progress_%".to_string(),
            "wait".to_string(),
            "kill".to_string(),
            "susp".to_string(),
        ],
        rows,
        notes: notes.to_string(),
    }
}

/// Figures 2a and 2b: the light-weight baseline.
pub fn figure2(repetitions: usize) -> (FigureData, FigureData) {
    let a = preemption_sweep(
        "fig2a",
        "Baseline (light-weight tasks): sojourn time of th [s]",
        |o| o.sojourn_th_secs.mean,
        0,
        repetitions,
        "Paper: wait ~150s falling to ~90s; kill and susp flat ~80-85s with susp lowest.",
    );
    let b = preemption_sweep(
        "fig2b",
        "Baseline (light-weight tasks): makespan [s]",
        |o| o.makespan_secs.mean,
        0,
        repetitions,
        "Paper: wait and susp flat ~170-175s; kill rising from ~180s to ~240s.",
    );
    (a, b)
}

/// Figures 3a and 3b: the memory-hungry worst case (2 GB of state each).
pub fn figure3(repetitions: usize) -> (FigureData, FigureData) {
    let a = preemption_sweep(
        "fig3a",
        "Worst case (2 GB memory-hungry tasks): sojourn time of th [s]",
        |o| o.sojourn_th_secs.mean,
        2 * GIB,
        repetitions,
        "Paper: same shape as 2a but kill slightly below susp because susp pays the page-out of tl.",
    );
    let b = preemption_sweep(
        "fig3b",
        "Worst case (2 GB memory-hungry tasks): makespan [s]",
        |o| o.makespan_secs.mean,
        2 * GIB,
        repetitions,
        "Paper: wait slightly below susp because susp pays page-out and page-in; kill still worst.",
    );
    (a, b)
}

/// Figure 4: overheads as a function of the memory allocated by `th`
/// (`tl` allocates 2.5 GB). Columns: memory, bytes paged for `tl`, sojourn
/// overhead of susp vs. kill, makespan overhead of susp vs. wait.
pub fn figure4(repetitions: usize) -> FigureData {
    let tl_state = 2560 * MIB;
    let mut rows = Vec::new();
    for th_state in figure4_memory_points() {
        let outcome_for = |primitive| {
            run_scenario(&ScenarioConfig {
                primitive,
                preempt_at: 0.5,
                tl_state_memory: tl_state,
                th_state_memory: th_state,
                repetitions,
                base_seed: 1,
                cluster: ClusterConfig::paper_single_node(),
            })
        };
        let susp = outcome_for(PreemptionPrimitive::SuspendResume);
        let kill = outcome_for(PreemptionPrimitive::Kill);
        let wait = outcome_for(PreemptionPrimitive::Wait);
        rows.push(vec![
            th_state as f64 / MIB as f64,
            susp.tl_paged_out_bytes.mean / MIB as f64,
            susp.sojourn_th_secs.mean - kill.sojourn_th_secs.mean,
            susp.makespan_secs.mean - wait.makespan_secs.mean,
        ]);
    }
    FigureData {
        id: "fig4".to_string(),
        title: "Overheads when varying th memory (tl allocates 2.5 GB)".to_string(),
        columns: vec![
            "th_memory_MB".to_string(),
            "paged_bytes_MB".to_string(),
            "sojourn_overhead_s".to_string(),
            "makespan_overhead_s".to_string(),
        ],
        rows,
        notes: "Paper: swap grows superlinearly up to ~1500 MB; sojourn overhead up to ~20% over kill; \
                makespan overhead up to ~12% over wait; overheads roughly linear in swapped bytes."
            .to_string(),
    }
}

/// Section IV-C: the OS-assisted primitive's measured makespan overhead vs.
/// the ~7% overhead the Natjam authors report (modelled analytically here).
pub fn natjam_comparison(repetitions: usize) -> FigureData {
    let model = NatjamModel::default();
    let mut rows = Vec::new();
    for fraction in [0.25, 0.5, 0.75] {
        let susp = run_scenario(
            &ScenarioConfig::lightweight(PreemptionPrimitive::SuspendResume, fraction)
                .with_repetitions(repetitions),
        );
        let wait = run_scenario(
            &ScenarioConfig::lightweight(PreemptionPrimitive::Wait, fraction)
                .with_repetitions(repetitions),
        );
        let susp_overhead_pct =
            (susp.makespan_secs.mean - wait.makespan_secs.mean) / wait.makespan_secs.mean * 100.0;
        // Natjam checkpoints the task's working state; for the light-weight
        // jobs this is the Hadoop engine footprint (~192 MB buffers).
        let natjam_makespan = model.predicted_makespan_secs(
            wait.makespan_secs.mean,
            192 * MIB,
            SimDuration::from_secs(78),
        );
        let natjam_overhead_pct =
            (natjam_makespan - wait.makespan_secs.mean) / wait.makespan_secs.mean * 100.0;
        rows.push(vec![
            fraction * 100.0,
            susp_overhead_pct,
            natjam_overhead_pct,
        ]);
    }
    FigureData {
        id: "natjam".to_string(),
        title: "Makespan overhead vs. the wait baseline: OS-assisted suspend vs. checkpointing"
            .to_string(),
        columns: vec![
            "tl_progress_%".to_string(),
            "susp_overhead_%".to_string(),
            "natjam_model_overhead_%".to_string(),
        ],
        rows,
        notes:
            "The paper notes Natjam reports ~7% makespan overhead in a similar setting while the \
                OS-assisted primitive's overhead is negligible for light-weight tasks."
                .to_string(),
    }
}

/// Section V-A ablation: which task to evict. Three low-priority single-task
/// jobs with different memory footprints run on a 3-slot node; a high-priority
/// memory-hungry job arrives and exactly one victim is suspended, chosen by
/// the policy under test.
pub fn eviction_ablation(_repetitions: usize) -> FigureData {
    let policies = [
        EvictionPolicy::SmallestMemory,
        EvictionPolicy::ClosestToCompletion,
        EvictionPolicy::LargestMemory,
    ];
    let mut rows = Vec::new();
    for (i, policy) in policies.iter().enumerate() {
        let mut cfg = ClusterConfig::paper_single_node();
        cfg.nodes[0].map_slots = 3;
        // Give the node more RAM so three background tasks plus the
        // high-priority one are feasible at all: 8 GB instead of 4 GB.
        cfg.nodes[0].os.memory.total_ram = 8 * GIB;
        let scheduler =
            PriorityPreemptingScheduler::new(PreemptionPrimitive::SuspendResume, *policy);
        let mut cluster = Cluster::new(cfg, Box::new(scheduler));
        for (name, state) in [
            ("bg-small", 256 * MIB),
            ("bg-medium", GIB),
            ("bg-large", 3 * GIB),
        ] {
            cluster.submit_job(
                JobSpec::synthetic(name, 1, 512 * MIB)
                    .with_priority(0)
                    .with_profile(TaskProfile::memory_hungry(state)),
            );
        }
        cluster.submit_job_at(
            JobSpec::synthetic("hp", 1, 512 * MIB)
                .with_priority(10)
                .with_profile(TaskProfile::memory_hungry(2 * GIB)),
            SimTime::from_secs(40),
        );
        cluster.run(SimTime::from_secs(24 * 3_600));
        let report = cluster.report();
        assert!(
            report.all_jobs_complete(),
            "eviction ablation run incomplete"
        );
        rows.push(vec![
            i as f64,
            report.sojourn_secs("hp").unwrap_or(f64::NAN),
            report.makespan_secs().unwrap_or(f64::NAN),
            report.total_swap_out_bytes() as f64 / MIB as f64,
        ]);
    }
    FigureData {
        id: "eviction".to_string(),
        title: "Eviction policy ablation (0=smallest-memory, 1=closest-to-completion, 2=largest-memory)"
            .to_string(),
        columns: vec![
            "policy".to_string(),
            "hp_sojourn_s".to_string(),
            "makespan_s".to_string(),
            "swap_out_MB".to_string(),
        ],
        rows,
        notes: "Suspending the task with the smallest memory footprint minimises paging and therefore \
                the high-priority job's sojourn time, as argued in Section V-A."
            .to_string(),
    }
}

/// Section V-A ablation: resume locality. `tl`'s input lives on node 0 only;
/// when it is preempted there the alternatives are to resume locally later
/// (suspend/resume) or to restart it immediately on the idle node 1
/// (effectively a delayed kill). The crossover depends on how much work the
/// restart throws away.
pub fn resume_locality_ablation(repetitions: usize) -> FigureData {
    let mut rows = Vec::new();
    for fraction in [0.2, 0.5, 0.8] {
        let run = |primitive| {
            let mut cluster_cfg = ClusterConfig::paper_single_node();
            cluster_cfg.nodes.push(cluster_cfg.nodes[0].clone());
            run_scenario(&ScenarioConfig {
                primitive,
                preempt_at: fraction,
                tl_state_memory: 0,
                th_state_memory: 0,
                repetitions,
                base_seed: 1,
                cluster: cluster_cfg,
            })
        };
        let local_resume = run(PreemptionPrimitive::SuspendResume);
        let nonlocal_restart = run(PreemptionPrimitive::Kill);
        rows.push(vec![
            fraction * 100.0,
            local_resume.makespan_secs.mean,
            nonlocal_restart.makespan_secs.mean,
            local_resume.wasted_work_secs.mean,
            nonlocal_restart.wasted_work_secs.mean,
        ]);
    }
    FigureData {
        id: "resume_locality".to_string(),
        title: "Resume locality: local resume (suspend) vs. non-local restart (kill) on a 2-node cluster"
            .to_string(),
        columns: vec![
            "tl_progress_%".to_string(),
            "local_resume_makespan_s".to_string(),
            "nonlocal_restart_makespan_s".to_string(),
            "local_resume_wasted_s".to_string(),
            "nonlocal_restart_wasted_s".to_string(),
        ],
        rows,
        notes: "Restarting elsewhere overlaps tl with th but repeats work (a 'delayed kill'); resuming \
                locally preserves work but waits for the original node — the more progress tl has made, \
                the more attractive the local resume becomes."
            .to_string(),
    }
}

/// Runs one figure end to end.
pub fn run_figure(figure: Figure, repetitions: usize) -> Vec<FigureData> {
    match figure {
        Figure::F2a => vec![figure2(repetitions).0],
        Figure::F2b => vec![figure2(repetitions).1],
        Figure::F3a => vec![figure3(repetitions).0],
        Figure::F3b => vec![figure3(repetitions).1],
        Figure::F4 => vec![figure4(repetitions)],
        Figure::NatjamComparison => vec![natjam_comparison(repetitions)],
        Figure::EvictionPolicies => vec![eviction_ablation(repetitions)],
        Figure::ResumeLocality => vec![resume_locality_ablation(repetitions)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_shape_matches_the_paper() {
        let (a, b) = figure2(1);
        let wait_sojourn = a.column("wait").unwrap();
        let susp_sojourn = a.column("susp").unwrap();
        let kill_sojourn = a.column("kill").unwrap();
        // wait decreases with r, and is far above the others early on.
        assert!(wait_sojourn.first().unwrap() > wait_sojourn.last().unwrap());
        assert!(wait_sojourn[0] > susp_sojourn[0] + 40.0);
        // susp <= kill everywhere (same latency path, no cleanup attempt).
        for (s, k) in susp_sojourn.iter().zip(&kill_sojourn) {
            assert!(s <= &(k + 1.0), "susp {s} vs kill {k}");
        }
        // Makespan: kill grows with r, susp tracks wait within a few seconds.
        let kill_makespan = b.column("kill").unwrap();
        let susp_makespan = b.column("susp").unwrap();
        let wait_makespan = b.column("wait").unwrap();
        assert!(kill_makespan.last().unwrap() > kill_makespan.first().unwrap());
        assert!(kill_makespan.last().unwrap() - wait_makespan.last().unwrap() > 40.0);
        for (s, w) in susp_makespan.iter().zip(&wait_makespan) {
            assert!(
                (s - w).abs() < 10.0,
                "susp makespan {s} should track wait {w}"
            );
        }
    }

    #[test]
    fn figure4_overheads_grow_with_th_memory() {
        let f = figure4(1);
        let paged = f.column("paged_bytes_MB").unwrap();
        let sojourn_overhead = f.column("sojourn_overhead_s").unwrap();
        assert!(
            paged.first().unwrap() < &10.0,
            "no paging when th allocates nothing"
        );
        assert!(
            paged.last().unwrap() > &800.0,
            "2.5 GB th must page out a lot of tl"
        );
        assert!(
            paged.windows(2).all(|w| w[1] >= w[0] - 1.0),
            "paged bytes must be non-decreasing"
        );
        assert!(
            sojourn_overhead.last().unwrap() > &5.0,
            "paging must visibly slow th at the right end of the sweep"
        );
        assert!(f.column("missing").is_none());
    }

    #[test]
    fn natjam_model_overhead_is_larger_than_suspends() {
        let f = natjam_comparison(1);
        for row in &f.rows {
            let susp = row[1];
            let natjam = row[2];
            assert!(
                susp < natjam,
                "susp overhead {susp}% should undercut checkpointing {natjam}%"
            );
            assert!(natjam > 1.0 && natjam < 15.0);
        }
    }

    #[test]
    fn figure_ids_are_unique() {
        let ids: Vec<&str> = Figure::ALL.iter().map(|f| f.id()).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
    }
}
