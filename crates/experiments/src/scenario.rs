//! The paper's experimental scenario (Section IV-A) as a reusable harness.
//!
//! Two single-task map-only jobs over 512 MB single-block HDFS files run on a
//! single node with one map slot. The dummy scheduler preempts the
//! low-priority job `tl` when it reaches a completion rate `r`, hands the slot
//! to the high-priority job `th`, and restores `tl` once `th` completes. Each
//! configuration is repeated (the paper uses 20 runs) with derived seeds and
//! summarised.

use mrp_engine::{Cluster, ClusterConfig, ClusterReport};
use mrp_preempt::{DummyPlan, DummyScheduler, PreemptionPrimitive};
use mrp_sim::{SimTime, Summary};
use mrp_workload::{two_job_input_files, two_job_scenario, HIGH_PRIORITY_JOB, LOW_PRIORITY_JOB};
use serde::{Deserialize, Serialize};

/// Configuration of one scenario point (one x-axis position of one curve).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Preemption primitive under test.
    pub primitive: PreemptionPrimitive,
    /// Progress fraction of `tl` at which `th` is launched (the paper's `r`).
    pub preempt_at: f64,
    /// Dirty state memory allocated by `tl` in its setup phase.
    pub tl_state_memory: u64,
    /// Dirty state memory allocated by `th` in its setup phase.
    pub th_state_memory: u64,
    /// Number of repetitions to average over (the paper uses 20).
    pub repetitions: usize,
    /// Base seed; repetition `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Cluster configuration (defaults to the paper's single node).
    pub cluster: ClusterConfig,
}

impl ScenarioConfig {
    /// The paper's light-weight baseline at preemption point `r`.
    pub fn lightweight(primitive: PreemptionPrimitive, preempt_at: f64) -> Self {
        ScenarioConfig {
            primitive,
            preempt_at,
            tl_state_memory: 0,
            th_state_memory: 0,
            repetitions: 3,
            base_seed: 1,
            cluster: ClusterConfig::paper_single_node(),
        }
    }

    /// The paper's memory-hungry worst case (both tasks allocate 2 GB).
    pub fn memory_hungry(primitive: PreemptionPrimitive, preempt_at: f64, state: u64) -> Self {
        ScenarioConfig {
            tl_state_memory: state,
            th_state_memory: state,
            ..ScenarioConfig::lightweight(primitive, preempt_at)
        }
    }

    /// Sets the repetition count, builder style.
    pub fn with_repetitions(mut self, repetitions: usize) -> Self {
        self.repetitions = repetitions.max(1);
        self
    }
}

/// Measurements extracted from one simulated run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SingleRun {
    /// Sojourn time of `th` in seconds.
    pub sojourn_th_secs: f64,
    /// Workload makespan in seconds.
    pub makespan_secs: f64,
    /// Bytes of `tl`'s memory paged out to swap.
    pub tl_paged_out_bytes: u64,
    /// Bytes written to swap across the node.
    pub swap_out_bytes: u64,
    /// Bytes read back from swap across the node.
    pub swap_in_bytes: u64,
    /// Attempts used by `tl` (2 means it was killed and re-run).
    pub tl_attempts: u32,
    /// Suspend/resume cycles `tl` went through.
    pub tl_suspend_cycles: u32,
    /// Work wasted by killed attempts, in seconds.
    pub wasted_work_secs: f64,
    /// Map-launch locality outcomes (node-local / rack-local / off-rack).
    pub locality: mrp_engine::LocalityStats,
    /// Committed map outputs destroyed by node loss (0 on the failure-free
    /// paper scenario; the fault harnesses populate it).
    pub lost_map_outputs: u64,
    /// Reduce shuffle re-fetch rounds spent waiting on missing map outputs.
    pub shuffle_refetches: u64,
    /// The full engine report, for detailed inspection.
    pub report: ClusterReport,
}

/// Averaged outcome of a scenario configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// The configuration that produced this outcome.
    pub primitive: PreemptionPrimitive,
    /// The preemption point.
    pub preempt_at: f64,
    /// Sojourn time of `th` (seconds) across repetitions.
    pub sojourn_th_secs: Summary,
    /// Makespan (seconds) across repetitions.
    pub makespan_secs: Summary,
    /// `tl` paged-out bytes across repetitions.
    pub tl_paged_out_bytes: Summary,
    /// Wasted work (seconds) across repetitions.
    pub wasted_work_secs: Summary,
}

/// Runs the scenario once with the given seed.
pub fn run_once(config: &ScenarioConfig, seed: u64) -> SingleRun {
    let (tl, th) = two_job_scenario(config.tl_state_memory, config.th_state_memory);
    let plan = DummyPlan::paper_scenario(config.primitive, LOW_PRIORITY_JOB, th, config.preempt_at);
    let scheduler = DummyScheduler::new(plan);
    let triggers = scheduler.required_triggers();

    let cluster_config = config.cluster.clone().with_seed(seed);
    let mut cluster = Cluster::new(cluster_config, Box::new(scheduler));
    for (path, len) in two_job_input_files() {
        cluster
            .create_input_file(&path, len)
            .expect("scenario input files are created once per run");
    }
    for (job, task, fraction) in triggers {
        cluster.add_progress_trigger(&job, task, fraction);
    }
    cluster.submit_job(tl);
    cluster.run(SimTime::from_secs(24 * 3_600));
    let report = cluster.report();
    assert!(
        report.all_jobs_complete(),
        "scenario run did not complete: primitive={} r={}",
        config.primitive,
        config.preempt_at
    );

    let tl_report = report.job(LOW_PRIORITY_JOB).expect("tl exists").clone();
    SingleRun {
        sojourn_th_secs: report
            .sojourn_secs(HIGH_PRIORITY_JOB)
            .expect("th completed"),
        makespan_secs: report.makespan_secs().expect("all jobs completed"),
        tl_paged_out_bytes: tl_report.paged_out_bytes(),
        swap_out_bytes: report.total_swap_out_bytes(),
        swap_in_bytes: report.total_swap_in_bytes(),
        tl_attempts: tl_report.tasks[0].attempts,
        tl_suspend_cycles: tl_report.tasks[0].suspend_cycles,
        wasted_work_secs: report.total_wasted_work_secs(),
        locality: report.locality,
        lost_map_outputs: report.faults.lost_map_outputs,
        shuffle_refetches: report.faults.shuffle_refetches,
        report,
    }
}

/// Runs the scenario `config.repetitions` times and summarises the metrics.
pub fn run_scenario(config: &ScenarioConfig) -> ScenarioOutcome {
    let mut sojourn = Vec::new();
    let mut makespan = Vec::new();
    let mut paged = Vec::new();
    let mut wasted = Vec::new();
    for i in 0..config.repetitions.max(1) {
        let run = run_once(config, config.base_seed + i as u64);
        sojourn.push(run.sojourn_th_secs);
        makespan.push(run.makespan_secs);
        paged.push(run.tl_paged_out_bytes as f64);
        wasted.push(run.wasted_work_secs);
    }
    ScenarioOutcome {
        primitive: config.primitive,
        preempt_at: config.preempt_at,
        sojourn_th_secs: Summary::of(&sojourn).expect("at least one repetition"),
        makespan_secs: Summary::of(&makespan).expect("at least one repetition"),
        tl_paged_out_bytes: Summary::of(&paged).expect("at least one repetition"),
        wasted_work_secs: Summary::of(&wasted).expect("at least one repetition"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_sim::GIB;

    #[test]
    fn lightweight_run_matches_paper_magnitudes() {
        let run = run_once(
            &ScenarioConfig::lightweight(PreemptionPrimitive::SuspendResume, 0.5),
            1,
        );
        assert!(
            (75.0..110.0).contains(&run.sojourn_th_secs),
            "sojourn {}",
            run.sojourn_th_secs
        );
        assert!(
            (150.0..200.0).contains(&run.makespan_secs),
            "makespan {}",
            run.makespan_secs
        );
        assert_eq!(run.tl_suspend_cycles, 1);
        assert_eq!(run.tl_attempts, 1);
        assert_eq!(run.swap_out_bytes, 0, "light-weight tasks never page");
        // Both jobs' single-block inputs are written from node 0 of a
        // single-node cluster: all launches are node-local.
        assert_eq!(run.locality.total(), 2);
        assert_eq!(run.locality.node_local_ratio(), 1.0);
    }

    #[test]
    fn wait_sojourn_exceeds_suspend_sojourn_early() {
        let susp = run_once(
            &ScenarioConfig::lightweight(PreemptionPrimitive::SuspendResume, 0.1),
            1,
        );
        let wait = run_once(
            &ScenarioConfig::lightweight(PreemptionPrimitive::Wait, 0.1),
            1,
        );
        assert!(wait.sojourn_th_secs > susp.sojourn_th_secs + 40.0);
    }

    #[test]
    fn memory_hungry_runs_page() {
        let run = run_once(
            &ScenarioConfig::memory_hungry(PreemptionPrimitive::SuspendResume, 0.5, 2 * GIB),
            1,
        );
        assert!(run.swap_out_bytes > 0);
        assert!(run.tl_paged_out_bytes > 0);
        assert!(
            run.swap_in_bytes > 0,
            "the resumed task must fault its memory back in"
        );
    }

    #[test]
    fn kill_never_pages_but_wastes_work() {
        let run = run_once(
            &ScenarioConfig::memory_hungry(PreemptionPrimitive::Kill, 0.5, 2 * GIB),
            1,
        );
        assert_eq!(run.tl_paged_out_bytes, 0);
        assert_eq!(run.tl_attempts, 2);
        assert!(run.wasted_work_secs > 20.0);
    }

    #[test]
    fn scenario_summary_is_tight_across_repetitions() {
        let outcome = run_scenario(
            &ScenarioConfig::lightweight(PreemptionPrimitive::SuspendResume, 0.5)
                .with_repetitions(3),
        );
        assert_eq!(outcome.sojourn_th_secs.count, 3);
        // The paper reports min/max within 5% of the mean; the deterministic
        // simulator is tighter still.
        assert!(outcome.sojourn_th_secs.relative_spread() < 0.05);
        assert!(outcome.makespan_secs.relative_spread() < 0.05);
    }
}
