//! Memory-pressure scenarios for the block-granular swap-device model.
//!
//! The paper's worst case (Section IV-B) is a memory-hungry task whose dirty
//! state must travel through swap on every suspend/resume cycle. This module
//! scales that worst case from one node to a small cluster and turns the
//! OS-model knobs the swap device adds into an experiment family:
//!
//! * **eager vs. lazy resume** — [`resume_ablation`] runs the same seeded
//!   workload with the whole resident set faulted back at resume time versus
//!   a prefetch fraction plus demand faults (the rest arrives when the task
//!   next touches it, or at finalize);
//! * **resume cost vs. state size** — [`resume_cost_curve`] sweeps the dirty
//!   state per task and reports swap traffic per suspend cycle, the curve the
//!   `memory_pressure` bench pins down (it must *not* be flat);
//! * **thrashing** — [`MemoryPressureConfig::thrashing`] overcommits a node
//!   so hard that pages evicted for an allocation belong to the allocating
//!   task itself, surfaced by the kernel's `thrash_events` counter;
//! * **disk contention** — [`MemoryPressureConfig::contended`] kills a node
//!   mid-run so DFS re-replication traffic shares each disk with swap I/O
//!   (`background_share`), stretching every page-out.
//!
//! The workload is an HFSP queue: big memory-hungry batch jobs saturate every
//! map slot, then a stream of small jobs keeps jumping the queue, each arrival
//! suspending batch tasks whose state must page out and back. Suspend churn —
//! not task runtime — dominates, which is exactly where the swap model's
//! behavior is visible.

use mrp_engine::{
    Cluster, ClusterConfig, ClusterReport, FaultEvent, FaultKind, FaultPlan, JobSpec, NodeId,
    SwapConfig, TaskProfile, TraceLevel,
};
use mrp_preempt::{EvictionPolicy, HfspScheduler, PreemptionPrimitive};
use mrp_sim::{SimDuration, SimTime, GIB, MIB};

/// Configuration of one memory-pressure scenario run.
#[derive(Clone, Debug)]
pub struct MemoryPressureConfig {
    /// Nodes in the (single-rack) cluster.
    pub nodes: u32,
    /// Map slots per node. Two slots with `state_memory` sized so that two
    /// resident sets exceed usable RAM keeps every node under pressure.
    pub map_slots: u32,
    /// Physical RAM per node.
    pub total_ram: u64,
    /// Swap capacity per node (the block device the swap model manages).
    pub swap_capacity: u64,
    /// Dirty state each batch task allocates in its setup phase — the
    /// resident set that suspend/resume moves through swap.
    pub state_memory: u64,
    /// Memory-hungry batch jobs submitted at `t = 0`.
    pub batch_jobs: u32,
    /// Map tasks per batch job.
    pub batch_tasks: u32,
    /// Input bytes per batch task (sets task duration).
    pub batch_bytes: u64,
    /// Small queue-jumping jobs; one every `small_every_secs` from 45 s.
    pub small_jobs: u32,
    /// Map tasks per small job (how many batch tasks each arrival suspends).
    pub small_tasks: u32,
    /// Seconds between small-job arrivals.
    pub small_every_secs: u64,
    /// Swap-device knobs (`SwapConfig::default()` = legacy byte-granular
    /// accounting, the byte-identity baseline).
    pub swap: SwapConfig,
    /// Disk bandwidth share reserved for background DFS traffic while any is
    /// pending; `0.0` disables contention entirely.
    pub background_share: f64,
    /// Kill one node mid-run so re-replication traffic contends with swap.
    pub fault: bool,
    /// Replicated DFS ballast written with the doomed node as first replica,
    /// so its loss forces re-replication onto the survivors' disks. Only
    /// materialized when `fault` is set (the batch jobs are synthetic and
    /// store nothing in the DFS themselves).
    pub replicated_data: u64,
    /// Simulation seed.
    pub seed: u64,
}

impl MemoryPressureConfig {
    /// The bench-scale scenario: 16 nodes x 2 map slots, 3 GiB RAM per node
    /// and 1.5 GiB of dirty state per batch task, so two resident sets
    /// overflow usable RAM and every suspend pages real state out.
    pub fn full(swap: SwapConfig) -> Self {
        MemoryPressureConfig {
            nodes: 16,
            map_slots: 2,
            total_ram: 3 * GIB,
            swap_capacity: 16 * GIB,
            state_memory: 1536 * MIB,
            batch_jobs: 6,
            batch_tasks: 48,
            batch_bytes: 512 * MIB,
            small_jobs: 36,
            small_tasks: 8,
            small_every_secs: 15,
            swap,
            background_share: 0.0,
            fault: false,
            replicated_data: 8 * GIB,
            seed: 11,
        }
    }

    /// A compact scenario for tests and the bench's `--test` mode:
    /// 4 nodes / 8 map slots, a few minutes of simulated churn.
    pub fn small(swap: SwapConfig) -> Self {
        MemoryPressureConfig {
            nodes: 4,
            map_slots: 2,
            total_ram: 3 * GIB,
            swap_capacity: 16 * GIB,
            state_memory: 1536 * MIB,
            batch_jobs: 2,
            batch_tasks: 12,
            batch_bytes: 512 * MIB,
            small_jobs: 8,
            small_tasks: 4,
            small_every_secs: 20,
            swap,
            background_share: 0.0,
            fault: false,
            replicated_data: 4 * GIB,
            seed: 11,
        }
    }

    /// Overcommits so hard that a single task's resident set exceeds usable
    /// RAM: reclaim runs out of other victims and must evict the allocating
    /// task's own pages (`thrash_events` counts those self-evictions).
    pub fn thrashing(mut self) -> Self {
        self.state_memory = self.total_ram;
        self.batch_tasks = self.batch_tasks.min(8);
        self.small_jobs = 0;
        self
    }

    /// A calm variant: state fits comfortably, so nothing thrashes and the
    /// `thrash_events` counter must stay at zero (the bench gates on this).
    pub fn calm(mut self) -> Self {
        self.state_memory = 256 * MIB;
        self
    }

    /// Adds disk contention: one node dies mid-run, its DFS blocks
    /// re-replicate as background writes sharing every surviving disk with
    /// swap traffic at the given share.
    pub fn contended(mut self, share: f64) -> Self {
        self.background_share = share;
        self.fault = true;
        self
    }
}

/// Outcome of one memory-pressure scenario run.
#[derive(Clone, Debug)]
pub struct MemoryPressureOutcome {
    /// Discrete events the run processed (the bench's throughput unit).
    pub events_processed: u64,
    /// Time to drain the whole workload.
    pub makespan_secs: f64,
    /// Bytes written to swap across the cluster.
    pub swap_out_bytes: u64,
    /// Bytes read back from swap across the cluster.
    pub swap_in_bytes: u64,
    /// Self-eviction reclaim passes (nonzero only under overcommit).
    pub thrash_events: u64,
    /// Tasks sacrificed by the OOM killer.
    pub oom_kills: u64,
    /// Suspend/resume cycles across all tasks.
    pub suspend_cycles: u64,
    /// Virtual seconds spent stalled on swap I/O across the cluster (from
    /// the swap device's timing counters; disk contention inflates this for
    /// the same byte flow).
    pub swap_io_secs: f64,
    /// The full engine report, for detailed inspection.
    pub report: ClusterReport,
}

impl MemoryPressureOutcome {
    /// Swap-in bytes per suspend cycle — the resume cost the paper's
    /// Figure 4 measures, here averaged over the whole run.
    pub fn swap_in_per_cycle(&self) -> f64 {
        if self.suspend_cycles == 0 {
            0.0
        } else {
            self.swap_in_bytes as f64 / self.suspend_cycles as f64
        }
    }
}

/// Submits the scenario workload: the memory-hungry batch at `t = 0` and the
/// stream of small queue-jumpers. Everything is map-only and synthetic, so
/// the workload is a pure function of the config.
fn submit_workload(cluster: &mut Cluster, config: &MemoryPressureConfig) {
    for j in 0..config.batch_jobs {
        cluster.submit_job_at(
            JobSpec::synthetic(
                format!("batch-{j:02}"),
                config.batch_tasks,
                config.batch_bytes,
            )
            .with_profile(TaskProfile::memory_hungry(config.state_memory)),
            SimTime::from_secs(u64::from(j)),
        );
    }
    let mut at = SimTime::from_secs(45);
    for j in 0..config.small_jobs {
        cluster.submit_job_at(
            JobSpec::synthetic(format!("small-{j:03}"), config.small_tasks, 64 * MIB),
            at,
        );
        at += SimDuration::from_secs(config.small_every_secs);
    }
}

/// Runs one memory-pressure scenario to completion.
pub fn run_memory_pressure(config: &MemoryPressureConfig) -> MemoryPressureOutcome {
    let mut cfg = ClusterConfig::small_cluster(config.nodes, config.map_slots, 1)
        .with_trace_level(TraceLevel::Off)
        .with_seed(config.seed)
        .with_swap(config.swap)
        .with_disk_background_share(config.background_share);
    for node in &mut cfg.nodes {
        node.os.memory.total_ram = config.total_ram;
        node.os.memory.swap_capacity = config.swap_capacity;
    }
    if config.fault {
        cfg = cfg.with_faults(FaultPlan {
            events: vec![FaultEvent {
                at: SimTime::from_secs(90),
                kind: FaultKind::Kill {
                    node: NodeId(config.nodes - 1),
                },
            }],
            random: None,
        });
    }
    let mut cluster = Cluster::new(
        cfg,
        Box::new(HfspScheduler::new(
            PreemptionPrimitive::SuspendResume,
            EvictionPolicy::ClosestToCompletion,
        )),
    );
    if config.fault {
        // DFS ballast whose first replica sits on the doomed node: its death
        // forces re-replication, which the survivors' disks serve as
        // background writes contending with swap at `background_share`.
        let doomed = NodeId(config.nodes - 1);
        for i in 0..config.replicated_data / GIB {
            cluster
                .create_input_file_from(&format!("/ballast-{i:02}"), GIB, Some(doomed))
                .expect("ballast paths are unique");
        }
    }
    submit_workload(&mut cluster, config);
    cluster.run(SimTime::from_secs(24 * 3_600));
    let events_processed = cluster.events_processed();
    let report = cluster.report();
    assert!(
        report.all_jobs_complete(),
        "memory-pressure workload must drain"
    );
    MemoryPressureOutcome {
        events_processed,
        makespan_secs: report.makespan_secs().unwrap_or(0.0),
        swap_out_bytes: report.nodes.iter().map(|n| n.swap_out_bytes).sum(),
        swap_in_bytes: report.nodes.iter().map(|n| n.swap_in_bytes).sum(),
        thrash_events: report.nodes.iter().map(|n| n.thrash_events).sum(),
        swap_io_secs: report.nodes.iter().map(|n| n.swap_io_secs).sum(),
        oom_kills: report.nodes.iter().map(|n| n.oom_kills).sum(),
        suspend_cycles: report
            .jobs
            .iter()
            .flat_map(|j| j.tasks.iter())
            .map(|t| u64::from(t.suspend_cycles))
            .sum(),
        report,
    }
}

/// Runs the scenario twice on the same seed — eager resume (the whole
/// resident set faulted back on `SIGCONT`) versus lazy resume (a prefetch
/// fraction up front, the rest on demand) — and returns `(eager, lazy)`.
/// Lazy must read strictly fewer swap bytes: pages the task never touches
/// again before its next suspension are never read back.
pub fn resume_ablation(
    config: &MemoryPressureConfig,
) -> (MemoryPressureOutcome, MemoryPressureOutcome) {
    let eager = run_memory_pressure(&MemoryPressureConfig {
        swap: SwapConfig {
            lazy_resume: false,
            ..SwapConfig::enabled()
        },
        ..config.clone()
    });
    let lazy = run_memory_pressure(&MemoryPressureConfig {
        swap: SwapConfig::lazy(),
        ..config.clone()
    });
    (eager, lazy)
}

/// One point of the resume-cost curve: the scenario re-run with a different
/// dirty-state size per batch task.
#[derive(Clone, Debug)]
pub struct ResumeCostPoint {
    /// Dirty state per batch task.
    pub state_memory: u64,
    /// Swap-in bytes per suspend cycle at this state size.
    pub swap_in_per_cycle: f64,
    /// Makespan at this state size.
    pub makespan_secs: f64,
    /// Suspend cycles observed.
    pub suspend_cycles: u64,
}

/// Sweeps `state_memory` and reports the per-cycle resume cost at each
/// point. The paper's Figure 4 in cluster form: the cost of a suspend/resume
/// cycle must grow with the resident set that travels through swap.
pub fn resume_cost_curve(
    config: &MemoryPressureConfig,
    state_sizes: &[u64],
) -> Vec<ResumeCostPoint> {
    state_sizes
        .iter()
        .map(|&state_memory| {
            let outcome = run_memory_pressure(&MemoryPressureConfig {
                state_memory,
                ..config.clone()
            });
            ResumeCostPoint {
                state_memory,
                swap_in_per_cycle: outcome.swap_in_per_cycle(),
                makespan_secs: outcome.makespan_secs,
                suspend_cycles: outcome.suspend_cycles,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_pressure_scenario_is_deterministic() {
        let config = MemoryPressureConfig::small(SwapConfig::enabled());
        let a = run_memory_pressure(&config);
        let b = run_memory_pressure(&config);
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.makespan_secs, b.makespan_secs);
        assert_eq!(a.swap_out_bytes, b.swap_out_bytes);
        assert_eq!(a.swap_in_bytes, b.swap_in_bytes);
        assert_eq!(a.suspend_cycles, b.suspend_cycles);
    }

    #[test]
    fn pressure_workload_actually_churns_through_swap() {
        let outcome = run_memory_pressure(&MemoryPressureConfig::small(SwapConfig::enabled()));
        assert!(
            outcome.suspend_cycles >= 4,
            "small jobs must keep suspending batch tasks: {outcome:?}"
        );
        assert!(
            outcome.swap_out_bytes > GIB,
            "suspended resident sets must page out: {}",
            outcome.swap_out_bytes
        );
        assert_eq!(outcome.oom_kills, 0, "swap is sized to absorb the churn");
    }

    #[test]
    fn lazy_resume_reads_strictly_fewer_swap_bytes() {
        let (eager, lazy) = resume_ablation(&MemoryPressureConfig::small(SwapConfig::enabled()));
        assert!(
            lazy.swap_in_bytes < eager.swap_in_bytes,
            "lazy resume must skip pages never touched again: lazy {} vs eager {}",
            lazy.swap_in_bytes,
            eager.swap_in_bytes
        );
    }

    #[test]
    fn calm_variant_never_thrashes() {
        let outcome =
            run_memory_pressure(&MemoryPressureConfig::small(SwapConfig::enabled()).calm());
        assert_eq!(outcome.thrash_events, 0, "no overcommit, no thrash");
    }

    #[test]
    fn thrashing_variant_is_detected() {
        let outcome =
            run_memory_pressure(&MemoryPressureConfig::small(SwapConfig::enabled()).thrashing());
        assert!(
            outcome.thrash_events > 0,
            "a resident set larger than RAM must self-evict: {outcome:?}"
        );
    }

    #[test]
    fn resume_cost_grows_with_state_size() {
        let config = MemoryPressureConfig::small(SwapConfig::enabled());
        let curve = resume_cost_curve(&config, &[512 * MIB, 1536 * MIB]);
        assert!(
            curve[1].swap_in_per_cycle > curve[0].swap_in_per_cycle,
            "resume cost must scale with the resident set: {curve:?}"
        );
    }

    #[test]
    fn disk_contention_inflates_swap_io_time() {
        let base = MemoryPressureConfig::small(SwapConfig::enabled());
        let fault_only = run_memory_pressure(&base.clone().contended(0.0));
        let contended = run_memory_pressure(&base.clone().contended(0.5));
        assert!(
            contended.swap_io_secs > fault_only.swap_io_secs,
            "re-replication sharing the disk must slow swap traffic: {:.1}s vs {:.1}s",
            contended.swap_io_secs,
            fault_only.swap_io_secs
        );
    }
}
