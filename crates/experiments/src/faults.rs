//! Failure-scenario harness: SWIM churn plus fault injection, with
//! speculative re-execution togglable.
//!
//! The paper evaluates preemption on a failure-free testbed; this harness
//! asks the follow-up question its Section V invites: *what do the
//! primitives cost when nodes actually die?* A suspended task's paged-out
//! state lives on its node, so node loss destroys exactly the work
//! suspension was preserving — and speculative re-execution (backup attempts
//! for stranded stragglers, first finisher wins) is the mitigation. The
//! [`speculation_ablation`] entry point runs the same seeded scenario with
//! speculation on and off and reports the tail-latency difference alongside
//! the engine's [`FaultStats`].

use mrp_engine::{
    Cluster, ClusterConfig, ClusterReport, DetectorConfig, FaultPlan, RandomFaults,
    SpeculationConfig, TraceLevel,
};
use mrp_preempt::{EvictionPolicy, HfspScheduler, PreemptionPrimitive};
use mrp_sim::{SimTime, MIB};
use mrp_workload::{SwimConfig, SwimGenerator};
use serde::{Deserialize, Serialize};

/// Configuration of one fault-injection scenario run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultScenarioConfig {
    /// Number of racks.
    pub racks: u32,
    /// Nodes per rack.
    pub nodes_per_rack: u32,
    /// Map slots per node.
    pub map_slots: u32,
    /// The SWIM workload (heavy-tailed sizes, Poisson arrivals, optionally a
    /// slow-job straggler population via [`SwimConfig::slow_fraction`]).
    pub swim: SwimConfig,
    /// Seeded random churn injected through [`ClusterConfig::faults`].
    pub faults: RandomFaults,
    /// Whether speculative re-execution is enabled.
    pub speculation: bool,
    /// Failure-detection settings (default: disabled, faults observed
    /// instantaneously — the pre-detector behaviour).
    pub detector: DetectorConfig,
    /// Workload seed.
    pub seed: u64,
}

impl FaultScenarioConfig {
    /// A compact default: a 6-rack cluster under moderate load with per-rack
    /// MTBF churn and a slow-job straggler population.
    pub fn compact() -> Self {
        FaultScenarioConfig {
            racks: 6,
            nodes_per_rack: 8,
            map_slots: 2,
            swim: SwimConfig {
                jobs: 80,
                mean_interarrival_secs: 3.0,
                slow_fraction: 0.15,
                slow_parse_rate_bytes_per_sec: 1.6 * MIB as f64,
                slow_max_tasks: 8,
                ..SwimConfig::default()
            },
            faults: RandomFaults {
                rack_mtbf_secs: 90.0,
                mean_recovery_secs: Some(45.0),
                horizon: SimTime::from_secs(600),
                seed: 0xFA11,
            },
            speculation: true,
            detector: DetectorConfig::default(),
            seed: 0x5EED,
        }
    }
}

/// What one fault-scenario run produced.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultScenarioOutcome {
    /// The full engine report (fault counters included).
    pub report: ClusterReport,
    /// Events the run loop processed.
    pub events: u64,
    /// The `q`-quantiles of job sojourn time requested via
    /// [`run_fault_scenario`]'s fixed set: p50, p95, p99, max (seconds).
    pub sojourn_quantiles: [f64; 4],
}

/// The `q`-quantile (0..=1) of completed-job sojourn times, in seconds.
pub fn sojourn_quantile(report: &ClusterReport, q: f64) -> f64 {
    let mut sojourns: Vec<f64> = report.jobs.iter().filter_map(|j| j.sojourn_secs).collect();
    if sojourns.is_empty() {
        return 0.0;
    }
    sojourns.sort_by(|a, b| a.partial_cmp(b).expect("sojourns are finite"));
    sojourns[((sojourns.len() - 1) as f64 * q).round() as usize]
}

/// Runs one fault-injection scenario to completion.
pub fn run_fault_scenario(config: &FaultScenarioConfig) -> FaultScenarioOutcome {
    let mut cfg =
        ClusterConfig::racked_cluster(config.racks, config.nodes_per_rack, config.map_slots, 1)
            .with_trace_level(TraceLevel::Off)
            .with_seed(config.seed)
            .with_faults(FaultPlan {
                events: Vec::new(),
                random: Some(config.faults),
            })
            .with_detector(config.detector);
    if config.speculation {
        cfg = cfg.with_speculation(SpeculationConfig::enabled());
    }
    let mut cluster = Cluster::new(
        cfg,
        Box::new(HfspScheduler::new(
            PreemptionPrimitive::SuspendResume,
            EvictionPolicy::ClosestToCompletion,
        )),
    );
    for job in SwimGenerator::new(config.swim.clone(), config.seed).generate() {
        cluster.submit_job_at(job.spec, job.arrival);
    }
    cluster.run(SimTime::from_secs(48 * 3_600));
    let report = cluster.report();
    assert!(
        report.all_jobs_complete(),
        "fault scenario must run to completion"
    );
    let sojourn_quantiles = [
        sojourn_quantile(&report, 0.5),
        sojourn_quantile(&report, 0.95),
        sojourn_quantile(&report, 0.99),
        sojourn_quantile(&report, 1.0),
    ];
    FaultScenarioOutcome {
        report,
        events: cluster.events_processed(),
        sojourn_quantiles,
    }
}

/// Runs the scenario twice on the same seed — speculation on, then off —
/// and returns `(with_speculation, without)`.
pub fn speculation_ablation(
    config: &FaultScenarioConfig,
) -> (FaultScenarioOutcome, FaultScenarioOutcome) {
    let mut on = config.clone();
    on.speculation = true;
    let mut off = config.clone();
    off.speculation = false;
    (run_fault_scenario(&on), run_fault_scenario(&off))
}

/// Runs the scenario twice on the same seed — failure detector on (default
/// threshold), then off — and returns `(with_detector, without)`. The
/// detector side pays detection lag on every churn kill; comparing the two
/// quantifies what suspicion-based detection costs under otherwise identical
/// faults.
pub fn detection_ablation(
    config: &FaultScenarioConfig,
) -> (FaultScenarioOutcome, FaultScenarioOutcome) {
    let mut on = config.clone();
    on.detector = DetectorConfig::enabled();
    let mut off = config.clone();
    off.detector = DetectorConfig::default();
    (run_fault_scenario(&on), run_fault_scenario(&off))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_fault_scenario_completes_with_churn_and_is_deterministic() {
        let cfg = FaultScenarioConfig::compact();
        let a = run_fault_scenario(&cfg);
        let b = run_fault_scenario(&cfg);
        assert_eq!(a, b, "fixed-seed fault scenario must be deterministic");
        let faults = a.report.faults;
        assert!(faults.node_failures >= 1, "{faults:?}");
        assert!(faults.re_executed_tasks >= 1, "{faults:?}");
        assert!(a.sojourn_quantiles[0] <= a.sojourn_quantiles[3]);
    }

    #[test]
    fn detection_ablation_pays_lag_only_on_the_detector_side() {
        let (on, off) = detection_ablation(&FaultScenarioConfig::compact());
        assert_eq!(off.report.faults.failures_detected, 0);
        assert_eq!(off.report.faults.detection_lag_secs_max, 0.0);
        let faults = on.report.faults;
        assert!(faults.failures_detected >= 1, "{faults:?}");
        assert!(faults.detection_lag_secs_max > 0.0, "{faults:?}");
        assert_eq!(faults.duplicate_commits, 0);
        // Every run still drains the workload.
        assert!(on.report.all_jobs_complete());
    }

    #[test]
    fn speculation_ablation_runs_both_sides() {
        let (on, off) = speculation_ablation(&FaultScenarioConfig::compact());
        assert_eq!(off.report.faults.speculative_launched, 0);
        // Speculation must never make the tail worse on this seed.
        assert!(on.sojourn_quantiles[2] <= off.sojourn_quantiles[2] + 1e-9);
    }
}
