//! # mrp-experiments — the paper's evaluation, reproduced
//!
//! One entry point per figure of "OS-Assisted Task Preemption for Hadoop"
//! (Section IV), plus the ablations its discussion section suggests:
//!
//! | Paper artefact | Function |
//! |---|---|
//! | Figure 2a/2b (light-weight baseline) | [`figure2`] |
//! | Figure 3a/3b (memory-hungry worst case) | [`figure3`] |
//! | Figure 4 (overheads vs. memory footprint) | [`figure4`] |
//! | Natjam ~7% overhead comparison (Sec. IV-C) | [`natjam_comparison`] |
//! | Eviction-policy discussion (Sec. V-A) | [`eviction_ablation`] |
//! | Resume-locality discussion (Sec. V-A) | [`resume_locality_ablation`] |
//!
//! Each experiment returns a [`FigureData`] table that the `mrp-bench`
//! Criterion harness regenerates and that [`to_table`] / [`to_csv`] render for
//! `EXPERIMENTS.md`.
//!
//! ```no_run
//! use mrp_experiments::{run_figure, Figure, to_table};
//!
//! for data in run_figure(Figure::F2a, 1) {
//!     println!("{}", to_table(&data));
//! }
//! ```

#![warn(missing_docs)]

mod faults;
mod figures;
mod locality;
mod memory;
mod priority;
mod rack_outage;
mod report;
mod scenario;
mod tenants;

pub use faults::{
    detection_ablation, run_fault_scenario, sojourn_quantile, speculation_ablation,
    FaultScenarioConfig, FaultScenarioOutcome,
};
pub use figures::{
    eviction_ablation, figure2, figure3, figure4, figure4_memory_points, natjam_comparison,
    paper_fractions, resume_locality_ablation, run_figure, Figure, FigureData,
};
pub use locality::{delay_locality_sweep, delay_sweep_table, DelaySweepConfig, DelaySweepRow};
pub use memory::{
    resume_ablation, resume_cost_curve, run_memory_pressure, MemoryPressureConfig,
    MemoryPressureOutcome, ResumeCostPoint,
};
pub use priority::PriorityPreemptingScheduler;
pub use rack_outage::{
    predictor_ablation, run_rack_outage, OutageWindow, RackOutageConfig, RackOutageOutcome,
};
pub use report::{to_csv, to_table};
pub use scenario::{run_once, run_scenario, ScenarioConfig, ScenarioOutcome, SingleRun};
pub use tenants::{
    reclaim_ablation, run_tenant_scenario, TenantScenarioConfig, TenantScenarioOutcome,
};

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_preempt::PreemptionPrimitive;

    #[test]
    fn all_figures_produce_tables() {
        // Smoke-test the full harness at one repetition; the detailed shape
        // assertions live in the figures module and the integration tests.
        for figure in [Figure::NatjamComparison, Figure::ResumeLocality] {
            let data = run_figure(figure, 1);
            assert!(!data.is_empty());
            for d in data {
                assert!(!d.rows.is_empty());
                assert!(!to_table(&d).is_empty());
                assert!(!to_csv(&d).is_empty());
            }
        }
    }

    #[test]
    fn scenario_outcome_exposes_paper_metrics() {
        let outcome = run_scenario(&ScenarioConfig::lightweight(PreemptionPrimitive::Kill, 0.3));
        assert!(outcome.sojourn_th_secs.mean > 0.0);
        assert!(outcome.makespan_secs.mean > outcome.sojourn_th_secs.mean);
        assert!(outcome.wasted_work_secs.mean > 0.0);
    }
}
