//! Rack-outage scenario: fault-tolerant shuffle and failure-aware placement
//! under the loss of a whole rack.
//!
//! PR 3's churn harness killed nodes; this scenario kills a *rack* — the
//! failure mode that makes shuffle a fault domain. Every map output on the
//! rack's nodes dies with it (they are node-local artifacts, not HDFS
//! blocks), the affected completed maps re-execute, reduces mid-shuffle stall
//! and re-fetch with backoff, and the reliability predictor learns to keep
//! fresh work off the rack's nodes when they rejoin still-flaky. The
//! [`predictor_ablation`] entry point runs the same seeded scenario with the
//! ATLAS-style predictor on and off, so the `rack_outage` bench can gate on
//! the p99 sojourn improvement.

use mrp_engine::{
    Cluster, ClusterConfig, ClusterReport, FaultEvent, FaultKind, FaultPlan, RackId, RandomFaults,
    ReliabilityConfig, ShuffleConfig, SpeculationConfig, TraceLevel,
};
use mrp_preempt::{EvictionPolicy, HfspScheduler, PreemptionPrimitive};
use mrp_sim::{SimTime, MIB};
use mrp_workload::{SwimConfig, SwimGenerator};
use serde::{Deserialize, Serialize};

use crate::faults::sojourn_quantile;

/// One scripted dark window: the rack goes down `at` and rejoins `until`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct OutageWindow {
    /// When the outage strikes.
    pub at: SimTime,
    /// When the rack rejoins.
    pub until: SimTime,
}

impl OutageWindow {
    /// Convenience constructor from whole seconds.
    pub fn from_secs(at: u64, until: u64) -> Self {
        OutageWindow {
            at: SimTime::from_secs(at),
            until: SimTime::from_secs(until),
        }
    }
}

/// Configuration of one rack-outage scenario run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RackOutageConfig {
    /// Number of racks.
    pub racks: u32,
    /// Nodes per rack.
    pub nodes_per_rack: u32,
    /// Map slots per node.
    pub map_slots: u32,
    /// Reduce slots per node.
    pub reduce_slots: u32,
    /// The SWIM workload; give it a positive
    /// [`SwimConfig::reduce_ratio`] so the outage has shuffles to break.
    pub swim: SwimConfig,
    /// Which rack the scripted outages take down.
    pub outage_rack: u32,
    /// Dark windows for `outage_rack`. A *repeat offender* (two or more
    /// windows) is what the reliability predictor is for: between windows
    /// the rack is up but still flaky, and keeping fresh work off it is the
    /// difference between losing one round of map outputs and two.
    pub outages: Vec<OutageWindow>,
    /// Additional background churn (node kills with recovery), if any.
    pub churn: Option<RandomFaults>,
    /// Whether the ATLAS-style reliability predictor biases placement.
    pub predictor: bool,
    /// Workload and cluster seed.
    pub seed: u64,
}

impl RackOutageConfig {
    /// A compact default: 4 racks under moderate reduce-heavy load, rack 1
    /// lost for two minutes mid-trace, light background churn.
    pub fn compact() -> Self {
        RackOutageConfig {
            racks: 4,
            nodes_per_rack: 6,
            map_slots: 2,
            reduce_slots: 1,
            swim: SwimConfig {
                jobs: 48,
                mean_interarrival_secs: 4.0,
                reduce_ratio: 0.34,
                slow_fraction: 0.1,
                slow_parse_rate_bytes_per_sec: 1.6 * MIB as f64,
                slow_max_tasks: 8,
                ..SwimConfig::default()
            },
            outage_rack: 1,
            outages: vec![OutageWindow::from_secs(120, 240)],
            churn: Some(RandomFaults {
                rack_mtbf_secs: 240.0,
                mean_recovery_secs: Some(60.0),
                horizon: SimTime::from_secs(900),
                seed: 0xACED,
            }),
            predictor: true,
            seed: 0x0514,
        }
    }
}

/// What one rack-outage run produced.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RackOutageOutcome {
    /// The full engine report (fault counters included).
    pub report: ClusterReport,
    /// Events the run loop processed.
    pub events: u64,
    /// p50, p95, p99, max of job sojourn time (seconds).
    pub sojourn_quantiles: [f64; 4],
    /// Committed map outputs destroyed by node loss (each re-executed).
    pub lost_map_outputs: u64,
    /// Map outputs drained to a live node by graceful decommissions.
    pub map_outputs_migrated: u64,
    /// Reduce shuffle re-fetch rounds (backoff waits on missing outputs).
    pub shuffle_refetches: u64,
}

/// Runs one rack-outage scenario to completion.
pub fn run_rack_outage(config: &RackOutageConfig) -> RackOutageOutcome {
    let mut events = Vec::new();
    for window in &config.outages {
        events.push(FaultEvent {
            at: window.at,
            kind: FaultKind::RackOutage {
                rack: RackId(config.outage_rack),
            },
        });
        events.push(FaultEvent {
            at: window.until,
            kind: FaultKind::RackRejoin {
                rack: RackId(config.outage_rack),
            },
        });
    }
    let mut cfg = ClusterConfig::racked_cluster(
        config.racks,
        config.nodes_per_rack,
        config.map_slots,
        config.reduce_slots,
    )
    .with_trace_level(TraceLevel::Off)
    .with_seed(config.seed)
    .with_shuffle(ShuffleConfig::fault_tolerant())
    .with_speculation(SpeculationConfig::enabled())
    .with_faults(FaultPlan {
        events,
        random: config.churn,
    });
    if config.predictor {
        cfg = cfg.with_reliability(ReliabilityConfig::predictive());
    }
    let mut cluster = Cluster::new(
        cfg,
        Box::new(HfspScheduler::new(
            PreemptionPrimitive::SuspendResume,
            EvictionPolicy::ClosestToCompletion,
        )),
    );
    for job in SwimGenerator::new(config.swim.clone(), config.seed).generate() {
        cluster.submit_job_at(job.spec, job.arrival);
    }
    cluster.run(SimTime::from_secs(48 * 3_600));
    let report = cluster.report();
    assert!(
        report.all_jobs_complete(),
        "rack-outage scenario must run to completion"
    );
    let sojourn_quantiles = [
        sojourn_quantile(&report, 0.5),
        sojourn_quantile(&report, 0.95),
        sojourn_quantile(&report, 0.99),
        sojourn_quantile(&report, 1.0),
    ];
    let faults = report.faults;
    RackOutageOutcome {
        events: cluster.events_processed(),
        sojourn_quantiles,
        lost_map_outputs: faults.lost_map_outputs,
        map_outputs_migrated: faults.map_outputs_migrated,
        shuffle_refetches: faults.shuffle_refetches,
        report,
    }
}

/// Runs the scenario twice on the same seed — predictor on, then off — and
/// returns `(with_predictor, without)`.
pub fn predictor_ablation(config: &RackOutageConfig) -> (RackOutageOutcome, RackOutageOutcome) {
    let mut on = config.clone();
    on.predictor = true;
    let mut off = config.clone();
    off.predictor = false;
    (run_rack_outage(&on), run_rack_outage(&off))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rack_outage_loses_and_reexecutes_map_outputs() {
        let cfg = RackOutageConfig::compact();
        let a = run_rack_outage(&cfg);
        let b = run_rack_outage(&cfg);
        assert_eq!(a, b, "fixed-seed rack outage must be deterministic");
        assert!(
            a.lost_map_outputs >= 1,
            "the outage must destroy committed map outputs: {:?}",
            a.report.faults
        );
        assert!(
            a.shuffle_refetches >= 1,
            "stalled reduces must re-fetch: {:?}",
            a.report.faults
        );
        assert!(
            a.report.faults.re_executed_tasks >= a.lost_map_outputs,
            "every lost output re-executes its map: {:?}",
            a.report.faults
        );
        assert!(a.sojourn_quantiles[0] <= a.sojourn_quantiles[3]);
    }

    #[test]
    fn predictor_ablation_runs_both_sides() {
        let (on, off) = predictor_ablation(&RackOutageConfig::compact());
        // Same workload, same faults: the predictor changes placement only.
        assert_eq!(
            on.report.faults.node_failures,
            off.report.faults.node_failures
        );
        assert!(on.sojourn_quantiles[2] > 0.0 && off.sojourn_quantiles[2] > 0.0);
    }
}
