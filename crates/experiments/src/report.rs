//! Rendering of reproduced figures as text tables and CSV.

use crate::figures::FigureData;
use std::fmt::Write as _;

/// Renders a figure as an aligned, human-readable text table (the form used
/// in `EXPERIMENTS.md` and printed by the benches).
pub fn to_table(figure: &FigureData) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {} — {}", figure.id, figure.title);
    // Column widths: max of header and formatted cells.
    let formatted: Vec<Vec<String>> = figure
        .rows
        .iter()
        .map(|row| row.iter().map(|v| format_value(*v)).collect())
        .collect();
    let widths: Vec<usize> = figure
        .columns
        .iter()
        .enumerate()
        .map(|(i, c)| {
            formatted
                .iter()
                .map(|r| r.get(i).map(String::len).unwrap_or(0))
                .chain(std::iter::once(c.len()))
                .max()
                .unwrap_or(0)
        })
        .collect();
    let header: Vec<String> = figure
        .columns
        .iter()
        .enumerate()
        .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
        .collect();
    let _ = writeln!(out, "| {} |", header.join(" | "));
    let separator: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    let _ = writeln!(out, "| {} |", separator.join(" | "));
    for row in &formatted {
        let cells: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, v)| format!("{:>width$}", v, width = widths[i]))
            .collect();
        let _ = writeln!(out, "| {} |", cells.join(" | "));
    }
    if !figure.notes.is_empty() {
        let _ = writeln!(out, "paper: {}", figure.notes);
    }
    out
}

/// Renders a figure as CSV (header + rows).
pub fn to_csv(figure: &FigureData) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", figure.columns.join(","));
    for row in &figure.rows {
        let cells: Vec<String> = row.iter().map(|v| format_value(*v)).collect();
        let _ = writeln!(out, "{}", cells.join(","));
    }
    out
}

fn format_value(v: f64) -> String {
    if v.is_nan() {
        "nan".to_string()
    } else if (v.fract()).abs() < 1e-9 && v.abs() < 1e12 {
        format!("{:.0}", v)
    } else {
        format!("{:.2}", v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure() -> FigureData {
        FigureData {
            id: "fig-test".to_string(),
            title: "A test figure".to_string(),
            columns: vec!["x".to_string(), "wait".to_string(), "susp".to_string()],
            rows: vec![vec![10.0, 150.25, 84.0], vec![90.0, 91.5, 83.0]],
            notes: "shape only".to_string(),
        }
    }

    #[test]
    fn table_contains_headers_rows_and_notes() {
        let t = to_table(&figure());
        assert!(t.contains("fig-test"));
        assert!(t.contains("wait"));
        assert!(t.contains("150.25"));
        assert!(t.contains("90"));
        assert!(t.contains("paper: shape only"));
        // Aligned: every data line has the same number of separators.
        let pipes: Vec<usize> = t
            .lines()
            .filter(|l| l.starts_with('|'))
            .map(|l| l.matches('|').count())
            .collect();
        assert!(pipes.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn csv_round_trips_columns_and_rows() {
        let c = to_csv(&figure());
        let mut lines = c.lines();
        assert_eq!(lines.next().unwrap(), "x,wait,susp");
        assert_eq!(lines.next().unwrap(), "10,150.25,84");
        assert_eq!(lines.next().unwrap(), "90,91.50,83");
    }

    #[test]
    fn nan_is_rendered_explicitly() {
        let mut f = figure();
        f.rows[0][1] = f64::NAN;
        assert!(to_csv(&f).contains("nan"));
    }
}
