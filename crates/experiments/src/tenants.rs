//! Multi-tenant scheduling scenarios for the action pipeline.
//!
//! The paper evaluates its suspend/resume primitive on a two-job priority
//! scenario; this module exercises it where production Hadoop actually
//! needed it — a shared cluster. Three tenants with DRF dominant-share
//! quotas submit staggered streams of jobs, the `reclaim` action pulls
//! over-quota tenants back (via kill *or* OS-assisted suspend — the paper's
//! trade-off as a knob), and best-effort scavenger jobs `backfill` leftover
//! capacity, including the slots freed by suspension.
//!
//! The workload is built to make the kill-vs-suspend difference sharp: a
//! tenant-0 burst saturates every map slot long before tenant 1 arrives, so
//! the victims reclaim evicts have ~100 s of accrued progress — work a kill
//! throws away and a suspend preserves.

use mrp_engine::{Cluster, ClusterConfig, JobSpec, TenantShareStats, TraceLevel};
use mrp_preempt::{ActionPipeline, EvictionPolicy, MultiTenantConfig, PreemptionPrimitive};
use mrp_sim::{SimDuration, SimTime, MIB};

/// Configuration of one multi-tenant scenario run.
#[derive(Clone, Debug)]
pub struct TenantScenarioConfig {
    /// Racks in the cluster.
    pub racks: u32,
    /// Nodes per rack.
    pub nodes_per_rack: u32,
    /// Map slots per node.
    pub map_slots: u32,
    /// Per-tenant weights; one stream of jobs per tenant. Tenant 0 also
    /// submits the saturating burst at `t = 0`.
    pub weights: Vec<f64>,
    /// How reclaim evicts (the scenario's headline knob).
    pub primitive: PreemptionPrimitive,
    /// Simulation seed.
    pub seed: u64,
    /// Warm-up horizon excluded from the ledger's steady-state statistics
    /// (set past the first reclaim adjustment).
    pub steady_after: SimTime,
    /// Jobs in the tenant-0 saturating burst.
    pub burst_jobs: u32,
    /// Map tasks per burst job (long tasks: 768 MiB ≈ 115 s each).
    pub burst_tasks: u32,
    /// Per-tenant stream: one job every `stream_every` from the tenant's
    /// start time until `horizon`.
    pub stream_every: SimDuration,
    /// Map tasks per stream job.
    pub stream_tasks: u32,
    /// Input bytes per stream-job task (sets task duration).
    pub stream_bytes: u64,
    /// One 2-task best-effort job every `best_effort_every` from 30 s
    /// until `horizon`.
    pub best_effort_every: SimDuration,
    /// When arrivals stop (the cluster then drains).
    pub horizon: SimTime,
}

impl TenantScenarioConfig {
    /// A compact three-tenant scenario for tests and the bench's `--test`
    /// mode: 8 nodes / 16 map slots, ~420 s of arrivals.
    pub fn compact(primitive: PreemptionPrimitive) -> Self {
        TenantScenarioConfig {
            racks: 2,
            nodes_per_rack: 4,
            map_slots: 2,
            weights: vec![1.0, 1.0, 1.0],
            primitive,
            seed: 7,
            steady_after: SimTime::from_secs(250),
            burst_jobs: 5,
            burst_tasks: 8,
            stream_every: SimDuration::from_secs(25),
            stream_tasks: 6,
            stream_bytes: 256 * MIB,
            best_effort_every: SimDuration::from_secs(40),
            horizon: SimTime::from_secs(420),
        }
    }

    /// The bench-scale scenario: 4 racks x 10 nodes (80 map slots),
    /// weighted tenants (2:1:1) and ~900 s of arrivals. Streams arrive
    /// fast enough that even tenant 0's demand exceeds its double-weight
    /// quota, so the weighted DRF order — not spare capacity — decides
    /// every launch; the demand comes as few large jobs rather than many
    /// small ones, keeping the per-heartbeat job scan (and so per-event
    /// cost) near the plain-scheduler benches.
    pub fn full(primitive: PreemptionPrimitive) -> Self {
        TenantScenarioConfig {
            racks: 4,
            nodes_per_rack: 10,
            map_slots: 2,
            weights: vec![2.0, 1.0, 1.0],
            primitive,
            seed: 7,
            steady_after: SimTime::from_secs(250),
            burst_jobs: 12,
            burst_tasks: 10,
            stream_every: SimDuration::from_secs(40),
            stream_tasks: 24,
            stream_bytes: 512 * MIB,
            best_effort_every: SimDuration::from_secs(30),
            horizon: SimTime::from_secs(900),
        }
    }

    /// Total map slots across the cluster.
    pub fn total_map_slots(&self) -> u32 {
        self.racks * self.nodes_per_rack * self.map_slots
    }

    /// When each tenant's stream starts: tenant 0 immediately, tenant 1 at
    /// 100 s (after the burst's victims have accrued real progress), later
    /// tenants 60 s apart.
    fn tenant_start(&self, tenant: usize) -> SimTime {
        match tenant {
            0 => SimTime::ZERO,
            t => SimTime::from_secs(100 + 60 * (t as u64 - 1)),
        }
    }
}

/// Outcome of one multi-tenant scenario run.
#[derive(Clone, Debug)]
pub struct TenantScenarioOutcome {
    /// Per-tenant steady-state share statistics from the [`TenantLedger`]
    /// (quota, mean dominant share, mean excess over quota while another
    /// tenant was starved).
    ///
    /// [`TenantLedger`]: mrp_engine::TenantLedger
    pub shares: Vec<TenantShareStats>,
    /// Total progress thrown away by evictions (`kill` pays here).
    pub lost_work_secs: f64,
    /// Time to drain the whole workload.
    pub makespan_secs: f64,
    /// Best-effort jobs submitted / completed (backfill liveness).
    pub best_effort_jobs: usize,
    /// Best-effort jobs that ran to completion.
    pub best_effort_completed: usize,
    /// Total suspend cycles across all tasks (the suspend variant's
    /// eviction count; zero under kill).
    pub suspend_cycles: u64,
    /// Discrete events the run processed (the bench's throughput unit).
    pub events_processed: u64,
}

/// Submits the scenario workload: the tenant-0 burst, one staggered stream
/// per tenant, and the best-effort stream. Everything is map-only and
/// synthetic, so the workload is a pure function of the config.
fn submit_workload(cluster: &mut Cluster, config: &TenantScenarioConfig) {
    // The burst: long tasks that saturate every slot well past tenant 1's
    // arrival, priority 0 (batch) so reclaim evicts them before the
    // priority-2 stream jobs of the same tenant.
    for j in 0..config.burst_jobs {
        cluster.submit_job_at(
            JobSpec::synthetic(format!("burst-{j:02}"), config.burst_tasks, 768 * MIB)
                .with_tenant(0),
            SimTime::from_secs(u64::from(j)),
        );
    }
    // Per-tenant streams arriving faster than one quota can serve them, so
    // every tenant stays backlogged and the DRF allocation order — not
    // idle capacity — decides who runs.
    for tenant in 0..config.weights.len() {
        let start = config.tenant_start(tenant);
        let mut at = start;
        let mut j = 0;
        while at <= config.horizon {
            cluster.submit_job_at(
                JobSpec::synthetic(
                    format!("t{tenant}-{j:03}"),
                    config.stream_tasks,
                    config.stream_bytes,
                )
                .with_tenant(tenant as u32)
                .with_priority(2),
                at,
            );
            at += config.stream_every;
            j += 1;
        }
    }
    // The scavenger class: small jobs only backfill may launch.
    let mut at = SimTime::from_secs(30);
    let mut j = 0;
    while at <= config.horizon {
        cluster.submit_job_at(
            JobSpec::synthetic(format!("be-{j:03}"), 2, 128 * MIB).with_best_effort(),
            at,
        );
        at += config.best_effort_every;
        j += 1;
    }
}

/// Runs one multi-tenant scenario to completion.
pub fn run_tenant_scenario(config: &TenantScenarioConfig) -> TenantScenarioOutcome {
    let cfg =
        ClusterConfig::racked_cluster(config.racks, config.nodes_per_rack, config.map_slots, 1)
            .with_trace_level(TraceLevel::Off)
            .with_seed(config.seed);
    let (pipeline, ledger) = ActionPipeline::multi_tenant(MultiTenantConfig {
        weights: config.weights.clone(),
        total_map_slots: config.total_map_slots(),
        total_reduce_slots: config.racks * config.nodes_per_rack,
        steady_after: config.steady_after,
        primitive: config.primitive,
        eviction: EvictionPolicy::ClosestToCompletion,
    });
    let mut cluster = Cluster::new(cfg, Box::new(pipeline));
    submit_workload(&mut cluster, config);
    cluster.run(SimTime::from_secs(24 * 3_600));
    let events_processed = cluster.events_processed();
    let report = cluster.report();
    assert!(
        report.all_jobs_complete(),
        "multi-tenant workload must drain (work conservation)"
    );
    let best_effort: Vec<_> = report.jobs.iter().filter(|j| j.best_effort).collect();
    let shares = ledger.borrow().summary();
    TenantScenarioOutcome {
        shares,
        lost_work_secs: report.total_wasted_work_secs(),
        makespan_secs: report.makespan_secs().unwrap_or(0.0),
        best_effort_jobs: best_effort.len(),
        best_effort_completed: best_effort
            .iter()
            .filter(|j| j.completed_at.is_some())
            .count(),
        suspend_cycles: report
            .jobs
            .iter()
            .flat_map(|j| j.tasks.iter())
            .map(|t| u64::from(t.suspend_cycles))
            .sum(),
        events_processed,
    }
}

/// Runs the scenario twice on the same seed — reclaim evicting via
/// OS-assisted suspend, then via kill — and returns `(suspend, kill)`.
/// The paper's Section IV comparison at multi-tenant scale: same workload,
/// same victims, only the eviction mechanism differs.
pub fn reclaim_ablation(
    config: &TenantScenarioConfig,
) -> (TenantScenarioOutcome, TenantScenarioOutcome) {
    let suspend = run_tenant_scenario(&TenantScenarioConfig {
        primitive: PreemptionPrimitive::SuspendResume,
        ..config.clone()
    });
    let kill = run_tenant_scenario(&TenantScenarioConfig {
        primitive: PreemptionPrimitive::Kill,
        ..config.clone()
    });
    (suspend, kill)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_scenario_is_deterministic() {
        let config = TenantScenarioConfig::compact(PreemptionPrimitive::SuspendResume);
        let a = run_tenant_scenario(&config);
        let b = run_tenant_scenario(&config);
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.suspend_cycles, b.suspend_cycles);
        assert_eq!(a.makespan_secs, b.makespan_secs);
        assert_eq!(a.lost_work_secs, b.lost_work_secs);
    }

    #[test]
    fn suspend_reclaim_strictly_beats_kill_on_lost_work() {
        let (suspend, kill) = reclaim_ablation(&TenantScenarioConfig::compact(
            PreemptionPrimitive::SuspendResume,
        ));
        assert!(
            suspend.suspend_cycles >= 1,
            "reclaim must actually fire under contention: {suspend:?}"
        );
        assert_eq!(
            suspend.lost_work_secs, 0.0,
            "suspension preserves every evicted task's progress"
        );
        assert!(
            kill.lost_work_secs > 0.0,
            "kill-based reclaim throws accrued progress away: {kill:?}"
        );
    }

    #[test]
    fn drf_keeps_tenants_near_quota_under_contention() {
        let outcome = run_tenant_scenario(&TenantScenarioConfig::compact(
            PreemptionPrimitive::SuspendResume,
        ));
        assert_eq!(outcome.shares.len(), 3);
        for s in &outcome.shares {
            assert!(
                s.mean_excess_over_quota <= 0.05,
                "tenant {} holds {:.3} above its {:.3} quota while others starve",
                s.tenant,
                s.mean_excess_over_quota,
                s.quota
            );
        }
    }

    #[test]
    fn best_effort_jobs_backfill_and_complete() {
        let outcome = run_tenant_scenario(&TenantScenarioConfig::compact(
            PreemptionPrimitive::SuspendResume,
        ));
        assert!(outcome.best_effort_jobs >= 5);
        assert_eq!(
            outcome.best_effort_completed, outcome.best_effort_jobs,
            "the scavenger class must drain once arrivals stop"
        );
    }
}
