//! Delay-scheduling locality sweep: the node-local-rate vs p99-sojourn
//! trade-off curve.
//!
//! Delay scheduling buys data locality with bounded waiting, so its two
//! costs and its one benefit sit on a single knob — the per-level wait
//! thresholds. This harness runs the same seeded, DFS-backed SWIM workload
//! under HFSP suspend/resume once per delay setting (`0` = greedy
//! placement) and reports, per point, the node-local launch rate against
//! the p99 job sojourn and the makespan, plus the scoreboard's decline
//! counters. The `locality_delay` bench pins the two-point (off/on)
//! version of this curve; this sweep draws the whole trade-off for
//! `docs/PERF.md`.

use crate::faults::sojourn_quantile;
use mrp_engine::{Cluster, ClusterConfig, NodeId, TraceLevel};
use mrp_preempt::{EvictionPolicy, HfspScheduler, PreemptionPrimitive};
use mrp_sim::SimTime;
use mrp_workload::{dfs_backed, SwimConfig, SwimGenerator};
use serde::{Deserialize, Serialize};

/// Configuration of one delay-scheduling sweep.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DelaySweepConfig {
    /// Number of racks.
    pub racks: u32,
    /// Nodes per rack.
    pub nodes_per_rack: u32,
    /// Map slots per node.
    pub map_slots: u32,
    /// The SWIM workload (DFS-backed, so map tasks have replica holders to
    /// be local to).
    pub swim: SwimConfig,
    /// Total delay per sweep point, in heartbeat intervals; split evenly
    /// between the node-local and rack-local waits. `0.0` disables delay
    /// scheduling (the greedy baseline).
    pub delay_intervals: Vec<f64>,
    /// Workload seed.
    pub seed: u64,
}

impl DelaySweepConfig {
    /// A compact sweep a test can afford: a 4-rack cluster under moderate
    /// load, swept from greedy to a 4-interval delay.
    pub fn compact() -> Self {
        DelaySweepConfig {
            racks: 4,
            nodes_per_rack: 8,
            map_slots: 2,
            swim: SwimConfig {
                jobs: 50,
                mean_interarrival_secs: 2.0,
                ..SwimConfig::default()
            },
            delay_intervals: vec![0.0, 0.5, 1.0, 2.0, 4.0],
            seed: 0x10CA,
        }
    }
}

/// One point of the locality-vs-delay trade-off curve.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DelaySweepRow {
    /// Total delay in heartbeat intervals (0 = greedy placement).
    pub delay_intervals: f64,
    /// Fraction of map launches that were node-local.
    pub node_local_ratio: f64,
    /// Fraction of map launches that were rack-local.
    pub rack_local_ratio: f64,
    /// p99 of completed-job sojourn times, seconds.
    pub p99_sojourn_secs: f64,
    /// Workload makespan, seconds.
    pub makespan_secs: f64,
    /// Launch opportunities declined while waiting for locality.
    pub delayed_skips: u64,
}

/// Runs the sweep: one full simulation per delay point, same seed and
/// workload throughout.
pub fn delay_locality_sweep(config: &DelaySweepConfig) -> Vec<DelaySweepRow> {
    let trace = SwimGenerator::new(config.swim.clone(), config.seed).generate();
    let (jobs, files) = dfs_backed(&trace, "/delay-sweep");
    let nodes = u64::from(config.racks * config.nodes_per_rack);
    config
        .delay_intervals
        .iter()
        .map(|&intervals| {
            let mut cfg = ClusterConfig::racked_cluster(
                config.racks,
                config.nodes_per_rack,
                config.map_slots,
                1,
            )
            .with_trace_level(TraceLevel::Off);
            if intervals > 0.0 {
                cfg = cfg.with_delay_intervals(intervals / 2.0, intervals / 2.0);
            }
            let mut cluster = Cluster::new(
                cfg,
                Box::new(HfspScheduler::new(
                    PreemptionPrimitive::SuspendResume,
                    EvictionPolicy::ClosestToCompletion,
                )),
            );
            for (i, (path, bytes)) in files.iter().enumerate() {
                let writer = NodeId(((i as u64 * 37) % nodes) as u32);
                cluster
                    .create_input_file_from(path, *bytes, Some(writer))
                    .expect("sweep input files are unique");
            }
            for job in &jobs {
                cluster.submit_job_at(job.spec.clone(), job.arrival);
            }
            cluster.run(SimTime::from_secs(48 * 3_600));
            let report = cluster.report();
            assert!(
                report.all_jobs_complete(),
                "sweep point {intervals} must run to completion"
            );
            DelaySweepRow {
                delay_intervals: intervals,
                node_local_ratio: report.locality.node_local_ratio(),
                rack_local_ratio: report.locality.rack_local_ratio(),
                p99_sojourn_secs: sojourn_quantile(&report, 0.99),
                makespan_secs: report.makespan_secs().expect("all jobs complete"),
                delayed_skips: report.locality.delayed_skips,
            }
        })
        .collect()
}

/// Renders the sweep as a markdown table (the `delay_sweep` example prints
/// this; `docs/PERF.md` embeds a captured run).
pub fn delay_sweep_table(rows: &[DelaySweepRow]) -> String {
    let mut out = String::from(
        "| delay (heartbeat intervals) | node-local | rack-local | p99 sojourn (s) | makespan (s) | skipped launches |\n\
         |---|---|---|---|---|---|\n",
    );
    for r in rows {
        out.push_str(&format!(
            "| {:.1} | {:.1}% | {:.1}% | {:.0} | {:.0} | {} |\n",
            r.delay_intervals,
            r.node_local_ratio * 100.0,
            r.rack_local_ratio * 100.0,
            r.p99_sojourn_secs,
            r.makespan_secs,
            r.delayed_skips,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_sweep_trades_latency_for_locality_deterministically() {
        let cfg = DelaySweepConfig::compact();
        let rows = delay_locality_sweep(&cfg);
        assert_eq!(rows.len(), cfg.delay_intervals.len());
        let greedy = &rows[0];
        let longest = rows.last().unwrap();
        assert_eq!(greedy.delayed_skips, 0, "greedy never declines");
        assert!(longest.delayed_skips > 0, "delay must decline");
        assert!(
            longest.node_local_ratio > greedy.node_local_ratio,
            "locality must improve with delay: {:?} vs {:?}",
            longest.node_local_ratio,
            greedy.node_local_ratio
        );
        // Monotone non-decreasing locality along the sweep (same workload,
        // longer waits).
        for pair in rows.windows(2) {
            assert!(
                pair[1].node_local_ratio >= pair[0].node_local_ratio - 0.05,
                "locality should not collapse as delay grows: {pair:?}"
            );
        }
        // Determinism: the same sweep reproduces bit-identically.
        assert_eq!(rows, delay_locality_sweep(&cfg));
        // The table renders every row.
        let table = delay_sweep_table(&rows);
        assert_eq!(table.lines().count(), 2 + rows.len());
    }
}
