//! A manual-priority scheduler with preemption: the Introduction's motivating
//! use case ("best-effort" vs. production jobs) turned into a policy.
//!
//! Low-priority tasks run whenever slots are idle; when a higher-priority job
//! cannot get its slots, running lower-priority tasks are preempted with the
//! configured primitive, victims chosen by the eviction policy. Suspended
//! low-priority tasks are resumed once the high-priority demand drains.

use mrp_engine::{
    FifoScheduler, JobRuntime, NodeId, SchedulerAction, SchedulerContext, SchedulerPolicy,
    TaskState,
};
use mrp_preempt::{EvictionCandidate, EvictionPolicy, PreemptionPrimitive};
use mrp_sim::SimRng;

const BASE_TASK_FOOTPRINT: u64 = 192 * 1024 * 1024;

/// Priority scheduler with preemption of lower-priority tasks.
pub struct PriorityPreemptingScheduler {
    /// Primitive used to evict lower-priority tasks.
    pub primitive: PreemptionPrimitive,
    /// Victim selection policy.
    pub eviction: EvictionPolicy,
    launcher: FifoScheduler,
    rng: SimRng,
}

impl PriorityPreemptingScheduler {
    /// Creates the scheduler.
    pub fn new(primitive: PreemptionPrimitive, eviction: EvictionPolicy) -> Self {
        PriorityPreemptingScheduler {
            primitive,
            eviction,
            // Resumption is handled here, priority-aware, so the launcher must
            // not hand slots back to suspended low-priority tasks while
            // higher-priority work is still waiting.
            launcher: FifoScheduler::non_resuming(),
            rng: SimRng::new(0x9817),
        }
    }

    /// Resumes suspended tasks on `node` with whatever slots the launcher left
    /// over — safe because the launcher has already served every schedulable
    /// task it could.
    fn resume_leftovers(
        ctx: &SchedulerContext<'_>,
        node: NodeId,
        launches_here: usize,
    ) -> Vec<SchedulerAction> {
        let Some(view) = ctx.node(node) else {
            return Vec::new();
        };
        let mut free = (view.free_map_slots as usize).saturating_sub(launches_here);
        let mut actions = Vec::new();
        // Any schedulable task still waiting means slots are contended; do not
        // hand them to suspended low-priority work.
        let still_waiting = ctx.schedulable_tasks().len() > launches_here;
        if still_waiting {
            return actions;
        }
        for task in ctx.suspended_tasks() {
            if free == 0 {
                break;
            }
            if ctx.task(task).map(|t| t.node) == Some(Some(node)) {
                actions.push(SchedulerAction::Resume { task });
                free -= 1;
            }
        }
        actions
    }

    fn unmet_high_priority_demand(ctx: &SchedulerContext<'_>) -> Vec<(i32, usize)> {
        ctx.jobs
            .values()
            .filter(|j| !j.is_finished())
            .map(|j| {
                let waiting = j
                    .tasks
                    .iter()
                    .filter(|t| t.state.is_schedulable() || t.state == TaskState::Suspended)
                    .count();
                (j.spec.priority, waiting)
            })
            .filter(|(_, waiting)| *waiting > 0)
            .collect()
    }

    fn preemption_actions(&mut self, ctx: &SchedulerContext<'_>) -> Vec<SchedulerAction> {
        let free_slots: u32 = ctx.nodes.iter().map(|n| n.free_map_slots).sum();
        let demand = Self::unmet_high_priority_demand(ctx);
        let mut actions = Vec::new();
        for (priority, waiting) in demand {
            let mut needed = waiting.saturating_sub(free_slots as usize);
            if needed == 0 {
                continue;
            }
            // Victims: running tasks of strictly lower-priority jobs.
            let victim_jobs: Vec<&JobRuntime> = ctx
                .jobs
                .values()
                .filter(|j| j.spec.priority < priority && !j.is_finished())
                .collect();
            let candidates: Vec<EvictionCandidate> = victim_jobs
                .iter()
                .flat_map(|j| {
                    j.tasks
                        .iter()
                        .filter(|t| t.state == TaskState::Running)
                        .map(|t| EvictionCandidate {
                            task: t.id,
                            progress: t.progress,
                            memory_bytes: j.spec.profile.state_memory + BASE_TASK_FOOTPRINT,
                        })
                })
                .collect();
            for victim in self.eviction.pick(&candidates, needed, &mut self.rng) {
                if let Some(a) = self.primitive.preempt_action(victim) {
                    actions.push(a);
                    needed = needed.saturating_sub(1);
                }
            }
        }
        actions
    }
}

impl SchedulerPolicy for PriorityPreemptingScheduler {
    fn on_heartbeat(&mut self, ctx: &SchedulerContext<'_>, node: NodeId) -> Vec<SchedulerAction> {
        // The priority-aware FIFO launcher serves higher priorities first;
        // leftover slots go back to suspended (preempted) tasks.
        let mut actions = self.launcher.on_heartbeat(ctx, node);
        let launches_here = actions
            .iter()
            .filter(|a| matches!(a, SchedulerAction::Launch { node: n, .. } if *n == node))
            .count();
        actions.extend(Self::resume_leftovers(ctx, node, launches_here));
        actions.extend(self.preemption_actions(ctx));
        actions
    }

    fn on_job_submitted(
        &mut self,
        ctx: &SchedulerContext<'_>,
        _job: mrp_engine::JobId,
    ) -> Vec<SchedulerAction> {
        self.preemption_actions(ctx)
    }

    fn name(&self) -> &str {
        "priority-preempting"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_engine::{Cluster, ClusterConfig, JobSpec, TaskProfile};
    use mrp_sim::{SimTime, GIB, MIB};

    #[test]
    fn high_priority_job_preempts_best_effort_work() {
        let scheduler = PriorityPreemptingScheduler::new(
            PreemptionPrimitive::SuspendResume,
            EvictionPolicy::SmallestMemory,
        );
        let mut cluster = Cluster::new(ClusterConfig::paper_single_node(), Box::new(scheduler));
        cluster.submit_job(JobSpec::synthetic("best-effort", 1, 512 * MIB).with_priority(0));
        cluster.submit_job_at(
            JobSpec::synthetic("production", 1, 512 * MIB).with_priority(10),
            SimTime::from_secs(30),
        );
        cluster.run(SimTime::from_secs(8 * 3_600));
        let report = cluster.report();
        assert!(report.all_jobs_complete());
        let prod = report.sojourn_secs("production").unwrap();
        assert!(
            prod < 100.0,
            "the production job must not wait for best-effort work, got {prod}"
        );
        assert_eq!(
            report.job("best-effort").unwrap().tasks[0].suspend_cycles,
            1
        );
        assert_eq!(report.total_wasted_work_secs(), 0.0);
    }

    #[test]
    fn smallest_memory_eviction_pages_less_than_largest_memory() {
        let run = |policy| {
            let scheduler =
                PriorityPreemptingScheduler::new(PreemptionPrimitive::SuspendResume, policy);
            let mut cfg = ClusterConfig::paper_single_node();
            cfg.nodes[0].map_slots = 3;
            cfg.nodes[0].os.memory.total_ram = 8 * GIB;
            let mut cluster = Cluster::new(cfg, Box::new(scheduler));
            for (name, state) in [("small", 128 * MIB), ("medium", GIB), ("large", 3 * GIB)] {
                cluster.submit_job(
                    JobSpec::synthetic(name, 1, 512 * MIB)
                        .with_priority(0)
                        .with_profile(TaskProfile::memory_hungry(state)),
                );
            }
            cluster.submit_job_at(
                JobSpec::synthetic("hp", 1, 512 * MIB)
                    .with_priority(10)
                    .with_profile(TaskProfile::memory_hungry(2 * GIB)),
                SimTime::from_secs(40),
            );
            cluster.run(SimTime::from_secs(24 * 3_600));
            let r = cluster.report();
            assert!(r.all_jobs_complete());
            r.total_swap_out_bytes()
        };
        let small_first = run(EvictionPolicy::SmallestMemory);
        let large_first = run(EvictionPolicy::LargestMemory);
        assert!(
            small_first <= large_first,
            "evicting the small-footprint task should not page more ({small_first} vs {large_first})"
        );
    }
}
