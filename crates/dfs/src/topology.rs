//! Cluster topology: nodes, racks, and locality levels.
//!
//! Hadoop's scheduling and HDFS replica placement both reason about network
//! distance in three buckets: same node, same rack, off rack. The paper's
//! discussion of *resume locality* (Section V-A) is the scheduling analogue of
//! HDFS data locality, so the topology vocabulary is shared across the
//! workspace.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a simulated cluster node (a machine running a DataNode and a
/// TaskTracker).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node:{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Identifier of a rack.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct RackId(pub u32);

/// How close a reader is to a block replica (or a resumed task to its
/// suspended image).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Locality {
    /// Data (or the suspended process) is on the same machine.
    NodeLocal,
    /// Data is on a different machine in the same rack.
    RackLocal,
    /// Data is on a machine in a different rack.
    OffRack,
}

impl Locality {
    /// Relative throughput factor compared to a node-local read; matches the
    /// common rule of thumb that rack-local reads run at roughly NIC speed and
    /// off-rack reads contend for the aggregation layer.
    pub fn throughput_factor(self) -> f64 {
        match self {
            Locality::NodeLocal => 1.0,
            Locality::RackLocal => 0.8,
            Locality::OffRack => 0.5,
        }
    }
}

/// The static shape of the cluster: which node lives in which rack.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    assignments: Vec<(NodeId, RackId)>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Builds a topology with `racks` racks of `nodes_per_rack` nodes each,
    /// numbering nodes sequentially starting at 0.
    pub fn regular(racks: u32, nodes_per_rack: u32) -> Self {
        let mut t = Topology::new();
        let mut next = 0;
        for r in 0..racks {
            for _ in 0..nodes_per_rack {
                t.add_node(NodeId(next), RackId(r));
                next += 1;
            }
        }
        t
    }

    /// A single-rack topology with `n` nodes — the paper's evaluation setup is
    /// the degenerate single-node case of this.
    pub fn single_rack(n: u32) -> Self {
        Topology::regular(1, n)
    }

    /// Registers a node in a rack.
    pub fn add_node(&mut self, node: NodeId, rack: RackId) {
        if !self.assignments.iter().any(|(n, _)| *n == node) {
            self.assignments.push((node, rack));
        }
    }

    /// All nodes, in registration order.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.assignments.iter().map(|(n, _)| *n).collect()
    }

    /// Number of registered nodes.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// True if no nodes are registered.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// The rack a node belongs to, if registered.
    pub fn rack_of(&self, node: NodeId) -> Option<RackId> {
        self.assignments
            .iter()
            .find(|(n, _)| *n == node)
            .map(|(_, r)| *r)
    }

    /// Nodes in the given rack.
    pub fn nodes_in_rack(&self, rack: RackId) -> Vec<NodeId> {
        self.assignments
            .iter()
            .filter(|(_, r)| *r == rack)
            .map(|(n, _)| *n)
            .collect()
    }

    /// Locality of `reader` with respect to `holder`.
    pub fn locality(&self, reader: NodeId, holder: NodeId) -> Locality {
        if reader == holder {
            return Locality::NodeLocal;
        }
        match (self.rack_of(reader), self.rack_of(holder)) {
            (Some(a), Some(b)) if a == b => Locality::RackLocal,
            _ => Locality::OffRack,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_topology_shape() {
        let t = Topology::regular(2, 3);
        assert_eq!(t.len(), 6);
        assert_eq!(t.nodes_in_rack(RackId(0)).len(), 3);
        assert_eq!(t.nodes_in_rack(RackId(1)).len(), 3);
        assert_eq!(t.rack_of(NodeId(4)), Some(RackId(1)));
        assert_eq!(t.rack_of(NodeId(99)), None);
    }

    #[test]
    fn locality_levels() {
        let t = Topology::regular(2, 2);
        assert_eq!(t.locality(NodeId(0), NodeId(0)), Locality::NodeLocal);
        assert_eq!(t.locality(NodeId(0), NodeId(1)), Locality::RackLocal);
        assert_eq!(t.locality(NodeId(0), NodeId(2)), Locality::OffRack);
    }

    #[test]
    fn locality_ordering_and_factors() {
        assert!(Locality::NodeLocal < Locality::RackLocal);
        assert!(Locality::RackLocal < Locality::OffRack);
        assert!(Locality::NodeLocal.throughput_factor() > Locality::RackLocal.throughput_factor());
        assert!(Locality::RackLocal.throughput_factor() > Locality::OffRack.throughput_factor());
    }

    #[test]
    fn duplicate_registration_is_ignored() {
        let mut t = Topology::new();
        t.add_node(NodeId(1), RackId(0));
        t.add_node(NodeId(1), RackId(5));
        assert_eq!(t.len(), 1);
        assert_eq!(t.rack_of(NodeId(1)), Some(RackId(0)));
    }

    #[test]
    fn unknown_nodes_are_off_rack() {
        let t = Topology::single_rack(1);
        assert_eq!(t.locality(NodeId(0), NodeId(7)), Locality::OffRack);
        assert!(!t.is_empty());
    }
}
