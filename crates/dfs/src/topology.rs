//! Cluster topology: nodes, racks, and locality levels.
//!
//! Hadoop's scheduling and HDFS replica placement both reason about network
//! distance in three buckets: same node, same rack, off rack. The paper's
//! discussion of *resume locality* (Section V-A) is the scheduling analogue of
//! HDFS data locality, so the topology vocabulary is shared across the
//! workspace.
//!
//! # Hot-path design
//!
//! [`Topology::rack_of`] and [`Topology::locality`] sit on the engine's task
//! launch path (one locality query per preferred replica per launch) and on
//! the NameNode's placement path (one per replica per block), so both are
//! O(1): alongside the registration-ordered assignment list the topology
//! maintains a dense node-id → rack index and per-rack member lists. At the
//! 10k-node scale of the `swim_cluster` bench the old linear scans would have
//! made every launch O(nodes).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a simulated cluster node (a machine running a DataNode and a
/// TaskTracker).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node:{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Identifier of a rack.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct RackId(pub u32);

/// How close a reader is to a block replica (or a resumed task to its
/// suspended image).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Locality {
    /// Data (or the suspended process) is on the same machine.
    NodeLocal,
    /// Data is on a different machine in the same rack.
    RackLocal,
    /// Data is on a machine in a different rack.
    OffRack,
}

impl Locality {
    /// Relative throughput factor compared to a node-local read; matches the
    /// common rule of thumb that rack-local reads run at roughly NIC speed and
    /// off-rack reads contend for the aggregation layer.
    pub fn throughput_factor(self) -> f64 {
        match self {
            Locality::NodeLocal => 1.0,
            Locality::RackLocal => 0.8,
            Locality::OffRack => 0.5,
        }
    }
}

/// Sentinel in the dense node → rack index for unregistered node ids.
const NO_RACK: u32 = u32::MAX;

/// The static shape of the cluster: which node lives in which rack.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// Registration-ordered (node, rack) pairs; the source of truth.
    assignments: Vec<(NodeId, RackId)>,
    /// Dense node-id → rack-id index (`NO_RACK` where unregistered).
    rack_by_node: Vec<u32>,
    /// Per-rack member lists, indexed by rack id, in registration order.
    members: Vec<Vec<NodeId>>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Builds a topology with `racks` racks of `nodes_per_rack` nodes each,
    /// numbering nodes sequentially starting at 0.
    pub fn regular(racks: u32, nodes_per_rack: u32) -> Self {
        let mut t = Topology::new();
        let mut next = 0;
        for r in 0..racks {
            for _ in 0..nodes_per_rack {
                t.add_node(NodeId(next), RackId(r));
                next += 1;
            }
        }
        t
    }

    /// Splits `nodes` sequentially numbered nodes over exactly `racks` racks
    /// in contiguous blocks whose sizes differ by at most one (rack `r` gets
    /// the `r`-th block). This is how the engine maps a flat node list onto a
    /// requested rack count; when `racks` divides `nodes` it is identical to
    /// [`Topology::regular`].
    ///
    /// # Panics
    /// Panics if `racks` is zero or exceeds `nodes`.
    pub fn blocked(nodes: u32, racks: u32) -> Self {
        assert!(racks >= 1, "a topology needs at least one rack");
        assert!(racks <= nodes, "more racks ({racks}) than nodes ({nodes})");
        let base = nodes / racks;
        let remainder = nodes % racks;
        let mut t = Topology::new();
        let mut next = 0;
        for r in 0..racks {
            let size = base + u32::from(r < remainder);
            for _ in 0..size {
                t.add_node(NodeId(next), RackId(r));
                next += 1;
            }
        }
        t
    }

    /// A single-rack topology with `n` nodes — the paper's evaluation setup is
    /// the degenerate single-node case of this.
    pub fn single_rack(n: u32) -> Self {
        Topology::regular(1, n)
    }

    /// Registers a node in a rack.
    pub fn add_node(&mut self, node: NodeId, rack: RackId) {
        let idx = node.0 as usize;
        if self.rack_by_node.get(idx).copied().unwrap_or(NO_RACK) != NO_RACK {
            return;
        }
        if self.rack_by_node.len() <= idx {
            self.rack_by_node.resize(idx + 1, NO_RACK);
        }
        self.rack_by_node[idx] = rack.0;
        let rack_idx = rack.0 as usize;
        if self.members.len() <= rack_idx {
            self.members.resize_with(rack_idx + 1, Vec::new);
        }
        self.members[rack_idx].push(node);
        self.assignments.push((node, rack));
    }

    /// All nodes, in registration order.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.assignments.iter().map(|(n, _)| *n).collect()
    }

    /// The `i`-th registered node (registration order), if it exists.
    pub fn node_at(&self, i: usize) -> Option<NodeId> {
        self.assignments.get(i).map(|(n, _)| *n)
    }

    /// Number of registered nodes.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// True if no nodes are registered.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Number of rack slots (the highest registered rack id plus one; racks
    /// with no members still count so rack ids stay usable as dense indices).
    pub fn rack_count(&self) -> usize {
        self.members.len()
    }

    /// True when a node with this id is registered.
    pub fn contains(&self, node: NodeId) -> bool {
        self.rack_of(node).is_some()
    }

    /// The rack a node belongs to, if registered. O(1).
    pub fn rack_of(&self, node: NodeId) -> Option<RackId> {
        match self.rack_by_node.get(node.0 as usize).copied() {
            Some(r) if r != NO_RACK => Some(RackId(r)),
            _ => None,
        }
    }

    /// The members of a rack, in registration order. O(1).
    pub fn members_of(&self, rack: RackId) -> &[NodeId] {
        self.members
            .get(rack.0 as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Nodes in the given rack (owned; see [`Topology::members_of`] for the
    /// allocation-free variant).
    pub fn nodes_in_rack(&self, rack: RackId) -> Vec<NodeId> {
        self.members_of(rack).to_vec()
    }

    /// Locality of `reader` with respect to `holder`. O(1).
    pub fn locality(&self, reader: NodeId, holder: NodeId) -> Locality {
        if reader == holder {
            return Locality::NodeLocal;
        }
        match (self.rack_of(reader), self.rack_of(holder)) {
            (Some(a), Some(b)) if a == b => Locality::RackLocal,
            _ => Locality::OffRack,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_topology_shape() {
        let t = Topology::regular(2, 3);
        assert_eq!(t.len(), 6);
        assert_eq!(t.nodes_in_rack(RackId(0)).len(), 3);
        assert_eq!(t.nodes_in_rack(RackId(1)).len(), 3);
        assert_eq!(t.rack_of(NodeId(4)), Some(RackId(1)));
        assert_eq!(t.rack_of(NodeId(99)), None);
        assert_eq!(t.rack_count(), 2);
        assert_eq!(t.node_at(4), Some(NodeId(4)));
        assert_eq!(t.node_at(6), None);
    }

    #[test]
    fn blocked_topology_spreads_the_remainder() {
        let t = Topology::blocked(10, 4);
        assert_eq!(t.len(), 10);
        assert_eq!(t.rack_count(), 4);
        // 10 = 3 + 3 + 2 + 2, contiguous blocks.
        assert_eq!(t.members_of(RackId(0)).len(), 3);
        assert_eq!(t.members_of(RackId(1)).len(), 3);
        assert_eq!(t.members_of(RackId(2)).len(), 2);
        assert_eq!(t.members_of(RackId(3)).len(), 2);
        assert_eq!(t.rack_of(NodeId(0)), Some(RackId(0)));
        assert_eq!(t.rack_of(NodeId(9)), Some(RackId(3)));
        // Exact divisor: identical to regular().
        assert_eq!(Topology::blocked(6, 2), Topology::regular(2, 3));
    }

    #[test]
    #[should_panic(expected = "more racks")]
    fn blocked_rejects_more_racks_than_nodes() {
        Topology::blocked(2, 3);
    }

    #[test]
    fn locality_levels() {
        let t = Topology::regular(2, 2);
        assert_eq!(t.locality(NodeId(0), NodeId(0)), Locality::NodeLocal);
        assert_eq!(t.locality(NodeId(0), NodeId(1)), Locality::RackLocal);
        assert_eq!(t.locality(NodeId(0), NodeId(2)), Locality::OffRack);
    }

    #[test]
    fn locality_ordering_and_factors() {
        assert!(Locality::NodeLocal < Locality::RackLocal);
        assert!(Locality::RackLocal < Locality::OffRack);
        assert!(Locality::NodeLocal.throughput_factor() > Locality::RackLocal.throughput_factor());
        assert!(Locality::RackLocal.throughput_factor() > Locality::OffRack.throughput_factor());
    }

    #[test]
    fn duplicate_registration_is_ignored() {
        let mut t = Topology::new();
        t.add_node(NodeId(1), RackId(0));
        t.add_node(NodeId(1), RackId(5));
        assert_eq!(t.len(), 1);
        assert_eq!(t.rack_of(NodeId(1)), Some(RackId(0)));
        assert_eq!(t.members_of(RackId(0)), &[NodeId(1)]);
        assert!(t.members_of(RackId(5)).is_empty());
    }

    #[test]
    fn unknown_nodes_are_off_rack() {
        let t = Topology::single_rack(1);
        assert_eq!(t.locality(NodeId(0), NodeId(7)), Locality::OffRack);
        assert!(!t.is_empty());
        assert!(t.contains(NodeId(0)));
        assert!(!t.contains(NodeId(7)));
    }

    #[test]
    fn sparse_node_ids_are_indexed_correctly() {
        let mut t = Topology::new();
        t.add_node(NodeId(7), RackId(1));
        t.add_node(NodeId(2), RackId(0));
        assert_eq!(t.rack_of(NodeId(7)), Some(RackId(1)));
        assert_eq!(t.rack_of(NodeId(2)), Some(RackId(0)));
        assert_eq!(t.rack_of(NodeId(3)), None);
        assert_eq!(t.locality(NodeId(7), NodeId(2)), Locality::OffRack);
        assert_eq!(t.nodes(), vec![NodeId(7), NodeId(2)]);
    }
}
