//! The NameNode: namespace and block placement.
//!
//! Only the pieces the MapReduce engine needs are modelled: creating files
//! with a replication factor, the default replica-placement policy (first
//! replica on the writer's node, second on a different rack when possible,
//! third on yet another node), and answering "where can I read block B from,
//! and how local is that to node N?".

use crate::block::{split_into_blocks, Block, BlockId, FileId, FileMeta};
use crate::topology::{Locality, NodeId, Topology};
use mrp_sim::SimRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Where a block can be read from, with the locality relative to a reader.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReadPlan {
    /// The block being read.
    pub block: BlockId,
    /// Size of the block in bytes.
    pub size: u64,
    /// The replica chosen for the read.
    pub source: NodeId,
    /// Locality of the chosen replica with respect to the reader.
    pub locality: Locality,
}

/// Errors from namespace operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DfsError {
    /// The path already exists.
    AlreadyExists(String),
    /// The file or block does not exist.
    NotFound(String),
    /// No live DataNodes can host a replica.
    NoDataNodes,
}

impl std::fmt::Display for DfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DfsError::AlreadyExists(p) => write!(f, "path already exists: {p}"),
            DfsError::NotFound(w) => write!(f, "not found: {w}"),
            DfsError::NoDataNodes => write!(f, "no datanodes available"),
        }
    }
}

impl std::error::Error for DfsError {}

/// Outcome of repairing under-replicated blocks after a node left the
/// cluster (see [`NameNode::re_replicate`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicationRepair {
    /// New replicas created on surviving nodes.
    pub re_replicated: u64,
    /// Blocks whose last replica disappeared with the node (unrepairable
    /// after a crash; a graceful decommission drains them instead).
    pub lost_blocks: u64,
}

/// The simulated NameNode.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NameNode {
    topology: Topology,
    files: HashMap<FileId, FileMeta>,
    paths: HashMap<String, FileId>,
    blocks: HashMap<BlockId, Block>,
    replicas: HashMap<BlockId, Vec<NodeId>>,
    /// Dense liveness map (indexed by node id); dead DataNodes hold no
    /// replicas and are never chosen for placement.
    dead: Vec<bool>,
    /// Per-node replica index (dense by node id): the blocks each DataNode
    /// holds. Keeps [`NameNode::decommission`] O(replicas on the node)
    /// instead of O(all blocks in the namespace) — fault-injection runs kill
    /// hundreds of nodes, and a namespace scan per failure dominated their
    /// profile.
    node_blocks: Vec<Vec<BlockId>>,
    /// Maintained count of live nodes (`dead` has this many `false`
    /// entries); placement consults it once per block, so it must not cost
    /// an O(nodes) scan.
    live: usize,
    default_block_size: u64,
    default_replication: u32,
    next_file: u64,
    next_block: u64,
}

impl NameNode {
    /// Creates a NameNode for the given topology.
    pub fn new(topology: Topology, default_block_size: u64, default_replication: u32) -> Self {
        assert!(default_block_size > 0);
        assert!(default_replication > 0);
        let dead = vec![false; topology.len()];
        let node_blocks = vec![Vec::new(); topology.len()];
        let live = topology.len();
        NameNode {
            topology,
            files: HashMap::new(),
            paths: HashMap::new(),
            blocks: HashMap::new(),
            replicas: HashMap::new(),
            dead,
            node_blocks,
            live,
            default_block_size,
            default_replication,
            next_file: 1,
            next_block: 1,
        }
    }

    /// The cluster topology the NameNode knows about.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Number of files in the namespace.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Looks up a file by path.
    pub fn lookup(&self, path: &str) -> Option<&FileMeta> {
        self.paths.get(path).and_then(|id| self.files.get(id))
    }

    /// File metadata by id.
    pub fn file(&self, id: FileId) -> Option<&FileMeta> {
        self.files.get(&id)
    }

    /// Block metadata by id.
    pub fn block(&self, id: BlockId) -> Option<&Block> {
        self.blocks.get(&id)
    }

    /// The DataNodes holding replicas of a block.
    pub fn replicas_of(&self, block: BlockId) -> &[NodeId] {
        self.replicas.get(&block).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether `node` is a live DataNode (in the topology and not
    /// decommissioned/failed).
    pub fn is_live(&self, node: NodeId) -> bool {
        self.topology.contains(node) && !self.dead.get(node.0 as usize).copied().unwrap_or(true)
    }

    /// Number of live DataNodes (O(1): maintained by
    /// [`NameNode::decommission`] / [`NameNode::rejoin`]).
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Default replica placement: first replica on the writer (if it is a
    /// cluster node), second preferring a different rack as HDFS does,
    /// remaining replicas on any distinct nodes.
    ///
    /// O(replication) per block: candidates are sampled (with a deterministic
    /// scan fallback) instead of materialising and shuffling whole-cluster
    /// candidate lists, so creating the 100k-block inputs of the 10k-node
    /// `swim_cluster` bench does not cost O(blocks x nodes).
    fn place_replicas(
        &self,
        writer: Option<NodeId>,
        replication: u32,
        rng: &mut SimRng,
    ) -> Result<Vec<NodeId>, DfsError> {
        let live = self.live_count();
        if live == 0 {
            return Err(DfsError::NoDataNodes);
        }
        let target = (replication as usize).min(live);
        let mut chosen: Vec<NodeId> = Vec::with_capacity(target);
        let first = match writer {
            Some(w) if self.is_live(w) => w,
            _ => match self.pick_distinct(&[], rng) {
                Some(n) => n,
                None => return Err(DfsError::NoDataNodes),
            },
        };
        chosen.push(first);
        if chosen.len() < target {
            if let Some(second) = self.pick_off_rack(first, rng) {
                chosen.push(second);
            }
        }
        while chosen.len() < target {
            match self.pick_distinct(&chosen, rng) {
                Some(n) => chosen.push(n),
                None => break,
            }
        }
        Ok(chosen)
    }

    /// A random live node from a non-empty rack other than `anchor`'s, or
    /// `None` when no such node exists. Scans racks (and rack members) from a
    /// random starting offset, so the choice stays seed-deterministic and —
    /// with every node live — draws exactly the same rng sequence as before
    /// liveness tracking existed.
    fn pick_off_rack(&self, anchor: NodeId, rng: &mut SimRng) -> Option<NodeId> {
        let racks = self.topology.rack_count();
        if racks <= 1 {
            return None;
        }
        let anchor_rack = self.topology.rack_of(anchor);
        let start = rng.index(racks);
        for i in 0..racks {
            let rack = crate::RackId(((start + i) % racks) as u32);
            if Some(rack) == anchor_rack {
                continue;
            }
            let members = self.topology.members_of(rack);
            if members.is_empty() {
                continue;
            }
            let offset = rng.index(members.len());
            for j in 0..members.len() {
                let cand = members[(offset + j) % members.len()];
                if self.is_live(cand) {
                    return Some(cand);
                }
            }
        }
        None
    }

    /// A random live node not already in `chosen`. Rejection-samples a few
    /// times (`chosen` has at most `replication` entries), then falls back to
    /// a deterministic scan from a random offset; returns `None` only when
    /// every live node is already chosen.
    fn pick_distinct(&self, chosen: &[NodeId], rng: &mut SimRng) -> Option<NodeId> {
        let n = self.topology.len();
        if n == 0 {
            return None;
        }
        for _ in 0..8 {
            let cand = self.topology.node_at(rng.index(n)).expect("in range");
            if !chosen.contains(&cand) && self.is_live(cand) {
                return Some(cand);
            }
        }
        let start = rng.index(n);
        for i in 0..n {
            let cand = self.topology.node_at((start + i) % n).expect("in range");
            if !chosen.contains(&cand) && self.is_live(cand) {
                return Some(cand);
            }
        }
        None
    }

    /// Creates a file of `len` bytes at `path`, written from `writer` (if the
    /// writer is a cluster node the first replica is local to it).
    pub fn create_file(
        &mut self,
        path: &str,
        len: u64,
        writer: Option<NodeId>,
        rng: &mut SimRng,
    ) -> Result<FileId, DfsError> {
        self.create_file_with(
            path,
            len,
            self.default_block_size,
            self.default_replication,
            writer,
            rng,
        )
    }

    /// Creates a file with explicit block size and replication factor.
    pub fn create_file_with(
        &mut self,
        path: &str,
        len: u64,
        block_size: u64,
        replication: u32,
        writer: Option<NodeId>,
        rng: &mut SimRng,
    ) -> Result<FileId, DfsError> {
        if self.paths.contains_key(path) {
            return Err(DfsError::AlreadyExists(path.to_string()));
        }
        if self.topology.is_empty() {
            return Err(DfsError::NoDataNodes);
        }
        let file_id = FileId(self.next_file);
        self.next_file += 1;
        let mut block_ids = Vec::new();
        for (index, size) in split_into_blocks(len, block_size).into_iter().enumerate() {
            let block_id = BlockId(self.next_block);
            self.next_block += 1;
            self.blocks.insert(
                block_id,
                Block {
                    id: block_id,
                    file: file_id,
                    index: index as u32,
                    size,
                },
            );
            let placement = self.place_replicas(writer, replication, rng)?;
            for holder in &placement {
                self.record_holder(*holder, block_id);
            }
            self.replicas.insert(block_id, placement);
            block_ids.push(block_id);
        }
        let meta = FileMeta {
            id: file_id,
            path: path.to_string(),
            len,
            block_size,
            replication,
            blocks: block_ids,
        };
        self.files.insert(file_id, meta);
        self.paths.insert(path.to_string(), file_id);
        Ok(file_id)
    }

    /// Plans a read of `block` from `reader`: chooses the closest replica.
    pub fn plan_read(&self, block: BlockId, reader: NodeId) -> Result<ReadPlan, DfsError> {
        let meta = self
            .blocks
            .get(&block)
            .ok_or_else(|| DfsError::NotFound(format!("{block:?}")))?;
        let replicas = self.replicas_of(block);
        if replicas.is_empty() {
            return Err(DfsError::NoDataNodes);
        }
        let best = replicas
            .iter()
            .copied()
            .min_by_key(|holder| self.topology.locality(reader, *holder))
            .expect("non-empty replicas");
        Ok(ReadPlan {
            block,
            size: meta.size,
            source: best,
            locality: self.topology.locality(reader, best),
        })
    }

    /// Nodes that hold a replica of any block of `file`, used by the
    /// JobTracker to prefer data-local task placement.
    pub fn preferred_nodes(&self, file: FileId) -> Vec<NodeId> {
        let Some(meta) = self.files.get(&file) else {
            return Vec::new();
        };
        let mut nodes = Vec::new();
        for b in &meta.blocks {
            for n in self.replicas_of(*b) {
                if !nodes.contains(n) {
                    nodes.push(*n);
                }
            }
        }
        nodes
    }

    /// Records `holder` as holding `block` in the per-node index.
    fn record_holder(&mut self, holder: NodeId, block: BlockId) {
        if let Some(list) = self.node_blocks.get_mut(holder.0 as usize) {
            list.push(block);
        }
    }

    /// Removes a DataNode from service (failure or administrative
    /// decommission): the node is marked dead, its replicas disappear, and
    /// the blocks that lost a replica are returned (sorted, so callers can
    /// repair them deterministically via [`NameNode::re_replicate`]).
    /// O(replicas held by the node) via the per-node index.
    pub fn decommission(&mut self, node: NodeId) -> Vec<BlockId> {
        if let Some(d) = self.dead.get_mut(node.0 as usize) {
            if !*d {
                *d = true;
                self.live -= 1;
            }
        }
        let mut affected = self
            .node_blocks
            .get_mut(node.0 as usize)
            .map(std::mem::take)
            .unwrap_or_default();
        for block in &affected {
            if let Some(replicas) = self.replicas.get_mut(block) {
                replicas.retain(|n| *n != node);
            }
        }
        affected.sort();
        affected
    }

    /// Returns a previously removed DataNode to service. Its disks are
    /// empty: it holds no replicas until placement chooses it again.
    pub fn rejoin(&mut self, node: NodeId) {
        if let Some(d) = self.dead.get_mut(node.0 as usize) {
            if *d {
                *d = false;
                self.live += 1;
            }
        }
    }

    /// Repairs under-replicated blocks after a node left: each affected block
    /// gets new replicas on live nodes until it reaches its file's
    /// replication factor (or the live-node count, whichever is smaller).
    ///
    /// `graceful` models an administrative decommission, where the leaving
    /// node itself serves as the copy source, so even last-replica blocks are
    /// drained rather than lost; after a crash (`graceful == false`) a block
    /// with no surviving replica is counted in
    /// [`ReplicationRepair::lost_blocks`].
    pub fn re_replicate(
        &mut self,
        affected: &[BlockId],
        graceful: bool,
        rng: &mut SimRng,
    ) -> ReplicationRepair {
        let mut repair = ReplicationRepair::default();
        let live = self.live_count();
        for block in affected {
            let Some(meta) = self.blocks.get(block) else {
                continue;
            };
            let target = self
                .files
                .get(&meta.file)
                .map(|f| f.replication)
                .unwrap_or(self.default_replication) as usize;
            let target = target.min(live);
            let mut holders = self.replicas.get(block).cloned().unwrap_or_default();
            if holders.is_empty() && !graceful {
                repair.lost_blocks += 1;
                continue;
            }
            while holders.len() < target {
                match self.pick_distinct(&holders, rng) {
                    Some(n) => {
                        self.record_holder(n, *block);
                        holders.push(n);
                        repair.re_replicated += 1;
                    }
                    None => break,
                }
            }
            self.replicas.insert(*block, holders);
        }
        repair
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_sim::{GIB, MIB};

    fn rng() -> SimRng {
        SimRng::new(7)
    }

    fn namenode(racks: u32, per_rack: u32) -> NameNode {
        NameNode::new(Topology::regular(racks, per_rack), 128 * MIB, 3)
    }

    #[test]
    fn create_and_lookup() {
        let mut nn = namenode(1, 4);
        let id = nn
            .create_file("/input", 512 * MIB, Some(NodeId(0)), &mut rng())
            .unwrap();
        let meta = nn.lookup("/input").unwrap();
        assert_eq!(meta.id, id);
        assert_eq!(meta.blocks.len(), 4);
        assert_eq!(nn.file_count(), 1);
        assert!(nn.lookup("/missing").is_none());
    }

    #[test]
    fn duplicate_path_rejected() {
        let mut nn = namenode(1, 2);
        nn.create_file("/f", MIB, None, &mut rng()).unwrap();
        assert!(matches!(
            nn.create_file("/f", MIB, None, &mut rng()),
            Err(DfsError::AlreadyExists(_))
        ));
    }

    #[test]
    fn first_replica_is_writer_local() {
        let mut nn = namenode(2, 3);
        let id = nn
            .create_file("/local", 100 * MIB, Some(NodeId(4)), &mut rng())
            .unwrap();
        let block = nn.file(id).unwrap().blocks[0];
        assert_eq!(nn.replicas_of(block)[0], NodeId(4));
    }

    #[test]
    fn replication_factor_is_respected_when_possible() {
        let mut nn = namenode(2, 3);
        let id = nn
            .create_file("/r3", 10 * MIB, Some(NodeId(0)), &mut rng())
            .unwrap();
        let block = nn.file(id).unwrap().blocks[0];
        assert_eq!(nn.replicas_of(block).len(), 3);
        // Replicas must be distinct nodes.
        let mut nodes = nn.replicas_of(block).to_vec();
        nodes.sort();
        nodes.dedup();
        assert_eq!(nodes.len(), 3);
    }

    #[test]
    fn second_replica_prefers_other_rack() {
        let mut nn = namenode(2, 2);
        let id = nn
            .create_file("/x", MIB, Some(NodeId(0)), &mut rng())
            .unwrap();
        let block = nn.file(id).unwrap().blocks[0];
        let replicas = nn.replicas_of(block);
        let racks: Vec<_> = replicas
            .iter()
            .map(|n| nn.topology().rack_of(*n).unwrap())
            .collect();
        assert!(
            racks.windows(2).any(|w| w[0] != w[1]),
            "replicas should span racks: {racks:?}"
        );
    }

    #[test]
    fn single_node_cluster_gets_one_replica() {
        let mut nn = NameNode::new(Topology::single_rack(1), 512 * MIB, 3);
        let id = nn
            .create_file("/single", 512 * MIB, Some(NodeId(0)), &mut rng())
            .unwrap();
        let block = nn.file(id).unwrap().blocks[0];
        assert_eq!(nn.replicas_of(block), &[NodeId(0)]);
    }

    #[test]
    fn plan_read_picks_closest_replica() {
        let mut nn = namenode(2, 2);
        let id = nn
            .create_file("/data", MIB, Some(NodeId(0)), &mut rng())
            .unwrap();
        let block = nn.file(id).unwrap().blocks[0];
        let local = nn.plan_read(block, NodeId(0)).unwrap();
        assert_eq!(local.locality, Locality::NodeLocal);
        assert_eq!(local.source, NodeId(0));
        // A reader elsewhere still gets a plan whose source is a real replica
        // and whose locality matches the topology's verdict.
        let other = nn.plan_read(block, NodeId(3)).unwrap();
        assert!(nn.replicas_of(block).contains(&other.source));
        assert_eq!(
            other.locality,
            nn.topology().locality(NodeId(3), other.source)
        );
    }

    #[test]
    fn plan_read_unknown_block_fails() {
        let nn = namenode(1, 1);
        assert!(matches!(
            nn.plan_read(BlockId(99), NodeId(0)),
            Err(DfsError::NotFound(_))
        ));
    }

    #[test]
    fn preferred_nodes_cover_all_blocks() {
        let mut nn = namenode(1, 4);
        let id = nn
            .create_file("/big", GIB, Some(NodeId(1)), &mut rng())
            .unwrap();
        let preferred = nn.preferred_nodes(id);
        assert!(preferred.contains(&NodeId(1)));
        assert!(!preferred.is_empty());
        assert!(nn.preferred_nodes(FileId(999)).is_empty());
    }

    #[test]
    fn decommission_removes_replicas() {
        let mut nn = namenode(1, 2);
        let id = nn
            .create_file("/d", MIB, Some(NodeId(0)), &mut rng())
            .unwrap();
        let block = nn.file(id).unwrap().blocks[0];
        let affected = nn.decommission(NodeId(0));
        assert_eq!(affected, vec![block]);
        assert!(!nn.replicas_of(block).contains(&NodeId(0)));
        assert!(!nn.is_live(NodeId(0)));
        assert_eq!(nn.live_count(), 1);
    }

    #[test]
    fn re_replication_restores_the_replication_factor() {
        let mut nn = namenode(2, 3); // replication 3 over 6 nodes
        let mut r = rng();
        let id = nn.create_file("/r", MIB, Some(NodeId(0)), &mut r).unwrap();
        let block = nn.file(id).unwrap().blocks[0];
        let lost = nn.replicas_of(block)[0];
        let affected = nn.decommission(lost);
        assert_eq!(nn.replicas_of(block).len(), 2);
        let repair = nn.re_replicate(&affected, false, &mut r);
        assert_eq!(repair.re_replicated, 1);
        assert_eq!(repair.lost_blocks, 0);
        let replicas = nn.replicas_of(block);
        assert_eq!(replicas.len(), 3);
        assert!(replicas.iter().all(|n| nn.is_live(*n)), "{replicas:?}");
        // Distinct replicas.
        let mut sorted = replicas.to_vec();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
    }

    #[test]
    fn crash_of_the_last_replica_loses_the_block_but_decommission_drains_it() {
        let mut nn = NameNode::new(Topology::regular(1, 3), 128 * MIB, 1);
        let mut r = rng();
        let id = nn
            .create_file("/solo", MIB, Some(NodeId(1)), &mut r)
            .unwrap();
        let block = nn.file(id).unwrap().blocks[0];

        // Crash: the only replica is gone for good.
        let affected = nn.decommission(NodeId(1));
        let repair = nn.re_replicate(&affected, false, &mut r);
        assert_eq!(repair.lost_blocks, 1);
        assert_eq!(repair.re_replicated, 0);
        assert!(nn.replicas_of(block).is_empty());

        // Graceful drain: the leaving node is still a copy source.
        nn.rejoin(NodeId(1));
        let mut nn2 = NameNode::new(Topology::regular(1, 3), 128 * MIB, 1);
        let id2 = nn2
            .create_file("/solo", MIB, Some(NodeId(1)), &mut r)
            .unwrap();
        let block2 = nn2.file(id2).unwrap().blocks[0];
        let affected2 = nn2.decommission(NodeId(1));
        let repair2 = nn2.re_replicate(&affected2, true, &mut r);
        assert_eq!(repair2.lost_blocks, 0);
        assert_eq!(repair2.re_replicated, 1);
        assert_eq!(nn2.replicas_of(block2).len(), 1);
        assert!(nn2.is_live(nn2.replicas_of(block2)[0]));
    }

    #[test]
    fn placement_skips_dead_nodes_and_rejoined_nodes_return() {
        let mut nn = namenode(1, 4); // replication 3 over 4 nodes
        let mut r = rng();
        nn.decommission(NodeId(2));
        let id = nn
            .create_file("/live", MIB, Some(NodeId(2)), &mut r)
            .unwrap();
        let block = nn.file(id).unwrap().blocks[0];
        // The dead writer cannot hold the first replica.
        assert!(!nn.replicas_of(block).contains(&NodeId(2)));
        assert_eq!(nn.replicas_of(block).len(), 3, "3 live nodes remain");
        nn.rejoin(NodeId(2));
        let id2 = nn
            .create_file("/back", MIB, Some(NodeId(2)), &mut r)
            .unwrap();
        let block2 = nn.file(id2).unwrap().blocks[0];
        assert_eq!(nn.replicas_of(block2)[0], NodeId(2));
    }

    #[test]
    fn empty_topology_cannot_store_files() {
        let mut nn = NameNode::new(Topology::new(), MIB, 1);
        assert!(matches!(
            nn.create_file("/f", MIB, None, &mut rng()),
            Err(DfsError::NoDataNodes)
        ));
    }
}
