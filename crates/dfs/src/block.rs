//! Blocks and files.
//!
//! HDFS stores files as a sequence of fixed-size blocks (128 MB by default in
//! Hadoop 1 era deployments, 512 MB in the paper's single-block inputs), each
//! replicated on several DataNodes. Map tasks consume one *input split*,
//! which in the common case corresponds to one block.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a stored block.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u64);

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk_{}", self.0)
    }
}

/// Identifier of a file in the namespace.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct FileId(pub u64);

/// Metadata for one block.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// The block's identifier.
    pub id: BlockId,
    /// The file this block belongs to.
    pub file: FileId,
    /// Index of this block within the file.
    pub index: u32,
    /// Size in bytes (the last block of a file may be short).
    pub size: u64,
}

/// Metadata for one file.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FileMeta {
    /// The file's identifier.
    pub id: FileId,
    /// Path in the simulated namespace (e.g. `/user/test/input-512mb`).
    pub path: String,
    /// Total length in bytes.
    pub len: u64,
    /// Block size used when the file was written.
    pub block_size: u64,
    /// Replication factor requested for the file.
    pub replication: u32,
    /// The file's blocks, in order.
    pub blocks: Vec<BlockId>,
}

/// Splits a file of `len` bytes into block sizes of at most `block_size`.
pub fn split_into_blocks(len: u64, block_size: u64) -> Vec<u64> {
    assert!(block_size > 0, "block size must be positive");
    if len == 0 {
        return Vec::new();
    }
    let full = len / block_size;
    let rem = len % block_size;
    let mut sizes = vec![block_size; full as usize];
    if rem > 0 {
        sizes.push(rem);
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_sim::MIB;

    #[test]
    fn exact_multiple_has_no_tail() {
        assert_eq!(split_into_blocks(512 * MIB, 128 * MIB), vec![128 * MIB; 4]);
    }

    #[test]
    fn remainder_becomes_short_tail_block() {
        let sizes = split_into_blocks(300 * MIB, 128 * MIB);
        assert_eq!(sizes, vec![128 * MIB, 128 * MIB, 44 * MIB]);
        assert_eq!(sizes.iter().sum::<u64>(), 300 * MIB);
    }

    #[test]
    fn small_file_is_a_single_block() {
        assert_eq!(split_into_blocks(1, 128 * MIB), vec![1]);
        assert_eq!(split_into_blocks(0, 128 * MIB), Vec::<u64>::new());
    }

    #[test]
    #[should_panic]
    fn zero_block_size_panics() {
        split_into_blocks(10, 0);
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", BlockId(7)), "blk_7");
    }
}
