//! # mrp-dfs — a simulated HDFS
//!
//! Models the parts of HDFS the paper's evaluation touches: a namespace of
//! files split into blocks, replica placement over a racked topology, and
//! read planning that tells a map task how large its input split is, which
//! DataNode serves it, and how data-local that is.
//!
//! The paper's workload stores two single-block 512 MB files, so the common
//! path here is trivial — but the engine and the schedulers built on top are
//! written against the general API (multi-block files, multi-node clusters,
//! replica loss), which the multi-job examples and the resume-locality
//! ablation exercise.
//!
//! ```
//! use mrp_dfs::{NameNode, Topology, NodeId};
//! use mrp_sim::{SimRng, MIB};
//!
//! let mut namenode = NameNode::new(Topology::single_rack(4), 128 * MIB, 3);
//! let mut rng = SimRng::new(42);
//! let file = namenode
//!     .create_file("/user/test/input-512mb", 512 * MIB, Some(NodeId(0)), &mut rng)
//!     .unwrap();
//! assert_eq!(namenode.file(file).unwrap().blocks.len(), 4);
//! let plan = namenode.plan_read(namenode.file(file).unwrap().blocks[0], NodeId(0)).unwrap();
//! assert_eq!(plan.size, 128 * MIB);
//! ```

#![warn(missing_docs)]

mod block;
mod namenode;
mod topology;

pub use block::{split_into_blocks, Block, BlockId, FileId, FileMeta};
pub use namenode::{DfsError, NameNode, ReadPlan, ReplicationRepair};
pub use topology::{Locality, NodeId, RackId, Topology};

#[cfg(test)]
mod randomized_tests {
    //! Property-style tests driven by seeded randomization (the container has
    //! no proptest); fixed seeds keep every failure reproducible.

    use super::*;
    use mrp_sim::{SimRng, MIB};

    /// Block sizes always sum to the file length and never exceed the
    /// configured block size.
    #[test]
    fn block_split_conserves_length() {
        let mut rng = SimRng::new(0xDF5_001);
        for _ in 0..64 {
            let len = rng.next_u64() % (64 * 1024 * 1024 * 1024);
            let bs = (1 + rng.index(1023) as u64) * MIB;
            let sizes = split_into_blocks(len, bs);
            assert_eq!(sizes.iter().sum::<u64>(), len);
            assert!(sizes.iter().all(|s| *s > 0 && *s <= bs));
        }
    }

    /// Every created file is readable: each block has at least one replica,
    /// all replicas are registered nodes, and a reader co-located with a
    /// replica always gets a node-local plan.
    #[test]
    fn files_are_always_readable() {
        for seed in 0..64u64 {
            let mut meta_rng = SimRng::new(0xDF5_002 + seed);
            let racks = 1 + meta_rng.index(3) as u32;
            let per_rack = 1 + meta_rng.index(4) as u32;
            let len_mib = 1 + meta_rng.index(4095) as u64;
            let replication = 1 + meta_rng.index(3) as u32;
            let topo = Topology::regular(racks, per_rack);
            let nodes = topo.nodes();
            let mut nn = NameNode::new(topo, 128 * MIB, replication);
            let mut rng = SimRng::new(seed);
            let writer = nodes[(seed as usize) % nodes.len()];
            let id = nn
                .create_file("/f", len_mib * MIB, Some(writer), &mut rng)
                .unwrap();
            let meta = nn.file(id).unwrap().clone();
            for block in &meta.blocks {
                let replicas = nn.replicas_of(*block).to_vec();
                assert!(!replicas.is_empty());
                assert!(replicas.iter().all(|r| nodes.contains(r)));
                // replicas must be distinct
                let mut uniq = replicas.clone();
                uniq.sort();
                uniq.dedup();
                assert_eq!(uniq.len(), replicas.len());
                // first replica is writer-local
                assert_eq!(replicas[0], writer);
                let plan = nn.plan_read(*block, replicas[0]).unwrap();
                assert_eq!(plan.locality, Locality::NodeLocal);
                // any reader gets a valid plan
                for reader in &nodes {
                    let p = nn.plan_read(*block, *reader).unwrap();
                    assert!(replicas.contains(&p.source));
                }
            }
        }
    }

    /// Locality is symmetric in rack membership and node-local only for
    /// identical nodes.
    #[test]
    fn locality_properties() {
        let mut rng = SimRng::new(0xDF5_003);
        for _ in 0..200 {
            let racks = 1 + rng.index(4) as u32;
            let per_rack = 1 + rng.index(4) as u32;
            let topo = Topology::regular(racks, per_rack);
            let n = racks * per_rack;
            let a = NodeId(rng.index(25) as u32 % n);
            let b = NodeId(rng.index(25) as u32 % n);
            let ab = topo.locality(a, b);
            let ba = topo.locality(b, a);
            assert_eq!(ab, ba);
            if a == b {
                assert_eq!(ab, Locality::NodeLocal);
            } else {
                assert!(ab != Locality::NodeLocal);
            }
        }
    }
}
