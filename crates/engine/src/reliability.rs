//! ATLAS-style node-reliability predictor.
//!
//! ATLAS (Soualhia et al., PAPERS.md) showed that Hadoop wastes a large
//! fraction of its re-execution budget by re-placing work on nodes that just
//! failed: failure history is a usable predictor of near-future failures.
//! The [`ReliabilityTracker`] keeps an EWMA-like flakiness score per node and
//! per rack, fed by the engine's fault plan as crashes actually strike
//! (scripted events and random churn alike — the predictor sees observations,
//! not the plan):
//!
//! * a crash moves the victim's score towards `1.0` by
//!   [`failure_boost`](crate::ReliabilityConfig::failure_boost), and its
//!   rack's score likewise (rack churn — a sick switch — taints members);
//! * between failures the score decays exponentially with **virtual time**,
//!   halving every [`half_life_secs`](crate::ReliabilityConfig::half_life_secs)
//!   — a pure function of `now`, so no decay events are needed and the
//!   simulation stays deterministic and refresh-mode independent;
//! * graceful decommissions are *not* failures and never feed the predictor.
//!
//! Schedulers consult the combined node+rack score through
//! [`SchedulerContext::reliability_avoid`](crate::SchedulerContext), which
//! only steers **fresh** launches and speculative backups, never resumes, and
//! only while the cluster has free capacity elsewhere — the guard that keeps
//! the bias starvation-free.

use crate::config::ReliabilityConfig;
use mrp_dfs::{NodeId, RackId};
use mrp_sim::SimTime;

/// One decaying failure score: its value at the time of the last failure
/// plus the timestamp to decay from.
#[derive(Clone, Copy, Debug, Default)]
struct Score {
    /// Score immediately after the last recorded failure.
    at_failure: f64,
    /// When that failure struck; `None` while the subject never failed.
    last_failure: Option<SimTime>,
}

impl Score {
    /// Current value: exponential decay from the last failure,
    /// `at_failure * 2^(-elapsed / half_life)`.
    fn value(&self, now: SimTime, half_life_secs: f64) -> f64 {
        match self.last_failure {
            None => 0.0,
            Some(t) => {
                let elapsed = (now - t).as_secs_f64();
                self.at_failure * (-elapsed * std::f64::consts::LN_2 / half_life_secs).exp()
            }
        }
    }

    /// Records a failure at `now`: decay to the present, then EWMA-bump
    /// towards 1.0.
    fn record(&mut self, now: SimTime, half_life_secs: f64, boost: f64) {
        let current = self.value(now, half_life_secs);
        self.at_failure = current + boost * (1.0 - current);
        self.last_failure = Some(now);
    }
}

/// Engine-owned failure-history scores shared with policies through
/// [`SchedulerContext`](crate::SchedulerContext). See the module docs.
#[derive(Debug)]
pub struct ReliabilityTracker {
    config: ReliabilityConfig,
    nodes: Vec<Score>,
    racks: Vec<Score>,
}

impl ReliabilityTracker {
    /// Creates the tracker for a cluster of the given shape.
    pub fn new(config: ReliabilityConfig, node_count: usize, rack_count: usize) -> Self {
        ReliabilityTracker {
            config,
            nodes: vec![Score::default(); node_count],
            racks: vec![Score::default(); rack_count],
        }
    }

    /// Whether the predictor is switched on at all.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// Feeds one observed crash of `node` (rack `rack`) into the scores.
    /// Decommissions are graceful and must not be recorded.
    pub(crate) fn record_failure(&mut self, node: NodeId, rack: RackId, now: SimTime) {
        if !self.config.enabled {
            return;
        }
        let hl = self.config.half_life_secs;
        let boost = self.config.failure_boost;
        if let Some(s) = self.nodes.get_mut(node.0 as usize) {
            s.record(now, hl, boost);
        }
        if let Some(s) = self.racks.get_mut(rack.0 as usize) {
            s.record(now, hl, boost);
        }
    }

    /// Feeds one observed gray failure (slow disk / slow net, no crash) of
    /// `node` into the scores at half the crash boost: a degraded node is a
    /// placement risk, but a recoverable one. The rack score is untouched —
    /// gray failures are node-local (a sick disk), not switch-wide.
    pub(crate) fn record_degraded(&mut self, node: NodeId, now: SimTime) {
        if !self.config.enabled {
            return;
        }
        let hl = self.config.half_life_secs;
        let boost = 0.5 * self.config.failure_boost;
        if let Some(s) = self.nodes.get_mut(node.0 as usize) {
            s.record(now, hl, boost);
        }
    }

    /// The node's combined flakiness estimate right now: its own decayed
    /// score plus `rack_weight` times its rack's.
    pub fn score(&self, node: NodeId, rack: RackId, now: SimTime) -> f64 {
        if !self.config.enabled {
            return 0.0;
        }
        let hl = self.config.half_life_secs;
        let node_score = self
            .nodes
            .get(node.0 as usize)
            .map(|s| s.value(now, hl))
            .unwrap_or(0.0);
        let rack_score = self
            .racks
            .get(rack.0 as usize)
            .map(|s| s.value(now, hl))
            .unwrap_or(0.0);
        node_score + self.config.rack_weight * rack_score
    }

    /// True when the node's combined score is at or above the flaky
    /// threshold — the placement bias trigger.
    pub fn flaky(&self, node: NodeId, rack: RackId, now: SimTime) -> bool {
        self.config.enabled && self.score(node, rack, now) >= self.config.flaky_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> ReliabilityTracker {
        ReliabilityTracker::new(ReliabilityConfig::predictive(), 4, 2)
    }

    #[test]
    fn disabled_tracker_scores_zero() {
        let mut t = ReliabilityTracker::new(ReliabilityConfig::default(), 4, 2);
        t.record_failure(NodeId(0), RackId(0), SimTime::from_secs(10));
        assert_eq!(t.score(NodeId(0), RackId(0), SimTime::from_secs(10)), 0.0);
        assert!(!t.flaky(NodeId(0), RackId(0), SimTime::from_secs(10)));
    }

    #[test]
    fn a_crash_marks_node_and_rack_flaky() {
        let mut t = tracker();
        let now = SimTime::from_secs(100);
        assert!(!t.flaky(NodeId(1), RackId(0), now));
        t.record_failure(NodeId(1), RackId(0), now);
        // Victim: node score 0.5 + rack share.
        assert!(t.flaky(NodeId(1), RackId(0), now));
        // Rack sibling: only the rack share (0.25 * 0.5 = 0.125 < 0.35).
        assert!(!t.flaky(NodeId(0), RackId(0), now));
        // Other rack: untouched.
        assert_eq!(t.score(NodeId(3), RackId(1), now), 0.0);
    }

    #[test]
    fn scores_decay_with_virtual_time() {
        let mut t = tracker();
        t.record_failure(NodeId(1), RackId(0), SimTime::from_secs(100));
        let s0 = t.score(NodeId(1), RackId(0), SimTime::from_secs(100));
        // One half-life later the score has halved.
        let s1 = t.score(NodeId(1), RackId(0), SimTime::from_secs(400));
        assert!((s1 - s0 / 2.0).abs() < 1e-9, "s0={s0} s1={s1}");
        // Long after the crash the node is forgiven.
        assert!(!t.flaky(NodeId(1), RackId(0), SimTime::from_secs(4_000)));
    }

    #[test]
    fn repeated_crashes_compound_towards_one() {
        let mut t = tracker();
        for k in 0..5u64 {
            t.record_failure(NodeId(2), RackId(1), SimTime::from_secs(100 + k));
        }
        let s = t.score(NodeId(2), RackId(1), SimTime::from_secs(105));
        assert!(s > 0.9, "compounded score {s}");
        assert!(s < 1.0 + t.config.rack_weight + 1e-9);
    }

    #[test]
    fn gray_failure_scores_half_a_crash_and_spares_the_rack() {
        let mut t = tracker();
        let now = SimTime::from_secs(100);
        t.record_degraded(NodeId(1), now);
        let gray = t.score(NodeId(1), RackId(0), now);
        let mut c = tracker();
        c.record_failure(NodeId(1), RackId(0), now);
        let crash_node_only = 0.5; // failure_boost, node term alone
        assert!((gray - crash_node_only / 2.0).abs() < 1e-9, "gray={gray}");
        assert!(gray < c.score(NodeId(1), RackId(0), now));
        // Rack siblings are untouched by a gray failure.
        assert_eq!(t.score(NodeId(0), RackId(0), now), 0.0);
        // Disabled tracker ignores it entirely.
        let mut off = ReliabilityTracker::new(ReliabilityConfig::default(), 4, 2);
        off.record_degraded(NodeId(1), now);
        assert_eq!(off.score(NodeId(1), RackId(0), now), 0.0);
    }

    #[test]
    fn rack_churn_taints_members() {
        let mut cfg = ReliabilityConfig::predictive();
        cfg.rack_weight = 1.0;
        let mut t = ReliabilityTracker::new(cfg, 4, 2);
        let now = SimTime::from_secs(50);
        t.record_failure(NodeId(0), RackId(0), now);
        // A sibling that never failed itself is still flaky via the rack term.
        assert!(t.flaky(NodeId(1), RackId(0), now));
        assert!(!t.flaky(NodeId(3), RackId(1), now));
    }
}
