//! Task attempt execution model.
//!
//! A task attempt is a child process on a TaskTracker that goes through a
//! small number of phases. The paper's synthetic mappers "read and parse the
//! randomly generated input"; their duration is dominated by the parse rate,
//! with fixed startup and commit overheads. Memory behaviour is concentrated
//! in the setup phase (the worst-case experiments allocate their state there,
//! writing random values so every page is dirty) and the finalize phase
//! (where the state is read back).
//!
//! Phases:
//!
//! * `Setup` — JVM startup + allocation of the base footprint and any
//!   configured state memory (stall from paging other processes out is
//!   charged here).
//! * `Shuffle` — reduce tasks only: copy map outputs.
//! * `Work` — the parse loop; the only phase where progress accrues and where
//!   suspension takes effect. It can be split into several segments by
//!   suspend/resume cycles.
//! * `Finalize` — fault back in anything the task itself had swapped, write
//!   the output, commit.

use crate::config::TaskDefaults;
use crate::job::{AttemptId, TaskId, TaskKind, TaskProfile};
use mrp_dfs::Locality;
use mrp_sim::{EventId, SimDuration, SimTime};
use mrp_simos::{DiskConfig, Pid};
use serde::{Deserialize, Serialize};

/// Execution phases of an attempt.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum AttemptPhase {
    /// JVM startup and memory allocation.
    Setup,
    /// Copying map outputs (reduce tasks only).
    Shuffle,
    /// Processing input; the suspendable phase.
    Work,
    /// Output write and commit.
    Finalize,
}

/// TaskTracker-side state of an attempt.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum AttemptState {
    /// Executing one of its phases.
    Running,
    /// Stopped by `SIGTSTP`; keeps its memory, holds no slot.
    Suspended,
    /// Finished successfully.
    Succeeded,
    /// Terminated by `SIGKILL`.
    Killed,
}

/// Pre-computed durations and memory plan for an attempt.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExecPlan {
    /// Duration of the setup phase (before any paging stall).
    pub setup: SimDuration,
    /// Duration of the shuffle phase (zero for maps).
    pub shuffle: SimDuration,
    /// Duration of the work phase if never interrupted.
    pub work: SimDuration,
    /// Duration of the finalize phase (before any page-in stall).
    pub finalize: SimDuration,
    /// Total memory allocated at the end of setup (base + state).
    pub memory: u64,
    /// Dirty fraction of that allocation.
    pub dirty_fraction: f64,
    /// Input bytes consumed.
    pub input_bytes: u64,
    /// Output bytes produced at finalize.
    pub output_bytes: u64,
}

impl ExecPlan {
    /// Builds the plan for a map attempt reading `input_bytes` with the given
    /// data locality.
    pub fn for_map(
        defaults: &TaskDefaults,
        disk: &DiskConfig,
        profile: &TaskProfile,
        input_bytes: u64,
        locality: Locality,
    ) -> ExecPlan {
        let parse_rate = profile
            .parse_rate_bytes_per_sec
            .unwrap_or(defaults.parse_rate_bytes_per_sec);
        // The map task streams its input; the effective rate is bounded by
        // both the parse loop and the (locality-degraded) disk/network read.
        let read_rate = disk.seq_read_bytes_per_sec * locality.throughput_factor();
        let rate = parse_rate.min(read_rate).max(1.0);
        let output_ratio = profile.output_ratio.unwrap_or(defaults.output_ratio);
        let output_bytes = (input_bytes as f64 * output_ratio) as u64;
        let write_time = output_bytes as f64 / disk.seq_write_bytes_per_sec;
        ExecPlan {
            setup: defaults.jvm_startup,
            shuffle: SimDuration::ZERO,
            work: SimDuration::from_secs_f64(input_bytes as f64 / rate),
            finalize: defaults.commit_overhead + SimDuration::from_secs_f64(write_time),
            memory: defaults.base_memory + profile.state_memory,
            dirty_fraction: ExecPlan::combined_dirty_fraction(defaults, profile),
            input_bytes,
            output_bytes,
        }
    }

    /// Builds the plan for a reduce attempt shuffling `shuffle_bytes` of map
    /// output at the nominal (uncontended) copy rate.
    pub fn for_reduce(
        defaults: &TaskDefaults,
        disk: &DiskConfig,
        profile: &TaskProfile,
        shuffle_bytes: u64,
    ) -> ExecPlan {
        ExecPlan::for_reduce_contended(defaults, disk, profile, shuffle_bytes, 1.0)
    }

    /// Builds the plan for a reduce attempt whose shuffle phase is stretched
    /// by `contention` (≥ 1): the cross-rack bandwidth term of
    /// [`ShuffleConfig`](crate::ShuffleConfig). Only the shuffle phase pays —
    /// once the bytes are local, the sort/reduce work is network-independent.
    pub fn for_reduce_contended(
        defaults: &TaskDefaults,
        disk: &DiskConfig,
        profile: &TaskProfile,
        shuffle_bytes: u64,
        contention: f64,
    ) -> ExecPlan {
        let parse_rate = profile
            .parse_rate_bytes_per_sec
            .unwrap_or(defaults.parse_rate_bytes_per_sec)
            .max(1.0);
        let output_ratio = profile.output_ratio.unwrap_or(defaults.output_ratio);
        let output_bytes = (shuffle_bytes as f64 * output_ratio) as u64;
        let write_time = output_bytes as f64 / disk.seq_write_bytes_per_sec;
        ExecPlan {
            setup: defaults.jvm_startup,
            shuffle: SimDuration::from_secs_f64(
                shuffle_bytes as f64 / defaults.shuffle_bytes_per_sec * contention.max(1.0),
            ),
            work: SimDuration::from_secs_f64(shuffle_bytes as f64 / parse_rate),
            finalize: defaults.commit_overhead + SimDuration::from_secs_f64(write_time),
            memory: defaults.base_memory + profile.state_memory,
            dirty_fraction: ExecPlan::combined_dirty_fraction(defaults, profile),
            input_bytes: shuffle_bytes,
            output_bytes,
        }
    }

    fn combined_dirty_fraction(defaults: &TaskDefaults, profile: &TaskProfile) -> f64 {
        let total = (defaults.base_memory + profile.state_memory) as f64;
        if total == 0.0 {
            return 0.0;
        }
        (defaults.base_memory as f64 * defaults.base_memory_dirty_fraction
            + profile.state_memory as f64 * profile.state_dirty_fraction)
            / total
    }

    /// Total duration if never interrupted and never paging.
    pub fn nominal_duration(&self) -> SimDuration {
        self.setup + self.shuffle + self.work + self.finalize
    }
}

/// A live attempt on a TaskTracker.
#[derive(Clone, Debug)]
pub struct Attempt {
    /// The attempt's identifier.
    pub id: AttemptId,
    /// The task it belongs to.
    pub task: TaskId,
    /// Kind (map/reduce), cached to pick the right slot pool.
    pub kind: TaskKind,
    /// The OS process running the attempt.
    pub pid: Pid,
    /// Current phase.
    pub phase: AttemptPhase,
    /// TaskTracker-side state.
    pub state: AttemptState,
    /// Pre-computed execution plan.
    pub plan: ExecPlan,
    /// When the attempt started (setup begin).
    pub started_at: SimTime,
    /// When the current phase segment started.
    pub segment_start: SimTime,
    /// Planned duration of the current phase segment.
    pub segment_duration: SimDuration,
    /// Event that will fire when the current segment completes, if running.
    pub segment_event: Option<EventId>,
    /// Work-phase time already completed across previous segments.
    pub work_completed: SimDuration,
    /// Shuffle re-fetch rounds this attempt has gone through while waiting
    /// for lost map outputs to be re-executed (reduces only; drives the
    /// exponential backoff schedule).
    pub shuffle_retries: u32,
}

impl Attempt {
    /// Creates a new attempt about to begin its setup phase.
    pub fn new(id: AttemptId, kind: TaskKind, pid: Pid, plan: ExecPlan, now: SimTime) -> Self {
        Attempt {
            id,
            task: id.task,
            kind,
            pid,
            phase: AttemptPhase::Setup,
            state: AttemptState::Running,
            plan,
            started_at: now,
            segment_start: now,
            segment_duration: SimDuration::ZERO,
            segment_event: None,
            work_completed: SimDuration::ZERO,
            shuffle_retries: 0,
        }
    }

    /// Fraction of the work phase completed at `now` (what the TaskTracker
    /// reports as progress, and what the paper's `r%` refers to).
    pub fn progress(&self, now: SimTime) -> f64 {
        if self.plan.work.is_zero() {
            return match self.phase {
                AttemptPhase::Setup | AttemptPhase::Shuffle => 0.0,
                _ => 1.0,
            };
        }
        let mut done = self.work_completed;
        if self.phase == AttemptPhase::Work && self.state == AttemptState::Running {
            done += now - self.segment_start;
        }
        if self.phase == AttemptPhase::Finalize || self.state == AttemptState::Succeeded {
            return 1.0;
        }
        (done.as_secs_f64() / self.plan.work.as_secs_f64()).clamp(0.0, 1.0)
    }

    /// Work-phase time still to run.
    pub fn remaining_work(&self) -> SimDuration {
        self.plan.work.saturating_sub(self.work_completed)
    }

    /// Records that the work segment running since `segment_start` was
    /// interrupted at `now` (suspension or kill), accumulating completed work.
    pub fn interrupt_work(&mut self, now: SimTime) {
        if self.phase == AttemptPhase::Work && self.state == AttemptState::Running {
            self.work_completed += now - self.segment_start;
            if self.work_completed > self.plan.work {
                self.work_completed = self.plan.work;
            }
        }
    }

    /// Time this attempt has spent running (excluding suspension), assuming
    /// it is currently at the start of `now`'s segment; used for wasted-work
    /// accounting when an attempt is killed.
    pub fn invested_time(&self, now: SimTime) -> SimDuration {
        let phase_time = match self.phase {
            AttemptPhase::Setup => now - self.segment_start,
            _ => self.plan.setup,
        };
        let work_time = if self.phase == AttemptPhase::Work && self.state == AttemptState::Running {
            self.work_completed + (now - self.segment_start)
        } else {
            self.work_completed
        };
        phase_time + work_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;
    use mrp_sim::MIB;

    fn defaults() -> TaskDefaults {
        TaskDefaults::default()
    }

    fn attempt_id() -> AttemptId {
        AttemptId {
            task: TaskId {
                job: JobId(1),
                kind: TaskKind::Map,
                index: 0,
            },
            number: 0,
        }
    }

    #[test]
    fn map_plan_is_parse_bound_for_local_reads() {
        let plan = ExecPlan::for_map(
            &defaults(),
            &DiskConfig::default(),
            &TaskProfile::lightweight(),
            512 * MIB,
            Locality::NodeLocal,
        );
        let work = plan.work.as_secs_f64();
        assert!(
            (70.0..90.0).contains(&work),
            "512MB at ~6.7MB/s ≈ 76s, got {work}"
        );
        assert!(plan.nominal_duration().as_secs_f64() > work);
        assert_eq!(plan.shuffle, SimDuration::ZERO);
        assert_eq!(plan.memory, defaults().base_memory);
    }

    #[test]
    fn remote_reads_are_not_slower_when_parse_bound() {
        // Parse rate (6.7 MB/s) is far below even off-rack read bandwidth, so
        // locality barely matters for the paper's synthetic jobs.
        let local = ExecPlan::for_map(
            &defaults(),
            &DiskConfig::default(),
            &TaskProfile::lightweight(),
            512 * MIB,
            Locality::NodeLocal,
        );
        let remote = ExecPlan::for_map(
            &defaults(),
            &DiskConfig::default(),
            &TaskProfile::lightweight(),
            512 * MIB,
            Locality::OffRack,
        );
        assert_eq!(local.work, remote.work);
    }

    #[test]
    fn locality_matters_when_io_bound() {
        let mut profile = TaskProfile::lightweight();
        profile.parse_rate_bytes_per_sec = Some(1e12); // effectively IO-bound
        let local = ExecPlan::for_map(
            &defaults(),
            &DiskConfig::default(),
            &profile,
            512 * MIB,
            Locality::NodeLocal,
        );
        let remote = ExecPlan::for_map(
            &defaults(),
            &DiskConfig::default(),
            &profile,
            512 * MIB,
            Locality::OffRack,
        );
        assert!(remote.work > local.work);
    }

    #[test]
    fn memory_hungry_profile_increases_memory_not_duration() {
        let light = ExecPlan::for_map(
            &defaults(),
            &DiskConfig::default(),
            &TaskProfile::lightweight(),
            512 * MIB,
            Locality::NodeLocal,
        );
        let heavy = ExecPlan::for_map(
            &defaults(),
            &DiskConfig::default(),
            &TaskProfile::memory_hungry(2048 * MIB),
            512 * MIB,
            Locality::NodeLocal,
        );
        assert_eq!(light.work, heavy.work);
        assert_eq!(heavy.memory, defaults().base_memory + 2048 * MIB);
        assert!(heavy.dirty_fraction > light.dirty_fraction);
    }

    #[test]
    fn reduce_plan_has_shuffle() {
        let plan = ExecPlan::for_reduce(
            &defaults(),
            &DiskConfig::default(),
            &TaskProfile::lightweight(),
            256 * MIB,
        );
        assert!(plan.shuffle > SimDuration::ZERO);
        assert!(plan.work > SimDuration::ZERO);
    }

    #[test]
    fn contended_reduce_stretches_only_the_shuffle_phase() {
        let base = ExecPlan::for_reduce(
            &defaults(),
            &DiskConfig::default(),
            &TaskProfile::lightweight(),
            256 * MIB,
        );
        let contended = ExecPlan::for_reduce_contended(
            &defaults(),
            &DiskConfig::default(),
            &TaskProfile::lightweight(),
            256 * MIB,
            1.5,
        );
        assert!((contended.shuffle.as_secs_f64() - base.shuffle.as_secs_f64() * 1.5).abs() < 1e-6);
        assert_eq!(contended.work, base.work);
        assert_eq!(contended.finalize, base.finalize);
        // Sub-unit contention is clamped to the nominal rate.
        let clamped = ExecPlan::for_reduce_contended(
            &defaults(),
            &DiskConfig::default(),
            &TaskProfile::lightweight(),
            256 * MIB,
            0.25,
        );
        assert_eq!(clamped, base);
    }

    #[test]
    fn progress_accrues_only_in_work_phase() {
        let plan = ExecPlan::for_map(
            &defaults(),
            &DiskConfig::default(),
            &TaskProfile::lightweight(),
            512 * MIB,
            Locality::NodeLocal,
        );
        let work = plan.work;
        let mut a = Attempt::new(attempt_id(), TaskKind::Map, Pid(1), plan, SimTime::ZERO);
        // During setup progress stays 0.
        assert_eq!(a.progress(SimTime::from_secs(2)), 0.0);
        // Enter work phase at t=3.
        a.phase = AttemptPhase::Work;
        a.segment_start = SimTime::from_secs(3);
        let halfway = SimTime::from_secs(3) + work.mul_f64(0.5);
        let p = a.progress(halfway);
        assert!(
            (p - 0.5).abs() < 0.01,
            "progress at half the work should be ~0.5, got {p}"
        );
        // Suspend at halfway: progress freezes.
        a.interrupt_work(halfway);
        a.state = AttemptState::Suspended;
        let later = halfway + SimDuration::from_secs(100);
        assert!((a.progress(later) - 0.5).abs() < 0.01);
        assert!((a.remaining_work().as_secs_f64() - work.as_secs_f64() * 0.5).abs() < 1.0);
    }

    #[test]
    fn interrupt_clamps_at_full_work() {
        let plan = ExecPlan::for_map(
            &defaults(),
            &DiskConfig::default(),
            &TaskProfile::lightweight(),
            64 * MIB,
            Locality::NodeLocal,
        );
        let work = plan.work;
        let mut a = Attempt::new(attempt_id(), TaskKind::Map, Pid(1), plan, SimTime::ZERO);
        a.phase = AttemptPhase::Work;
        a.segment_start = SimTime::ZERO;
        a.interrupt_work(SimTime::ZERO + work + SimDuration::from_secs(50));
        assert_eq!(a.remaining_work(), SimDuration::ZERO);
        assert_eq!(a.progress(SimTime::from_secs(1_000)), 1.0);
    }

    #[test]
    fn zero_work_progress_is_phase_based() {
        let mut plan = ExecPlan::for_map(
            &defaults(),
            &DiskConfig::default(),
            &TaskProfile::lightweight(),
            0,
            Locality::NodeLocal,
        );
        plan.work = SimDuration::ZERO;
        let mut a = Attempt::new(attempt_id(), TaskKind::Map, Pid(1), plan, SimTime::ZERO);
        assert_eq!(a.progress(SimTime::ZERO), 0.0);
        a.phase = AttemptPhase::Finalize;
        assert_eq!(a.progress(SimTime::ZERO), 1.0);
    }

    #[test]
    fn invested_time_accounts_setup_and_work() {
        let plan = ExecPlan::for_map(
            &defaults(),
            &DiskConfig::default(),
            &TaskProfile::lightweight(),
            512 * MIB,
            Locality::NodeLocal,
        );
        let mut a = Attempt::new(
            attempt_id(),
            TaskKind::Map,
            Pid(1),
            plan.clone(),
            SimTime::ZERO,
        );
        a.phase = AttemptPhase::Work;
        a.segment_start = SimTime::from_secs(3);
        let t = SimTime::from_secs(33);
        let invested = a.invested_time(t).as_secs_f64();
        assert!((invested - (plan.setup.as_secs_f64() + 30.0)).abs() < 0.5);
    }
}
