//! The simulated cluster: JobTracker, TaskTrackers, heartbeat protocol, and
//! the discrete-event loop.
//!
//! The [`Cluster`] plays the role of the JobTracker plus the glue that, in a
//! real deployment, is the network between the JobTracker and its
//! TaskTrackers. Commands issued by the scheduler (launch, kill, and the
//! paper's suspend/resume) are not applied instantaneously: they put the task
//! in a `MUST_*` state and are delivered when the involved TaskTracker next
//! heartbeats, exactly as Section III-B describes. TaskTrackers heartbeat
//! every `heartbeat_interval` and — as recommended for low-latency Hadoop
//! deployments — send an out-of-band heartbeat whenever a task completes, is
//! suspended, or is killed.
//!
//! # Hot-path design
//!
//! The event loop is the inner loop of every experiment, so its per-event
//! work is kept index-based and allocation-lean:
//!
//! * TaskTrackers live in a `Vec` indexed by node id (node ids are dense by
//!   construction), not a tree;
//! * per-node [`NodeView`] snapshots for scheduler policies are reusable
//!   buffers refreshed only for trackers whose occupancy changed since the
//!   last refresh (dirty tracking), instead of being rebuilt from scratch on
//!   every scheduler invocation;
//! * pending `MUST_*` commands are indexed per node, so a heartbeat delivers
//!   its commands in O(commands) instead of scanning every task of every job;
//! * "all jobs complete" is an incrementally maintained counter, not an
//!   O(jobs) scan per event;
//! * execution plans are built from borrowed config/profile state — no
//!   per-launch clones of profiles, disk configs or preferred-node lists;
//! * trace recording (and its string formatting) is gated behind
//!   [`TraceLevel`](crate::config::TraceLevel) so throughput runs pay nothing
//!   for it.

use crate::attempt::{AttemptPhase, AttemptState, ExecPlan};
use crate::config::{ClusterConfig, FaultEvent, FaultKind, RefreshMode, TraceLevel};
use crate::delay::DelayScoreboard;
use crate::job::{
    AttemptId, JobId, JobRuntime, JobSpec, JobTable, MapInput, TaskId, TaskKind, TaskRuntime,
    TaskState,
};
use crate::metrics::{
    ClusterReport, FaultStats, JobReport, LocalityStats, NodeReport, TraceEntry, TraceKind,
};
use crate::obs::{ObsState, SpanKey};
use crate::reliability::ReliabilityTracker;
use crate::scheduler::{
    NodeView, PendingTotals, RackView, SchedulerAction, SchedulerContext, SchedulerPolicy,
};
use crate::shuffle::ShuffleTracker;
use crate::tasktracker::{FailedAttempt, TaskTracker};
use mrp_dfs::{Locality, NameNode, NodeId, RackId, Topology};
use mrp_sim::{EventId, EventQueue, SimDuration, SimRng, SimTime};
use std::collections::VecDeque;

/// Events driving the cluster simulation.
#[derive(Clone, Debug)]
enum Event {
    /// A pre-registered job arrives.
    JobArrival { index: usize },
    /// An out-of-band TaskTracker heartbeat (periodic heartbeats come from
    /// the [`HeartbeatWheel`], not the event queue).
    Heartbeat { node: NodeId },
    /// The current phase segment of an attempt finished.
    PhaseDone {
        node: NodeId,
        attempt: AttemptId,
        phase: AttemptPhase,
    },
    /// The cleanup attempt of a killed task released its slot. `epoch` is
    /// the node's failure epoch at scheduling time: if the node failed in
    /// between, `fail` already freed every slot and the stale release is
    /// discarded.
    CleanupDone {
        node: NodeId,
        kind: TaskKind,
        epoch: u64,
    },
    /// A registered progress trigger fired.
    ProgressTrigger { index: usize },
    /// A fault-plan event (node kill/decommission/rejoin, rack outage)
    /// strikes; `index` points into the cluster's resolved fault schedule.
    Fault { index: usize },
    /// A failure-detector timer: `confirm == false` is the missed-heartbeat
    /// suspicion check, `confirm == true` the post-grace confirmation.
    /// `epoch` is the node's suspicion epoch at arming time; a timer armed
    /// before the link state last changed is discarded.
    Detector {
        node: NodeId,
        epoch: u64,
        confirm: bool,
    },
}

/// Master-side view of the link to one node under the failure detector.
#[derive(Clone, Copy, Debug, PartialEq)]
enum LinkState {
    /// Heartbeats flowing normally.
    Up,
    /// The node is dead but the master has not noticed yet: no heartbeats
    /// arrive and no node-side events fire. `since` is when the fault struck.
    Silent { since: SimTime },
    /// The node is alive but cut off from the master: it keeps executing,
    /// yet the master hears nothing from it. `since` is when the partition
    /// struck.
    Partitioned { since: SimTime },
}

#[derive(Clone, Debug)]
enum TriggerState {
    Waiting,
    Armed { event: EventId, task: TaskId },
    Fired,
}

/// A progress watch: fires when the named task first reaches the given
/// fraction of its work phase. Used by trigger-driven experiment schedulers
/// to reproduce the paper's "preempt tl at r% progress" scenarios exactly.
#[derive(Clone, Debug)]
struct ProgressTrigger {
    job_name: String,
    task_index: u32,
    fraction: f64,
    state: TriggerState,
}

/// Per-rack shard of the cluster's heartbeat bookkeeping: the rack's member
/// nodes and a dirty list of members whose tracker state changed since the
/// last view refresh. Shards keep a scheduling round O(changed nodes): racks
/// with an empty dirty list are never even visited.
#[derive(Debug, Default)]
struct RackShard {
    /// Node indices (dense ids) in this rack.
    members: Vec<u32>,
    /// Members whose tracker state changed since the last refresh (may
    /// contain duplicates; the tracker's dirty flag dedups the rebuild).
    dirty: Vec<u32>,
    /// Whether this shard is already queued on the cluster's dirty-rack list.
    queued: bool,
}

/// O(1) source of the periodic heartbeat schedule: every node heartbeats
/// every `interval`, staggered evenly over one interval, so the rotation is
/// pure arithmetic — node `idx` of cycle `c` fires at
/// `c * interval + interval * (idx + 1) / (nodes + 1)`. Computing the
/// periodic heartbeats instead of storing them keeps the 10k heartbeat
/// events of a large cluster out of the central heap entirely; without the
/// wheel they dominate the heap and make every pop O(log nodes) over a
/// cache-hostile working set.
#[derive(Debug)]
struct HeartbeatWheel {
    interval_us: u64,
    nodes: u64,
    /// Next node to fire (dense id).
    idx: u64,
    /// Completed full rotations.
    cycle: u64,
}

impl HeartbeatWheel {
    fn new(interval_us: u64, nodes: u64) -> Self {
        HeartbeatWheel {
            interval_us,
            nodes,
            idx: 0,
            cycle: 0,
        }
    }

    /// Timestamp of the next periodic heartbeat.
    fn peek(&self) -> SimTime {
        let offset = (self.interval_us * (self.idx + 1) / (self.nodes + 1)).max(1);
        SimTime::from_micros(self.cycle * self.interval_us + offset)
    }

    /// Consumes the next periodic heartbeat, returning its node.
    fn advance(&mut self) -> NodeId {
        let node = NodeId(self.idx as u32);
        self.idx += 1;
        if self.idx == self.nodes {
            self.idx = 0;
            self.cycle += 1;
        }
        node
    }
}

/// The simulated Hadoop cluster.
pub struct Cluster {
    config: ClusterConfig,
    queue: EventQueue<Event>,
    namenode: NameNode,
    /// TaskTrackers indexed by node id (node ids are dense: 0..n).
    trackers: Vec<TaskTracker>,
    jobs: JobTable,
    scheduler: Box<dyn SchedulerPolicy>,
    rng: SimRng,
    pending_arrivals: Vec<(SimTime, Option<JobSpec>)>,
    arrivals_remaining: usize,
    triggers: Vec<ProgressTrigger>,
    trace: Vec<TraceEntry>,
    next_job_id: u32,
    /// Reusable per-node scheduler views, refreshed via dirty tracking.
    views: Vec<NodeView>,
    /// Rack of each node (dense rack ids, indexed by dense node id).
    node_rack: Vec<u32>,
    /// Per-rack shards: members plus the rack-local dirty list.
    shards: Vec<RackShard>,
    /// Racks with a non-empty dirty list (no duplicates; `RackShard::queued`
    /// guards the push).
    dirty_racks: Vec<u32>,
    /// Per-rack aggregate free-slot counters, maintained by delta whenever a
    /// member view is rebuilt; handed to schedulers as
    /// [`RackView`](crate::scheduler::RackView) slices.
    rack_views: Vec<RackView>,
    /// Pending `MUST_*` commands indexed by node; delivered at heartbeats.
    pending_cmds: Vec<Vec<TaskId>>,
    /// Reusable buffer for per-heartbeat progress refreshes (attempt id,
    /// task, reported progress).
    progress_buf: Vec<(AttemptId, TaskId, f64)>,
    /// Jobs registered but not yet complete (incremental completion count).
    incomplete_jobs: usize,
    /// Events handled by [`Cluster::run`] so far (throughput accounting).
    events_processed: u64,
    /// Map-task launches bucketed by input locality.
    locality: LocalityStats,
    /// Cluster-wide pending-work counters (see [`PendingTotals`]), updated on
    /// every task state transition alongside the per-job counters.
    totals: PendingTotals,
    /// Computed periodic-heartbeat schedule (see [`HeartbeatWheel`]).
    wheel: HeartbeatWheel,
    /// Resolved fault schedule (scripted events plus pre-drawn random churn),
    /// referenced by [`Event::Fault`] indexes.
    fault_events: Vec<FaultEvent>,
    /// Number of leading `fault_events` entries that came from the user's
    /// script (the rest are generated churn).
    scripted_faults: usize,
    /// Nodes whose current outage was caused by a *churn* kill. A churn
    /// rejoin only revives these: an absorbed churn strike on a node that a
    /// scripted kill, rack outage or decommission took down must not let its
    /// paired recovery cut the scripted outage short. Scripted rejoins (an
    /// operator action) revive anything.
    churn_down: Vec<bool>,
    /// Fault-injection and speculation counters for the report.
    fault_stats: FaultStats,
    /// Delay-scheduling state (per-job wait clocks and skip counters),
    /// shared with policies through the [`SchedulerContext`].
    delay: DelayScoreboard,
    /// Per-job map-output registry: which node holds each committed map's
    /// output and how those bytes spread over racks. Shared read-only with
    /// policies through the [`SchedulerContext`].
    shuffle: ShuffleTracker,
    /// ATLAS-style failure-history scores per node and rack, fed by observed
    /// crashes and shared read-only with policies.
    reliability: ReliabilityTracker,
    /// Master-side link state per node (suspicion-based failure detection
    /// and network partitions). All `Up` while those fault kinds are unused.
    link: Vec<LinkState>,
    /// Per-node suspicion epoch: detector timers carry the epoch they were
    /// armed in and are discarded if the link state changed since.
    suspect_epoch: Vec<u64>,
    /// When each node's last heartbeat reached the master (`SimTime::ZERO`
    /// before the first); anchors the missed-heartbeat timeout so detection
    /// lag is bounded by the timeout plus one heartbeat interval.
    last_heartbeat: Vec<SimTime>,
    /// Completions finished on a node behind a partition, buffered until the
    /// heal reconciles them first-commit-wins.
    partition_buffer: Vec<Vec<AttemptId>>,
    /// Per-node gray-failure multipliers `(slow_disk, slow_net)`; `(1.0,
    /// 1.0)` while healthy. Applied to new launches only: a degraded node
    /// stretches the plans of work placed on it, it does not rewrite history.
    gray: Vec<(f64, f64)>,
    /// Observability state (metrics registry, series sampler, event-loop
    /// profiler, span trace); `None` unless [`ObsConfig`](crate::ObsConfig)
    /// is enabled, so the default path pays one null check per site.
    obs: Option<Box<ObsState>>,
}

impl Cluster {
    /// Builds a cluster from a configuration and a scheduling policy.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see
    /// [`ClusterConfig::validate`]); a bad configuration is a programming
    /// error in the experiment, not a runtime condition.
    pub fn new(config: ClusterConfig, scheduler: Box<dyn SchedulerPolicy>) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid cluster configuration: {e}"));
        let node_count = config.nodes.len();
        let topology = Topology::blocked(node_count as u32, config.racks);
        let mut trackers = Vec::with_capacity(node_count);
        let mut views = Vec::with_capacity(node_count);
        let mut queue = EventQueue::new();
        // First heartbeats are staggered evenly over one interval by the
        // wheel, so they neither all land on the same instant nor (as a
        // fixed per-node offset would at 10k nodes) stretch the cluster's
        // start-up over many minutes of virtual time.
        let wheel = HeartbeatWheel::new(config.heartbeat_interval.as_micros(), node_count as u64);
        for (i, node_cfg) in config.nodes.iter().enumerate() {
            let id = NodeId(i as u32);
            trackers.push(TaskTracker::new(
                id,
                node_cfg.os.clone(),
                node_cfg.map_slots,
                node_cfg.reduce_slots,
            ));
            views.push(NodeView {
                id,
                free_map_slots: node_cfg.map_slots,
                free_reduce_slots: node_cfg.reduce_slots,
                running: Vec::new(),
                suspended: Vec::new(),
            });
        }
        // Per-rack shards and aggregate free-slot counters.
        let mut node_rack = vec![0u32; node_count];
        let mut shards: Vec<RackShard> = Vec::with_capacity(topology.rack_count());
        let mut rack_views: Vec<RackView> = Vec::with_capacity(topology.rack_count());
        for rack in 0..topology.rack_count() {
            let members: Vec<u32> = topology
                .members_of(RackId(rack as u32))
                .iter()
                .map(|n| n.0)
                .collect();
            let mut rv = RackView {
                id: RackId(rack as u32),
                nodes: members.len() as u32,
                free_map_slots: 0,
                free_reduce_slots: 0,
            };
            for &m in &members {
                node_rack[m as usize] = rack as u32;
                rv.free_map_slots += config.nodes[m as usize].map_slots;
                rv.free_reduce_slots += config.nodes[m as usize].reduce_slots;
            }
            shards.push(RackShard {
                dirty: members.clone(),
                members,
                queued: true,
            });
            rack_views.push(rv);
        }
        let namenode = NameNode::new(topology, config.dfs_block_size, config.dfs_replication);
        let rng = SimRng::new(config.seed);
        let rack_count = shards.len();
        // Resolve the fault plan: scripted events first, then per-rack random
        // churn drawn from a dedicated seed (one derived stream per rack, so
        // adding a rack never perturbs another rack's failure times). All
        // fault events go through the ordinary event heap; whether they fire
        // is decided by the run loop like any other event.
        let mut fault_events = config.faults.events.clone();
        // Events below this index are the user's scripted ones; everything
        // appended by the random generator is churn. The distinction matters
        // at fire time: a churn rejoin must never resurrect a node an
        // operator decommissioned.
        let scripted_faults = fault_events.len();
        if let Some(rf) = config.faults.random {
            let frng = SimRng::new(rf.seed);
            for (rack, shard) in shards.iter().enumerate() {
                if shard.members.is_empty() {
                    continue;
                }
                let mut rrng = frng.derive(rack as u64);
                let mut clock = 0.0f64;
                // Scheduled recovery time per member: a strike on a node
                // still down from an earlier strike is absorbed (no Kill, and
                // crucially no orphaned Rejoin that would cut the first
                // outage short).
                let mut down_until = vec![f64::NEG_INFINITY; shard.members.len()];
                loop {
                    clock += rrng.exponential(rf.rack_mtbf_secs);
                    let at = SimTime::from_secs_f64(clock);
                    if at > rf.horizon {
                        break;
                    }
                    let member = rrng.index(shard.members.len());
                    if clock < down_until[member] {
                        continue;
                    }
                    let node = NodeId(shard.members[member]);
                    // Single construction point for churn events: a strike is
                    // a kill plus, when recovery is configured, its paired
                    // rejoin.
                    let mut push_churn = |at: SimTime, kind: FaultKind| {
                        fault_events.push(FaultEvent { at, kind });
                    };
                    push_churn(at, FaultKind::Kill { node });
                    if let Some(recovery) = rf.mean_recovery_secs {
                        let downtime = rrng.exponential(recovery).max(1.0);
                        down_until[member] = clock + downtime;
                        push_churn(
                            at + SimDuration::from_secs_f64(downtime),
                            FaultKind::Rejoin { node },
                        );
                    } else {
                        down_until[member] = f64::INFINITY;
                    }
                }
            }
        }
        for (index, ev) in fault_events.iter().enumerate() {
            queue.schedule(ev.at, Event::Fault { index });
        }
        let delay = DelayScoreboard::new(config.delay);
        let shuffle = ShuffleTracker::new(config.shuffle, rack_count);
        let reliability = ReliabilityTracker::new(config.reliability, node_count, rack_count);
        let obs = config
            .obs
            .enabled
            .then(|| Box::new(ObsState::new(config.obs)));
        Cluster {
            config,
            queue,
            namenode,
            trackers,
            jobs: JobTable::new(),
            scheduler,
            rng,
            pending_arrivals: Vec::new(),
            arrivals_remaining: 0,
            triggers: Vec::new(),
            trace: Vec::new(),
            next_job_id: 1,
            views,
            node_rack,
            shards,
            dirty_racks: (0..rack_count as u32).collect(),
            rack_views,
            pending_cmds: vec![Vec::new(); node_count],
            progress_buf: Vec::new(),
            incomplete_jobs: 0,
            events_processed: 0,
            locality: LocalityStats::default(),
            totals: PendingTotals::default(),
            wheel,
            fault_events,
            scripted_faults,
            churn_down: vec![false; node_count],
            fault_stats: FaultStats::default(),
            delay,
            shuffle,
            reliability,
            link: vec![LinkState::Up; node_count],
            suspect_epoch: vec![0; node_count],
            last_heartbeat: vec![SimTime::ZERO; node_count],
            partition_buffer: vec![Vec::new(); node_count],
            gray: vec![(1.0, 1.0); node_count],
            obs,
        }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Read access to the simulated NameNode.
    pub fn namenode(&self) -> &NameNode {
        &self.namenode
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// The recorded schedule trace (empty when tracing is
    /// [`TraceLevel::Off`]).
    pub fn trace(&self) -> &[TraceEntry] {
        &self.trace
    }

    /// Read access to the JobTracker's job table.
    pub fn jobs(&self) -> &JobTable {
        &self.jobs
    }

    /// Number of events processed by [`Cluster::run`] so far; the numerator
    /// of the `sim_throughput` bench's events/sec metric.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Map-task launch counts by input locality so far (also part of the
    /// end-of-run [`ClusterReport`]), including the delay-scheduling skip
    /// count maintained on the scoreboard.
    pub fn locality_stats(&self) -> LocalityStats {
        let mut stats = self.locality;
        stats.delayed_skips = self.delay.total_skips();
        stats
    }

    /// Read access to the delay-scheduling scoreboard (per-job wait clocks
    /// and skip counters), for tests and harnesses that assert on the delay
    /// state directly.
    pub fn delay_scoreboard(&self) -> &DelayScoreboard {
        &self.delay
    }

    /// Read access to the per-job map-output registry (which node holds each
    /// committed map's output), for tests and harnesses asserting on the
    /// shuffle fault path directly.
    pub fn shuffle_tracker(&self) -> &ShuffleTracker {
        &self.shuffle
    }

    /// Read access to the node-reliability predictor's failure-history
    /// scores.
    pub fn reliability_tracker(&self) -> &ReliabilityTracker {
        &self.reliability
    }

    /// Fault-injection and speculation counters so far (also part of the
    /// end-of-run [`ClusterReport`]).
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    /// The engine-maintained cluster-wide pending-work counters; exposed so
    /// tests can assert they match a recount from the job table.
    pub fn pending_totals(&self) -> PendingTotals {
        self.totals
    }

    /// The observability state — metrics registry, sampled time series,
    /// event-loop profile and span trace — accumulated so far; `None` unless
    /// [`ObsConfig`](crate::ObsConfig) is enabled.
    pub fn observability(&self) -> Option<&ObsState> {
        self.obs.as_deref()
    }

    /// Takes the observability state out of the cluster (for harnesses that
    /// want to keep the recordings but drop the cluster). Subsequent events
    /// are no longer observed.
    pub fn take_observability(&mut self) -> Option<Box<ObsState>> {
        self.obs.take()
    }

    /// Whether `node` is currently in service.
    pub fn node_is_alive(&self, node: NodeId) -> bool {
        self.tracker(node).map(|tt| tt.is_alive()).unwrap_or(false)
    }

    /// Alive *and* reachable: a partition victim the detector tore down is
    /// still alive but offers the master nothing, so promotion and placement
    /// paths must use this stricter check.
    fn node_in_service(&self, node: NodeId) -> bool {
        self.tracker(node)
            .map(|tt| tt.is_alive() && tt.is_reachable())
            .unwrap_or(false)
    }

    /// The per-rack aggregate free-slot counters, as schedulers see them
    /// after the most recent refresh.
    pub fn rack_views(&self) -> &[RackView] {
        &self.rack_views
    }

    fn tracker(&self, node: NodeId) -> Option<&TaskTracker> {
        self.trackers.get(node.0 as usize)
    }

    fn tracker_mut(&mut self, node: NodeId) -> Option<&mut TaskTracker> {
        self.trackers.get_mut(node.0 as usize)
    }

    /// Creates an input file in the simulated HDFS, writing it from node 0 so
    /// the paper's single-node experiments get node-local splits.
    pub fn create_input_file(&mut self, path: &str, len: u64) -> Result<(), mrp_dfs::DfsError> {
        let writer = self.namenode.topology().node_at(0);
        self.create_input_file_from(path, len, writer)
    }

    /// Creates an input file written from an explicit node, so multi-rack
    /// harnesses can spread first replicas over the cluster instead of
    /// stacking them all on node 0. `None` lets the NameNode pick a random
    /// writer.
    pub fn create_input_file_from(
        &mut self,
        path: &str,
        len: u64,
        writer: Option<NodeId>,
    ) -> Result<(), mrp_dfs::DfsError> {
        self.namenode
            .create_file(path, len, writer, &mut self.rng)?;
        Ok(())
    }

    /// Registers a job to arrive at `at`.
    pub fn submit_job_at(&mut self, spec: JobSpec, at: SimTime) {
        let index = self.pending_arrivals.len();
        self.pending_arrivals.push((at, Some(spec)));
        self.arrivals_remaining += 1;
        self.queue.schedule(at, Event::JobArrival { index });
    }

    /// Registers a job arriving at time zero.
    pub fn submit_job(&mut self, spec: JobSpec) {
        self.submit_job_at(spec, SimTime::ZERO);
    }

    /// Registers a progress trigger: when map task `task_index` of the job
    /// named `job_name` first reaches `fraction` of its work phase, the
    /// scheduler's `on_progress_trigger` hook is invoked. The trigger fires at
    /// most once; if the watched task is suspended or killed before reaching
    /// the fraction, the watch re-arms when it runs again.
    pub fn add_progress_trigger(&mut self, job_name: &str, task_index: u32, fraction: f64) {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1]"
        );
        self.triggers.push(ProgressTrigger {
            job_name: job_name.to_string(),
            task_index,
            fraction,
            state: TriggerState::Waiting,
        });
    }

    /// Runs the simulation until every submitted job completes, the event
    /// queue drains, or `max_time` is reached. Returns the final virtual time.
    pub fn run(&mut self, max_time: SimTime) -> SimTime {
        if let Some(obs) = self.obs.as_mut() {
            obs.loop_begin();
        }
        loop {
            if self.arrivals_remaining == 0 && self.all_jobs_complete() {
                break;
            }
            // Next event is the earlier of the queue's head and the wheel's
            // computed periodic heartbeat; on a timestamp tie the heartbeat
            // fires first (either order would be deterministic).
            let wheel_at = self.wheel.peek();
            let take_wheel = match self.queue.peek_time() {
                Some(queue_at) => wheel_at <= queue_at,
                None => true,
            };
            let next_at = if take_wheel {
                wheel_at
            } else {
                self.queue.peek_time().expect("checked above")
            };
            if next_at > max_time {
                break;
            }
            self.events_processed += 1;
            if take_wheel {
                self.queue.advance_to(wheel_at);
                let node = self.wheel.advance();
                if let Some(obs) = self.obs.as_mut() {
                    obs.note_event(0);
                }
                self.handle_heartbeat(node, wheel_at);
            } else {
                let (now, event) = self.queue.pop().expect("peeked event must exist");
                if let Some(obs) = self.obs.as_mut() {
                    obs.note_event(Self::event_kind(&event));
                }
                self.handle_event(now, event);
            }
            // The series sampler piggybacks on loop iterations (virtual-time
            // deadline polling) instead of scheduling events of its own, so
            // an observed run processes exactly the same event sequence.
            if self.obs.is_some() {
                self.obs_sample(next_at);
            }
        }
        if let Some(obs) = self.obs.as_mut() {
            obs.loop_end();
        }
        self.queue.now()
    }

    /// Profiler index of a queue event; index 0 is the heartbeat wheel (see
    /// [`crate::obs::EVENT_KINDS`]).
    fn event_kind(event: &Event) -> usize {
        match event {
            Event::JobArrival { .. } => 1,
            Event::Heartbeat { .. } => 2,
            Event::PhaseDone { .. } => 3,
            Event::CleanupDone { .. } => 4,
            Event::ProgressTrigger { .. } => 5,
            Event::Fault { .. } => 6,
            Event::Detector { .. } => 7,
        }
    }

    /// Polls the series sampler at `now`, recording one row when a sampling
    /// deadline has passed. Reads only — never mutates simulation state.
    fn obs_sample(&mut self, now: SimTime) {
        if !self.obs.as_ref().is_some_and(|o| o.series_due(now)) {
            return;
        }
        let mut free_map_slots = 0u64;
        let mut free_reduce_slots = 0u64;
        for rv in &self.rack_views {
            free_map_slots += u64::from(rv.free_map_slots);
            free_reduce_slots += u64::from(rv.free_reduce_slots);
        }
        let mut swapped_bytes = 0u64;
        let mut swap_backlog_bytes = 0u64;
        for tt in &self.trackers {
            swapped_bytes += tt.kernel().memory().swap_used();
            swap_backlog_bytes += tt.kernel().disk().background_pending();
        }
        let row = vec![
            u64::from(self.totals.schedulable_maps),
            u64::from(self.totals.schedulable_reduces),
            u64::from(self.totals.suspended),
            free_map_slots,
            free_reduce_slots,
            swapped_bytes,
            swap_backlog_bytes,
            self.fault_stats.nodes_suspected,
            self.incomplete_jobs as u64,
            self.events_processed,
        ];
        if let Some(obs) = self.obs.as_mut() {
            obs.record_series(now, row);
        }
    }

    fn all_jobs_complete(&self) -> bool {
        self.incomplete_jobs == 0
    }

    /// Builds the end-of-run report.
    pub fn report(&self) -> ClusterReport {
        ClusterReport {
            jobs: self.jobs.values().map(JobReport::from_runtime).collect(),
            nodes: self
                .trackers
                .iter()
                .map(|tt| {
                    let disk = tt.kernel().disk_stats();
                    NodeReport {
                        id: tt.id,
                        swap_out_bytes: disk.swap_bytes_out,
                        swap_in_bytes: disk.swap_bytes_in,
                        disk_read_bytes: disk.bytes_read,
                        disk_write_bytes: disk.bytes_written,
                        oom_kills: tt.kernel().memory_stats().oom_kills,
                        thrash_events: tt.kernel().memory_stats().thrash_events,
                        swap_io_secs: tt
                            .kernel()
                            .memory()
                            .swap_device()
                            .map(|dev| {
                                let s = dev.stats();
                                (s.swap_out_time + s.swap_in_time).as_secs_f64()
                            })
                            .unwrap_or(0.0),
                    }
                })
                .collect(),
            locality: self.locality_stats(),
            faults: self.fault_stats,
            finished_at: self.queue.now(),
        }
    }

    // ----- internal helpers -------------------------------------------------

    /// Whether schedule tracing is enabled; callers gate both the
    /// [`TraceEntry`] push and the detail-string formatting behind this, so a
    /// throughput run allocates nothing for tracing.
    #[inline]
    fn tracing(&self) -> bool {
        self.config.trace_level != TraceLevel::Off
    }

    fn trace_event(
        &mut self,
        at: SimTime,
        kind: TraceKind,
        job: JobId,
        task: Option<TaskId>,
        node: Option<NodeId>,
        detail: impl Into<String>,
    ) {
        if !self.tracing() {
            return;
        }
        self.trace.push(TraceEntry {
            at,
            kind,
            job,
            task,
            node,
            detail: detail.into(),
        });
    }

    /// Marks `node`'s view stale; the next [`Cluster::refresh_views`] rebuilds
    /// it. Call sites are the cluster paths that mutate tracker occupancy.
    /// The node goes on its rack's dirty list, and the rack on the cluster's
    /// dirty-rack list, so the refresh touches only racks with actual dirt.
    #[inline]
    fn mark_node_dirty(&mut self, node: NodeId) {
        let Some(&rack) = self.node_rack.get(node.0 as usize) else {
            return;
        };
        let shard = &mut self.shards[rack as usize];
        shard.dirty.push(node.0);
        if !shard.queued {
            shard.queued = true;
            self.dirty_racks.push(rack);
        }
    }

    /// Refreshes the reusable per-node scheduler views and the per-rack
    /// free-slot counters before a scheduling round.
    ///
    /// In the default [`RefreshMode::Sharded`] only racks on the dirty-rack
    /// list are visited, only nodes on their shards' dirty lists are
    /// inspected, and only trackers whose occupancy actually changed are
    /// rebuilt — O(changed nodes), not O(nodes). Rack counters are adjusted
    /// by the delta between a view's old and new free-slot counts.
    /// [`RefreshMode::Full`] instead rebuilds everything from scratch; it
    /// exists as the naive reference for equivalence tests.
    fn refresh_views(&mut self) {
        match self.config.refresh_mode {
            RefreshMode::Sharded => self.refresh_views_sharded(),
            RefreshMode::Full => self.refresh_views_full(),
        }
    }

    fn refresh_views_sharded(&mut self) {
        while let Some(rack) = self.dirty_racks.pop() {
            let shard = &mut self.shards[rack as usize];
            shard.queued = false;
            // Take the dirty list so the shard borrow does not overlap the
            // tracker/view borrows; nothing re-dirties nodes mid-refresh, and
            // the buffer (and its capacity) is handed back afterwards.
            let mut dirty = std::mem::take(&mut shard.dirty);
            for idx in dirty.drain(..) {
                let Some(tt) = self.trackers.get_mut(idx as usize) else {
                    continue;
                };
                if !tt.take_dirty() {
                    continue;
                }
                let view = &mut self.views[idx as usize];
                let rv = &mut self.rack_views[rack as usize];
                rv.free_map_slots = rv.free_map_slots + tt.free_map_slots() - view.free_map_slots;
                rv.free_reduce_slots =
                    rv.free_reduce_slots + tt.free_reduce_slots() - view.free_reduce_slots;
                fill_view(view, tt);
            }
            self.shards[rack as usize].dirty = dirty;
        }
    }

    fn refresh_views_full(&mut self) {
        self.dirty_racks.clear();
        for rack in 0..self.shards.len() {
            let shard = &mut self.shards[rack];
            shard.dirty.clear();
            shard.queued = false;
            let rv = &mut self.rack_views[rack];
            rv.free_map_slots = 0;
            rv.free_reduce_slots = 0;
            for mi in 0..self.shards[rack].members.len() {
                let idx = self.shards[rack].members[mi] as usize;
                let tt = &mut self.trackers[idx];
                let _ = tt.take_dirty();
                let view = &mut self.views[idx];
                fill_view(view, tt);
                let rv = &mut self.rack_views[rack];
                rv.free_map_slots += view.free_map_slots;
                rv.free_reduce_slots += view.free_reduce_slots;
            }
        }
    }

    fn task_mut(&mut self, id: TaskId) -> Option<&mut TaskRuntime> {
        self.jobs.get_mut(&id.job).and_then(|j| j.task_mut(id))
    }

    /// The counter-relevant classification of a task state:
    /// (schedulable, suspended, occupies a slot).
    #[inline]
    fn state_classes(state: TaskState) -> (bool, bool, bool) {
        (
            state.is_schedulable(),
            state == TaskState::Suspended,
            state.occupies_slot(),
        )
    }

    /// Adjusts the job's maintained per-state counters *and* the cluster-wide
    /// pending totals for one task of `kind` moving between the given
    /// classifications. Job counters and totals are updated from the same
    /// branches so they cannot drift apart — the O(1) heartbeat early-exits
    /// trust both to prove "no work exists".
    #[inline]
    fn apply_state_delta(
        job: &mut JobRuntime,
        totals: &mut PendingTotals,
        kind: TaskKind,
        before: (bool, bool, bool),
        after: (bool, bool, bool),
    ) {
        if before.0 != after.0 {
            let (job_field, total_field) = match kind {
                TaskKind::Map => (&mut job.schedulable_maps, &mut totals.schedulable_maps),
                TaskKind::Reduce => (
                    &mut job.schedulable_reduces,
                    &mut totals.schedulable_reduces,
                ),
            };
            if after.0 {
                *job_field += 1;
                *total_field += 1;
            } else {
                debug_assert!(*job_field > 0 && *total_field > 0);
                *job_field -= 1;
                *total_field -= 1;
            }
        }
        if before.1 != after.1 {
            if after.1 {
                job.suspended_count += 1;
                totals.suspended += 1;
            } else {
                debug_assert!(job.suspended_count > 0 && totals.suspended > 0);
                job.suspended_count -= 1;
                totals.suspended -= 1;
            }
        }
        if before.2 != after.2 {
            if after.2 {
                job.occupying_count += 1;
            } else {
                debug_assert!(job.occupying_count > 0);
                job.occupying_count -= 1;
            }
        }
    }

    /// Transitions `task` through the legality-checked state machine and
    /// keeps the owning job's schedulable/suspended/occupying counters in
    /// sync. Every engine-side task state change goes through here (or
    /// through [`Cluster::force_task_pending`] for the reset paths), so the
    /// counters schedulers rely on for O(1) job skipping stay exact.
    fn set_task_state(&mut self, task: TaskId, next: TaskState) {
        let Some(job) = self.jobs.get_mut(&task.job) else {
            return;
        };
        let before = {
            let Some(t) = job.task_mut(task) else { return };
            let before = Self::state_classes(t.state);
            t.set_state(next);
            before
        };
        let after = Self::state_classes(next);
        Self::apply_state_delta(job, &mut self.totals, task.kind, before, after);
    }

    /// Resets a task whose attempt vanished underneath the JobTracker (OOM
    /// kill, lost attempt) straight back to `Pending`, bypassing the legality
    /// check exactly like the old field assignments did, while keeping the
    /// job counters in sync.
    fn force_task_pending(&mut self, task: TaskId) {
        let Some(job) = self.jobs.get_mut(&task.job) else {
            return;
        };
        let before = {
            let Some(t) = job.task_mut(task) else { return };
            let before = Self::state_classes(t.state);
            t.state = TaskState::Pending;
            t.progress = 0.0;
            t.node = None;
            t.current_attempt = None;
            before
        };
        let after = Self::state_classes(TaskState::Pending);
        Self::apply_state_delta(job, &mut self.totals, task.kind, before, after);
    }

    /// Forces a task into `next` without the legality check, keeping the job
    /// counters in sync. Used by the fault paths, where a node vanishing
    /// under a task produces transitions the heartbeat protocol never would
    /// (e.g. `Suspended` → `Running` when a speculative backup is promoted).
    fn force_task_state(&mut self, task: TaskId, next: TaskState) {
        let Some(job) = self.jobs.get_mut(&task.job) else {
            return;
        };
        let before = {
            let Some(t) = job.task_mut(task) else { return };
            let before = Self::state_classes(t.state);
            t.state = next;
            before
        };
        let after = Self::state_classes(next);
        Self::apply_state_delta(job, &mut self.totals, task.kind, before, after);
    }

    /// Clears a task's speculative-attempt fields and decrements the owning
    /// job's live-speculation counter. Does *not* touch the backup attempt on
    /// its tracker — callers either killed it already or are promoting it.
    fn clear_speculation_fields(&mut self, task: TaskId) {
        let Some(job) = self.jobs.get_mut(&task.job) else {
            return;
        };
        let Some(t) = job.task_mut(task) else { return };
        if t.spec_attempt.take().is_some() {
            t.spec_node = None;
            debug_assert!(job.speculative_live > 0);
            job.speculative_live = job.speculative_live.saturating_sub(1);
        }
    }

    /// Debug-build invariant: the incrementally maintained job counters match
    /// a recount from the task list.
    #[cfg(debug_assertions)]
    fn debug_check_job_counters(&self, job: JobId) {
        if let Some(j) = self.jobs.get(&job) {
            let mut fresh = j.clone();
            fresh.recount_task_states();
            assert_eq!(
                (
                    j.schedulable_maps,
                    j.schedulable_reduces,
                    j.suspended_count,
                    j.occupying_count,
                    j.speculative_live
                ),
                (
                    fresh.schedulable_maps,
                    fresh.schedulable_reduces,
                    fresh.suspended_count,
                    fresh.occupying_count,
                    fresh.speculative_live
                ),
                "maintained task-state counters drifted for {job:?}"
            );
        }
        assert_eq!(
            self.totals,
            PendingTotals::from_jobs(&self.jobs),
            "maintained cluster-wide pending totals drifted"
        );
    }

    fn task(&self, id: TaskId) -> Option<&TaskRuntime> {
        self.jobs.get(&id.job).and_then(|j| j.task(id))
    }

    /// Records that `task` has a pending `MUST_*` command awaiting delivery
    /// at `node`'s next heartbeat.
    fn enqueue_command(&mut self, node: NodeId, task: TaskId) {
        if let Some(list) = self.pending_cmds.get_mut(node.0 as usize) {
            if !list.contains(&task) {
                list.push(task);
            }
        }
    }

    fn schedule_out_of_band_heartbeat(&mut self, node: NodeId, now: SimTime) {
        if self.config.out_of_band_heartbeats {
            self.queue.schedule(now, Event::Heartbeat { node });
        }
    }

    fn handle_event(&mut self, now: SimTime, event: Event) {
        match event {
            Event::JobArrival { index } => {
                self.arrivals_remaining -= 1;
                let spec = self.pending_arrivals[index]
                    .1
                    .take()
                    .expect("each arrival fires exactly once");
                self.register_job(spec, now);
            }
            Event::Heartbeat { node } => {
                self.handle_heartbeat(node, now);
            }
            Event::PhaseDone {
                node,
                attempt,
                phase,
            } => {
                if self.node_is_silent(node) {
                    return; // the node died with the fault; teardown follows
                }
                self.handle_phase_done(node, attempt, phase, now);
            }
            Event::CleanupDone { node, kind, epoch } => {
                if self.node_is_silent(node) {
                    return; // dead but undetected; the teardown frees slots
                }
                let Some(tt) = self.tracker_mut(node) else {
                    return;
                };
                if !tt.is_alive() || tt.epoch() != epoch {
                    return; // the node failed since; its slots were all freed
                }
                tt.release_slot(kind);
                self.mark_node_dirty(node);
                self.schedule_out_of_band_heartbeat(node, now);
            }
            Event::ProgressTrigger { index } => {
                self.handle_progress_trigger(index, now);
            }
            Event::Fault { index } => {
                self.handle_fault(index, now);
            }
            Event::Detector {
                node,
                epoch,
                confirm,
            } => {
                self.handle_detector(node, epoch, confirm, now);
            }
        }
    }

    // ----- fault injection --------------------------------------------------

    fn handle_fault(&mut self, index: usize, now: SimTime) {
        let scripted = index < self.scripted_faults;
        match self.fault_events[index].kind {
            FaultKind::Kill { node } => {
                // With the detector on, the kill only silences the node: the
                // master keeps scheduling around its stale view until the
                // missed-heartbeat timeout confirms the death.
                let downed = if self.config.detector.enabled {
                    self.begin_silence(node, now)
                } else {
                    self.fail_node(node, now, false)
                };
                if downed && !scripted {
                    self.churn_down[node.0 as usize] = true;
                }
            }
            FaultKind::Decommission { node } => {
                // An operator action: the master knows immediately, detector
                // or not.
                self.fail_node(node, now, true);
            }
            FaultKind::Rejoin { node } => self.rejoin_node(node, now, scripted),
            FaultKind::RackOutage { rack } => {
                let members = self
                    .shards
                    .get(rack.0 as usize)
                    .map(|s| s.members.clone())
                    .unwrap_or_default();
                for m in members {
                    // Rack outages are scripted-only: a member already down
                    // from churn now belongs to the scripted outage, so its
                    // pending churn recovery must not revive it.
                    if self.config.detector.enabled {
                        self.begin_silence(NodeId(m), now);
                    } else {
                        self.fail_node(NodeId(m), now, false);
                    }
                    self.churn_down[m as usize] = false;
                }
            }
            FaultKind::RackRejoin { rack } => {
                let members = self
                    .shards
                    .get(rack.0 as usize)
                    .map(|s| s.members.clone())
                    .unwrap_or_default();
                for m in members {
                    self.rejoin_node(NodeId(m), now, scripted);
                }
            }
            FaultKind::Partition { node } => self.partition_node(node, now),
            FaultKind::PartitionHeal { node } => self.heal_partition(node, now),
            FaultKind::RackPartition { rack } => {
                let members = self
                    .shards
                    .get(rack.0 as usize)
                    .map(|s| s.members.clone())
                    .unwrap_or_default();
                for m in members {
                    self.partition_node(NodeId(m), now);
                }
            }
            FaultKind::RackPartitionHeal { rack } => {
                let members = self
                    .shards
                    .get(rack.0 as usize)
                    .map(|s| s.members.clone())
                    .unwrap_or_default();
                for m in members {
                    self.heal_partition(NodeId(m), now);
                }
            }
            FaultKind::Gray {
                node,
                slow_disk,
                slow_net,
            } => self.degrade_node(node, slow_disk, slow_net, now),
            FaultKind::GrayHeal { node } => self.heal_degradation(node, now),
        }
    }

    /// Whether the node is dead-but-undetected: its node-side events are
    /// discarded until the detector confirms the death.
    #[inline]
    fn node_is_silent(&self, node: NodeId) -> bool {
        matches!(
            self.link.get(node.0 as usize),
            Some(LinkState::Silent { .. })
        )
    }

    /// Takes a node out of service: tears down its attempts (suspended-to-
    /// disk state is lost — the paper's key cost under failure), drops its
    /// pending commands, routes block loss through the NameNode with
    /// re-replication, and reconciles every incremental index so sharded and
    /// full refresh stay equivalent under churn.
    /// Returns `true` when the node was alive and actually taken down.
    fn fail_node(&mut self, node: NodeId, now: SimTime, decommission: bool) -> bool {
        let Some(tt) = self.tracker_mut(node) else {
            return false;
        };
        if !tt.is_alive() {
            return false; // duplicate fault (e.g. random churn hit a dead node)
        }
        let torn_down = tt.fail(now);
        self.mark_node_dirty(node);
        // Commands addressed to this node can never be delivered now; the
        // teardown below resets their tasks, so drop them wholesale.
        if let Some(cmds) = self.pending_cmds.get_mut(node.0 as usize) {
            cmds.clear();
        }
        for failed in torn_down {
            self.resolve_failed_attempt(failed, now);
        }
        // Map outputs are node-local artifacts, not HDFS blocks: a crash
        // destroys them and the affected *completed* maps go back to Pending
        // for re-execution, while a graceful decommission drains them to a
        // live node first so no re-execution is needed — mirroring the
        // NameNode's graceful-vs-crash block handling below.
        if self.shuffle.enabled() {
            let drain = if decommission {
                self.drain_target(node)
            } else {
                None
            };
            match drain {
                Some((to, to_rack)) => {
                    let rack = RackId(self.node_rack[node.0 as usize]);
                    let jobs: Vec<JobId> = self
                        .jobs
                        .values()
                        .filter(|j| j.completed_at.is_none())
                        .map(|j| j.id)
                        .collect();
                    for job in jobs {
                        let moved = self.shuffle.migrate(job, node, rack, to, to_rack);
                        self.fault_stats.map_outputs_migrated += moved;
                    }
                }
                // A crash — or a decommission with nowhere left to drain
                // to — loses the outputs.
                None => self.lose_map_outputs(node, now),
            }
        }
        // Only crashes feed the reliability predictor: a decommission is an
        // operator action, not evidence of flakiness.
        if !decommission {
            let rack = RackId(self.node_rack[node.0 as usize]);
            self.reliability.record_failure(node, rack, now);
        }
        // Block loss goes through the NameNode: replicas on the node vanish
        // and under-replicated blocks are repaired from survivors (a graceful
        // decommission drains even last-replica blocks).
        let affected = self.namenode.decommission(node);
        let repair = self
            .namenode
            .re_replicate(&affected, decommission, &mut self.rng);
        self.fault_stats.re_replicated_blocks += repair.re_replicated;
        self.fault_stats.lost_blocks += repair.lost_blocks;
        self.charge_re_replication_io(repair.re_replicated);
        if decommission {
            self.fault_stats.node_decommissions += 1;
        } else {
            self.fault_stats.node_failures += 1;
        }
        if self.tracing() {
            let kind = if decommission {
                TraceKind::NodeDecommissioned
            } else {
                TraceKind::NodeFailed
            };
            self.trace_event(
                now,
                kind,
                JobId(0),
                None,
                Some(node),
                format!(
                    "{} replicas re-created, {} blocks lost",
                    repair.re_replicated, repair.lost_blocks
                ),
            );
        }
        true
    }

    /// Deterministic target for a decommission drain of map outputs: the
    /// lowest-id live node on the leaving node's rack, else the lowest-id
    /// live node anywhere, else `None` (nothing left to drain to).
    fn drain_target(&self, leaving: NodeId) -> Option<(NodeId, RackId)> {
        let rack = self.node_rack[leaving.0 as usize];
        let mut fallback = None;
        for (i, tt) in self.trackers.iter().enumerate() {
            if i == leaving.0 as usize || !tt.is_alive() {
                continue;
            }
            let r = self.node_rack[i];
            if r == rack {
                return Some((NodeId(i as u32), RackId(r)));
            }
            if fallback.is_none() {
                fallback = Some((NodeId(i as u32), RackId(r)));
            }
        }
        fallback
    }

    /// Declares every map output on `node` destroyed: affected *completed*
    /// maps go back to `Pending` for re-execution. Shared by the crash path
    /// of [`Cluster::fail_node`] and the partition teardown.
    fn lose_map_outputs(&mut self, node: NodeId, now: SimTime) {
        if !self.shuffle.enabled() {
            return;
        }
        let rack = RackId(self.node_rack[node.0 as usize]);
        let jobs: Vec<JobId> = self
            .jobs
            .values()
            .filter(|j| j.completed_at.is_none())
            .map(|j| j.id)
            .collect();
        for job in jobs {
            for index in self.shuffle.on_node_lost(job, node, rack) {
                let map = TaskId {
                    job,
                    kind: TaskKind::Map,
                    index,
                };
                if self.task(map).map(|t| t.state) != Some(TaskState::Succeeded) {
                    // Already re-executing (e.g. reset by the attempt
                    // teardown); nothing to do.
                    continue;
                }
                self.force_task_pending(map);
                self.fault_stats.lost_map_outputs += 1;
                self.fault_stats.re_executed_tasks += 1;
                if self.tracing() {
                    self.trace_event(
                        now,
                        TraceKind::MapOutputLost,
                        job,
                        Some(map),
                        Some(node),
                        "output died with its node; map re-executes",
                    );
                }
            }
        }
    }

    /// Reconciles one attempt torn down by node loss with the JobTracker
    /// state: promotes a surviving speculative backup, or resets the task to
    /// `Pending` for re-execution.
    fn resolve_failed_attempt(&mut self, failed: FailedAttempt, now: SimTime) {
        let task = failed.id.task;
        self.fault_stats.attempts_lost += 1;
        if let Some(obs) = self.obs.as_mut() {
            obs.span_end(SpanKey::Suspend(failed.id), now);
            obs.span_end(SpanKey::Shuffle(failed.id), now);
            obs.span_end(SpanKey::Attempt(failed.id), now);
        }
        if let Some(ev) = failed.segment_event {
            self.queue.cancel(ev);
        }
        self.unarm_triggers(task);
        if failed.state == AttemptState::Suspended {
            self.fault_stats.suspended_tasks_lost += 1;
            self.fault_stats.lost_suspended_work_secs += failed.invested.as_secs_f64();
        }
        let (is_current, is_spec, backup) = {
            let Some(t) = self.task(task) else { return };
            (
                t.current_attempt == Some(failed.id),
                t.spec_attempt == Some(failed.id),
                t.spec_attempt.zip(t.spec_node),
            )
        };
        if is_current {
            match backup {
                Some((spec_attempt, spec_node)) if self.node_in_service(spec_node) => {
                    // The speculative backup survives the failure: promote it
                    // to be the task's attempt. This is exactly the payoff of
                    // speculative re-execution under churn. Progress watches
                    // re-arm against the promoted attempt.
                    self.clear_speculation_fields(task);
                    if let Some(t) = self.task_mut(task) {
                        t.current_attempt = Some(spec_attempt);
                        t.node = Some(spec_node);
                        t.wasted_work += failed.invested;
                    }
                    self.force_task_state(task, TaskState::Running);
                    self.arm_triggers(task, spec_node, spec_attempt, now);
                }
                _ => {
                    // No live backup: the task restarts from scratch
                    // elsewhere. (A backup on a node torn down by the same
                    // rack outage is resolved by its own FailedAttempt entry;
                    // only the fields are cleared here.)
                    self.fault_stats.re_executed_tasks += 1;
                    if backup.is_some() {
                        self.clear_speculation_fields(task);
                    }
                    self.force_task_pending(task);
                    if let Some(t) = self.task_mut(task) {
                        t.wasted_work += failed.invested;
                    }
                }
            }
        } else if is_spec {
            // Only the backup died; the original attempt continues.
            self.fault_stats.speculative_wasted_secs += failed.invested.as_secs_f64();
            self.clear_speculation_fields(task);
        }
    }

    // ----- suspicion-based failure detection & partitions -------------------

    /// A kill under the failure detector: the node goes dark but the master
    /// does not know yet, so its slots stay "occupied" in every scheduler
    /// view until the missed-heartbeat timeout confirms the death. Returns
    /// whether the node was actually up (mirrors [`Cluster::fail_node`]'s
    /// return for churn bookkeeping).
    fn begin_silence(&mut self, node: NodeId, now: SimTime) -> bool {
        let idx = node.0 as usize;
        let Some(tt) = self.trackers.get(idx) else {
            return false;
        };
        if !tt.is_alive() {
            return false; // duplicate fault on an already-dead node
        }
        match self.link[idx] {
            LinkState::Silent { .. } => false, // already dark
            LinkState::Up => {
                self.link[idx] = LinkState::Silent { since: now };
                self.suspect_epoch[idx] += 1;
                self.schedule_suspicion(node, now);
                true
            }
            LinkState::Partitioned { since } => {
                // The partitioned node dies for real. The master cannot tell
                // the difference — from its side the silence simply
                // continues, dated from the original partition.
                let torn_down = !tt.is_reachable();
                self.link[idx] = LinkState::Silent { since };
                if torn_down {
                    // The master already resolved every attempt at the
                    // partition teardown; the node-side remnants die quietly,
                    // and the buffered completions die with the node.
                    let failed = self.trackers[idx].fail(now);
                    for f in failed {
                        if let Some(ev) = f.segment_event {
                            self.queue.cancel(ev);
                        }
                    }
                    self.partition_buffer[idx].clear();
                    self.mark_node_dirty(node);
                }
                // Not torn down: the suspicion timer armed at partition time
                // (same epoch) is still counting and will confirm this death.
                true
            }
        }
    }

    /// Arms the missed-heartbeat timer for a newly dark node, anchored on
    /// the last heartbeat the master actually received — which is what
    /// bounds detection lag by `timeout + one heartbeat interval`.
    fn schedule_suspicion(&mut self, node: NodeId, now: SimTime) {
        let idx = node.0 as usize;
        let interval = self.config.heartbeat_interval;
        let missed = self.config.detector.missed_heartbeats;
        let at = (self.last_heartbeat[idx] + interval.mul_f64(f64::from(missed))).max(now);
        self.queue.schedule(
            at,
            Event::Detector {
                node,
                epoch: self.suspect_epoch[idx],
                confirm: false,
            },
        );
    }

    fn handle_detector(&mut self, node: NodeId, epoch: u64, confirm: bool, now: SimTime) {
        let idx = node.0 as usize;
        if self.suspect_epoch.get(idx) != Some(&epoch) || self.link[idx] == LinkState::Up {
            return; // stale timer: the link state changed since it was armed
        }
        if confirm {
            self.confirm_failure(node, now);
            return;
        }
        self.fault_stats.nodes_suspected += 1;
        if self.tracing() {
            self.trace_event(
                now,
                TraceKind::NodeSuspected,
                JobId(0),
                None,
                Some(node),
                format!(
                    "{} missed heartbeats",
                    self.config.detector.missed_heartbeats
                ),
            );
        }
        let grace = self.config.detector.confirmation_grace;
        if grace == SimDuration::ZERO {
            self.confirm_failure(node, now);
        } else {
            self.queue.schedule(
                now + grace,
                Event::Detector {
                    node,
                    epoch,
                    confirm: true,
                },
            );
        }
    }

    /// The detector gives up on a node: record the detection lag and run the
    /// teardown the fault deferred.
    fn confirm_failure(&mut self, node: NodeId, now: SimTime) {
        let idx = node.0 as usize;
        let since = match self.link[idx] {
            LinkState::Up => return,
            LinkState::Silent { since } | LinkState::Partitioned { since } => since,
        };
        let lag = (now - since).as_secs_f64();
        self.fault_stats.failures_detected += 1;
        self.fault_stats.detection_lag_secs_sum += lag;
        self.fault_stats.detection_lag_secs_max = self.fault_stats.detection_lag_secs_max.max(lag);
        match self.link[idx] {
            LinkState::Silent { .. } => {
                self.link[idx] = LinkState::Up;
                self.suspect_epoch[idx] += 1;
                self.fail_node(node, now, false);
            }
            LinkState::Partitioned { .. } => {
                // The node stays partitioned — it is alive out there — but
                // the master tears down its view of it.
                self.teardown_partitioned(node, now);
            }
            LinkState::Up => unreachable!("matched above"),
        }
    }

    /// A rejoining node that was still under (unconfirmed) silence: the
    /// reconnect itself reveals the outage. Record the detection lag and run
    /// the deferred teardown so the revive starts from a clean slate.
    fn resolve_silent_rejoin(&mut self, node: NodeId, now: SimTime) {
        let idx = node.0 as usize;
        let Some(&LinkState::Silent { since }) = self.link.get(idx) else {
            return;
        };
        self.link[idx] = LinkState::Up;
        self.suspect_epoch[idx] += 1;
        if !self.trackers[idx].is_alive() {
            // Already torn down node-side (a partition victim that died after
            // the master confirmed the partition): nothing new to observe.
            return;
        }
        let lag = (now - since).as_secs_f64();
        self.fault_stats.failures_detected += 1;
        self.fault_stats.detection_lag_secs_sum += lag;
        self.fault_stats.detection_lag_secs_max = self.fault_stats.detection_lag_secs_max.max(lag);
        self.fail_node(node, now, false);
    }

    /// Cuts a node off from the master. It keeps executing — completions
    /// buffer for the heal — while the detector (if on) counts down toward
    /// tearing it down.
    fn partition_node(&mut self, node: NodeId, now: SimTime) {
        let idx = node.0 as usize;
        let Some(tt) = self.trackers.get(idx) else {
            return;
        };
        if !tt.is_alive() || self.link[idx] != LinkState::Up {
            return; // dead, dark, or already partitioned
        }
        self.link[idx] = LinkState::Partitioned { since: now };
        self.suspect_epoch[idx] += 1;
        self.fault_stats.partitions += 1;
        if let Some(obs) = self.obs.as_mut() {
            obs.span_begin(
                SpanKey::Partition(node),
                node,
                format!("node-{}", node.0),
                now,
            );
        }
        if self.config.detector.enabled {
            self.schedule_suspicion(node, now);
        }
        if self.tracing() {
            self.trace_event(
                now,
                TraceKind::NodePartitioned,
                JobId(0),
                None,
                Some(node),
                "",
            );
        }
    }

    /// The master gives up on a partitioned node: every attempt it knows of
    /// there is resolved as lost, the node's capacity disappears from the
    /// scheduler views, its map outputs are declared gone and its blocks
    /// re-replicated — exactly a crash, except the node itself keeps running
    /// toward the heal and `node_failures` stays untouched (the partition
    /// counter family tracks it instead).
    fn teardown_partitioned(&mut self, node: NodeId, now: SimTime) {
        let idx = node.0 as usize;
        // Synthesize the master-side view of the teardown. `segment_event`
        // stays `None`: the attempts really are still running out there, and
        // their node-side phase events keep firing toward the heal.
        let failed: Vec<FailedAttempt> = self.trackers[idx]
            .attempts()
            .map(|a| FailedAttempt {
                id: a.id,
                state: a.state,
                invested: a.invested_time(now),
                segment_event: None,
            })
            .collect();
        self.trackers[idx].set_reachable(false);
        self.mark_node_dirty(node);
        if let Some(cmds) = self.pending_cmds.get_mut(idx) {
            cmds.clear();
        }
        for f in failed {
            self.resolve_failed_attempt(f, now);
        }
        self.lose_map_outputs(node, now);
        let rack = RackId(self.node_rack[idx]);
        self.reliability.record_failure(node, rack, now);
        let affected = self.namenode.decommission(node);
        let repair = self.namenode.re_replicate(&affected, false, &mut self.rng);
        self.fault_stats.re_replicated_blocks += repair.re_replicated;
        self.fault_stats.lost_blocks += repair.lost_blocks;
        self.charge_re_replication_io(repair.re_replicated);
        if self.tracing() {
            self.trace_event(
                now,
                TraceKind::NodeFailed,
                JobId(0),
                None,
                Some(node),
                "partition confirmed; node torn down",
            );
        }
    }

    /// Charges re-replication write traffic against the survivors' spindles:
    /// repaired replicas are written by live nodes, and — with a disk
    /// `background_share` configured — swap I/O on those nodes contends with
    /// the stream until it drains. No-op in the default configuration, where
    /// `queue_background_io` discards the bytes.
    fn charge_re_replication_io(&mut self, replicas: u64) {
        if replicas == 0 {
            return;
        }
        let total = replicas * self.config.dfs_block_size;
        let alive = self.trackers.iter().filter(|tt| tt.is_alive()).count() as u64;
        if alive == 0 {
            return;
        }
        let per_node = total / alive;
        for tt in self.trackers.iter_mut().filter(|tt| tt.is_alive()) {
            tt.queue_background_io(per_node);
        }
    }

    /// Reconnects a partitioned node. Completions it finished behind the
    /// partition reconcile first-commit-wins; if the master had torn it
    /// down, its capacity and replicas return to service.
    fn heal_partition(&mut self, node: NodeId, now: SimTime) {
        let idx = node.0 as usize;
        let Some(&LinkState::Partitioned { .. }) = self.link.get(idx) else {
            // Never partitioned — or the node died behind the partition
            // (now `Silent`): the pending timer or its rejoin resolves that
            // death, not the heal.
            return;
        };
        self.link[idx] = LinkState::Up;
        self.suspect_epoch[idx] += 1;
        self.fault_stats.partition_heals += 1;
        if let Some(obs) = self.obs.as_mut() {
            obs.span_end(SpanKey::Partition(node), now);
        }
        let torn_down = !self.trackers[idx].is_reachable();
        if torn_down {
            self.trackers[idx].set_reachable(true);
            self.namenode.rejoin(node);
        }
        // Reconcile in completion order: the first committed attempt of a
        // task wins, later ones are discarded.
        let buffered = std::mem::take(&mut self.partition_buffer[idx]);
        for attempt in buffered {
            self.reconcile_completion(attempt, node, now);
        }
        if torn_down {
            // Suspended orphans hold no slot and nothing will ever resume
            // them (the master re-ran their tasks at teardown); running
            // orphans keep going — they may still win first-commit-wins.
            let suspended: Vec<AttemptId> = self.trackers[idx].suspended_attempts().collect();
            for a in suspended {
                let _ = self.trackers[idx].kill(a, now);
            }
        }
        self.mark_node_dirty(node);
        self.last_heartbeat[idx] = now;
        if self.tracing() {
            self.trace_event(
                now,
                TraceKind::PartitionHealed,
                JobId(0),
                None,
                Some(node),
                "",
            );
        }
        // The node reconnects: an immediate heartbeat reintroduces it to the
        // scheduler.
        self.queue.schedule(now, Event::Heartbeat { node });
    }

    /// Slows a node down without killing it: new launches there stretch by
    /// the disk multiplier (work, finalize) and the net multiplier (shuffle,
    /// re-fetch backoff). Feeds the reliability predictor at half a crash's
    /// weight.
    fn degrade_node(&mut self, node: NodeId, slow_disk: f64, slow_net: f64, now: SimTime) {
        let idx = node.0 as usize;
        let Some(tt) = self.trackers.get(idx) else {
            return;
        };
        if !tt.is_alive() {
            return;
        }
        self.gray[idx] = (slow_disk.max(1.0), slow_net.max(1.0));
        self.fault_stats.gray_failures += 1;
        self.reliability.record_degraded(node, now);
        if self.tracing() {
            self.trace_event(
                now,
                TraceKind::NodeDegraded,
                JobId(0),
                None,
                Some(node),
                format!("disk x{slow_disk:.1}, net x{slow_net:.1}"),
            );
        }
    }

    /// Stretches a freshly built [`ExecPlan`] by the node's gray-failure
    /// multipliers: a slow disk stretches the I/O-bound segments (work,
    /// finalize), a slow NIC stretches the shuffle copy. Healthy nodes pass
    /// through untouched — the `!= 1.0` guards also keep the default path
    /// byte-identical (an f64 round-trip of the micros is never taken).
    fn apply_gray_stretch(&self, mut plan: ExecPlan, node: NodeId) -> ExecPlan {
        let (slow_disk, slow_net) = self
            .gray
            .get(node.0 as usize)
            .copied()
            .unwrap_or((1.0, 1.0));
        if slow_disk != 1.0 {
            plan.work = plan.work.mul_f64(slow_disk);
            plan.finalize = plan.finalize.mul_f64(slow_disk);
        }
        if slow_net != 1.0 {
            plan.shuffle = plan.shuffle.mul_f64(slow_net);
        }
        plan
    }

    /// Restores a gray-failed node to full speed (new launches only;
    /// attempts planned while degraded keep their stretched plans).
    fn heal_degradation(&mut self, node: NodeId, now: SimTime) {
        let idx = node.0 as usize;
        if self.gray.get(idx).copied().unwrap_or((1.0, 1.0)) == (1.0, 1.0) {
            return;
        }
        self.gray[idx] = (1.0, 1.0);
        self.fault_stats.gray_heals += 1;
        if self.tracing() {
            self.trace_event(
                now,
                TraceKind::DegradationHealed,
                JobId(0),
                None,
                Some(node),
                "",
            );
        }
    }

    /// Returns a failed node to service with empty disks and all slots free.
    /// A *churn* rejoin only revives a node whose current outage was caused
    /// by a churn kill — never one a scripted kill, rack outage or
    /// decommission took down. Scripted rejoins (operator actions) revive
    /// anything.
    fn rejoin_node(&mut self, node: NodeId, now: SimTime, scripted: bool) {
        if !scripted
            && !self
                .churn_down
                .get(node.0 as usize)
                .copied()
                .unwrap_or(false)
        {
            return;
        }
        // Under the failure detector a dead node may still be *silent* —
        // never confirmed. Its reconnect is itself the detection: resolve the
        // deferred teardown first, then revive from that clean slate.
        self.resolve_silent_rejoin(node, now);
        {
            let Some(tt) = self.tracker_mut(node) else {
                return;
            };
            if tt.is_alive() {
                return;
            }
            tt.revive();
        }
        self.churn_down[node.0 as usize] = false;
        self.last_heartbeat[node.0 as usize] = now;
        self.namenode.rejoin(node);
        self.mark_node_dirty(node);
        self.fault_stats.node_rejoins += 1;
        if self.tracing() {
            self.trace_event(now, TraceKind::NodeRejoined, JobId(0), None, Some(node), "");
        }
    }

    fn register_job(&mut self, spec: JobSpec, now: SimTime) -> JobId {
        let id = JobId(self.next_job_id);
        self.next_job_id += 1;

        let mut tasks = Vec::new();
        let mut total_map_input: u64 = 0;
        match &spec.input {
            MapInput::DfsFile { path } => {
                let file = self
                    .namenode
                    .lookup(path)
                    .unwrap_or_else(|| {
                        panic!("input file {path} does not exist in the simulated HDFS")
                    })
                    .clone();
                for (i, block_id) in file.blocks.iter().enumerate() {
                    let block = self
                        .namenode
                        .block(*block_id)
                        .expect("block metadata")
                        .clone();
                    let preferred = self.namenode.replicas_of(*block_id).to_vec();
                    total_map_input += block.size;
                    tasks.push(TaskRuntime::new(
                        TaskId {
                            job: id,
                            kind: TaskKind::Map,
                            index: i as u32,
                        },
                        block.size,
                        preferred,
                    ));
                }
            }
            MapInput::Synthetic {
                tasks: n,
                bytes_per_task,
            } => {
                for i in 0..*n {
                    total_map_input += bytes_per_task;
                    tasks.push(TaskRuntime::new(
                        TaskId {
                            job: id,
                            kind: TaskKind::Map,
                            index: i,
                        },
                        *bytes_per_task,
                        Vec::new(),
                    ));
                }
            }
        }
        if spec.reduce_tasks > 0 {
            let output_ratio = spec
                .profile
                .output_ratio
                .unwrap_or(self.config.task.output_ratio);
            let shuffle_per_reduce =
                ((total_map_input as f64 * output_ratio) / spec.reduce_tasks as f64) as u64;
            for i in 0..spec.reduce_tasks {
                tasks.push(TaskRuntime::new(
                    TaskId {
                        job: id,
                        kind: TaskKind::Reduce,
                        index: i,
                    },
                    shuffle_per_reduce.max(1),
                    Vec::new(),
                ));
            }
        }
        assert!(!tasks.is_empty(), "job {} has no tasks", spec.name);

        let name = if self.tracing() {
            spec.name.clone()
        } else {
            String::new()
        };
        // Freshly registered tasks are all Pending, hence schedulable.
        let map_count = tasks.iter().filter(|t| t.id.kind == TaskKind::Map).count() as u32;
        let reduce_count = tasks.len() as u32 - map_count;
        self.totals.schedulable_maps += map_count;
        self.totals.schedulable_reduces += reduce_count;
        self.delay.register_job();
        self.shuffle.register_job(map_count, reduce_count);
        self.jobs.insert(
            id,
            JobRuntime {
                id,
                spec,
                submitted_at: now,
                completed_at: None,
                tasks,
                schedulable_maps: map_count,
                schedulable_reduces: reduce_count,
                suspended_count: 0,
                occupying_count: 0,
                speculative_live: 0,
            },
        );
        self.incomplete_jobs += 1;
        self.trace_event(now, TraceKind::JobSubmitted, id, None, None, name);

        self.refresh_views();
        let actions = {
            let ctx = SchedulerContext {
                now,
                jobs: &self.jobs,
                nodes: &self.views,
                racks: &self.rack_views,
                topology: self.namenode.topology(),
                totals: self.totals,
                speculation: self.config.speculation,
                delay: Some(&self.delay),
                shuffle: Some(&self.shuffle),
                reliability: Some(&self.reliability),
            };
            self.scheduler.on_job_submitted(&ctx, id)
        };
        self.apply_actions(actions, now);
        id
    }

    fn handle_heartbeat(&mut self, node: NodeId, now: SimTime) {
        let node_idx = node.0 as usize;
        if node_idx >= self.trackers.len() {
            return;
        }
        // Dead nodes do not heartbeat. The wheel keeps computing their
        // periodic slots (same event count in every refresh mode), but the
        // cluster ignores them until the node rejoins.
        if !self.trackers[node_idx].is_alive() {
            return;
        }
        // A silent or partitioned node's heartbeats never arrive; the
        // detector timer (if armed) counts down against the last one that
        // did.
        if self.link[node_idx] != LinkState::Up {
            return;
        }
        self.last_heartbeat[node_idx] = now;

        // 1. Refresh reported progress for tasks on this node (reusable
        //    buffer: no per-heartbeat allocation).
        let mut buf = std::mem::take(&mut self.progress_buf);
        buf.clear();
        for a in self.trackers[node_idx].attempts() {
            if matches!(a.state, AttemptState::Running | AttemptState::Suspended) {
                buf.push((a.id, a.task, a.progress(now)));
            }
        }
        for &(attempt, task, progress) in &buf {
            if let Some(t) = self.task_mut(task) {
                // Only attempts the JobTracker still tracks may report: an
                // orphan left running on a healed partition victim must not
                // overwrite the progress of a task that already succeeded
                // (or re-ran) elsewhere.
                if t.current_attempt != Some(attempt) && t.spec_attempt != Some(attempt) {
                    continue;
                }
                // With a live backup attempt the task's progress is the best
                // of the two attempts, whichever node reports it.
                if t.spec_attempt.is_some() {
                    t.progress = t.progress.max(progress);
                } else {
                    t.progress = progress;
                }
            }
        }
        buf.clear();
        self.progress_buf = buf;

        // 2. Deliver pending MUST_* commands piggybacked on this heartbeat.
        //    The per-node command index replaces the old O(jobs x tasks) scan.
        let mut pending = std::mem::take(&mut self.pending_cmds[node_idx]);
        for &task in &pending {
            let Some(t) = self.task(task) else { continue };
            if t.node != Some(node) {
                continue;
            }
            match t.state {
                TaskState::MustSuspend => self.deliver_suspend(task, node, now),
                TaskState::MustResume => self.deliver_resume(task, node, now),
                TaskState::MustKill => self.deliver_kill(task, node, now),
                _ => {}
            }
        }
        // Keep commands that could not be delivered yet (e.g. suspend during
        // setup, resume without a free slot); they retry next heartbeat.
        pending.retain(|&task| {
            self.task(task).is_some_and(|t| {
                t.node == Some(node)
                    && matches!(
                        t.state,
                        TaskState::MustSuspend | TaskState::MustResume | TaskState::MustKill
                    )
            })
        });
        let list = &mut self.pending_cmds[node_idx];
        for task in pending {
            if !list.contains(&task) {
                list.push(task);
            }
        }

        // 3. Let the scheduling policy hand out work for this node.
        self.refresh_views();
        let actions = {
            let ctx = SchedulerContext {
                now,
                jobs: &self.jobs,
                nodes: &self.views,
                racks: &self.rack_views,
                topology: self.namenode.topology(),
                totals: self.totals,
                speculation: self.config.speculation,
                delay: Some(&self.delay),
                shuffle: Some(&self.shuffle),
                reliability: Some(&self.reliability),
            };
            self.scheduler.on_heartbeat(&ctx, node)
        };
        self.apply_actions(actions, now);
    }

    fn deliver_suspend(&mut self, task: TaskId, node: NodeId, now: SimTime) {
        let Some(attempt_id) = self.task(task).and_then(|t| t.current_attempt) else {
            return;
        };
        let Some(tt) = self.tracker_mut(node) else {
            return;
        };
        let Some(attempt) = tt.attempt(attempt_id) else {
            return;
        };
        match attempt.phase {
            // Too early: retry at the next heartbeat once the task is in its
            // work phase (a task that has not started working has nothing
            // worth preserving yet, and Hadoop cannot stop a task mid-setup).
            AttemptPhase::Setup | AttemptPhase::Shuffle => {}
            // Too late: the task will complete before the suspension matters;
            // the completion heartbeat resolves the race (Section III-B).
            AttemptPhase::Finalize => {}
            AttemptPhase::Work => {
                let pending_event = tt.attempt(attempt_id).and_then(|a| a.segment_event);
                let progress = match tt.suspend(attempt_id, now) {
                    Ok(p) => p,
                    Err(_) => return,
                };
                self.mark_node_dirty(node);
                if let Some(ev) = pending_event {
                    self.queue.cancel(ev);
                }
                self.unarm_triggers(task);
                self.set_task_state(task, TaskState::Suspended);
                if let Some(t) = self.task_mut(task) {
                    t.progress = progress;
                    t.suspend_cycles += 1;
                }
                if let Some(obs) = self.obs.as_mut() {
                    obs.span_begin(
                        SpanKey::Suspend(attempt_id),
                        node,
                        attempt_id.to_string(),
                        now,
                    );
                }
                if self.tracing() {
                    self.trace_event(
                        now,
                        TraceKind::Suspended,
                        task.job,
                        Some(task),
                        Some(node),
                        format!("SIGTSTP at {:.0}% progress", progress * 100.0),
                    );
                }
                self.schedule_out_of_band_heartbeat(node, now);
            }
        }
    }

    fn deliver_resume(&mut self, task: TaskId, node: NodeId, now: SimTime) {
        let Some(attempt_id) = self.task(task).and_then(|t| t.current_attempt) else {
            return;
        };
        let Some(tt) = self.tracker_mut(node) else {
            return;
        };
        let stall = match tt.resume(attempt_id, now) {
            Ok(stall) => stall,
            // No free slot (or similar): stay in MUST_RESUME and retry at the
            // next heartbeat from this tracker.
            Err(_) => return,
        };
        let (segment_start, remaining) = {
            let attempt = tt
                .attempt_mut(attempt_id)
                .expect("attempt present after resume");
            debug_assert_eq!(attempt.phase, AttemptPhase::Work);
            let remaining = attempt.remaining_work();
            attempt.segment_start = now + stall;
            attempt.segment_duration = remaining;
            (attempt.segment_start, remaining)
        };
        let event = self.queue.schedule(
            segment_start + remaining,
            Event::PhaseDone {
                node,
                attempt: attempt_id,
                phase: AttemptPhase::Work,
            },
        );
        if let Some(tt) = self.tracker_mut(node) {
            if let Some(attempt) = tt.attempt_mut(attempt_id) {
                attempt.segment_event = Some(event);
            }
        }
        self.mark_node_dirty(node);
        self.set_task_state(task, TaskState::Running);
        self.arm_triggers(task, node, attempt_id, now);
        if let Some(obs) = self.obs.as_mut() {
            obs.span_end(SpanKey::Suspend(attempt_id), now);
        }
        if self.tracing() {
            self.trace_event(
                now,
                TraceKind::Resumed,
                task.job,
                Some(task),
                Some(node),
                format!("SIGCONT, page-in stall {:.2}s", stall.as_secs_f64()),
            );
        }
    }

    fn deliver_kill(&mut self, task: TaskId, node: NodeId, now: SimTime) {
        let Some(attempt_id) = self.task(task).and_then(|t| t.current_attempt) else {
            return;
        };
        // Killing a task kills the whole task: any live backup dies with it.
        self.abort_speculation(task, now);
        let Some(tt) = self.tracker_mut(node) else {
            return;
        };
        if tt.attempt(attempt_id).is_none() {
            // The attempt vanished underneath us (e.g. the OOM killer took
            // it); make the task schedulable again so it restarts from scratch.
            self.force_task_pending(task);
            return;
        }
        let Some(tt) = self.tracker_mut(node) else {
            return;
        };
        let Some(attempt) = tt.attempt(attempt_id) else {
            return;
        };
        let pending_event = attempt.segment_event;
        let invested = attempt.invested_time(now);
        let outcome = match tt.kill(attempt_id, now) {
            Ok(o) => o,
            Err(_) => return,
        };
        self.mark_node_dirty(node);
        if let Some(obs) = self.obs.as_mut() {
            obs.span_end(SpanKey::Suspend(attempt_id), now);
            obs.span_end(SpanKey::Shuffle(attempt_id), now);
            obs.span_end(SpanKey::Attempt(attempt_id), now);
        }
        if let Some(ev) = pending_event {
            self.queue.cancel(ev);
        }
        self.unarm_triggers(task);
        let cleanup = self.config.task.cleanup_duration;
        if outcome.held_slot {
            // The cleanup attempt holds the slot while it deletes the killed
            // task's partial output.
            let epoch = self.tracker(node).map(|tt| tt.epoch()).unwrap_or(0);
            self.queue.schedule(
                now + cleanup,
                Event::CleanupDone {
                    node,
                    kind: task.kind,
                    epoch,
                },
            );
        }
        self.set_task_state(task, TaskState::Killed);
        if let Some(t) = self.task_mut(task) {
            t.wasted_work += invested;
            t.paged_out_bytes += outcome.paged_out_bytes;
            t.paged_in_bytes += outcome.paged_in_bytes;
            t.progress = 0.0;
            t.node = None;
            t.current_attempt = None;
        }
        // The task itself is rescheduled from scratch.
        self.set_task_state(task, TaskState::Pending);
        if self.tracing() {
            self.trace_event(
                now,
                TraceKind::Killed,
                task.job,
                Some(task),
                Some(node),
                format!("SIGKILL, {:.1}s of work lost", invested.as_secs_f64()),
            );
        }
    }

    fn handle_phase_done(
        &mut self,
        node: NodeId,
        attempt_id: AttemptId,
        phase: AttemptPhase,
        now: SimTime,
    ) {
        // Defensive: the attempt may have been suspended, killed or OOM-killed
        // since this event was scheduled; its cancellation normally removes
        // the event, but a removed attempt cannot be cancelled, so re-check.
        let Some(tt) = self.tracker_mut(node) else {
            return;
        };
        let Some(attempt) = tt.attempt(attempt_id) else {
            return;
        };
        if attempt.state != AttemptState::Running || attempt.phase != phase {
            return;
        }
        let task = attempt_id.task;
        match phase {
            AttemptPhase::Setup => {
                let alloc = match tt.allocate_task_memory(attempt_id, now) {
                    Ok(a) => a,
                    Err(_) => return, // unknown attempt: nothing to clean up
                };
                if !alloc.failed {
                    let input_bytes = tt
                        .attempt(attempt_id)
                        .map(|a| a.plan.input_bytes)
                        .unwrap_or(0);
                    tt.record_input_read(input_bytes);
                }
                if !alloc.oom_killed.is_empty() {
                    self.mark_node_dirty(node);
                }
                // The allocating attempt itself may be among the victims (the
                // OOM killer sacrificed it); the failure path below resolves
                // it, so only the *other* victims are handled here.
                let self_killed = alloc.oom_killed.contains(&attempt_id);
                for victim in &alloc.oom_killed {
                    if *victim != attempt_id {
                        self.handle_oom_victim(*victim, node, now);
                    }
                }
                if alloc.failed {
                    self.handle_allocation_failure(task, attempt_id, node, self_killed, now);
                    return;
                }
                let next_phase = if task.kind == TaskKind::Reduce {
                    AttemptPhase::Shuffle
                } else {
                    AttemptPhase::Work
                };
                self.enter_phase(node, attempt_id, next_phase, alloc.stall, now);
            }
            AttemptPhase::Shuffle => {
                // The reduce finished copying, but map outputs may have died
                // with a node mid-shuffle. Graceful degradation: the reduce
                // does not fail — it stalls in Shuffle re-fetching with
                // exponential backoff while the JobTracker re-executes the
                // lost maps, and proceeds once every output is back.
                if !self.shuffle.complete(task.job) {
                    let cfg = *self.shuffle.config();
                    let retries = {
                        let Some(tt) = self.tracker_mut(node) else {
                            return;
                        };
                        let Some(a) = tt.attempt_mut(attempt_id) else {
                            return;
                        };
                        let r = a.shuffle_retries;
                        a.shuffle_retries = r.saturating_add(1);
                        r
                    };
                    let mut wait = SimDuration::from_secs_f64(
                        (cfg.fetch_retry_base.as_secs_f64()
                            * cfg.fetch_retry_backoff.powi(retries.min(63) as i32))
                        .min(cfg.fetch_retry_cap.as_secs_f64()),
                    );
                    // A gray-failed NIC stretches every re-fetch round too.
                    let slow_net = self.gray[node.0 as usize].1;
                    if slow_net != 1.0 {
                        wait = wait.mul_f64(slow_net);
                    }
                    let event = self.queue.schedule(
                        now + wait,
                        Event::PhaseDone {
                            node,
                            attempt: attempt_id,
                            phase: AttemptPhase::Shuffle,
                        },
                    );
                    if let Some(tt) = self.tracker_mut(node) {
                        if let Some(a) = tt.attempt_mut(attempt_id) {
                            a.segment_start = now;
                            a.segment_duration = wait;
                            a.segment_event = Some(event);
                        }
                    }
                    self.fault_stats.shuffle_refetches += 1;
                    if retries == 0 {
                        if let Some(obs) = self.obs.as_mut() {
                            obs.span_begin(
                                SpanKey::Shuffle(attempt_id),
                                node,
                                attempt_id.to_string(),
                                now,
                            );
                        }
                    }
                    if self.tracing() {
                        self.trace_event(
                            now,
                            TraceKind::ShuffleStalled,
                            task.job,
                            Some(task),
                            Some(node),
                            format!("retry {} in {:.1}s", retries + 1, wait.as_secs_f64()),
                        );
                    }
                    return;
                }
                if let Some(obs) = self.obs.as_mut() {
                    obs.span_end(SpanKey::Shuffle(attempt_id), now);
                }
                self.enter_phase(node, attempt_id, AttemptPhase::Work, SimDuration::ZERO, now);
            }
            AttemptPhase::Work => {
                // Work finished: fault the task's own state back in (stateful
                // tasks read their memory when finalizing) and write output.
                let stall = tt
                    .fault_in_own_memory(attempt_id, now)
                    .unwrap_or(SimDuration::ZERO);
                let output = tt
                    .attempt(attempt_id)
                    .map(|a| a.plan.output_bytes)
                    .unwrap_or(0);
                tt.write_output(output);
                if let Some(a) = tt.attempt_mut(attempt_id) {
                    a.work_completed = a.plan.work;
                }
                self.enter_phase(node, attempt_id, AttemptPhase::Finalize, stall, now);
            }
            AttemptPhase::Finalize => {
                self.complete_attempt(node, attempt_id, now);
            }
        }
    }

    /// Moves an attempt into `phase`, scheduling its completion after
    /// `stall + <phase duration>`.
    fn enter_phase(
        &mut self,
        node: NodeId,
        attempt_id: AttemptId,
        phase: AttemptPhase,
        stall: SimDuration,
        now: SimTime,
    ) {
        let Some(tt) = self.tracker_mut(node) else {
            return;
        };
        let Some(attempt) = tt.attempt_mut(attempt_id) else {
            return;
        };
        attempt.phase = phase;
        let duration = match phase {
            AttemptPhase::Setup => attempt.plan.setup,
            AttemptPhase::Shuffle => attempt.plan.shuffle,
            AttemptPhase::Work => attempt.remaining_work(),
            AttemptPhase::Finalize => attempt.plan.finalize,
        };
        attempt.segment_start = now + stall;
        attempt.segment_duration = duration;
        let fire_at = attempt.segment_start + duration;
        let event = self.queue.schedule(
            fire_at,
            Event::PhaseDone {
                node,
                attempt: attempt_id,
                phase,
            },
        );
        if let Some(tt) = self.tracker_mut(node) {
            if let Some(attempt) = tt.attempt_mut(attempt_id) {
                attempt.segment_event = Some(event);
            }
        }
        if phase == AttemptPhase::Work {
            self.arm_triggers(attempt_id.task, node, attempt_id, now);
        }
    }

    fn complete_attempt(&mut self, node: NodeId, attempt_id: AttemptId, now: SimTime) {
        let task = attempt_id.task;
        let idx = node.0 as usize;
        // Behind a partition the node finishes work the master cannot see:
        // the completion buffers until the heal reconciles it.
        if matches!(self.link.get(idx), Some(LinkState::Partitioned { .. })) {
            self.partition_buffer[idx].push(attempt_id);
            return;
        }
        // An attempt the JobTracker no longer tracks (its task was re-run
        // after a partition teardown) completing on a healed node goes
        // through first-commit-wins reconciliation instead.
        let orphan = match self.task(task) {
            None => true,
            Some(t) => t.current_attempt != Some(attempt_id) && t.spec_attempt != Some(attempt_id),
        };
        if orphan {
            self.reconcile_completion(attempt_id, node, now);
            return;
        }
        let Some(tt) = self.tracker_mut(node) else {
            return;
        };
        // Captured before `complete` consumes the attempt: a committing map
        // registers its output size with the shuffle tracker below.
        let output_bytes = tt
            .attempt(attempt_id)
            .map(|a| a.plan.output_bytes)
            .unwrap_or(0);
        let outcome = match tt.complete(attempt_id, now) {
            Ok(o) => o,
            Err(_) => return,
        };
        self.mark_node_dirty(node);
        if let Some(obs) = self.obs.as_mut() {
            obs.span_end(SpanKey::Suspend(attempt_id), now);
            obs.span_end(SpanKey::Shuffle(attempt_id), now);
            obs.span_end(SpanKey::Attempt(attempt_id), now);
        }
        // First finisher wins: a completing attempt kills its sibling (the
        // original kills the backup; a winning backup kills the original,
        // wherever — running or suspended — it currently sits).
        let (is_current, is_spec, sibling) = {
            match self.task(task) {
                Some(t) => {
                    let is_current = t.current_attempt == Some(attempt_id);
                    let sibling = if is_current {
                        t.spec_attempt.zip(t.spec_node)
                    } else {
                        t.current_attempt.zip(t.node)
                    };
                    (is_current, t.spec_attempt == Some(attempt_id), sibling)
                }
                None => (false, false, None),
            }
        };
        if is_current || is_spec {
            if let Some((loser, loser_node)) = sibling {
                self.kill_sibling_attempt(loser, loser_node, now);
            }
            self.clear_speculation_fields(task);
            if is_spec {
                self.fault_stats.speculative_won += 1;
            }
        }
        self.set_task_state(task, TaskState::Succeeded);
        if let Some(t) = self.task_mut(task) {
            t.progress = 1.0;
            t.finished_at = Some(now);
            t.current_attempt = None;
            t.node = Some(node);
            t.paged_out_bytes += outcome.paged_out_bytes;
            t.paged_in_bytes += outcome.paged_in_bytes;
        }
        // A committed map leaves its output on this node's local disks; the
        // registry is what makes that output a fault domain (and what feeds
        // rack-aware reduce placement).
        if task.kind == TaskKind::Map && self.shuffle.tracked(task.job) {
            let rack = RackId(self.node_rack[node.0 as usize]);
            self.shuffle
                .record_map_output(task.job, task.index as usize, node, rack, output_bytes);
        }
        self.trace_event(
            now,
            TraceKind::Completed,
            task.job,
            Some(task),
            Some(node),
            "",
        );

        self.after_task_success(task, node, now);
    }

    /// The shared tail of a task success — job-completion bookkeeping plus
    /// the scheduler hooks. Used by the normal commit path and by
    /// reconciled commits after a partition heal.
    fn after_task_success(&mut self, task: TaskId, node: NodeId, now: SimTime) {
        // Job completion check.
        let job_complete = self
            .jobs
            .get(&task.job)
            .map(|j| j.is_complete())
            .unwrap_or(false);
        if job_complete {
            if let Some(job) = self.jobs.get_mut(&task.job) {
                job.completed_at = Some(now);
            }
            self.shuffle.job_finished(task.job);
            self.incomplete_jobs = self.incomplete_jobs.saturating_sub(1);
            #[cfg(debug_assertions)]
            self.debug_check_job_counters(task.job);
            self.trace_event(now, TraceKind::JobCompleted, task.job, None, None, "");
        }

        // Scheduler hooks.
        self.refresh_views();
        let mut actions = {
            let ctx = SchedulerContext {
                now,
                jobs: &self.jobs,
                nodes: &self.views,
                racks: &self.rack_views,
                topology: self.namenode.topology(),
                totals: self.totals,
                speculation: self.config.speculation,
                delay: Some(&self.delay),
                shuffle: Some(&self.shuffle),
                reliability: Some(&self.reliability),
            };
            self.scheduler.on_task_finished(&ctx, task)
        };
        if job_complete {
            let more = {
                let ctx = SchedulerContext {
                    now,
                    jobs: &self.jobs,
                    nodes: &self.views,
                    racks: &self.rack_views,
                    topology: self.namenode.topology(),
                    totals: self.totals,
                    speculation: self.config.speculation,
                    delay: Some(&self.delay),
                    shuffle: Some(&self.shuffle),
                    reliability: Some(&self.reliability),
                };
                self.scheduler.on_job_finished(&ctx, task.job)
            };
            actions.extend(more);
        }
        self.apply_actions(actions, now);
        self.schedule_out_of_band_heartbeat(node, now);
    }

    /// First-commit-wins reconciliation of a completion the master did not
    /// witness live: either buffered behind a partition and drained at the
    /// heal, or finished by an orphaned attempt the teardown already wrote
    /// off. Exactly one commit per task ever happens — if the task already
    /// succeeded elsewhere (or its job retired), this completion is
    /// discarded and only frees the node-side slot.
    fn reconcile_completion(&mut self, attempt_id: AttemptId, node: NodeId, now: SimTime) {
        let task = attempt_id.task;
        let job_retired = self
            .jobs
            .get(&task.job)
            .map(|j| j.completed_at.is_some())
            .unwrap_or(true);
        let task_state = self.task(task).map(|t| t.state);
        let already_succeeded = task_state == Some(TaskState::Succeeded);
        if job_retired || already_succeeded || task_state.is_none() {
            // Discard: someone else committed first (or the job is gone).
            // The duplicate-commit tripwire in FaultStats stays at zero
            // because this path never touches task state.
            if let Some(tt) = self.tracker_mut(node) {
                let _ = tt.complete(attempt_id, now);
            }
            self.mark_node_dirty(node);
            self.fault_stats.reconciled_discards += 1;
            if self.tracing() {
                self.trace_event(
                    now,
                    TraceKind::Killed,
                    task.job,
                    Some(task),
                    Some(node),
                    "stale completion discarded at heal",
                );
            }
            return;
        }
        // Commit: this attempt is the first finisher. Kill whatever
        // re-execution the teardown started — first commit wins.
        let (current, spec) = {
            let Some(t) = self.task(task) else { return };
            (
                t.current_attempt.zip(t.node),
                t.spec_attempt.zip(t.spec_node),
            )
        };
        if let Some((a, n)) = current {
            if a != attempt_id {
                self.kill_sibling_attempt(a, n, now);
            }
        }
        if let Some((a, n)) = spec {
            if a != attempt_id {
                self.kill_sibling_attempt(a, n, now);
            }
        }
        self.clear_speculation_fields(task);
        self.unarm_triggers(task);
        let output_bytes = self
            .tracker(node)
            .and_then(|tt| tt.attempt(attempt_id))
            .map(|a| a.plan.output_bytes)
            .unwrap_or(0);
        let outcome = {
            let Some(tt) = self.tracker_mut(node) else {
                return;
            };
            match tt.complete(attempt_id, now) {
                Ok(o) => o,
                Err(_) => return,
            }
        };
        self.mark_node_dirty(node);
        // Tripwire, not control flow: if the task somehow reached Succeeded
        // between the routing check above and here, committing again would
        // be a double commit. The bench quality gate asserts this is zero.
        if self.task(task).map(|t| t.state) == Some(TaskState::Succeeded) {
            self.fault_stats.duplicate_commits += 1;
        }
        self.fault_stats.reconciled_commits += 1;
        self.force_task_state(task, TaskState::Succeeded);
        if let Some(t) = self.task_mut(task) {
            t.progress = 1.0;
            t.finished_at = Some(now);
            t.current_attempt = None;
            t.node = Some(node);
            t.paged_out_bytes += outcome.paged_out_bytes;
            t.paged_in_bytes += outcome.paged_in_bytes;
        }
        if task.kind == TaskKind::Map && self.shuffle.tracked(task.job) {
            let rack = RackId(self.node_rack[node.0 as usize]);
            self.shuffle
                .record_map_output(task.job, task.index as usize, node, rack, output_bytes);
        }
        self.trace_event(
            now,
            TraceKind::Completed,
            task.job,
            Some(task),
            Some(node),
            "reconciled",
        );
        self.after_task_success(task, node, now);
    }

    /// Handles a task whose process was sacrificed by the OOM killer while
    /// another task was allocating memory.
    fn handle_oom_victim(&mut self, attempt_id: AttemptId, node: NodeId, now: SimTime) {
        let task = attempt_id.task;
        if let Some(obs) = self.obs.as_mut() {
            obs.span_end(SpanKey::Suspend(attempt_id), now);
            obs.span_end(SpanKey::Shuffle(attempt_id), now);
            obs.span_end(SpanKey::Attempt(attempt_id), now);
        }
        let (is_current, is_spec, backup, wasted) = {
            let Some(t) = self.task(task) else { return };
            (
                t.current_attempt == Some(attempt_id),
                t.spec_attempt == Some(attempt_id),
                t.spec_attempt.zip(t.spec_node),
                t.progress,
            )
        };
        if is_spec {
            // Only the backup died (its process is already gone); the
            // original attempt is untouched.
            self.clear_speculation_fields(task);
            self.trace_event(
                now,
                TraceKind::Killed,
                task.job,
                Some(task),
                Some(node),
                "speculative attempt OOM-killed",
            );
            return;
        }
        if !is_current {
            return;
        }
        self.unarm_triggers(task);
        if let Some((spec_attempt, spec_node)) = backup {
            // The original died but its backup lives on another node (the
            // OOM happened on the original's node): promote the backup and
            // re-arm any progress watches against it.
            self.clear_speculation_fields(task);
            if let Some(t) = self.task_mut(task) {
                t.current_attempt = Some(spec_attempt);
                t.node = Some(spec_node);
                t.wasted_work += SimDuration::from_secs_f64(wasted * 10.0);
            }
            self.force_task_state(task, TaskState::Running);
            self.arm_triggers(task, spec_node, spec_attempt, now);
        } else {
            // Whatever state the task was in, its attempt is gone: it goes
            // back to pending and will be rescheduled from scratch.
            self.force_task_pending(task);
            if let Some(t) = self.task_mut(task) {
                t.wasted_work += SimDuration::from_secs_f64(wasted * 10.0);
            }
        }
        self.trace_event(
            now,
            TraceKind::Killed,
            task.job,
            Some(task),
            Some(node),
            "OOM-killed while another task allocated memory",
        );
    }

    /// Resolves an unrecoverable memory-allocation failure for `attempt_id`.
    /// `attempt_gone` means the OOM killer already took the allocating
    /// attempt's process; otherwise the attempt is still on the tracker and
    /// goes through the ordinary kill path.
    fn handle_allocation_failure(
        &mut self,
        task: TaskId,
        attempt_id: AttemptId,
        node: NodeId,
        attempt_gone: bool,
        now: SimTime,
    ) {
        if attempt_gone {
            // Same resolution as any other OOM victim: reschedule the task
            // (or promote its backup).
            self.handle_oom_victim(attempt_id, node, now);
            return;
        }
        let is_spec = self
            .task(task)
            .is_some_and(|t| t.spec_attempt == Some(attempt_id));
        if is_spec {
            // Only the backup failed to allocate; the original continues.
            self.abort_speculation(task, now);
        } else {
            self.force_kill_after_failure(task, node, now);
        }
    }

    fn force_kill_after_failure(&mut self, task: TaskId, node: NodeId, now: SimTime) {
        let marked = matches!(
            self.task(task).map(|t| t.state),
            Some(TaskState::Running | TaskState::MustSuspend)
        );
        if marked {
            self.set_task_state(task, TaskState::MustKill);
            // Index the command in case the immediate delivery below cannot
            // complete (the retry then rides the next heartbeat).
            self.enqueue_command(node, task);
        }
        self.deliver_kill(task, node, now);
    }

    fn apply_actions(&mut self, actions: Vec<SchedulerAction>, now: SimTime) {
        // Profiler bookkeeping: exact per-action counts, plus direct timing
        // of one invocation in `ACTION_SAMPLE_EVERY` (scaled back up). The
        // array indices mirror [`crate::obs::ACTION_KINDS`].
        let timer = self.obs.as_mut().and_then(|o| o.action_timer());
        let mut acted = [0u32; 6];
        let mut queue: VecDeque<SchedulerAction> = actions.into();
        while let Some(action) = queue.pop_front() {
            if self.obs.is_some() {
                let idx = match &action {
                    SchedulerAction::SubmitJob(_) => 0,
                    SchedulerAction::Launch { .. } => 1,
                    SchedulerAction::LaunchSpeculative { .. } => 2,
                    SchedulerAction::Suspend { .. } => 3,
                    SchedulerAction::Resume { .. } => 4,
                    SchedulerAction::Kill { .. } => 5,
                };
                acted[idx] += 1;
            }
            match action {
                SchedulerAction::SubmitJob(spec) => {
                    // register_job invokes on_job_submitted itself and applies
                    // any actions it returns.
                    self.register_job(spec, now);
                }
                SchedulerAction::Launch { task, node } => {
                    self.launch_task(task, node, now);
                }
                SchedulerAction::LaunchSpeculative { task, node } => {
                    self.launch_speculative(task, node, now);
                }
                SchedulerAction::Suspend { task } => {
                    let node = match self.task(task) {
                        Some(t) if t.state == TaskState::Running => t.node,
                        _ => None,
                    };
                    if let Some(node) = node {
                        self.set_task_state(task, TaskState::MustSuspend);
                        self.enqueue_command(node, task);
                    }
                }
                SchedulerAction::Resume { task } => {
                    let node = match self.task(task) {
                        Some(t) if t.state == TaskState::Suspended => t.node,
                        _ => None,
                    };
                    if let Some(node) = node {
                        self.set_task_state(task, TaskState::MustResume);
                        self.enqueue_command(node, task);
                    }
                }
                SchedulerAction::Kill { task } => {
                    let node = match self.task(task) {
                        Some(t)
                            if matches!(
                                t.state,
                                TaskState::Running
                                    | TaskState::Suspended
                                    | TaskState::MustSuspend
                                    | TaskState::MustResume
                            ) =>
                        {
                            t.node
                        }
                        _ => None,
                    };
                    if let Some(node) = node {
                        self.set_task_state(task, TaskState::MustKill);
                        self.enqueue_command(node, task);
                    }
                }
            }
        }
        if let Some(obs) = self.obs.as_mut() {
            obs.record_actions(&acted, timer);
        }
    }

    /// Shuffle-duration multiplier for a reduce of `job` launching on `node`:
    /// cross-rack map-output bytes pay the configured top-of-rack penalty,
    /// `1 + (penalty - 1) * cross_rack_fraction`. `1.0` while shuffle
    /// tracking is off (or the penalty is 1), so the default-off
    /// configuration prices every byte identically.
    fn reduce_contention(&self, job: JobId, node: NodeId) -> f64 {
        if !self.shuffle.enabled() {
            return 1.0;
        }
        let rack = RackId(self.node_rack[node.0 as usize]);
        let penalty = self.shuffle.config().cross_rack_penalty;
        1.0 + (penalty - 1.0) * self.shuffle.cross_rack_fraction(job, rack)
    }

    fn launch_task(&mut self, task: TaskId, node: NodeId, now: SimTime) {
        // A dark node cannot receive a launch: the scheduler's view of it is
        // stale until the detector tears it down or the link heals.
        if self.link.get(node.0 as usize) != Some(&LinkState::Up) {
            return;
        }
        // Build the execution plan from borrowed state: no clones of the
        // profile, the preferred-node list or the disk config on this path.
        let (plan, locality) = {
            let Some(job) = self.jobs.get(&task.job) else {
                return;
            };
            let Some(t) = job.task(task) else { return };
            if !t.state.is_schedulable() {
                return;
            }
            let Some(tt) = self.tracker(node) else { return };
            if tt.free_slots(task.kind) == 0 {
                return;
            }
            // O(replicas): the topology's rack lookups are O(1).
            let locality = if t.preferred_nodes.is_empty() {
                Locality::NodeLocal
            } else {
                t.preferred_nodes
                    .iter()
                    .map(|holder| self.namenode.topology().locality(node, *holder))
                    .min()
                    .unwrap_or(Locality::OffRack)
            };
            let disk = &tt.kernel().config().disk;
            let profile = &job.spec.profile;
            let plan = match task.kind {
                TaskKind::Map => {
                    ExecPlan::for_map(&self.config.task, disk, profile, t.input_bytes, locality)
                }
                TaskKind::Reduce => {
                    let contention = self.reduce_contention(task.job, node);
                    ExecPlan::for_reduce_contended(
                        &self.config.task,
                        disk,
                        profile,
                        t.input_bytes,
                        contention,
                    )
                }
            };
            (plan, locality)
        };
        let plan = self.apply_gray_stretch(plan, node);
        let attempt_id = {
            let Some(t) = self.task_mut(task) else { return };
            t.next_attempt()
        };
        let tt = self.tracker_mut(node).expect("checked above");
        if tt.launch(attempt_id, task.kind, plan, now).is_err() {
            // Roll back the attempt counter bump is not necessary: attempt ids
            // only need to be unique.
            return;
        }
        self.mark_node_dirty(node);
        if task.kind == TaskKind::Map {
            self.locality.record(locality);
            // Delay scheduling: a node-local launch ends the job's wait
            // (reset-on-local-launch); the wait it paid goes into the
            // histogram. Preference-less tasks count as node-local but never
            // start a wait, so they record nothing.
            if locality == Locality::NodeLocal {
                if let Some(waited) = self.delay.local_launch(task.job, now) {
                    self.locality.record_delay_wait(waited);
                }
            }
        }
        self.set_task_state(task, TaskState::Running);
        {
            let t = self.task_mut(task).expect("task exists");
            t.node = Some(node);
            t.current_attempt = Some(attempt_id);
            t.progress = 0.0;
            if t.first_launched_at.is_none() {
                t.first_launched_at = Some(now);
            }
        }
        // Schedule the end of the setup phase.
        let setup = self
            .tracker(node)
            .and_then(|tt| tt.attempt(attempt_id))
            .map(|a| a.plan.setup)
            .unwrap_or(SimDuration::ZERO);
        let event = self.queue.schedule(
            now + setup,
            Event::PhaseDone {
                node,
                attempt: attempt_id,
                phase: AttemptPhase::Setup,
            },
        );
        if let Some(tt) = self.tracker_mut(node) {
            if let Some(a) = tt.attempt_mut(attempt_id) {
                a.segment_event = Some(event);
                a.segment_start = now;
                a.segment_duration = setup;
            }
        }
        if let Some(obs) = self.obs.as_mut() {
            obs.span_begin(
                SpanKey::Attempt(attempt_id),
                node,
                attempt_id.to_string(),
                now,
            );
        }
        if self.tracing() {
            self.trace_event(
                now,
                TraceKind::Launched,
                task.job,
                Some(task),
                Some(node),
                format!("attempt {}", attempt_id.number),
            );
        }
    }

    // ----- speculative re-execution -----------------------------------------

    /// Launches a speculative (backup) attempt of `task` on `node`. The task
    /// keeps its JobTracker state (`Running` or `Suspended`); the backup is
    /// tracked through [`TaskRuntime::spec_attempt`] and the first attempt to
    /// finish wins.
    fn launch_speculative(&mut self, task: TaskId, node: NodeId, now: SimTime) {
        if self.link.get(node.0 as usize) != Some(&LinkState::Up) {
            return;
        }
        let plan = {
            let Some(job) = self.jobs.get(&task.job) else {
                return;
            };
            if job.speculative_live >= self.config.speculation.max_live_per_job {
                return;
            }
            let Some(t) = job.task(task) else { return };
            if t.spec_attempt.is_some()
                || !matches!(
                    t.state,
                    TaskState::Running | TaskState::Suspended | TaskState::MustResume
                )
                || t.node == Some(node)
            {
                return;
            }
            let Some(tt) = self.tracker(node) else { return };
            if !tt.is_alive() || tt.free_slots(task.kind) == 0 {
                return;
            }
            let locality = if t.preferred_nodes.is_empty() {
                Locality::NodeLocal
            } else {
                t.preferred_nodes
                    .iter()
                    .map(|holder| self.namenode.topology().locality(node, *holder))
                    .min()
                    .unwrap_or(Locality::OffRack)
            };
            let disk = &tt.kernel().config().disk;
            let profile = &job.spec.profile;
            match task.kind {
                TaskKind::Map => {
                    ExecPlan::for_map(&self.config.task, disk, profile, t.input_bytes, locality)
                }
                TaskKind::Reduce => {
                    let contention = self.reduce_contention(task.job, node);
                    ExecPlan::for_reduce_contended(
                        &self.config.task,
                        disk,
                        profile,
                        t.input_bytes,
                        contention,
                    )
                }
            }
        };
        let plan = self.apply_gray_stretch(plan, node);
        let attempt_id = {
            let Some(t) = self.task_mut(task) else { return };
            t.next_attempt()
        };
        let tt = self.tracker_mut(node).expect("checked above");
        if tt.launch(attempt_id, task.kind, plan, now).is_err() {
            return;
        }
        self.mark_node_dirty(node);
        {
            let job = self.jobs.get_mut(&task.job).expect("checked above");
            job.speculative_live += 1;
            let t = job.task_mut(task).expect("checked above");
            t.spec_attempt = Some(attempt_id);
            t.spec_node = Some(node);
        }
        self.fault_stats.speculative_launched += 1;
        let setup = self
            .tracker(node)
            .and_then(|tt| tt.attempt(attempt_id))
            .map(|a| a.plan.setup)
            .unwrap_or(SimDuration::ZERO);
        let event = self.queue.schedule(
            now + setup,
            Event::PhaseDone {
                node,
                attempt: attempt_id,
                phase: AttemptPhase::Setup,
            },
        );
        if let Some(tt) = self.tracker_mut(node) {
            if let Some(a) = tt.attempt_mut(attempt_id) {
                a.segment_event = Some(event);
                a.segment_start = now;
                a.segment_duration = setup;
            }
        }
        if let Some(obs) = self.obs.as_mut() {
            obs.span_begin(
                SpanKey::Attempt(attempt_id),
                node,
                attempt_id.to_string(),
                now,
            );
        }
        if self.tracing() {
            self.trace_event(
                now,
                TraceKind::Speculated,
                task.job,
                Some(task),
                Some(node),
                format!("backup attempt {}", attempt_id.number),
            );
        }
    }

    /// Kills the losing attempt of a first-finisher-wins race (or of an
    /// aborted speculation), wherever it is and whatever state it is in.
    /// Charges its invested time to the speculation-waste counter.
    fn kill_sibling_attempt(&mut self, attempt: AttemptId, node: NodeId, now: SimTime) {
        let Some(tt) = self.tracker_mut(node) else {
            return;
        };
        let Some(a) = tt.attempt(attempt) else { return };
        let pending_event = a.segment_event;
        let invested = a.invested_time(now);
        if tt.kill(attempt, now).map(|o| o.held_slot).unwrap_or(false) {
            // The killed loser held a slot: a cleanup attempt occupies it
            // until the partial output is deleted, exactly like a scheduler
            // kill.
            let epoch = self.tracker(node).map(|tt| tt.epoch()).unwrap_or(0);
            self.queue.schedule(
                now + self.config.task.cleanup_duration,
                Event::CleanupDone {
                    node,
                    kind: attempt.task.kind,
                    epoch,
                },
            );
        }
        self.mark_node_dirty(node);
        if let Some(obs) = self.obs.as_mut() {
            obs.span_end(SpanKey::Suspend(attempt), now);
            obs.span_end(SpanKey::Shuffle(attempt), now);
            obs.span_end(SpanKey::Attempt(attempt), now);
        }
        if let Some(ev) = pending_event {
            self.queue.cancel(ev);
        }
        self.fault_stats.speculative_wasted_secs += invested.as_secs_f64();
        self.schedule_out_of_band_heartbeat(node, now);
    }

    /// Tears down a task's live backup attempt (if any) and clears the
    /// speculation fields; the original attempt is unaffected.
    fn abort_speculation(&mut self, task: TaskId, now: SimTime) {
        let backup = self
            .task(task)
            .and_then(|t| t.spec_attempt.zip(t.spec_node));
        if let Some((spec_attempt, spec_node)) = backup {
            self.kill_sibling_attempt(spec_attempt, spec_node, now);
            self.clear_speculation_fields(task);
        }
    }

    // ----- progress triggers -----------------------------------------------

    fn arm_triggers(&mut self, task: TaskId, node: NodeId, attempt_id: AttemptId, _now: SimTime) {
        if self.triggers.is_empty() || task.kind != TaskKind::Map {
            return;
        }
        let Some(job) = self.jobs.get(&task.job) else {
            return;
        };
        let job_name = job.spec.name.clone();
        let (segment_start, work, work_completed) = {
            let Some(tt) = self.tracker(node) else { return };
            let Some(a) = tt.attempt(attempt_id) else {
                return;
            };
            (a.segment_start, a.plan.work, a.work_completed)
        };
        for index in 0..self.triggers.len() {
            let matches = {
                let t = &self.triggers[index];
                matches!(t.state, TriggerState::Waiting)
                    && t.job_name == job_name
                    && t.task_index == task.index
            };
            if !matches {
                continue;
            }
            let fraction = self.triggers[index].fraction;
            let target = work.mul_f64(fraction);
            let fire_at = if work_completed >= target {
                segment_start
            } else {
                segment_start + target.saturating_sub(work_completed)
            };
            let event = self
                .queue
                .schedule(fire_at, Event::ProgressTrigger { index });
            self.triggers[index].state = TriggerState::Armed { event, task };
        }
    }

    fn unarm_triggers(&mut self, task: TaskId) {
        for trigger in &mut self.triggers {
            if let TriggerState::Armed {
                event,
                task: armed_task,
            } = trigger.state
            {
                if armed_task == task {
                    self.queue.cancel(event);
                    trigger.state = TriggerState::Waiting;
                }
            }
        }
    }

    fn handle_progress_trigger(&mut self, index: usize, now: SimTime) {
        let (task, fraction) = match &self.triggers[index].state {
            TriggerState::Armed { task, .. } => (*task, self.triggers[index].fraction),
            _ => return,
        };
        self.triggers[index].state = TriggerState::Fired;
        self.refresh_views();
        let actions = {
            let ctx = SchedulerContext {
                now,
                jobs: &self.jobs,
                nodes: &self.views,
                racks: &self.rack_views,
                topology: self.namenode.topology(),
                totals: self.totals,
                speculation: self.config.speculation,
                delay: Some(&self.delay),
                shuffle: Some(&self.shuffle),
                reliability: Some(&self.reliability),
            };
            self.scheduler.on_progress_trigger(&ctx, task, fraction)
        };
        self.apply_actions(actions, now);
    }
}

/// Rebuilds one node view from its tracker's current state.
fn fill_view(view: &mut NodeView, tt: &TaskTracker) {
    view.free_map_slots = tt.free_map_slots();
    view.free_reduce_slots = tt.free_reduce_slots();
    view.running.clear();
    view.suspended.clear();
    if !tt.is_reachable() {
        // A torn-down partition victim advertises nothing: its attempts are
        // written off master-side even though they still run node-side.
        return;
    }
    for a in tt.attempts() {
        match a.state {
            AttemptState::Running => view.running.push(a.task),
            AttemptState::Suspended => view.suspended.push(a.task),
            _ => {}
        }
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("now", &self.queue.now())
            .field("nodes", &self.trackers.len())
            .field("jobs", &self.jobs.len())
            .field("scheduler", &self.scheduler.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::TaskProfile;
    use crate::scheduler::FifoScheduler;
    use mrp_sim::MIB;

    fn single_node_cluster() -> Cluster {
        Cluster::new(
            ClusterConfig::paper_single_node(),
            Box::new(FifoScheduler::new()),
        )
    }

    #[test]
    fn single_map_only_job_runs_to_completion() {
        let mut c = single_node_cluster();
        c.create_input_file("/input", 512 * MIB).unwrap();
        c.submit_job(JobSpec::map_only("solo", "/input"));
        c.run(SimTime::from_secs(3_600));
        let report = c.report();
        assert!(report.all_jobs_complete());
        let sojourn = report.sojourn_secs("solo").unwrap();
        assert!(
            (70.0..100.0).contains(&sojourn),
            "a 512MB map-only job should take ~80-90s, got {sojourn}"
        );
        assert_eq!(
            report.total_swap_out_bytes(),
            0,
            "no paging for a single light job"
        );
        assert_eq!(report.jobs[0].tasks[0].attempts, 1);
        assert!(c.events_processed() > 0);
    }

    #[test]
    fn two_jobs_on_one_slot_run_sequentially_fifo() {
        let mut c = single_node_cluster();
        c.create_input_file("/a", 512 * MIB).unwrap();
        c.create_input_file("/b", 512 * MIB).unwrap();
        c.submit_job(JobSpec::map_only("first", "/a"));
        c.submit_job_at(JobSpec::map_only("second", "/b"), SimTime::from_secs(1));
        c.run(SimTime::from_secs(3_600));
        let report = c.report();
        assert!(report.all_jobs_complete());
        let first = report.sojourn_secs("first").unwrap();
        let second = report.sojourn_secs("second").unwrap();
        assert!(
            second > first + 40.0,
            "the second job has to wait for the slot"
        );
        let makespan = report.makespan_secs().unwrap();
        assert!(
            (150.0..220.0).contains(&makespan),
            "two ~85s tasks back to back, got {makespan}"
        );
    }

    #[test]
    fn synthetic_jobs_do_not_need_dfs_files() {
        let mut c = single_node_cluster();
        c.submit_job(JobSpec::synthetic("synt", 1, 64 * MIB));
        c.run(SimTime::from_secs(600));
        assert!(c.report().all_jobs_complete());
    }

    #[test]
    fn job_with_reduce_tasks_completes() {
        let mut c = Cluster::new(
            ClusterConfig::small_cluster(2, 1, 1),
            Box::new(FifoScheduler::new()),
        );
        c.create_input_file("/in", 256 * MIB).unwrap();
        c.submit_job(JobSpec::map_only("mr", "/in").with_reduces(1));
        c.run(SimTime::from_secs(3_600));
        let report = c.report();
        assert!(report.all_jobs_complete());
        // 2 maps (128 MB blocks) + 1 reduce.
        assert_eq!(report.jobs[0].tasks.len(), 3);
    }

    #[test]
    fn memory_hungry_tasks_swap_under_contention() {
        let mut c = Cluster::new(
            {
                let mut cfg = ClusterConfig::paper_single_node();
                cfg.nodes[0].map_slots = 2;
                cfg
            },
            Box::new(FifoScheduler::new()),
        );
        c.create_input_file("/a", 512 * MIB).unwrap();
        c.create_input_file("/b", 512 * MIB).unwrap();
        c.submit_job(
            JobSpec::map_only("hog-a", "/a").with_profile(TaskProfile::memory_hungry(2048 * MIB)),
        );
        c.submit_job(
            JobSpec::map_only("hog-b", "/b").with_profile(TaskProfile::memory_hungry(2048 * MIB)),
        );
        c.run(SimTime::from_secs(3_600));
        let report = c.report();
        assert!(report.all_jobs_complete());
        assert!(
            report.total_swap_out_bytes() > 0,
            "two 2GB tasks on a 4GB node must page"
        );
    }

    #[test]
    fn trace_records_the_schedule() {
        let mut c = single_node_cluster();
        c.create_input_file("/input", 512 * MIB).unwrap();
        c.submit_job(JobSpec::map_only("traced", "/input"));
        c.run(SimTime::from_secs(3_600));
        let kinds: Vec<TraceKind> = c.trace().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&TraceKind::JobSubmitted));
        assert!(kinds.contains(&TraceKind::Launched));
        assert!(kinds.contains(&TraceKind::Completed));
        assert!(kinds.contains(&TraceKind::JobCompleted));
        assert!(c.trace().iter().all(|e| !e.to_line().is_empty()));
    }

    #[test]
    fn trace_level_off_records_nothing_but_produces_the_same_report() {
        let run = |trace_level| {
            let mut cfg = ClusterConfig::paper_single_node();
            cfg.trace_level = trace_level;
            let mut c = Cluster::new(cfg, Box::new(FifoScheduler::new()));
            c.create_input_file("/input", 512 * MIB).unwrap();
            c.submit_job(JobSpec::map_only("job", "/input"));
            c.run(SimTime::from_secs(3_600));
            (c.trace().len(), c.report())
        };
        let (traced_len, traced_report) = run(TraceLevel::Schedule);
        let (off_len, off_report) = run(TraceLevel::Off);
        assert!(traced_len > 0);
        assert_eq!(off_len, 0, "TraceLevel::Off must record nothing");
        assert_eq!(
            traced_report, off_report,
            "tracing must not alter the simulation"
        );
    }

    #[test]
    fn run_with_no_jobs_returns_immediately() {
        let mut c = single_node_cluster();
        let end = c.run(SimTime::from_secs(100));
        assert_eq!(end, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "does not exist in the simulated HDFS")]
    fn missing_input_file_panics_at_submission() {
        let mut c = single_node_cluster();
        c.submit_job(JobSpec::map_only("broken", "/nope"));
        c.run(SimTime::from_secs(10));
    }

    #[test]
    fn multi_rack_cluster_completes_and_records_locality() {
        let mut cfg = ClusterConfig::racked_cluster(2, 2, 1, 1);
        cfg.dfs_replication = 2;
        let mut c = Cluster::new(cfg, Box::new(FifoScheduler::new()));
        assert_eq!(c.namenode().topology().rack_count(), 2);
        assert_eq!(c.rack_views().len(), 2);
        // Write the input from a node in rack 1; replicas then prefer to
        // span racks, so launches land in every locality bucket over time.
        c.create_input_file_from("/in", 512 * MIB, Some(NodeId(3)))
            .unwrap();
        c.submit_job(JobSpec::map_only("racked", "/in"));
        c.run(SimTime::from_secs(3_600));
        let report = c.report();
        assert!(report.all_jobs_complete());
        // 4 x 128 MB blocks -> 4 map launches, all recorded.
        assert_eq!(report.locality.total(), 4);
        assert_eq!(c.locality_stats(), report.locality);
        // With everything idle again, the maintained rack counters must add
        // back up to the configured slots.
        let total_free: u32 = c.rack_views().iter().map(|r| r.free_map_slots).sum();
        assert_eq!(total_free, 4);
        for rv in c.rack_views() {
            assert_eq!(rv.nodes, 2);
        }
    }

    #[test]
    fn full_refresh_mode_matches_sharded_mode() {
        let run = |mode| {
            let mut cfg = ClusterConfig::racked_cluster(2, 2, 1, 1);
            cfg.refresh_mode = mode;
            let mut c = Cluster::new(cfg, Box::new(FifoScheduler::new()));
            c.create_input_file("/a", 512 * MIB).unwrap();
            c.submit_job(JobSpec::map_only("a", "/a"));
            c.submit_job_at(JobSpec::synthetic("b", 6, 64 * MIB), SimTime::from_secs(15));
            c.run(SimTime::from_secs(3_600));
            (c.report(), c.events_processed())
        };
        let sharded = run(crate::config::RefreshMode::Sharded);
        let full = run(crate::config::RefreshMode::Full);
        assert_eq!(sharded, full, "refresh sharding must not change outcomes");
    }

    #[test]
    fn node_failure_reschedules_tasks_and_the_job_still_completes() {
        let mut cfg = ClusterConfig::small_cluster(2, 1, 1);
        cfg.faults.events.push(crate::config::FaultEvent {
            at: SimTime::from_secs(30),
            kind: crate::config::FaultKind::Kill { node: NodeId(1) },
        });
        let mut c = Cluster::new(cfg, Box::new(FifoScheduler::new()));
        c.create_input_file("/in", 512 * MIB).unwrap();
        c.submit_job(JobSpec::map_only("churn", "/in"));
        c.run(SimTime::from_secs(3_600));
        let report = c.report();
        assert!(report.all_jobs_complete(), "survivor node finishes the job");
        assert_eq!(report.faults.node_failures, 1);
        assert!(
            report.faults.attempts_lost >= 1,
            "node 1 was running a task at t=30: {:?}",
            report.faults
        );
        assert!(report.faults.attempts_lost >= report.faults.re_executed_tasks);
        assert!(!c.node_is_alive(NodeId(1)));
        assert!(!c.namenode().is_live(NodeId(1)));
        // The re-executed task needed a second attempt.
        let max_attempts = report.jobs[0]
            .tasks
            .iter()
            .map(|t| t.attempts)
            .max()
            .unwrap();
        assert!(max_attempts >= 2);
        let kinds: Vec<TraceKind> = c.trace().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&TraceKind::NodeFailed));
    }

    #[test]
    fn failed_node_rejoins_and_takes_work_again() {
        let mut cfg = ClusterConfig::small_cluster(2, 1, 1);
        cfg.faults.events.push(crate::config::FaultEvent {
            at: SimTime::from_secs(10),
            kind: crate::config::FaultKind::Kill { node: NodeId(1) },
        });
        cfg.faults.events.push(crate::config::FaultEvent {
            at: SimTime::from_secs(40),
            kind: crate::config::FaultKind::Rejoin { node: NodeId(1) },
        });
        let mut c = Cluster::new(cfg, Box::new(FifoScheduler::new()));
        c.create_input_file("/in", 512 * MIB).unwrap();
        c.submit_job(JobSpec::map_only("rejoin", "/in"));
        c.run(SimTime::from_secs(3_600));
        let report = c.report();
        assert!(report.all_jobs_complete());
        assert_eq!(report.faults.node_failures, 1);
        assert_eq!(report.faults.node_rejoins, 1);
        assert!(c.node_is_alive(NodeId(1)));
        assert!(c.namenode().is_live(NodeId(1)));
        // Both nodes active again at the end: total free map slots add up.
        let total_free: u32 = c.rack_views().iter().map(|r| r.free_map_slots).sum();
        assert_eq!(total_free, 2);
    }

    #[test]
    fn decommission_drains_replicas_and_counts_separately() {
        let mut cfg = ClusterConfig::small_cluster(4, 1, 1);
        cfg.faults.events.push(crate::config::FaultEvent {
            at: SimTime::from_secs(5),
            kind: crate::config::FaultKind::Decommission { node: NodeId(0) },
        });
        let mut c = Cluster::new(cfg, Box::new(FifoScheduler::new()));
        // Written from node 0, replication 3: node 0 holds a replica of
        // every block, so decommissioning it forces re-replication.
        c.create_input_file("/in", 512 * MIB).unwrap();
        c.submit_job(JobSpec::map_only("drain", "/in"));
        c.run(SimTime::from_secs(3_600));
        let report = c.report();
        assert!(report.all_jobs_complete());
        assert_eq!(report.faults.node_decommissions, 1);
        assert_eq!(report.faults.node_failures, 0);
        assert!(
            report.faults.re_replicated_blocks >= 1,
            "node 0 held first replicas: {:?}",
            report.faults
        );
        assert_eq!(
            report.faults.lost_blocks, 0,
            "decommission never loses blocks"
        );
    }

    #[test]
    fn rack_outage_fails_every_member_and_rack_rejoin_restores_them() {
        let mut cfg = ClusterConfig::racked_cluster(2, 2, 1, 1);
        cfg.faults.events.push(crate::config::FaultEvent {
            at: SimTime::from_secs(20),
            kind: crate::config::FaultKind::RackOutage { rack: RackId(1) },
        });
        cfg.faults.events.push(crate::config::FaultEvent {
            at: SimTime::from_secs(50),
            kind: crate::config::FaultKind::RackRejoin { rack: RackId(1) },
        });
        let mut c = Cluster::new(cfg, Box::new(FifoScheduler::new()));
        c.submit_job(JobSpec::synthetic("outage", 8, 128 * MIB));
        c.run(SimTime::from_secs(3_600));
        let report = c.report();
        assert!(report.all_jobs_complete());
        assert_eq!(report.faults.node_failures, 2, "both rack members fail");
        assert_eq!(report.faults.node_rejoins, 2);
        assert!(c.node_is_alive(NodeId(2)) && c.node_is_alive(NodeId(3)));
    }

    #[test]
    fn lost_map_outputs_stall_reduces_and_reexecute_maps() {
        // Fault-tolerant shuffle on: killing a node after its map committed
        // destroys the node-local output; the affected map re-executes, the
        // reduces stall in Shuffle with backoff instead of failing, and the
        // job still completes.
        let mut cfg = ClusterConfig::racked_cluster(2, 2, 1, 1);
        cfg.shuffle = crate::config::ShuffleConfig::fault_tolerant();
        cfg.faults.events.push(crate::config::FaultEvent {
            at: SimTime::from_secs(30),
            kind: crate::config::FaultKind::Kill { node: NodeId(3) },
        });
        let mut c = Cluster::new(cfg, Box::new(FifoScheduler::new()));
        c.submit_job(JobSpec::synthetic("mr", 4, 128 * MIB).with_reduces(2));
        c.run(SimTime::from_secs(3_600));
        let report = c.report();
        assert!(report.all_jobs_complete(), "{:?}", report.faults);
        assert!(
            report.faults.lost_map_outputs >= 1,
            "node 3 held a committed map output at t=30: {:?}",
            report.faults
        );
        assert!(
            report.faults.shuffle_refetches >= 1,
            "reduces must have waited on missing outputs: {:?}",
            report.faults
        );
        assert!(report.faults.re_executed_tasks >= report.faults.lost_map_outputs);
        let kinds: Vec<TraceKind> = c.trace().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&TraceKind::MapOutputLost));
        // The registry retires with the job.
        assert!(!c.shuffle_tracker().tracked(JobId(1)));
    }

    #[test]
    fn decommission_drains_map_outputs_without_reexecution() {
        // A graceful decommission migrates the leaving node's map outputs to
        // a live node — no map output is lost and no completed map restarts,
        // mirroring the NameNode's graceful block drain.
        let mut cfg = ClusterConfig::racked_cluster(2, 2, 1, 1);
        cfg.shuffle = crate::config::ShuffleConfig::fault_tolerant();
        cfg.faults.events.push(crate::config::FaultEvent {
            at: SimTime::from_secs(30),
            kind: crate::config::FaultKind::Decommission { node: NodeId(3) },
        });
        let mut c = Cluster::new(cfg, Box::new(FifoScheduler::new()));
        c.submit_job(JobSpec::synthetic("drain", 4, 128 * MIB).with_reduces(2));
        c.run(SimTime::from_secs(3_600));
        let report = c.report();
        assert!(report.all_jobs_complete());
        assert_eq!(report.faults.lost_map_outputs, 0);
        assert!(
            report.faults.map_outputs_migrated >= 1,
            "node 3 held a committed map output at t=30: {:?}",
            report.faults
        );
        // Every map committed exactly once: the drain made re-execution
        // unnecessary.
        for task in report.jobs[0]
            .tasks
            .iter()
            .filter(|t| t.id.kind == TaskKind::Map)
        {
            assert_eq!(task.attempts, 1, "map {:?} restarted", task.id);
        }
    }

    #[test]
    fn crashes_feed_the_reliability_predictor_but_decommissions_do_not() {
        let run = |kind: crate::config::FaultKind| {
            let mut cfg = ClusterConfig::racked_cluster(2, 2, 1, 1);
            cfg.reliability = crate::config::ReliabilityConfig::predictive();
            cfg.faults.events.push(crate::config::FaultEvent {
                at: SimTime::from_secs(10),
                kind,
            });
            let mut c = Cluster::new(cfg, Box::new(FifoScheduler::new()));
            c.submit_job(JobSpec::synthetic("r", 8, 128 * MIB));
            c.run(SimTime::from_secs(60));
            c
        };
        let crashed = run(crate::config::FaultKind::Kill { node: NodeId(1) });
        assert!(crashed
            .reliability_tracker()
            .flaky(NodeId(1), RackId(0), SimTime::from_secs(11)));
        let drained = run(crate::config::FaultKind::Decommission { node: NodeId(1) });
        assert_eq!(
            drained
                .reliability_tracker()
                .score(NodeId(1), RackId(0), SimTime::from_secs(11)),
            0.0,
            "an operator action is not evidence of flakiness"
        );
    }

    #[test]
    fn detector_defers_kill_until_missed_heartbeat_timeout() {
        // Detector on, node 1 killed at t=30. Heartbeats come every 3s and
        // suspicion needs 3 missed ones, so the master keeps believing in
        // the dead node — slots occupied, no teardown — until the timeout
        // anchored on the last delivered heartbeat expires.
        let mut cfg = ClusterConfig::small_cluster(2, 1, 1);
        cfg.detector = crate::config::DetectorConfig::enabled();
        cfg.faults.events.push(crate::config::FaultEvent {
            at: SimTime::from_secs(30),
            kind: crate::config::FaultKind::Kill { node: NodeId(1) },
        });
        let timeout = cfg.detector.timeout(cfg.heartbeat_interval);
        let interval = cfg.heartbeat_interval;
        let mut c = Cluster::new(cfg, Box::new(FifoScheduler::new()));
        c.create_input_file("/in", 512 * MIB).unwrap();
        c.submit_job(JobSpec::map_only("late-news", "/in"));
        c.run(SimTime::from_secs(3_600));
        let report = c.report();
        assert!(report.all_jobs_complete(), "{:?}", report.faults);
        assert_eq!(report.faults.nodes_suspected, 1);
        assert_eq!(report.faults.failures_detected, 1);
        assert_eq!(report.faults.node_failures, 1);
        let suspected_at = c
            .trace()
            .iter()
            .find(|e| e.kind == TraceKind::NodeSuspected)
            .map(|e| e.at)
            .expect("suspicion trace");
        let failed_at = c
            .trace()
            .iter()
            .find(|e| e.kind == TraceKind::NodeFailed)
            .map(|e| e.at)
            .expect("teardown trace");
        // Zero confirmation grace: suspicion is confirmation.
        assert_eq!(suspected_at, failed_at);
        let killed_at = SimTime::from_secs(30);
        assert!(
            failed_at > killed_at,
            "the kill must be observed strictly after it struck"
        );
        assert!(
            failed_at <= killed_at + timeout,
            "detection lag is bounded by the timeout: failed at {failed_at:?}"
        );
        // The last heartbeat landed at most one interval before the kill.
        assert!(failed_at >= killed_at + timeout.saturating_sub(interval));
        let lag = report.faults.detection_lag_secs_max;
        assert!(
            (lag - (failed_at - killed_at).as_secs_f64()).abs() < 1e-9,
            "lag accounting matches the trace: {lag}"
        );
        assert!(report.faults.detection_lag_secs_sum >= lag);
    }

    #[test]
    fn healed_partition_recontributes_work_without_duplicate_commits() {
        // Node 3 is cut off at t=30 with the detector on: the master tears
        // it down after the timeout and re-runs its work, while the node
        // keeps executing behind the partition. The heal at t=60 drains its
        // buffered completions through first-commit-wins reconciliation.
        let mut cfg = ClusterConfig::racked_cluster(2, 2, 1, 1);
        cfg.detector = crate::config::DetectorConfig::enabled();
        cfg.shuffle = crate::config::ShuffleConfig::fault_tolerant();
        cfg.faults.events.push(crate::config::FaultEvent {
            at: SimTime::from_secs(30),
            kind: crate::config::FaultKind::Partition { node: NodeId(3) },
        });
        cfg.faults.events.push(crate::config::FaultEvent {
            at: SimTime::from_secs(60),
            kind: crate::config::FaultKind::PartitionHeal { node: NodeId(3) },
        });
        let mut c = Cluster::new(cfg, Box::new(FifoScheduler::new()));
        c.submit_job(JobSpec::synthetic("split-brain", 12, 128 * MIB));
        c.run(SimTime::from_secs(3_600));
        let report = c.report();
        assert!(report.all_jobs_complete(), "{:?}", report.faults);
        assert_eq!(report.faults.partitions, 1);
        assert_eq!(report.faults.partition_heals, 1);
        // A partition teardown is not a crash.
        assert_eq!(report.faults.node_failures, 0);
        assert_eq!(report.faults.nodes_suspected, 1);
        assert_eq!(report.faults.failures_detected, 1);
        // The node was mid-task when cut off, so the heal reconciles at
        // least one completion (commit or discard) — and never commits any
        // task twice.
        assert!(
            report.faults.reconciled_commits + report.faults.reconciled_discards >= 1,
            "{:?}",
            report.faults
        );
        assert_eq!(report.faults.duplicate_commits, 0);
        assert!(c.node_is_alive(NodeId(3)));
        for task in &report.jobs[0].tasks {
            assert!((task.progress - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn partition_healed_before_timeout_never_penalizes_the_node() {
        // The heal lands before the suspicion timer fires: the master never
        // learns anything was wrong, so no teardown, no detection, and —
        // the satellite pin — no reliability-score penalty.
        let mut cfg = ClusterConfig::racked_cluster(2, 2, 1, 1);
        cfg.detector = crate::config::DetectorConfig::enabled();
        cfg.reliability = crate::config::ReliabilityConfig::predictive();
        cfg.faults.events.push(crate::config::FaultEvent {
            at: SimTime::from_secs(10),
            kind: crate::config::FaultKind::Partition { node: NodeId(1) },
        });
        cfg.faults.events.push(crate::config::FaultEvent {
            at: SimTime::from_secs(12),
            kind: crate::config::FaultKind::PartitionHeal { node: NodeId(1) },
        });
        let mut c = Cluster::new(cfg, Box::new(FifoScheduler::new()));
        c.submit_job(JobSpec::synthetic("blip", 8, 128 * MIB));
        c.run(SimTime::from_secs(3_600));
        let report = c.report();
        assert!(report.all_jobs_complete(), "{:?}", report.faults);
        assert_eq!(report.faults.partitions, 1);
        assert_eq!(report.faults.partition_heals, 1);
        assert_eq!(report.faults.nodes_suspected, 0, "timer went stale");
        assert_eq!(report.faults.failures_detected, 0);
        assert_eq!(report.faults.node_failures, 0);
        assert_eq!(report.faults.duplicate_commits, 0);
        assert_eq!(
            c.reliability_tracker()
                .score(NodeId(1), RackId(0), SimTime::from_secs(13)),
            0.0,
            "a heal before the timeout leaves the failure score untouched"
        );
    }

    #[test]
    fn gray_failure_stretches_new_launches_and_heals() {
        // A slow disk triples the I/O-bound segments of everything node 1
        // launches while degraded — no crash, no teardown, just a straggler.
        let run = |gray: bool| {
            let mut cfg = ClusterConfig::small_cluster(2, 1, 1);
            cfg.reliability = crate::config::ReliabilityConfig::predictive();
            if gray {
                cfg.faults.events.push(crate::config::FaultEvent {
                    at: SimTime::from_secs(5),
                    kind: crate::config::FaultKind::Gray {
                        node: NodeId(1),
                        slow_disk: 3.0,
                        slow_net: 1.0,
                    },
                });
            }
            let mut c = Cluster::new(cfg, Box::new(FifoScheduler::new()));
            c.submit_job(JobSpec::synthetic("sick-disk", 8, 128 * MIB));
            c.run(SimTime::from_secs(24 * 3_600));
            c
        };
        let healthy = run(false).report();
        let gray = run(true);
        let report = gray.report();
        assert!(report.all_jobs_complete());
        assert_eq!(report.faults.gray_failures, 1);
        assert_eq!(report.faults.node_failures, 0);
        assert!(
            report.makespan_secs().unwrap() > healthy.makespan_secs().unwrap(),
            "a degraded node must slow the job down: {} vs {}",
            report.makespan_secs().unwrap(),
            healthy.makespan_secs().unwrap()
        );
        assert!(
            gray.reliability_tracker()
                .score(NodeId(1), RackId(0), SimTime::from_secs(6))
                > 0.0,
            "gray failures feed the placement predictor"
        );
        // A heal restores full speed for later launches.
        let mut cfg = ClusterConfig::small_cluster(2, 1, 1);
        cfg.faults.events.push(crate::config::FaultEvent {
            at: SimTime::from_secs(5),
            kind: crate::config::FaultKind::Gray {
                node: NodeId(1),
                slow_disk: 3.0,
                slow_net: 2.0,
            },
        });
        cfg.faults.events.push(crate::config::FaultEvent {
            at: SimTime::from_secs(6),
            kind: crate::config::FaultKind::GrayHeal { node: NodeId(1) },
        });
        let mut c = Cluster::new(cfg, Box::new(FifoScheduler::new()));
        c.submit_job(JobSpec::synthetic("recovered", 8, 128 * MIB));
        c.run(SimTime::from_secs(24 * 3_600));
        let healed = c.report();
        assert!(healed.all_jobs_complete());
        assert_eq!(healed.faults.gray_heals, 1);
    }

    #[test]
    fn random_mtbf_churn_is_deterministic_and_survivable() {
        let run = || {
            let mut cfg = ClusterConfig::racked_cluster(2, 3, 1, 1);
            cfg.faults.random = Some(crate::config::RandomFaults {
                rack_mtbf_secs: 25.0,
                mean_recovery_secs: Some(20.0),
                horizon: SimTime::from_secs(600),
                seed: 0xFA11,
            });
            let mut c = Cluster::new(cfg, Box::new(FifoScheduler::new()));
            c.submit_job(JobSpec::synthetic("churny", 24, 128 * MIB));
            c.run(SimTime::from_secs(24 * 3_600));
            (c.events_processed(), c.report())
        };
        let (events_a, report_a) = run();
        let (events_b, report_b) = run();
        assert!(report_a.all_jobs_complete());
        assert!(
            report_a.faults.node_failures >= 2,
            "a 60s-per-rack MTBF over a multi-minute run must strike: {:?}",
            report_a.faults
        );
        assert_eq!(events_a, events_b);
        assert_eq!(
            report_a, report_b,
            "fault injection must stay deterministic"
        );
    }

    #[test]
    fn unrecoverable_allocation_failure_keeps_counters_consistent() {
        // Pinned regression test for `force_kill_after_failure` and the
        // allocation-failure path: a task whose allocation can never succeed
        // (8 GB of state on a 3 GB node with 64 MB of swap) is OOM-killed at
        // the end of every setup phase and rescheduled, forever. The
        // maintained per-job per-kind counters and the cluster-wide
        // PendingTotals must survive this loop without drifting.
        let mut cfg = ClusterConfig::paper_single_node();
        cfg.nodes[0].os.memory = mrp_simos::MemoryConfig {
            total_ram: 3 * 1024 * MIB,
            os_reserve: 512 * MIB,
            swap_capacity: 64 * MIB,
            ..Default::default()
        };
        let mut c = Cluster::new(cfg, Box::new(FifoScheduler::new()));
        c.submit_job(
            JobSpec::synthetic("doomed", 1, 64 * MIB)
                .with_profile(TaskProfile::memory_hungry(8 * 1024 * MIB)),
        );
        c.run(SimTime::from_secs(60));
        let report = c.report();
        assert!(!report.all_jobs_complete(), "the job can never finish");
        let job = c.jobs().values().next().unwrap();
        assert!(
            job.tasks[0].attempts_made >= 2,
            "the task must have been retried, got {}",
            job.tasks[0].attempts_made
        );
        assert_eq!(job.tasks[0].state, TaskState::Pending);
        // The incrementally maintained counters match a recount.
        let mut fresh = job.clone();
        fresh.recount_task_states();
        assert_eq!(
            (
                job.schedulable_maps,
                job.schedulable_reduces,
                job.suspended_count,
                job.occupying_count,
                job.speculative_live
            ),
            (
                fresh.schedulable_maps,
                fresh.schedulable_reduces,
                fresh.suspended_count,
                fresh.occupying_count,
                fresh.speculative_live
            ),
            "maintained counters drifted across the kill-after-failure loop"
        );
        assert_eq!(c.pending_totals(), PendingTotals::from_jobs(c.jobs()));
        assert!(report.nodes[0].oom_kills >= 1);
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let run = || {
            let mut c = single_node_cluster();
            c.create_input_file("/a", 512 * MIB).unwrap();
            c.create_input_file("/b", 256 * MIB).unwrap();
            c.submit_job(JobSpec::map_only("j1", "/a"));
            c.submit_job_at(JobSpec::map_only("j2", "/b"), SimTime::from_secs(20));
            c.run(SimTime::from_secs(3_600));
            c.report()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }
}
