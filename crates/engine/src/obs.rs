//! Engine-side observability state: the cluster's metrics registry, the
//! virtual-time series sampler, the event-loop profiler and the span trace.
//!
//! The cluster owns at most one [`ObsState`], boxed behind an `Option` that
//! is `None` unless [`ObsConfig`](crate::ObsConfig) is enabled — the
//! default-off path pays one pointer-null check per recording site and
//! allocates nothing. When enabled the layer stays *passive*: the sampler is
//! polled from the event loop rather than scheduling events, spans only copy
//! ids and timestamps, and the profiler only reads the wall clock, so an
//! observed run computes byte-identical reports and event counts to an
//! unobserved one.
//!
//! Data flow: `cluster.rs` hot paths call the `note_*`/`span_*` recorders
//! here; [`Cluster::observability`](crate::Cluster::observability) exposes
//! the accumulated state; and the exporters in `mrp_preempt::obs_export`
//! (the core crate sits *above* the engine) turn it into Chrome
//! `trace_event` JSON, series JSON and the profiler table.

use crate::config::ObsConfig;
use crate::job::AttemptId;
use mrp_dfs::NodeId;
use mrp_sim::{
    HistogramId, LoopProfiler, MetricsRegistry, ProfileReport, SimTime, TimeSeriesSampler,
};
use std::collections::HashMap;
use std::time::Instant;

/// Event-kind names, indexed by the discriminant the cluster's run loop
/// passes to `ObsState::note_event`. Index 0 is the heartbeat wheel (the
/// computed periodic heartbeats that never touch the event queue); the rest
/// mirror the `Event` enum.
pub const EVENT_KINDS: [&str; 8] = [
    "heartbeat_wheel",
    "job_arrival",
    "heartbeat_oob",
    "phase_done",
    "cleanup_done",
    "progress_trigger",
    "fault",
    "detector",
];

/// Scheduler-action names, indexed by the discriminant `apply_actions`
/// passes to `ObsState::record_actions`; mirrors `SchedulerAction`.
pub const ACTION_KINDS: [&str; 6] = [
    "submit_job",
    "launch",
    "launch_speculative",
    "suspend",
    "resume",
    "kill",
];

/// The column names of the sampled time series, in row-value order.
pub const SERIES_COLUMNS: [&str; 10] = [
    "schedulable_maps",
    "schedulable_reduces",
    "suspended_tasks",
    "free_map_slots",
    "free_reduce_slots",
    "swapped_bytes",
    "swap_backlog_bytes",
    "nodes_suspected",
    "incomplete_jobs",
    "events_processed",
];

/// What a span measures. The four families cover the windows the paper's
/// analysis cares about: where attempts ran, how long suspensions held
/// state on disk, how long reduces stalled re-fetching lost map output, and
/// how long nodes sat behind a partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// One execution attempt, launch to completion/kill/loss.
    Attempt,
    /// One suspend/resume cycle (`SIGTSTP` delivery to `SIGCONT` delivery,
    /// or to the kill/loss that ended it).
    SuspendCycle,
    /// A reduce stalled in its shuffle phase re-fetching lost map outputs
    /// (first retry to the fetch completing).
    ShuffleStall,
    /// A node behind a network partition (strike to heal).
    Partition,
}

impl SpanKind {
    /// Chrome-trace category string.
    pub fn category(self) -> &'static str {
        match self {
            SpanKind::Attempt => "attempt",
            SpanKind::SuspendCycle => "suspend",
            SpanKind::ShuffleStall => "shuffle_stall",
            SpanKind::Partition => "partition",
        }
    }
}

/// Identity of an open span; closing uses the same key that opened it.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum SpanKey {
    Attempt(AttemptId),
    Suspend(AttemptId),
    Shuffle(AttemptId),
    Partition(NodeId),
}

impl SpanKey {
    fn kind(self) -> SpanKind {
        match self {
            SpanKey::Attempt(_) => SpanKind::Attempt,
            SpanKey::Suspend(_) => SpanKind::SuspendCycle,
            SpanKey::Shuffle(_) => SpanKind::ShuffleStall,
            SpanKey::Partition(_) => SpanKind::Partition,
        }
    }
}

/// One recorded span: a named virtual-time window on a node's lane.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// Span family.
    pub kind: SpanKind,
    /// Human-readable name (`attempt_0001_m_000003_0`, `node-17`, ...).
    pub name: String,
    /// Node the span happened on — the Chrome-trace thread lane.
    pub node: NodeId,
    /// Virtual begin timestamp.
    pub begin: SimTime,
    /// Virtual end timestamp; `None` while still open (the exporter clamps
    /// open spans to the run's final time).
    pub end: Option<SimTime>,
}

/// The observability state owned by an observed cluster.
pub struct ObsState {
    cfg: ObsConfig,
    registry: MetricsRegistry,
    profiler: Option<LoopProfiler>,
    sampler: Option<TimeSeriesSampler>,
    spans: Vec<Span>,
    open: HashMap<SpanKey, usize>,
    dropped_spans: u64,
    // Registry handles for the per-family duration histograms, recorded
    // when a span closes (micros of virtual time).
    hist_attempt: HistogramId,
    hist_suspend: HistogramId,
    hist_shuffle: HistogramId,
    hist_partition: HistogramId,
}

impl ObsState {
    pub(crate) fn new(cfg: ObsConfig) -> Self {
        let mut registry = MetricsRegistry::new();
        let hist_attempt = registry.histogram("attempt_duration_us");
        let hist_suspend = registry.histogram("suspend_cycle_us");
        let hist_shuffle = registry.histogram("shuffle_stall_us");
        let hist_partition = registry.histogram("partition_window_us");
        ObsState {
            cfg,
            registry,
            profiler: cfg
                .profile
                .then(|| LoopProfiler::new(&EVENT_KINDS, &ACTION_KINDS)),
            sampler: cfg.series.then(|| {
                TimeSeriesSampler::new(
                    cfg.sample_interval,
                    SERIES_COLUMNS.iter().map(|c| c.to_string()).collect(),
                )
            }),
            spans: Vec::new(),
            open: HashMap::new(),
            dropped_spans: 0,
            hist_attempt,
            hist_suspend,
            hist_shuffle,
            hist_partition,
        }
    }

    /// The configuration this state was built from.
    pub fn config(&self) -> ObsConfig {
        self.cfg
    }

    /// The metrics registry (duration histograms per span family, plus
    /// whatever callers register themselves).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Mutable registry access, for harnesses that record custom metrics.
    pub fn registry_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.registry
    }

    /// The sampled time series, when series sampling is on.
    pub fn series(&self) -> Option<&TimeSeriesSampler> {
        self.sampler.as_ref()
    }

    /// All recorded spans, in begin order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Spans dropped after [`ObsConfig::max_spans`] was reached.
    pub fn dropped_spans(&self) -> u64 {
        self.dropped_spans
    }

    /// Snapshot of the event-loop profile, when profiling is on.
    pub fn profile(&self) -> Option<ProfileReport> {
        self.profiler.as_ref().map(|p| p.report())
    }

    // ----- recorders called from cluster.rs ---------------------------------

    #[inline]
    pub(crate) fn loop_begin(&mut self) {
        if let Some(p) = self.profiler.as_mut() {
            p.begin_loop();
        }
    }

    #[inline]
    pub(crate) fn loop_end(&mut self) {
        if let Some(p) = self.profiler.as_mut() {
            p.end_loop();
        }
    }

    #[inline]
    pub(crate) fn note_event(&mut self, kind: usize) {
        if let Some(p) = self.profiler.as_mut() {
            p.note(kind);
        }
    }

    #[inline]
    pub(crate) fn action_timer(&mut self) -> Option<Instant> {
        self.profiler.as_mut().and_then(|p| p.action_timer())
    }

    #[inline]
    pub(crate) fn record_actions(&mut self, per_kind: &[u32], timer: Option<Instant>) {
        if let Some(p) = self.profiler.as_mut() {
            p.record_actions(per_kind, timer);
        }
    }

    #[inline]
    pub(crate) fn series_due(&self, now: SimTime) -> bool {
        self.sampler.as_ref().is_some_and(|s| s.due(now))
    }

    pub(crate) fn record_series(&mut self, now: SimTime, values: Vec<u64>) {
        if let Some(s) = self.sampler.as_mut() {
            s.record(now, values);
        }
    }

    /// Opens a span. A begin on a key that is already open is ignored (the
    /// first begin wins — matches the engine's first-commit-wins flavor and
    /// keeps the trace balanced).
    pub(crate) fn span_begin(&mut self, key: SpanKey, node: NodeId, name: String, at: SimTime) {
        if !self.cfg.spans || self.open.contains_key(&key) {
            return;
        }
        if self.spans.len() >= self.cfg.max_spans {
            self.dropped_spans += 1;
            return;
        }
        self.open.insert(key, self.spans.len());
        self.spans.push(Span {
            kind: key.kind(),
            name,
            node,
            begin: at,
            end: None,
        });
    }

    /// Closes a span; a no-op when the key is not open (the span was never
    /// begun, was dropped at the cap, or was already closed by an earlier
    /// teardown path).
    pub(crate) fn span_end(&mut self, key: SpanKey, at: SimTime) {
        if !self.cfg.spans {
            return;
        }
        let Some(idx) = self.open.remove(&key) else {
            return;
        };
        let span = &mut self.spans[idx];
        let end = at.max(span.begin);
        span.end = Some(end);
        let micros = end.as_micros() - span.begin.as_micros();
        let hist = match span.kind {
            SpanKind::Attempt => self.hist_attempt,
            SpanKind::SuspendCycle => self.hist_suspend,
            SpanKind::ShuffleStall => self.hist_shuffle,
            SpanKind::Partition => self.hist_partition,
        };
        self.registry.observe(hist, micros);
    }

    /// Number of spans still open (attempts running at `max_time`, unhealed
    /// partitions, ...). The exporter clamps these to the final time.
    pub fn open_spans(&self) -> usize {
        self.open.len()
    }
}
