//! Map-output tracking: the registry that makes shuffle a fault domain.
//!
//! In real Hadoop a committed map task leaves its output on the local disks
//! of the node that ran it; reduces fetch those bytes over the network during
//! their shuffle phase. The output is **not** in HDFS — when the node dies,
//! the bytes die with it, the fetching reduces report fetch failures, and the
//! JobTracker re-executes the affected *completed* maps. PR 3's fault model
//! skipped this: blocks re-replicated but map outputs silently survived, so
//! reduces shuffled from ghosts and churn was under-priced.
//!
//! The [`ShuffleTracker`] closes that hole. It is engine-owned state, dense
//! by [`JobId`] like the [`DelayScoreboard`](crate::DelayScoreboard), holding
//! for every tracked job (reduce-carrying jobs while
//! [`ShuffleConfig::enabled`](crate::ShuffleConfig)) the node that holds each
//! map output, the per-rack byte totals (for rack-aware reduce placement and
//! the cross-rack contention term) and how many outputs are currently
//! present. The [`Cluster`](crate::Cluster) mutates it through `&mut self` on
//! map commit, node loss and decommission drain; scheduling policies only
//! read it through [`SchedulerContext`](crate::SchedulerContext), so no
//! interior mutability is needed.

use crate::config::ShuffleConfig;
use crate::job::JobId;
use mrp_dfs::{NodeId, RackId};

/// Per-job map-output registry (see module docs).
#[derive(Clone, Debug)]
struct JobShuffle {
    /// Holder of each map output, indexed by map task index; `None` while the
    /// map has not committed or its output died with a node.
    map_holder: Vec<Option<NodeId>>,
    /// Output size of each map task, recorded at commit.
    map_bytes: Vec<u64>,
    /// Live map-output bytes per rack (drives reduce-rack preference).
    bytes_by_rack: Vec<u64>,
    /// Sum of the live entries of `bytes_by_rack`.
    live_bytes: u64,
    /// Number of maps whose output is currently present.
    present: u32,
}

/// Engine-owned map-output registry shared with policies through
/// [`SchedulerContext`](crate::SchedulerContext). See the module docs.
#[derive(Debug)]
pub struct ShuffleTracker {
    config: ShuffleConfig,
    rack_count: usize,
    /// Per-job state, dense by `JobId` (ids are sequential from 1); `None`
    /// for untracked jobs (map-only, or tracking disabled) and for jobs whose
    /// registry was already retired on completion.
    jobs: Vec<Option<JobShuffle>>,
}

impl ShuffleTracker {
    /// Creates the tracker for a cluster with the given shuffle knobs.
    pub fn new(config: ShuffleConfig, rack_count: usize) -> Self {
        ShuffleTracker {
            config,
            rack_count,
            jobs: Vec::new(),
        }
    }

    /// Whether map-output tracking is switched on at all.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// The shuffle knobs the tracker was built with.
    #[inline]
    pub fn config(&self) -> &ShuffleConfig {
        &self.config
    }

    /// Registers the next job (ids are dense; called by the engine on job
    /// registration). Only reduce-carrying jobs get a registry; map-only jobs
    /// (and every job while tracking is disabled) stay `None` but still
    /// occupy a slot to keep the vector dense.
    pub(crate) fn register_job(&mut self, map_count: u32, reduce_count: u32) {
        let tracked = self.config.enabled && reduce_count > 0;
        self.jobs.push(tracked.then(|| JobShuffle {
            map_holder: vec![None; map_count as usize],
            map_bytes: vec![0; map_count as usize],
            bytes_by_rack: vec![0; self.rack_count],
            live_bytes: 0,
            present: 0,
        }));
    }

    fn entry(&self, job: JobId) -> Option<&JobShuffle> {
        self.jobs.get((job.0 as usize).wrapping_sub(1))?.as_ref()
    }

    fn entry_mut(&mut self, job: JobId) -> Option<&mut JobShuffle> {
        self.jobs
            .get_mut((job.0 as usize).wrapping_sub(1))?
            .as_mut()
    }

    /// True when the job has a live registry (reduce-carrying, tracking on,
    /// not yet retired).
    pub fn tracked(&self, job: JobId) -> bool {
        self.entry(job).is_some()
    }

    /// Records that map `map_index` of `job` committed `bytes` of output on
    /// `node` (rack `rack`). Replaces any previous holder (a re-executed map
    /// commits again).
    pub(crate) fn record_map_output(
        &mut self,
        job: JobId,
        map_index: usize,
        node: NodeId,
        rack: RackId,
        bytes: u64,
    ) {
        let Some(state) = self.entry_mut(job) else {
            return;
        };
        if state.map_holder[map_index].is_some() {
            // A stale duplicate commit: drop the old accounting first. The
            // registry cannot know the old rack here, so duplicate commits
            // are routed through `clear_output` by the cluster instead; this
            // branch is a defensive no-op.
            return;
        }
        state.map_holder[map_index] = Some(node);
        state.map_bytes[map_index] = bytes;
        state.bytes_by_rack[rack.0 as usize] += bytes;
        state.live_bytes += bytes;
        state.present += 1;
    }

    /// Destroys every map output of `job` held by `node` (rack `rack`),
    /// returning the indices of the maps that lost their output. Called on a
    /// node crash; the cluster re-executes the returned maps.
    pub(crate) fn on_node_lost(&mut self, job: JobId, node: NodeId, rack: RackId) -> Vec<u32> {
        let Some(state) = self.entry_mut(job) else {
            return Vec::new();
        };
        let mut lost = Vec::new();
        for (i, holder) in state.map_holder.iter_mut().enumerate() {
            if *holder == Some(node) {
                *holder = None;
                let bytes = state.map_bytes[i];
                state.bytes_by_rack[rack.0 as usize] -= bytes;
                state.live_bytes -= bytes;
                state.present -= 1;
                lost.push(i as u32);
            }
        }
        lost
    }

    /// Migrates every map output of `job` held by `from` to `to` (a graceful
    /// decommission drain: the leaving node copies its outputs out before
    /// shutdown, so no re-execution is needed). Returns how many outputs
    /// moved.
    pub(crate) fn migrate(
        &mut self,
        job: JobId,
        from: NodeId,
        from_rack: RackId,
        to: NodeId,
        to_rack: RackId,
    ) -> u64 {
        let Some(state) = self.entry_mut(job) else {
            return 0;
        };
        let mut moved = 0;
        for (i, holder) in state.map_holder.iter_mut().enumerate() {
            if *holder == Some(from) {
                *holder = Some(to);
                let bytes = state.map_bytes[i];
                state.bytes_by_rack[from_rack.0 as usize] -= bytes;
                state.bytes_by_rack[to_rack.0 as usize] += bytes;
                moved += 1;
            }
        }
        moved
    }

    /// True when every map output of `job` is present (or the job is not
    /// tracked at all — untracked reduces never wait).
    pub fn complete(&self, job: JobId) -> bool {
        match self.entry(job) {
            Some(state) => state.present as usize == state.map_holder.len(),
            None => true,
        }
    }

    /// The rack currently holding the most live map-output bytes of `job`
    /// (ties break towards the lowest rack id), or `None` when the job is
    /// untracked or no output has been committed yet.
    pub fn preferred_rack(&self, job: JobId) -> Option<RackId> {
        let state = self.entry(job)?;
        if state.live_bytes == 0 {
            return None;
        }
        let (best, _) = state
            .bytes_by_rack
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))?;
        Some(RackId(best as u32))
    }

    /// Fraction of the job's live map-output bytes that live **off** rack
    /// `rack` — the input to the cross-rack shuffle contention term. Zero for
    /// untracked jobs and for jobs with no committed output.
    pub fn cross_rack_fraction(&self, job: JobId, rack: RackId) -> f64 {
        let Some(state) = self.entry(job) else {
            return 0.0;
        };
        if state.live_bytes == 0 {
            return 0.0;
        }
        let on_rack = state.bytes_by_rack[rack.0 as usize];
        (state.live_bytes - on_rack) as f64 / state.live_bytes as f64
    }

    /// Live map-output bytes of `job` on `rack` (test observability).
    pub fn rack_bytes(&self, job: JobId, rack: RackId) -> u64 {
        self.entry(job)
            .map(|s| s.bytes_by_rack[rack.0 as usize])
            .unwrap_or(0)
    }

    /// Number of currently present map outputs of `job` (test observability).
    pub fn outputs_present(&self, job: JobId) -> u32 {
        self.entry(job).map(|s| s.present).unwrap_or(0)
    }

    /// Retires the job's registry once the job completes (frees the per-map
    /// vectors; completed jobs never shuffle again).
    pub(crate) fn job_finished(&mut self, job: JobId) {
        if let Some(slot) = self.jobs.get_mut((job.0 as usize).wrapping_sub(1)) {
            *slot = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> ShuffleTracker {
        let mut t = ShuffleTracker::new(ShuffleConfig::fault_tolerant(), 2);
        t.register_job(3, 1);
        t
    }

    #[test]
    fn disabled_tracker_tracks_nothing() {
        let mut t = ShuffleTracker::new(ShuffleConfig::default(), 2);
        t.register_job(3, 1);
        assert!(!t.enabled());
        assert!(!t.tracked(JobId(1)));
        assert!(t.complete(JobId(1)));
        t.record_map_output(JobId(1), 0, NodeId(0), RackId(0), 100);
        assert_eq!(t.outputs_present(JobId(1)), 0);
        assert_eq!(t.preferred_rack(JobId(1)), None);
    }

    #[test]
    fn map_only_jobs_are_untracked_even_when_enabled() {
        let mut t = ShuffleTracker::new(ShuffleConfig::fault_tolerant(), 2);
        t.register_job(3, 0);
        assert!(!t.tracked(JobId(1)));
        assert!(t.complete(JobId(1)));
    }

    #[test]
    fn commit_loss_and_reexecution_cycle() {
        let mut t = tracker();
        let job = JobId(1);
        assert!(t.tracked(job));
        assert!(!t.complete(job), "no output committed yet");
        t.record_map_output(job, 0, NodeId(0), RackId(0), 100);
        t.record_map_output(job, 1, NodeId(1), RackId(1), 200);
        t.record_map_output(job, 2, NodeId(0), RackId(0), 50);
        assert!(t.complete(job));
        assert_eq!(t.rack_bytes(job, RackId(0)), 150);
        assert_eq!(t.rack_bytes(job, RackId(1)), 200);
        assert_eq!(t.preferred_rack(job), Some(RackId(1)));

        // Node 0 crashes: maps 0 and 2 lose their output.
        let lost = t.on_node_lost(job, NodeId(0), RackId(0));
        assert_eq!(lost, vec![0, 2]);
        assert!(!t.complete(job));
        assert_eq!(t.outputs_present(job), 1);
        assert_eq!(t.rack_bytes(job, RackId(0)), 0);

        // Re-execution commits the outputs again, elsewhere.
        t.record_map_output(job, 0, NodeId(2), RackId(1), 100);
        t.record_map_output(job, 2, NodeId(2), RackId(1), 50);
        assert!(t.complete(job));
        assert_eq!(t.preferred_rack(job), Some(RackId(1)));
    }

    #[test]
    fn migration_keeps_outputs_present() {
        let mut t = tracker();
        let job = JobId(1);
        t.record_map_output(job, 0, NodeId(0), RackId(0), 100);
        t.record_map_output(job, 1, NodeId(0), RackId(0), 60);
        t.record_map_output(job, 2, NodeId(1), RackId(1), 10);
        let moved = t.migrate(job, NodeId(0), RackId(0), NodeId(3), RackId(1));
        assert_eq!(moved, 2);
        assert!(t.complete(job));
        assert_eq!(t.rack_bytes(job, RackId(0)), 0);
        assert_eq!(t.rack_bytes(job, RackId(1)), 170);
        // The drained node no longer holds anything to lose.
        assert!(t.on_node_lost(job, NodeId(0), RackId(0)).is_empty());
    }

    #[test]
    fn cross_rack_fraction_tracks_byte_placement() {
        let mut t = tracker();
        let job = JobId(1);
        assert_eq!(t.cross_rack_fraction(job, RackId(0)), 0.0);
        t.record_map_output(job, 0, NodeId(0), RackId(0), 300);
        t.record_map_output(job, 1, NodeId(4), RackId(1), 100);
        assert!((t.cross_rack_fraction(job, RackId(0)) - 0.25).abs() < 1e-12);
        assert!((t.cross_rack_fraction(job, RackId(1)) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn preferred_rack_ties_break_low() {
        let mut t = tracker();
        let job = JobId(1);
        t.record_map_output(job, 0, NodeId(4), RackId(1), 100);
        t.record_map_output(job, 1, NodeId(0), RackId(0), 100);
        assert_eq!(t.preferred_rack(job), Some(RackId(0)));
    }

    #[test]
    fn finished_jobs_are_retired() {
        let mut t = tracker();
        let job = JobId(1);
        t.record_map_output(job, 0, NodeId(0), RackId(0), 100);
        t.job_finished(job);
        assert!(!t.tracked(job));
        assert!(t.complete(job));
        assert!(t.on_node_lost(job, NodeId(0), RackId(0)).is_empty());
    }

    #[test]
    fn unknown_jobs_are_harmless() {
        let mut t = tracker();
        assert!(!t.tracked(JobId(99)));
        assert!(t.complete(JobId(99)));
        assert!(t.on_node_lost(JobId(99), NodeId(0), RackId(0)).is_empty());
        assert_eq!(
            t.migrate(JobId(99), NodeId(0), RackId(0), NodeId(1), RackId(0)),
            0
        );
    }
}
