//! The TaskTracker: slot management and task child processes on one node.
//!
//! In Hadoop 1, map and reduce tasks are ordinary Unix processes running in
//! child JVMs spawned by the TaskTracker, which is what makes the paper's
//! OS-assisted preemption possible in the first place: the TaskTracker can
//! deliver `SIGTSTP` and `SIGCONT` to them like to any other process.
//!
//! The TaskTracker owns the node's [`Kernel`] (process table + memory + disk)
//! and its map/reduce slots. All methods mutate state and return durations or
//! byte counts; event scheduling stays in the
//! [`Cluster`](crate::cluster::Cluster).

use crate::attempt::{Attempt, AttemptState, ExecPlan};
use crate::job::{AttemptId, TaskKind};
use mrp_dfs::NodeId;
use mrp_sim::{SimDuration, SimTime};
use mrp_simos::{Kernel, NodeOsConfig, OsError, Pid, Signal};
use std::collections::BTreeMap;

/// Result of allocating a task's memory at the end of its setup phase.
#[derive(Clone, Debug, Default)]
pub struct AllocationOutcome {
    /// Paging stall charged to the allocating task.
    pub stall: SimDuration,
    /// Bytes of other processes' memory paged out to make room.
    pub paged_out_bytes: u64,
    /// Tasks whose processes were killed by the OOM killer to satisfy the
    /// allocation (rare; only when swap is exhausted).
    pub oom_killed: Vec<AttemptId>,
    /// The allocation ultimately failed (RAM and swap exhausted with no
    /// further OOM victim, or the OOM killer sacrificed the allocating task
    /// itself). Victims in `oom_killed` were still killed and must still be
    /// handled by the caller — the old `Err` return silently dropped them,
    /// leaving their tasks `Running` with no attempt behind them.
    pub failed: bool,
}

/// Everything the cluster needs to know about one attempt torn down by a
/// node failure: which task it served, whether its suspended state was lost,
/// and the accounting the attempt would otherwise have reported itself.
#[derive(Clone, Debug)]
pub struct FailedAttempt {
    /// The torn-down attempt.
    pub id: AttemptId,
    /// Its TaskTracker-side state at failure time.
    pub state: AttemptState,
    /// Running time invested in the attempt (setup + completed work).
    pub invested: SimDuration,
    /// The pending phase-completion event to cancel, if any.
    pub segment_event: Option<mrp_sim::EventId>,
}

/// Result of terminating an attempt (kill or completion).
#[derive(Clone, Debug, Default)]
pub struct TerminationOutcome {
    /// Cumulative bytes this attempt's process had paged out over its life.
    pub paged_out_bytes: u64,
    /// Cumulative bytes paged back in.
    pub paged_in_bytes: u64,
    /// Whether the attempt held a slot at termination time.
    pub held_slot: bool,
}

/// Errors surfaced by TaskTracker operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TrackerError {
    /// No free slot of the required kind.
    NoFreeSlot,
    /// The attempt is not present on this tracker.
    UnknownAttempt,
    /// The attempt is in a state that does not allow the operation.
    InvalidState,
    /// The underlying OS refused the operation.
    Os(OsError),
}

impl std::fmt::Display for TrackerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrackerError::NoFreeSlot => write!(f, "no free slot"),
            TrackerError::UnknownAttempt => write!(f, "unknown attempt"),
            TrackerError::InvalidState => write!(f, "invalid attempt state"),
            TrackerError::Os(e) => write!(f, "os error: {e}"),
        }
    }
}

impl std::error::Error for TrackerError {}

impl From<OsError> for TrackerError {
    fn from(e: OsError) -> Self {
        TrackerError::Os(e)
    }
}

/// The per-node TaskTracker.
///
/// Attempts are kept in a `BTreeMap` so every iteration over them is
/// deterministic (std `HashMap` ordering varies per process run, which would
/// leak nondeterminism into scheduler decisions and reports). The tracker also
/// maintains a `dirty` flag so the cluster can refresh only the per-node
/// scheduler views whose slot occupancy actually changed since the last
/// heartbeat, instead of rebuilding every view on every event.
#[derive(Debug)]
pub struct TaskTracker {
    /// The node this tracker runs on.
    pub id: NodeId,
    kernel: Kernel,
    map_slots: u32,
    reduce_slots: u32,
    used_map_slots: u32,
    used_reduce_slots: u32,
    attempts: BTreeMap<AttemptId, Attempt>,
    dirty: bool,
    /// False while the node is failed or decommissioned: a dead tracker
    /// reports zero free slots, accepts no launches, and its heartbeats are
    /// ignored by the cluster.
    alive: bool,
    /// Incremented on every [`TaskTracker::fail`]: slot-releasing events
    /// scheduled before a failure (cleanup completions) carry the epoch they
    /// were scheduled in and are discarded if the node died in between —
    /// `fail` already freed every slot, so a stale release would corrupt the
    /// accounting of whatever runs after a rejoin.
    epoch: u64,
    /// False while the master has torn the node down as a confirmed
    /// partition victim: the node itself is alive — attempts keep running
    /// toward the heal — but it advertises no capacity to the scheduler and
    /// refuses launches until the partition heals.
    reachable: bool,
}

impl TaskTracker {
    /// Creates a TaskTracker with the given OS configuration and slot counts.
    pub fn new(id: NodeId, os: NodeOsConfig, map_slots: u32, reduce_slots: u32) -> Self {
        TaskTracker {
            id,
            kernel: Kernel::new(os),
            map_slots,
            reduce_slots,
            used_map_slots: 0,
            used_reduce_slots: 0,
            attempts: BTreeMap::new(),
            dirty: true,
            alive: true,
            epoch: 0,
            reachable: true,
        }
    }

    /// The current failure epoch (see the field docs).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether the node is in service.
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// Whether the master can reach the node (see the `reachable` field; an
    /// unreachable node is alive but torn down as a partition victim).
    pub fn is_reachable(&self) -> bool {
        self.reachable
    }

    /// Flips master-side reachability (confirmed partition teardown / heal).
    pub fn set_reachable(&mut self, reachable: bool) {
        self.reachable = reachable;
        self.dirty = true;
    }

    /// Takes the node out of service (crash or decommission): every live
    /// attempt's process is killed, the attempt table is cleared, and all
    /// slots are freed. Returns what was torn down so the cluster can cancel
    /// events, account lost work, and reschedule the tasks.
    pub fn fail(&mut self, now: SimTime) -> Vec<FailedAttempt> {
        self.alive = false;
        self.dirty = true;
        self.epoch += 1;
        let mut torn_down = Vec::with_capacity(self.attempts.len());
        for attempt in self.attempts.values() {
            torn_down.push(FailedAttempt {
                id: attempt.id,
                state: attempt.state,
                invested: attempt.invested_time(now),
                segment_event: attempt.segment_event,
            });
            // The process dies with the node; ignore already-dead errors.
            let _ = self.kernel.signal(attempt.pid, Signal::Sigkill, now);
        }
        self.attempts.clear();
        self.used_map_slots = 0;
        self.used_reduce_slots = 0;
        torn_down
    }

    /// Returns the node to service with all slots free (its disks and any
    /// suspended-task state are gone; the kernel's cumulative statistics
    /// survive for the end-of-run report).
    pub fn revive(&mut self) {
        self.alive = true;
        self.reachable = true;
        self.dirty = true;
    }

    /// Returns (and clears) whether slot occupancy or the running/suspended
    /// attempt sets changed since the last call.
    pub fn take_dirty(&mut self) -> bool {
        std::mem::take(&mut self.dirty)
    }

    /// Read-only access to the node's kernel (for statistics).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Free map slots (a dead or unreachable node has none).
    pub fn free_map_slots(&self) -> u32 {
        if !self.alive || !self.reachable {
            return 0;
        }
        self.map_slots - self.used_map_slots
    }

    /// Free reduce slots (a dead or unreachable node has none).
    pub fn free_reduce_slots(&self) -> u32 {
        if !self.alive || !self.reachable {
            return 0;
        }
        self.reduce_slots - self.used_reduce_slots
    }

    /// Free slots of a kind.
    pub fn free_slots(&self, kind: TaskKind) -> u32 {
        match kind {
            TaskKind::Map => self.free_map_slots(),
            TaskKind::Reduce => self.free_reduce_slots(),
        }
    }

    fn occupy_slot(&mut self, kind: TaskKind) -> Result<(), TrackerError> {
        match kind {
            TaskKind::Map if self.used_map_slots < self.map_slots => {
                self.used_map_slots += 1;
                Ok(())
            }
            TaskKind::Reduce if self.used_reduce_slots < self.reduce_slots => {
                self.used_reduce_slots += 1;
                Ok(())
            }
            _ => Err(TrackerError::NoFreeSlot),
        }
    }

    /// Releases a slot of the given kind (used by the cluster when a killed
    /// task's cleanup attempt finishes).
    pub fn release_slot(&mut self, kind: TaskKind) {
        self.dirty = true;
        match kind {
            TaskKind::Map => {
                debug_assert!(
                    self.used_map_slots > 0,
                    "releasing a map slot that was never taken"
                );
                self.used_map_slots = self.used_map_slots.saturating_sub(1);
            }
            TaskKind::Reduce => {
                debug_assert!(
                    self.used_reduce_slots > 0,
                    "releasing a reduce slot that was never taken"
                );
                self.used_reduce_slots = self.used_reduce_slots.saturating_sub(1);
            }
        }
    }

    /// A live attempt, if present.
    pub fn attempt(&self, id: AttemptId) -> Option<&Attempt> {
        self.attempts.get(&id)
    }

    /// Mutable access to a live attempt.
    pub fn attempt_mut(&mut self, id: AttemptId) -> Option<&mut Attempt> {
        self.attempts.get_mut(&id)
    }

    /// All live attempts on this node, in deterministic (id) order.
    pub fn attempts(&self) -> impl Iterator<Item = &Attempt> {
        self.attempts.values()
    }

    /// Attempts currently running (holding a slot) on this node, in
    /// deterministic (id) order. Allocation-free: returns an iterator rather
    /// than a fresh `Vec` (this is on the per-heartbeat hot path).
    pub fn running_attempts(&self) -> impl Iterator<Item = AttemptId> + '_ {
        self.attempts
            .values()
            .filter(|a| a.state == AttemptState::Running)
            .map(|a| a.id)
    }

    /// Attempts currently suspended on this node, in deterministic (id) order.
    pub fn suspended_attempts(&self) -> impl Iterator<Item = AttemptId> + '_ {
        self.attempts
            .values()
            .filter(|a| a.state == AttemptState::Suspended)
            .map(|a| a.id)
    }

    /// Launches a new attempt: occupies a slot and forks the child process.
    /// The attempt starts in its setup phase; the caller schedules the
    /// corresponding phase-completion event.
    pub fn launch(
        &mut self,
        id: AttemptId,
        kind: TaskKind,
        plan: ExecPlan,
        now: SimTime,
    ) -> Result<Pid, TrackerError> {
        if !self.alive || !self.reachable {
            return Err(TrackerError::NoFreeSlot);
        }
        if self.attempts.contains_key(&id) {
            return Err(TrackerError::InvalidState);
        }
        self.occupy_slot(kind)?;
        self.dirty = true;
        // The simulated process name is never read on any engine path, and
        // formatting the attempt id per launch shows up in cluster-scale
        // profiles; attempts are identified through the attempt table instead.
        let pid = self.kernel.spawn(String::new(), now);
        let mut attempt = Attempt::new(id, kind, pid, plan, now);
        attempt.segment_duration = attempt.plan.setup;
        self.attempts.insert(id, attempt);
        Ok(pid)
    }

    /// Allocates the attempt's memory (base footprint + configured state) at
    /// the end of its setup phase. Handles OOM by invoking the OOM killer and
    /// reporting which attempts died.
    ///
    /// An unrecoverable allocation failure is reported through
    /// [`AllocationOutcome::failed`], never through `Err`: by the time the
    /// failure is known the OOM killer may already have sacrificed other
    /// attempts, and those victims must reach the caller either way. `Err` is
    /// reserved for an unknown attempt id.
    pub fn allocate_task_memory(
        &mut self,
        id: AttemptId,
        now: SimTime,
    ) -> Result<AllocationOutcome, TrackerError> {
        let (pid, bytes, dirty) = {
            let a = self.attempts.get(&id).ok_or(TrackerError::UnknownAttempt)?;
            (a.pid, a.plan.memory, a.plan.dirty_fraction)
        };
        let mut outcome = AllocationOutcome::default();
        let mut remaining_oom_retries = 4;
        loop {
            match self.kernel.allocate(pid, bytes, dirty, now) {
                Ok(res) => {
                    outcome.stall += res.stall;
                    outcome.paged_out_bytes +=
                        res.charge.dirty_paged_out + res.charge.clean_dropped;
                    return Ok(outcome);
                }
                Err(OsError::OutOfMemory) if remaining_oom_retries > 0 => {
                    remaining_oom_retries -= 1;
                    let Some(victim_pid) = self.kernel.oom_kill(now) else {
                        outcome.failed = true;
                        return Ok(outcome);
                    };
                    if let Some(victim) = self
                        .attempts
                        .values()
                        .find(|a| a.pid == victim_pid)
                        .map(|a| a.id)
                    {
                        self.dirty = true;
                        if let Some(v) = self.attempts.get_mut(&victim) {
                            if v.state == AttemptState::Running {
                                // It held a slot; the caller must reschedule it.
                                match v.kind {
                                    TaskKind::Map => {
                                        self.used_map_slots = self.used_map_slots.saturating_sub(1)
                                    }
                                    TaskKind::Reduce => {
                                        self.used_reduce_slots =
                                            self.used_reduce_slots.saturating_sub(1)
                                    }
                                }
                            }
                            v.state = AttemptState::Killed;
                        }
                        self.attempts.remove(&victim);
                        outcome.oom_killed.push(victim);
                        if victim == id {
                            // The OOM killer took the allocating attempt
                            // itself; there is nothing left to retry for.
                            outcome.failed = true;
                            return Ok(outcome);
                        }
                    }
                }
                Err(_) => {
                    outcome.failed = true;
                    return Ok(outcome);
                }
            }
        }
    }

    /// Records the input read of an attempt against the node's disk and file
    /// cache (the parse loop overlaps the read, so no extra time is charged).
    pub fn record_input_read(&mut self, bytes: u64) {
        let _ = self.kernel.disk_read(bytes);
    }

    /// Queues background DFS re-replication traffic against this node's
    /// spindle; swap I/O contends with it until the backlog drains. No-op
    /// unless the disk's `background_share` is configured.
    pub fn queue_background_io(&mut self, bytes: u64) {
        self.kernel.queue_background_write(bytes);
    }

    /// Suspends a running attempt with `SIGTSTP`: releases its slot, freezes
    /// its progress. Returns the progress at suspension time.
    pub fn suspend(&mut self, id: AttemptId, now: SimTime) -> Result<f64, TrackerError> {
        let attempt = self
            .attempts
            .get_mut(&id)
            .ok_or(TrackerError::UnknownAttempt)?;
        if attempt.state != AttemptState::Running {
            return Err(TrackerError::InvalidState);
        }
        attempt.interrupt_work(now);
        attempt.state = AttemptState::Suspended;
        attempt.segment_event = None;
        let progress = attempt.progress(now);
        let kind = attempt.kind;
        let pid = attempt.pid;
        self.kernel.signal(pid, Signal::Sigtstp, now)?;
        self.release_slot(kind);
        Ok(progress)
    }

    /// Resumes a suspended attempt with `SIGCONT`: re-occupies a slot and
    /// faults its swapped memory back in. Returns the page-in stall; the
    /// caller schedules the remaining work after the stall.
    pub fn resume(&mut self, id: AttemptId, now: SimTime) -> Result<SimDuration, TrackerError> {
        let (kind, pid) = {
            let attempt = self.attempts.get(&id).ok_or(TrackerError::UnknownAttempt)?;
            if attempt.state != AttemptState::Suspended {
                return Err(TrackerError::InvalidState);
            }
            (attempt.kind, attempt.pid)
        };
        self.occupy_slot(kind)?;
        self.dirty = true;
        self.kernel.signal(pid, Signal::Sigcont, now)?;
        // Lazy resume (block swap device only): page in just the prefetch
        // window; the rest faults back on touch, at the latest when the task
        // finalizes and re-reads its state (`fault_in_own_memory`).
        let swap = self.kernel.config().memory.swap;
        let fault = if swap.enabled && swap.lazy_resume {
            self.kernel.fault_in_prefetch(pid, now)?
        } else {
            self.kernel.fault_in_all(pid, now)?
        };
        let attempt = self.attempts.get_mut(&id).expect("checked above");
        attempt.state = AttemptState::Running;
        Ok(fault.stall)
    }

    /// Faults in any of the attempt's own memory that ended up in swap (done
    /// at the start of the finalize phase, when stateful tasks read their
    /// state back).
    pub fn fault_in_own_memory(
        &mut self,
        id: AttemptId,
        now: SimTime,
    ) -> Result<SimDuration, TrackerError> {
        let pid = self
            .attempts
            .get(&id)
            .ok_or(TrackerError::UnknownAttempt)?
            .pid;
        let out = self.kernel.fault_in_all(pid, now)?;
        Ok(out.stall)
    }

    /// Writes the attempt's output to the local disk.
    pub fn write_output(&mut self, bytes: u64) {
        let _ = self.kernel.disk_write(bytes);
    }

    /// Kills an attempt with `SIGKILL`. The slot (if held) stays occupied —
    /// Hadoop runs a cleanup attempt to delete partial output; the caller
    /// schedules the cleanup completion and then calls
    /// [`TaskTracker::release_slot`].
    pub fn kill(
        &mut self,
        id: AttemptId,
        now: SimTime,
    ) -> Result<TerminationOutcome, TrackerError> {
        let attempt = self
            .attempts
            .get_mut(&id)
            .ok_or(TrackerError::UnknownAttempt)?;
        self.dirty = true;
        attempt.interrupt_work(now);
        let pid = attempt.pid;
        let held_slot = attempt.state == AttemptState::Running;
        attempt.state = AttemptState::Killed;
        let outcome = TerminationOutcome {
            paged_out_bytes: self.kernel.total_paged_out(pid),
            paged_in_bytes: self
                .kernel
                .proc_memory(pid)
                .map(|m| m.total_paged_in)
                .unwrap_or(0),
            held_slot,
        };
        self.kernel.signal(pid, Signal::Sigkill, now)?;
        self.attempts.remove(&id);
        Ok(outcome)
    }

    /// Completes an attempt successfully: the child process exits and the
    /// slot is released.
    pub fn complete(
        &mut self,
        id: AttemptId,
        now: SimTime,
    ) -> Result<TerminationOutcome, TrackerError> {
        let attempt = self
            .attempts
            .get_mut(&id)
            .ok_or(TrackerError::UnknownAttempt)?;
        if attempt.state != AttemptState::Running {
            return Err(TrackerError::InvalidState);
        }
        attempt.state = AttemptState::Succeeded;
        let pid = attempt.pid;
        let kind = attempt.kind;
        let outcome = TerminationOutcome {
            paged_out_bytes: self.kernel.total_paged_out(pid),
            paged_in_bytes: self
                .kernel
                .proc_memory(pid)
                .map(|m| m.total_paged_in)
                .unwrap_or(0),
            held_slot: true,
        };
        self.kernel.exit(pid, 0, now)?;
        self.attempts.remove(&id);
        self.release_slot(kind);
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attempt::AttemptPhase;
    use crate::config::TaskDefaults;
    use crate::job::{JobId, TaskId, TaskProfile};
    use mrp_dfs::Locality;
    use mrp_sim::{GIB, MIB};
    use mrp_simos::DiskConfig;

    fn attempt_id(n: u32) -> AttemptId {
        AttemptId {
            task: TaskId {
                job: JobId(1),
                kind: TaskKind::Map,
                index: n,
            },
            number: 0,
        }
    }

    fn plan(state_memory: u64) -> ExecPlan {
        ExecPlan::for_map(
            &TaskDefaults::default(),
            &DiskConfig::default(),
            &TaskProfile::memory_hungry(state_memory),
            512 * MIB,
            Locality::NodeLocal,
        )
    }

    fn tracker() -> TaskTracker {
        TaskTracker::new(NodeId(0), NodeOsConfig::default(), 1, 1)
    }

    #[test]
    fn launch_occupies_a_slot() {
        let mut tt = tracker();
        assert_eq!(tt.free_map_slots(), 1);
        tt.launch(attempt_id(0), TaskKind::Map, plan(0), SimTime::ZERO)
            .unwrap();
        assert_eq!(tt.free_map_slots(), 0);
        assert_eq!(tt.free_reduce_slots(), 1);
        assert_eq!(tt.running_attempts().count(), 1);
        // Second map launch fails: no free slot.
        assert_eq!(
            tt.launch(attempt_id(1), TaskKind::Map, plan(0), SimTime::ZERO)
                .unwrap_err(),
            TrackerError::NoFreeSlot
        );
        // Relaunching the same attempt id is invalid.
        assert_eq!(
            tt.launch(attempt_id(0), TaskKind::Map, plan(0), SimTime::ZERO)
                .unwrap_err(),
            TrackerError::InvalidState
        );
    }

    #[test]
    fn suspend_frees_the_slot_and_resume_takes_it_back() {
        let mut tt = tracker();
        tt.launch(attempt_id(0), TaskKind::Map, plan(0), SimTime::ZERO)
            .unwrap();
        tt.allocate_task_memory(attempt_id(0), SimTime::ZERO)
            .unwrap();
        // Move into work phase manually (the cluster normally does this).
        {
            let a = tt.attempt_mut(attempt_id(0)).unwrap();
            a.phase = AttemptPhase::Work;
            a.segment_start = SimTime::from_secs(3);
        }
        let progress = tt.suspend(attempt_id(0), SimTime::from_secs(43)).unwrap();
        assert!(progress > 0.4 && progress < 0.7, "progress {progress}");
        assert_eq!(tt.free_map_slots(), 1);
        assert_eq!(tt.suspended_attempts().count(), 1);
        // Suspending again is invalid.
        assert_eq!(
            tt.suspend(attempt_id(0), SimTime::from_secs(44))
                .unwrap_err(),
            TrackerError::InvalidState
        );
        let stall = tt.resume(attempt_id(0), SimTime::from_secs(50)).unwrap();
        assert_eq!(
            stall,
            SimDuration::ZERO,
            "no paging happened, resume is free"
        );
        assert_eq!(tt.free_map_slots(), 0);
    }

    #[test]
    fn resume_needs_a_free_slot() {
        let mut tt = TaskTracker::new(NodeId(0), NodeOsConfig::default(), 1, 0);
        tt.launch(attempt_id(0), TaskKind::Map, plan(0), SimTime::ZERO)
            .unwrap();
        {
            let a = tt.attempt_mut(attempt_id(0)).unwrap();
            a.phase = AttemptPhase::Work;
            a.segment_start = SimTime::ZERO;
        }
        tt.suspend(attempt_id(0), SimTime::from_secs(10)).unwrap();
        // Another attempt takes the slot.
        tt.launch(
            attempt_id(1),
            TaskKind::Map,
            plan(0),
            SimTime::from_secs(11),
        )
        .unwrap();
        assert_eq!(
            tt.resume(attempt_id(0), SimTime::from_secs(12))
                .unwrap_err(),
            TrackerError::NoFreeSlot
        );
    }

    #[test]
    fn memory_pressure_pages_out_the_suspended_attempt() {
        let mut tt = tracker();
        tt.launch(attempt_id(0), TaskKind::Map, plan(2 * GIB), SimTime::ZERO)
            .unwrap();
        tt.allocate_task_memory(attempt_id(0), SimTime::ZERO)
            .unwrap();
        {
            let a = tt.attempt_mut(attempt_id(0)).unwrap();
            a.phase = AttemptPhase::Work;
            a.segment_start = SimTime::from_secs(3);
        }
        tt.suspend(attempt_id(0), SimTime::from_secs(30)).unwrap();

        // A second, memory-hungry attempt launches and allocates: the
        // suspended one is the paging victim and the newcomer pays the stall.
        tt.launch(
            attempt_id(1),
            TaskKind::Map,
            plan(2 * GIB),
            SimTime::from_secs(31),
        )
        .unwrap();
        let out = tt
            .allocate_task_memory(attempt_id(1), SimTime::from_secs(34))
            .unwrap();
        assert!(out.stall > SimDuration::ZERO);
        assert!(out.paged_out_bytes > 0);
        assert!(out.oom_killed.is_empty());
        let victim_pid = tt.attempt(attempt_id(0)).unwrap().pid;
        assert!(tt.kernel().swapped_bytes(victim_pid) > 0);

        // Completing the newcomer and resuming the victim pays the page-in.
        {
            let a = tt.attempt_mut(attempt_id(1)).unwrap();
            a.phase = AttemptPhase::Work;
        }
        tt.complete(attempt_id(1), SimTime::from_secs(120)).unwrap();
        let stall = tt.resume(attempt_id(0), SimTime::from_secs(121)).unwrap();
        assert!(stall > SimDuration::ZERO);
        assert_eq!(tt.kernel().swapped_bytes(victim_pid), 0);
    }

    #[test]
    fn kill_reports_paged_bytes_and_keeps_the_slot_for_cleanup() {
        let mut tt = tracker();
        tt.launch(attempt_id(0), TaskKind::Map, plan(0), SimTime::ZERO)
            .unwrap();
        tt.allocate_task_memory(attempt_id(0), SimTime::ZERO)
            .unwrap();
        let out = tt.kill(attempt_id(0), SimTime::from_secs(10)).unwrap();
        assert!(out.held_slot);
        assert_eq!(out.paged_out_bytes, 0);
        // Slot is still occupied until the cleanup attempt finishes.
        assert_eq!(tt.free_map_slots(), 0);
        tt.release_slot(TaskKind::Map);
        assert_eq!(tt.free_map_slots(), 1);
        assert!(tt.attempt(attempt_id(0)).is_none());
    }

    #[test]
    fn complete_releases_everything() {
        let mut tt = tracker();
        tt.launch(attempt_id(0), TaskKind::Map, plan(GIB), SimTime::ZERO)
            .unwrap();
        tt.allocate_task_memory(attempt_id(0), SimTime::ZERO)
            .unwrap();
        let out = tt.complete(attempt_id(0), SimTime::from_secs(90)).unwrap();
        assert!(out.held_slot);
        assert_eq!(tt.free_map_slots(), 1);
        assert_eq!(tt.kernel().memory().total_resident(), 0);
        assert!(tt.attempt(attempt_id(0)).is_none());
        // Completing twice is an error.
        assert_eq!(
            tt.complete(attempt_id(0), SimTime::from_secs(91))
                .unwrap_err(),
            TrackerError::UnknownAttempt
        );
    }

    #[test]
    fn unknown_attempt_operations_fail() {
        let mut tt = tracker();
        let ghost = attempt_id(9);
        assert_eq!(
            tt.suspend(ghost, SimTime::ZERO).unwrap_err(),
            TrackerError::UnknownAttempt
        );
        assert_eq!(
            tt.resume(ghost, SimTime::ZERO).unwrap_err(),
            TrackerError::UnknownAttempt
        );
        assert_eq!(
            tt.kill(ghost, SimTime::ZERO).unwrap_err(),
            TrackerError::UnknownAttempt
        );
        assert_eq!(
            tt.allocate_task_memory(ghost, SimTime::ZERO).unwrap_err(),
            TrackerError::UnknownAttempt
        );
        assert_eq!(
            tt.fault_in_own_memory(ghost, SimTime::ZERO).unwrap_err(),
            TrackerError::UnknownAttempt
        );
    }

    #[test]
    fn fail_tears_down_attempts_and_revive_restores_capacity() {
        let mut tt = TaskTracker::new(NodeId(0), NodeOsConfig::default(), 2, 1);
        tt.launch(attempt_id(0), TaskKind::Map, plan(0), SimTime::ZERO)
            .unwrap();
        tt.allocate_task_memory(attempt_id(0), SimTime::ZERO)
            .unwrap();
        tt.launch(attempt_id(1), TaskKind::Map, plan(0), SimTime::ZERO)
            .unwrap();
        // Suspend the second attempt so the teardown covers both states.
        {
            let a = tt.attempt_mut(attempt_id(1)).unwrap();
            a.phase = AttemptPhase::Work;
            a.segment_start = SimTime::from_secs(3);
        }
        tt.suspend(attempt_id(1), SimTime::from_secs(20)).unwrap();

        let torn_down = tt.fail(SimTime::from_secs(30));
        assert!(!tt.is_alive());
        assert_eq!(torn_down.len(), 2);
        assert_eq!(torn_down[0].id, attempt_id(0));
        assert_eq!(torn_down[0].state, AttemptState::Running);
        assert_eq!(torn_down[1].state, AttemptState::Suspended);
        assert!(torn_down[1].invested > SimDuration::ZERO);
        assert_eq!(tt.attempts().count(), 0);
        // Dead nodes expose no capacity and refuse launches.
        assert_eq!(tt.free_map_slots(), 0);
        assert_eq!(tt.free_reduce_slots(), 0);
        assert_eq!(
            tt.launch(
                attempt_id(2),
                TaskKind::Map,
                plan(0),
                SimTime::from_secs(31)
            )
            .unwrap_err(),
            TrackerError::NoFreeSlot
        );
        // Failing an already-dead node again is a no-op teardown.
        assert!(tt.fail(SimTime::from_secs(32)).is_empty());

        tt.revive();
        assert!(tt.is_alive());
        assert_eq!(tt.free_map_slots(), 2);
        assert_eq!(tt.free_reduce_slots(), 1);
        tt.launch(
            attempt_id(3),
            TaskKind::Map,
            plan(0),
            SimTime::from_secs(40),
        )
        .unwrap();
        assert_eq!(tt.free_map_slots(), 1);
    }

    #[test]
    fn unreachable_tracker_hides_capacity_but_keeps_attempts_running() {
        let mut tt = TaskTracker::new(NodeId(0), NodeOsConfig::default(), 2, 1);
        tt.launch(attempt_id(0), TaskKind::Map, plan(0), SimTime::ZERO)
            .unwrap();
        tt.set_reachable(false);
        assert!(tt.is_alive());
        assert!(!tt.is_reachable());
        // The scheduler sees no capacity and launches are refused...
        assert_eq!(tt.free_map_slots(), 0);
        assert_eq!(tt.free_reduce_slots(), 0);
        assert_eq!(
            tt.launch(attempt_id(1), TaskKind::Map, plan(0), SimTime::from_secs(1))
                .unwrap_err(),
            TrackerError::NoFreeSlot
        );
        // ...but the node-side attempt is still there, still running.
        assert_eq!(tt.running_attempts().count(), 1);
        tt.set_reachable(true);
        assert_eq!(tt.free_map_slots(), 1);
        assert_eq!(tt.free_reduce_slots(), 1);
    }

    #[test]
    fn oom_killer_sacrifices_a_suspended_attempt_when_swap_is_tiny() {
        let os = NodeOsConfig {
            memory: mrp_simos::MemoryConfig {
                total_ram: 3 * GIB,
                os_reserve: 512 * MIB,
                swap_capacity: 64 * MIB,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut tt = TaskTracker::new(NodeId(0), os, 2, 0);
        tt.launch(
            attempt_id(0),
            TaskKind::Map,
            plan(GIB + 512 * MIB),
            SimTime::ZERO,
        )
        .unwrap();
        tt.allocate_task_memory(attempt_id(0), SimTime::ZERO)
            .unwrap();
        {
            let a = tt.attempt_mut(attempt_id(0)).unwrap();
            a.phase = AttemptPhase::Work;
            a.segment_start = SimTime::ZERO;
        }
        tt.suspend(attempt_id(0), SimTime::from_secs(10)).unwrap();
        tt.launch(
            attempt_id(1),
            TaskKind::Map,
            plan(2 * GIB),
            SimTime::from_secs(11),
        )
        .unwrap();
        let out = tt
            .allocate_task_memory(attempt_id(1), SimTime::from_secs(14))
            .unwrap();
        assert_eq!(out.oom_killed, vec![attempt_id(0)]);
        assert!(tt.attempt(attempt_id(0)).is_none());
    }

    /// Builds an OS config with plenty of swap and the given swap-device
    /// knobs; 2.5 GiB of RAM stays usable for tasks.
    fn os_with_swap(swap: mrp_simos::SwapConfig) -> NodeOsConfig {
        NodeOsConfig {
            memory: mrp_simos::MemoryConfig {
                total_ram: 3 * GIB,
                os_reserve: 512 * MIB,
                swap,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    /// Runs one suspend/resume cycle under memory pressure and returns the
    /// node's cumulative swap-read bytes right after the resume, plus the
    /// resumed attempt's still-swapped bytes.
    fn pressured_resume(swap: mrp_simos::SwapConfig) -> (u64, u64) {
        let mut tt = TaskTracker::new(NodeId(0), os_with_swap(swap), 2, 0);
        tt.launch(
            attempt_id(0),
            TaskKind::Map,
            plan(GIB + 512 * MIB),
            SimTime::ZERO,
        )
        .unwrap();
        tt.allocate_task_memory(attempt_id(0), SimTime::ZERO)
            .unwrap();
        {
            let a = tt.attempt_mut(attempt_id(0)).unwrap();
            a.phase = AttemptPhase::Work;
            a.segment_start = SimTime::ZERO;
        }
        tt.suspend(attempt_id(0), SimTime::from_secs(10)).unwrap();
        tt.launch(
            attempt_id(1),
            TaskKind::Map,
            plan(GIB + 512 * MIB),
            SimTime::from_secs(11),
        )
        .unwrap();
        tt.allocate_task_memory(attempt_id(1), SimTime::from_secs(11))
            .unwrap();
        let pid = tt.attempt(attempt_id(0)).unwrap().pid;
        assert!(
            tt.kernel().memory().process(pid).unwrap().swapped > 0,
            "the suspended attempt must have been paged out"
        );
        tt.resume(attempt_id(0), SimTime::from_secs(30)).unwrap();
        let swapped_after = tt.kernel().memory().process(pid).unwrap().swapped;
        (tt.kernel().disk_stats().swap_bytes_in, swapped_after)
    }

    #[test]
    fn lazy_resume_reads_strictly_fewer_bytes_than_eager() {
        let (eager_in, eager_left) = pressured_resume(mrp_simos::SwapConfig::enabled());
        let (lazy_in, lazy_left) = pressured_resume(mrp_simos::SwapConfig::lazy());
        assert!(
            lazy_in < eager_in,
            "lazy resume must page in strictly fewer bytes ({lazy_in} vs {eager_in})"
        );
        assert_eq!(eager_left, 0, "eager resume brings everything back");
        assert!(
            lazy_left > 0,
            "lazy resume leaves the remainder to fault in on touch"
        );
    }

    #[test]
    fn lazy_remainder_faults_in_at_finalize() {
        let mut tt = TaskTracker::new(NodeId(0), os_with_swap(mrp_simos::SwapConfig::lazy()), 2, 0);
        tt.launch(
            attempt_id(0),
            TaskKind::Map,
            plan(GIB + 512 * MIB),
            SimTime::ZERO,
        )
        .unwrap();
        tt.allocate_task_memory(attempt_id(0), SimTime::ZERO)
            .unwrap();
        {
            let a = tt.attempt_mut(attempt_id(0)).unwrap();
            a.phase = AttemptPhase::Work;
            a.segment_start = SimTime::ZERO;
        }
        tt.suspend(attempt_id(0), SimTime::from_secs(10)).unwrap();
        tt.launch(
            attempt_id(1),
            TaskKind::Map,
            plan(GIB + 512 * MIB),
            SimTime::from_secs(11),
        )
        .unwrap();
        tt.allocate_task_memory(attempt_id(1), SimTime::from_secs(11))
            .unwrap();
        tt.resume(attempt_id(0), SimTime::from_secs(30)).unwrap();
        let pid = tt.attempt(attempt_id(0)).unwrap().pid;
        assert!(tt.kernel().memory().process(pid).unwrap().swapped > 0);
        let stall = tt
            .fault_in_own_memory(attempt_id(0), SimTime::from_secs(40))
            .unwrap();
        assert!(stall > SimDuration::ZERO, "the remainder costs swap reads");
        assert_eq!(tt.kernel().memory().process(pid).unwrap().swapped, 0);
    }

    #[test]
    fn suspended_first_victim_order_survives_lazy_resume() {
        let mut tt = TaskTracker::new(NodeId(0), os_with_swap(mrp_simos::SwapConfig::lazy()), 3, 0);
        for (i, t) in [(0u32, 0u64), (1, 1)] {
            tt.launch(
                attempt_id(i),
                TaskKind::Map,
                plan(GIB + 256 * MIB),
                SimTime::from_secs(t),
            )
            .unwrap();
            tt.allocate_task_memory(attempt_id(i), SimTime::from_secs(t))
                .unwrap();
            let a = tt.attempt_mut(attempt_id(i)).unwrap();
            a.phase = AttemptPhase::Work;
            a.segment_start = SimTime::from_secs(t);
        }
        // Both suspend; allocating for a third attempt pages them out.
        tt.suspend(attempt_id(0), SimTime::from_secs(10)).unwrap();
        tt.suspend(attempt_id(1), SimTime::from_secs(11)).unwrap();
        tt.launch(
            attempt_id(2),
            TaskKind::Map,
            plan(GIB + 256 * MIB),
            SimTime::from_secs(12),
        )
        .unwrap();
        tt.allocate_task_memory(attempt_id(2), SimTime::from_secs(12))
            .unwrap();
        // Attempt 1 resumes lazily: it keeps part of its state in swap but is
        // no longer suspended.
        tt.resume(attempt_id(1), SimTime::from_secs(20)).unwrap();
        let suspended_pid = tt.attempt(attempt_id(0)).unwrap().pid;
        let resumed_pid = tt.attempt(attempt_id(1)).unwrap().pid;
        assert!(tt.kernel().memory().process(resumed_pid).unwrap().swapped > 0);
        let order = tt.kernel().memory().victim_order_snapshot();
        assert_eq!(
            order.first(),
            Some(&suspended_pid),
            "the still-suspended attempt must stay the preferred victim"
        );
        assert!(
            order.iter().position(|p| *p == suspended_pid).unwrap()
                < order.iter().position(|p| *p == resumed_pid).unwrap(),
            "lazy resume must not leave the resumed attempt ahead of a suspended one"
        );
    }

    #[test]
    fn oom_accounting_stays_exact_with_block_device_and_lazy_resume() {
        let os = NodeOsConfig {
            memory: mrp_simos::MemoryConfig {
                total_ram: 3 * GIB,
                os_reserve: 512 * MIB,
                swap_capacity: 64 * MIB,
                swap: mrp_simos::SwapConfig::lazy(),
                ..Default::default()
            },
            ..Default::default()
        };
        let mut tt = TaskTracker::new(NodeId(0), os, 2, 0);
        tt.launch(
            attempt_id(0),
            TaskKind::Map,
            plan(GIB + 512 * MIB),
            SimTime::ZERO,
        )
        .unwrap();
        tt.allocate_task_memory(attempt_id(0), SimTime::ZERO)
            .unwrap();
        {
            let a = tt.attempt_mut(attempt_id(0)).unwrap();
            a.phase = AttemptPhase::Work;
            a.segment_start = SimTime::ZERO;
        }
        tt.suspend(attempt_id(0), SimTime::from_secs(10)).unwrap();
        tt.launch(
            attempt_id(1),
            TaskKind::Map,
            plan(2 * GIB),
            SimTime::from_secs(11),
        )
        .unwrap();
        let out = tt
            .allocate_task_memory(attempt_id(1), SimTime::from_secs(14))
            .unwrap();
        assert_eq!(
            out.oom_killed,
            vec![attempt_id(0)],
            "exactly the suspended hog dies, exactly once"
        );
        assert!(
            !out.failed,
            "after the kill the allocation retries and succeeds"
        );
        assert!(tt.attempt(attempt_id(0)).is_none());
        tt.kernel().memory().check_invariants().unwrap();
    }

    #[test]
    fn overcommitted_attempt_thrashes_and_is_counted() {
        let mut tt = TaskTracker::new(
            NodeId(0),
            os_with_swap(mrp_simos::SwapConfig::enabled()),
            1,
            0,
        );
        // A single working set larger than usable RAM: the attempt thrashes
        // against itself instead of OOMing (swap has room).
        tt.launch(attempt_id(0), TaskKind::Map, plan(3 * GIB), SimTime::ZERO)
            .unwrap();
        let out = tt
            .allocate_task_memory(attempt_id(0), SimTime::ZERO)
            .unwrap();
        assert!(!out.failed);
        assert!(out.oom_killed.is_empty());
        assert_eq!(tt.kernel().memory_stats().thrash_events, 1);
        assert!(out.stall > SimDuration::ZERO);
        tt.kernel().memory().check_invariants().unwrap();
    }
}
