//! Delay scheduling: scheduler-independent bookkeeping for data-local
//! task placement.
//!
//! Strict policy orders (smallest-remaining-first HFSP, most-starved-first
//! FAIR, plain FIFO) hand the next free slot to the head job no matter where
//! the slot is, which at cluster scale puts almost every map launch off-rack
//! (~0.2% node-local on the 10k-node `swim_cluster` scenario). Delay
//! scheduling (Zaharia et al., EuroSys 2010) fixes this with a bounded wait:
//! a job that cannot launch node-local on the offered node *declines* the
//! slot, the slot is offered to the next job in policy order, and the
//! declining job's allowed locality level escalates with elapsed time so it
//! can never starve.
//!
//! The [`DelayScoreboard`] is the engine-owned state behind the policy — one
//! wait clock and skip counter per job:
//!
//! * the clock **starts** the first time the job declines an offered slot
//!   (never before: a job that was never offered anything is genuinely
//!   starved, and e.g. FAIR's deficit tracking must still see it as such);
//! * the allowed level is a pure function of the elapsed wait —
//!   node-local only, then rack-local after
//!   [`DelayConfig::node_local_wait`](crate::DelayConfig), then anything
//!   after an additional
//!   [`DelayConfig::rack_local_wait`](crate::DelayConfig) — so escalation
//!   needs no extra events and keeps working even when every replica holder
//!   of a job's pending tasks is dead (the fault-injection case: a dead node
//!   must not strand the job's skip counter);
//! * the clock **resets** when the job launches a node-local map task
//!   (reset-on-local-launch), making the job wait again for its next task.
//!
//! Scheduling policies never touch the scoreboard directly; they go through
//! the [`SchedulerContext`](crate::SchedulerContext) helpers
//! (`delay_allowed`, `note_delay_skip`, `delay_gated`), which keeps FIFO,
//! FAIR and HFSP on the exact same placement policy with no per-scheduler
//! forks. Interior mutability (`RefCell`/`Cell`) lets the policies record
//! skips through the shared context; the simulation is single-threaded and
//! every mutation is a deterministic function of the event sequence, so
//! fixed-seed determinism and `RefreshMode::Sharded == Full` equivalence are
//! preserved.

use crate::config::DelayConfig;
use crate::job::JobId;
use mrp_dfs::Locality;
use mrp_sim::{SimDuration, SimTime};
use std::cell::{Cell, RefCell};

/// Per-job delay state: the wait clock and the skip counter.
#[derive(Clone, Copy, Debug, Default)]
struct JobDelay {
    /// When the job first declined an offered slot since its last
    /// node-local launch; `None` while the job has nothing to wait for.
    wait_started: Option<SimTime>,
    /// Scheduling opportunities declined since the last reset.
    skips: u32,
}

/// Engine-owned delay-scheduling state shared with policies through
/// [`SchedulerContext`](crate::SchedulerContext). See the module docs.
#[derive(Debug)]
pub struct DelayScoreboard {
    config: DelayConfig,
    /// Per-job state, dense by `JobId` (ids are sequential from 1).
    states: RefCell<Vec<JobDelay>>,
    /// Total declined opportunities, for [`LocalityStats`](crate::LocalityStats).
    total_skips: Cell<u64>,
}

impl DelayScoreboard {
    /// Creates the scoreboard for a cluster with the given delay knobs.
    pub fn new(config: DelayConfig) -> Self {
        DelayScoreboard {
            config,
            states: RefCell::new(Vec::new()),
            total_skips: Cell::new(0),
        }
    }

    /// Whether delay scheduling is switched on at all. Policies use this to
    /// keep the delay branches entirely off the hot path when disabled.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// Registers the next job (ids are dense; called by the engine on job
    /// registration).
    pub(crate) fn register_job(&self) {
        self.states.borrow_mut().push(JobDelay::default());
    }

    /// The loosest locality level the job may launch map tasks at right now.
    /// `NodeLocal` means node-local only; `OffRack` means anything goes
    /// (also the answer whenever delay scheduling is disabled).
    pub fn allowed(&self, job: JobId, now: SimTime) -> Locality {
        if !self.config.enabled {
            return Locality::OffRack;
        }
        let states = self.states.borrow();
        let Some(state) = states.get((job.0 as usize).wrapping_sub(1)) else {
            return Locality::OffRack;
        };
        let Some(started) = state.wait_started else {
            return Locality::NodeLocal;
        };
        let waited = now - started;
        if waited >= self.config.node_local_wait + self.config.rack_local_wait {
            Locality::OffRack
        } else if waited >= self.config.node_local_wait {
            Locality::RackLocal
        } else {
            Locality::NodeLocal
        }
    }

    /// Records that `job` declined a launch opportunity it could have used
    /// (a free slot of the right kind on a node below its allowed locality):
    /// starts the wait clock if it is not running and bumps the counters.
    pub fn note_skip(&self, job: JobId, now: SimTime) {
        if !self.config.enabled {
            return;
        }
        let mut states = self.states.borrow_mut();
        let Some(state) = states.get_mut((job.0 as usize).wrapping_sub(1)) else {
            return;
        };
        if state.wait_started.is_none() {
            state.wait_started = Some(now);
        }
        state.skips = state.skips.saturating_add(1);
        self.total_skips.set(self.total_skips.get() + 1);
    }

    /// True while the job is *actively* waiting by its own choice: its wait
    /// clock is running (it declined at least one real opportunity) and it
    /// has not yet escalated to off-rack. FAIR uses this to keep
    /// delay-blocked jobs out of its starvation deficit — preempting victims
    /// to free slots the waiting job would only decline again is pure churn.
    /// A job whose clock never started was never offered anything and *is*
    /// starved.
    pub fn gated(&self, job: JobId, now: SimTime) -> bool {
        if !self.config.enabled {
            return false;
        }
        let waiting = {
            let states = self.states.borrow();
            states
                .get((job.0 as usize).wrapping_sub(1))
                .is_some_and(|s| s.wait_started.is_some())
        };
        waiting && self.allowed(job, now) != Locality::OffRack
    }

    /// Resets the job's wait after a node-local map launch, returning how
    /// long the job had been waiting (for the wait-time histogram), or
    /// `None` if no wait was running.
    pub(crate) fn local_launch(&self, job: JobId, now: SimTime) -> Option<SimDuration> {
        if !self.config.enabled {
            return None;
        }
        let mut states = self.states.borrow_mut();
        let state = states.get_mut((job.0 as usize).wrapping_sub(1))?;
        let started = state.wait_started.take()?;
        state.skips = 0;
        Some(now - started)
    }

    /// Total declined launch opportunities so far (all jobs).
    pub fn total_skips(&self) -> u64 {
        self.total_skips.get()
    }

    /// The job's current skip counter (test observability).
    pub fn job_skips(&self, job: JobId) -> u32 {
        self.states
            .borrow()
            .get((job.0 as usize).wrapping_sub(1))
            .map(|s| s.skips)
            .unwrap_or(0)
    }

    /// Whether the job's wait clock is currently running (test observability).
    pub fn job_waiting(&self, job: JobId) -> bool {
        self.states
            .borrow()
            .get((job.0 as usize).wrapping_sub(1))
            .is_some_and(|s| s.wait_started.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn board(node_secs: u64, rack_secs: u64) -> DelayScoreboard {
        let sb = DelayScoreboard::new(DelayConfig::waits(
            SimDuration::from_secs(node_secs),
            SimDuration::from_secs(rack_secs),
        ));
        sb.register_job();
        sb
    }

    #[test]
    fn disabled_scoreboard_allows_everything_and_records_nothing() {
        let sb = DelayScoreboard::new(DelayConfig::default());
        sb.register_job();
        let job = JobId(1);
        assert_eq!(sb.allowed(job, SimTime::ZERO), Locality::OffRack);
        sb.note_skip(job, SimTime::ZERO);
        assert_eq!(sb.total_skips(), 0);
        assert!(!sb.gated(job, SimTime::ZERO));
    }

    #[test]
    fn wait_clock_escalates_node_to_rack_to_any() {
        let sb = board(3, 3);
        let job = JobId(1);
        // Before any decline: node-local only, but not "gated" (the job was
        // never offered anything, so it may legitimately be starved).
        assert_eq!(
            sb.allowed(job, SimTime::from_secs(100)),
            Locality::NodeLocal
        );
        assert!(!sb.gated(job, SimTime::from_secs(100)));
        sb.note_skip(job, SimTime::from_secs(100));
        assert!(sb.gated(job, SimTime::from_secs(100)));
        assert_eq!(
            sb.allowed(job, SimTime::from_secs(102)),
            Locality::NodeLocal
        );
        assert_eq!(
            sb.allowed(job, SimTime::from_secs(103)),
            Locality::RackLocal
        );
        assert_eq!(
            sb.allowed(job, SimTime::from_secs(105)),
            Locality::RackLocal
        );
        assert_eq!(sb.allowed(job, SimTime::from_secs(106)), Locality::OffRack);
        // Escalated to anything: no longer gated.
        assert!(!sb.gated(job, SimTime::from_secs(106)));
    }

    #[test]
    fn zero_rack_wait_collapses_the_rack_tier() {
        let sb = board(3, 0);
        let job = JobId(1);
        sb.note_skip(job, SimTime::ZERO);
        assert_eq!(sb.allowed(job, SimTime::from_secs(2)), Locality::NodeLocal);
        assert_eq!(sb.allowed(job, SimTime::from_secs(3)), Locality::OffRack);
    }

    #[test]
    fn local_launch_resets_the_clock_and_the_skip_counter() {
        let sb = board(3, 3);
        let job = JobId(1);
        sb.note_skip(job, SimTime::from_secs(10));
        sb.note_skip(job, SimTime::from_secs(11));
        assert_eq!(sb.job_skips(job), 2);
        assert_eq!(sb.total_skips(), 2);
        let waited = sb.local_launch(job, SimTime::from_secs(14));
        assert_eq!(waited, Some(SimDuration::from_secs(4)));
        assert_eq!(sb.job_skips(job), 0);
        assert!(!sb.job_waiting(job));
        // The wait starts over for the next task.
        assert_eq!(sb.allowed(job, SimTime::from_secs(20)), Locality::NodeLocal);
        assert_eq!(sb.local_launch(job, SimTime::from_secs(20)), None);
    }

    #[test]
    fn unknown_jobs_are_unrestricted() {
        let sb = board(3, 3);
        assert_eq!(sb.allowed(JobId(99), SimTime::ZERO), Locality::OffRack);
        sb.note_skip(JobId(99), SimTime::ZERO);
        assert_eq!(sb.total_skips(), 0);
    }
}
