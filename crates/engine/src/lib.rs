//! # mrp-engine — a Hadoop-1 style MapReduce engine with suspend/resume
//!
//! This crate is the "patched Hadoop" of the reproduction: a discrete-event
//! model of the Hadoop 1 control plane — JobTracker, TaskTrackers, heartbeats,
//! map/reduce slots, task attempts — extended with the paper's OS-assisted
//! preemption protocol:
//!
//! * new JobTracker task states `MUST_SUSPEND`, `SUSPENDED`, `MUST_RESUME`
//!   ([`TaskState`]), mirroring the kill path;
//! * commands piggybacked on TaskTracker heartbeats (suspend, resume, kill),
//!   with the completion race handled the way Section III-B describes;
//! * TaskTrackers delivering `SIGTSTP` / `SIGCONT` / `SIGKILL` to task child
//!   processes through the simulated kernel (`mrp-simos`), so that memory
//!   pressure — not checkpointing — determines the cost of preemption.
//!
//! Scheduling *policy* is pluggable through [`SchedulerPolicy`]; this crate
//! only ships the non-preemptive priority-FIFO default ([`FifoScheduler`]).
//! The paper's dummy trigger-driven scheduler, its preemption primitives
//! (`wait`, `kill`, `suspend/resume`) and the preemptive job schedulers live
//! in the `mrp-preempt` crate.
//!
//! ```
//! use mrp_engine::{Cluster, ClusterConfig, FifoScheduler, JobSpec};
//! use mrp_sim::{SimTime, MIB};
//!
//! let mut cluster = Cluster::new(ClusterConfig::paper_single_node(),
//!                                Box::new(FifoScheduler::new()));
//! cluster.create_input_file("/user/test/input-512mb", 512 * MIB).unwrap();
//! cluster.submit_job(JobSpec::map_only("tl", "/user/test/input-512mb"));
//! cluster.run(SimTime::from_secs(3_600));
//! let report = cluster.report();
//! assert!(report.all_jobs_complete());
//! ```

#![warn(missing_docs)]

mod attempt;
mod cluster;
mod config;
mod delay;
mod job;
mod metrics;
mod obs;
mod plugin;
mod reliability;
mod scheduler;
mod shuffle;
mod tasktracker;

pub use attempt::{Attempt, AttemptPhase, AttemptState, ExecPlan};
pub use cluster::Cluster;
pub use config::{
    ClusterConfig, DelayConfig, DetectorConfig, FaultEvent, FaultKind, FaultPlan, NodeConfig,
    ObsConfig, RandomFaults, RefreshMode, ReliabilityConfig, ShuffleConfig, SpeculationConfig,
    TaskDefaults, TraceLevel,
};
pub use delay::DelayScoreboard;
pub use job::{
    AttemptId, JobId, JobRuntime, JobSpec, JobTable, MapInput, TaskId, TaskKind, TaskProfile,
    TaskRuntime, TaskState,
};
pub use metrics::{
    ClusterReport, FaultStats, JobReport, LocalityStats, NodeReport, TaskReport, TraceEntry,
    TraceKind, DELAY_WAIT_BUCKET_SECS,
};
pub use obs::{ObsState, Span, SpanKind, ACTION_KINDS, EVENT_KINDS, SERIES_COLUMNS};
pub use plugin::{
    JobOrder, JobOrderFn, NodeScoreFn, PreemptableSetFn, PreemptableTask, TaskOrderFn,
    TenantLedger, TenantShareStats,
};
pub use reliability::ReliabilityTracker;
pub use scheduler::{
    FifoScheduler, NodeView, PendingTotals, PlacementQuery, PlacementVerdict, RackView,
    SchedulerAction, SchedulerContext, SchedulerPolicy,
};
pub use shuffle::ShuffleTracker;
pub use tasktracker::{
    AllocationOutcome, FailedAttempt, TaskTracker, TerminationOutcome, TrackerError,
};

// Re-exported so downstream crates can talk about placement without pulling
// in the DFS crate explicitly.
pub use mrp_dfs::{Locality, NodeId, RackId, Topology};

// Re-exported so downstream crates can configure the block-granular swap
// device (see [`ClusterConfig::with_swap`]) without depending on `mrp-simos`.
pub use mrp_simos::{SwapConfig, SwapStats};

#[cfg(test)]
mod randomized_tests {
    //! Property-style tests driven by seeded randomization (the container has
    //! no proptest); fixed seeds keep every failure reproducible.

    use super::*;
    use mrp_sim::{SimRng, SimTime, MIB};

    /// Any mix of map-only jobs on a small cluster runs to completion,
    /// without paging unless memory demands exceed RAM.
    #[test]
    fn random_workloads_complete() {
        for case in 0..16u64 {
            let mut rng = SimRng::new(0xE9E + case);
            let n = 1 + rng.index(4);
            let mut cfg = ClusterConfig::paper_single_node();
            cfg.nodes[0].map_slots = 1 + rng.index(2) as u32;
            let mut cluster = Cluster::new(cfg, Box::new(FifoScheduler::new()));
            for i in 0..n {
                let path = format!("/input-{i}");
                let size_mib = 32 + rng.index(736) as u64;
                cluster.create_input_file(&path, size_mib * MIB).unwrap();
                cluster.submit_job_at(
                    JobSpec::map_only(format!("job-{i}"), path),
                    SimTime::from_secs(rng.index(200) as u64),
                );
            }
            cluster.run(SimTime::from_secs(24 * 3_600));
            let report = cluster.report();
            assert!(report.all_jobs_complete());
            assert!(report.makespan_secs().unwrap() > 0.0);
            // Light-weight jobs never page, regardless of how many there are:
            // only one runs per slot and each fits comfortably in RAM.
            assert_eq!(report.total_swap_out_bytes(), 0);
            for job in &report.jobs {
                for task in &job.tasks {
                    assert!(task.attempts >= 1);
                    assert!((task.progress - 1.0).abs() < 1e-9);
                }
            }
        }
    }

    /// The engine is deterministic: the same configuration and seed give
    /// byte-identical reports.
    #[test]
    fn runs_are_deterministic() {
        for case in 0..8u64 {
            let mut rng = SimRng::new(0xDE7 + case);
            let size_mib = 64 + rng.index(448) as u64;
            let arrival = rng.index(60) as u64;
            let run = || {
                let mut cluster = Cluster::new(
                    ClusterConfig::paper_single_node(),
                    Box::new(FifoScheduler::new()),
                );
                cluster.create_input_file("/a", size_mib * MIB).unwrap();
                cluster.create_input_file("/b", 256 * MIB).unwrap();
                cluster.submit_job(JobSpec::map_only("a", "/a"));
                cluster.submit_job_at(JobSpec::map_only("b", "/b"), SimTime::from_secs(arrival));
                cluster.run(SimTime::from_secs(24 * 3_600));
                cluster.report()
            };
            assert_eq!(run(), run());
        }
    }
}
