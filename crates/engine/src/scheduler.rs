//! The scheduler plug-in interface and the default FIFO policy.
//!
//! The engine separates *mechanism* from *policy* exactly as the paper does:
//! the JobTracker implements the mechanics of launching, killing, suspending
//! and resuming tasks (including the heartbeat-piggybacked command protocol),
//! while a [`SchedulerPolicy`] decides *which* task runs or is preempted
//! *where* and *when*. The paper's dummy trigger-driven scheduler, the
//! preemptive FAIR scheduler and the HFSP-style size-based scheduler all live
//! in the `mrp-preempt` crate and implement this trait.

use crate::config::SpeculationConfig;
use crate::delay::DelayScoreboard;
use crate::job::{JobId, JobRuntime, JobSpec, JobTable, TaskId, TaskKind, TaskRuntime, TaskState};
use crate::reliability::ReliabilityTracker;
use crate::shuffle::ShuffleTracker;
use mrp_dfs::{Locality, NodeId, RackId, Topology};
use mrp_sim::SimTime;
use serde::{Deserialize, Serialize};

/// A command a scheduler hands back to the JobTracker.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SchedulerAction {
    /// Submit a brand-new job (used by trigger-driven experiment schedulers).
    SubmitJob(JobSpec),
    /// Launch a schedulable task on a node with a free slot.
    Launch {
        /// The task to launch.
        task: TaskId,
        /// The node to launch it on.
        node: NodeId,
    },
    /// Launch a speculative (backup) attempt of a straggling task on a node
    /// with a free slot; the first attempt to finish wins and the engine
    /// kills the loser. Only valid for tasks currently running or suspended,
    /// on a node other than the original attempt's.
    LaunchSpeculative {
        /// The straggling task to back up.
        task: TaskId,
        /// The node to run the backup on.
        node: NodeId,
    },
    /// Ask the task's TaskTracker to suspend it (`SIGTSTP`) at its next
    /// heartbeat. This is the paper's new primitive.
    Suspend {
        /// The task to suspend.
        task: TaskId,
    },
    /// Ask the task's TaskTracker to resume it (`SIGCONT`) at its next
    /// heartbeat; requires a free slot on that node when the command arrives.
    Resume {
        /// The task to resume.
        task: TaskId,
    },
    /// Ask the task's TaskTracker to kill the current attempt; the task
    /// becomes schedulable again from scratch.
    Kill {
        /// The task to kill.
        task: TaskId,
    },
}

/// Snapshot of one node's slot occupancy, given to scheduler policies.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NodeView {
    /// The node.
    pub id: NodeId,
    /// Free map slots right now.
    pub free_map_slots: u32,
    /// Free reduce slots right now.
    pub free_reduce_slots: u32,
    /// Tasks currently occupying slots on this node.
    pub running: Vec<TaskId>,
    /// Tasks suspended on this node (they occupy memory but no slot).
    pub suspended: Vec<TaskId>,
}

impl NodeView {
    /// Free slots of the given kind.
    pub fn free_slots(&self, kind: TaskKind) -> u32 {
        match kind {
            TaskKind::Map => self.free_map_slots,
            TaskKind::Reduce => self.free_reduce_slots,
        }
    }
}

/// Aggregate slot occupancy of one rack, maintained incrementally by the
/// engine (per-rack counters updated only for nodes whose tracker state
/// changed). Policies use these to answer cluster-wide capacity questions in
/// O(racks) instead of O(nodes).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RackView {
    /// The rack.
    pub id: RackId,
    /// Number of nodes in the rack.
    pub nodes: u32,
    /// Free map slots across the rack right now.
    pub free_map_slots: u32,
    /// Free reduce slots across the rack right now.
    pub free_reduce_slots: u32,
}

/// Cluster-wide pending-work counters, maintained incrementally by the
/// engine on every task state transition. They let a scheduling round prove
/// "this node's free slots cannot be used by anything" in O(1) — the
/// overwhelmingly common case at 10k-node scale (e.g. a free reduce slot on
/// every node of a map-only workload must not trigger job scans).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PendingTotals {
    /// Schedulable map tasks across all jobs.
    pub schedulable_maps: u32,
    /// Schedulable reduce tasks across all jobs.
    pub schedulable_reduces: u32,
    /// Suspended tasks across all jobs.
    pub suspended: u32,
}

impl PendingTotals {
    /// Recomputes the totals from a job table (for hand-built harnesses and
    /// invariant checks; the engine maintains them incrementally).
    pub fn from_jobs(jobs: &JobTable) -> Self {
        let mut totals = PendingTotals::default();
        for job in jobs.values() {
            totals.schedulable_maps += job.schedulable_maps;
            totals.schedulable_reduces += job.schedulable_reduces;
            totals.suspended += job.suspended_count;
        }
        totals
    }
}

/// A placement question for [`SchedulerContext::placement_verdict`] — the
/// single decision surface behind the grown set of placement-veto helpers
/// (`reliability_avoid`, `prefer_reduce_elsewhere`, `delay_gated`), which
/// are now thin wrappers over it.
#[derive(Clone, Copy, Debug)]
pub enum PlacementQuery<'q> {
    /// Would a fresh `Launch`/`LaunchSpeculative` of a task of `kind` on
    /// `node` be steered away by the node-reliability predictor?
    FreshTask {
        /// The candidate node.
        node: NodeId,
        /// Map or reduce.
        kind: TaskKind,
    },
    /// Should a reduce of `job` decline a slot on `node` because the rack
    /// holding most of the job's map output is elsewhere and has capacity?
    ReducePlacement {
        /// The job whose reduce is being placed.
        job: JobId,
        /// The candidate node.
        node: NodeId,
    },
    /// Is `job` voluntarily declining slots under delay scheduling right
    /// now (so preempting victims on its behalf would be pure churn)?
    DelayGate {
        /// The job under consideration.
        job: &'q JobRuntime,
    },
}

/// The answer to a [`PlacementQuery`]: either the placement is fine, or the
/// specific veto that applies. Policies that only care whether to proceed
/// use [`PlacementVerdict::allows`]; the variant says *why* when they want
/// to record or trade off the reason.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlacementVerdict {
    /// No veto: place the work.
    Allow,
    /// The reliability predictor flags the node flaky and capacity exists
    /// elsewhere — steer fresh launches away.
    AvoidFlakyNode,
    /// The job's map-output bytes concentrate in a different rack with free
    /// reduce capacity — prefer launching the reduce there.
    PreferReduceElsewhere,
    /// The job is inside its delay-scheduling wait window — it would
    /// decline this slot anyway while waiting for locality.
    WaitForLocality,
}

impl PlacementVerdict {
    /// True when no veto applies.
    pub fn allows(self) -> bool {
        self == PlacementVerdict::Allow
    }
}

/// Read-only view of the cluster handed to scheduler policies.
pub struct SchedulerContext<'a> {
    /// Current virtual time.
    pub now: SimTime,
    /// All jobs the JobTracker knows about, keyed by id (insertion ordered).
    pub jobs: &'a JobTable,
    /// Per-node slot occupancy snapshots.
    pub nodes: &'a [NodeView],
    /// Per-rack aggregate slot counters (empty slices are fine for
    /// hand-built single-node harnesses; only cluster-wide capacity helpers
    /// read them).
    pub racks: &'a [RackView],
    /// The cluster topology, for rack-aware placement decisions.
    pub topology: &'a Topology,
    /// Cluster-wide pending-work counters (see [`PendingTotals`]).
    pub totals: PendingTotals,
    /// Speculative-execution knobs (from
    /// [`ClusterConfig::speculation`](crate::ClusterConfig)); policies use
    /// [`SchedulerContext::push_speculative_candidates`] and never need to
    /// read this directly.
    pub speculation: SpeculationConfig,
    /// The engine-owned delay-scheduling scoreboard (from
    /// [`ClusterConfig::delay`](crate::ClusterConfig)), if the cluster has
    /// one. Policies consult it through [`SchedulerContext::delay_allowed`],
    /// [`SchedulerContext::note_delay_skip`] and
    /// [`SchedulerContext::delay_gated`]; hand-built harness contexts pass
    /// `None` (delay scheduling off).
    pub delay: Option<&'a DelayScoreboard>,
    /// The engine-owned map-output registry (from
    /// [`ClusterConfig::shuffle`](crate::ClusterConfig)), if the cluster has
    /// one. Policies consult it through
    /// [`SchedulerContext::prefer_reduce_elsewhere`]; hand-built harness
    /// contexts pass `None` (topology-blind shuffle).
    pub shuffle: Option<&'a ShuffleTracker>,
    /// The engine-owned node-reliability predictor (from
    /// [`ClusterConfig::reliability`](crate::ClusterConfig)), if the cluster
    /// has one. Policies consult it through
    /// [`SchedulerContext::reliability_avoid`]; hand-built harness contexts
    /// pass `None` (failure-blind placement).
    pub reliability: Option<&'a ReliabilityTracker>,
}

impl<'a> SchedulerContext<'a> {
    /// The view of a specific node, if it exists.
    ///
    /// Cluster-built view slices are indexed by dense node id, so the lookup
    /// is O(1); the scan only remains as a fallback for hand-built slices in
    /// tests and custom harnesses.
    pub fn node(&self, id: NodeId) -> Option<&NodeView> {
        if let Some(view) = self.nodes.get(id.0 as usize) {
            if view.id == id {
                return Some(view);
            }
        }
        self.nodes.iter().find(|n| n.id == id)
    }

    /// Looks up a task across all jobs.
    pub fn task(&self, id: TaskId) -> Option<&crate::job::TaskRuntime> {
        self.jobs.get(&id.job).and_then(|j| j.task(id))
    }

    /// Free map slots across the whole cluster, from the maintained per-rack
    /// counters: O(racks), not O(nodes).
    pub fn free_map_slots_total(&self) -> u32 {
        self.racks.iter().map(|r| r.free_map_slots).sum()
    }

    /// Free reduce slots across the whole cluster (O(racks)).
    pub fn free_reduce_slots_total(&self) -> u32 {
        self.racks.iter().map(|r| r.free_reduce_slots).sum()
    }

    /// The view of a specific rack, if it exists. Cluster-built slices are
    /// dense by rack id (O(1)); the scan is a fallback for hand-built slices.
    pub fn rack(&self, id: RackId) -> Option<&RackView> {
        if let Some(view) = self.racks.get(id.0 as usize) {
            if view.id == id {
                return Some(view);
            }
        }
        self.racks.iter().find(|r| r.id == id)
    }

    /// True when the node-reliability predictor says fresh launches of `kind`
    /// should be steered off `node` right now: the predictor is on, the node's
    /// combined failure score is above the flaky threshold, **and** free slots
    /// of that kind exist elsewhere in the cluster. The capacity guard keeps
    /// the bias starvation-free — when a flaky node is the only capacity
    /// left, work still lands on it. Policies apply this to fresh `Launch`
    /// and `LaunchSpeculative` decisions only, never to resumes (a suspended
    /// task's memory already lives on its node).
    pub fn reliability_avoid(&self, node: NodeId, kind: TaskKind) -> bool {
        !self
            .placement_verdict(PlacementQuery::FreshTask { node, kind })
            .allows()
    }

    /// Answers a [`PlacementQuery`]: the one decision surface all placement
    /// vetoes go through, for legacy helpers and action-pipeline plugins
    /// alike. Returns [`PlacementVerdict::Allow`] when no veto applies.
    pub fn placement_verdict(&self, query: PlacementQuery<'_>) -> PlacementVerdict {
        match query {
            PlacementQuery::FreshTask { node, kind } => {
                let Some(r) = self.reliability else {
                    return PlacementVerdict::Allow;
                };
                if !r.enabled() {
                    return PlacementVerdict::Allow;
                }
                let Some(rack) = self.topology.rack_of(node) else {
                    return PlacementVerdict::Allow;
                };
                if !r.flaky(node, rack, self.now) {
                    return PlacementVerdict::Allow;
                }
                let free_here = self.node(node).map(|v| v.free_slots(kind)).unwrap_or(0);
                let total = match kind {
                    TaskKind::Map => self.free_map_slots_total(),
                    TaskKind::Reduce => self.free_reduce_slots_total(),
                };
                if total > free_here {
                    PlacementVerdict::AvoidFlakyNode
                } else {
                    PlacementVerdict::Allow
                }
            }
            PlacementQuery::ReducePlacement { job, node } => {
                let Some(s) = self.shuffle else {
                    return PlacementVerdict::Allow;
                };
                if !s.enabled() {
                    return PlacementVerdict::Allow;
                }
                let Some(pref) = s.preferred_rack(job) else {
                    return PlacementVerdict::Allow;
                };
                let Some(here) = self.topology.rack_of(node) else {
                    return PlacementVerdict::Allow;
                };
                if pref != here && self.rack(pref).is_some_and(|r| r.free_reduce_slots > 0) {
                    PlacementVerdict::PreferReduceElsewhere
                } else {
                    PlacementVerdict::Allow
                }
            }
            PlacementQuery::DelayGate { job } => {
                let Some(d) = self.delay else {
                    return PlacementVerdict::Allow;
                };
                if !d.enabled() || job.schedulable_maps == 0 {
                    return PlacementVerdict::Allow;
                }
                // Reduce work can launch anywhere, so a job with pending
                // reduces always has a legitimate claim on slots.
                if job.schedulable_reduces > 0 {
                    return PlacementVerdict::Allow;
                }
                // Tasks are laid out maps-first; a preference-less first map
                // means the whole job is synthetic and never
                // delay-restricted.
                if job
                    .tasks
                    .first()
                    .is_none_or(|t| t.preferred_nodes.is_empty())
                {
                    return PlacementVerdict::Allow;
                }
                if d.gated(job.id, self.now) {
                    PlacementVerdict::WaitForLocality
                } else {
                    PlacementVerdict::Allow
                }
            }
        }
    }

    /// True when a reduce of `job` should decline a slot on `node` because
    /// the rack holding the most of the job's map-output bytes is a different
    /// one **and** that rack has a free reduce slot right now (O(1) via the
    /// maintained rack counters — and the guard that makes the preference
    /// starvation-free: when the byte-heavy rack is full, the reduce launches
    /// wherever it can). Always false while fault-tolerant shuffle is off or
    /// the job has no committed map output yet.
    pub fn prefer_reduce_elsewhere(&self, job: JobId, node: NodeId) -> bool {
        !self
            .placement_verdict(PlacementQuery::ReducePlacement { job, node })
            .allows()
    }

    /// Input locality a launch of `task` on `node` would get: the best
    /// locality over the task's preferred (replica-holding) nodes. Tasks with
    /// no placement preference (synthetic input) count as node-local, since
    /// every node is equally good. O(replicas) via the topology's dense rack
    /// index.
    pub fn task_locality(&self, task: &TaskRuntime, node: NodeId) -> Locality {
        if task.preferred_nodes.is_empty() {
            return Locality::NodeLocal;
        }
        task.preferred_nodes
            .iter()
            .map(|holder| self.topology.locality(node, *holder))
            .min()
            .unwrap_or(Locality::OffRack)
    }

    /// All tasks in a schedulable state, ordered by (priority desc, job
    /// submission order, task index): the order a priority-aware FIFO
    /// scheduler would serve them in.
    pub fn schedulable_tasks(&self) -> Vec<TaskId> {
        let mut jobs: Vec<&JobRuntime> = self.jobs.values().collect();
        jobs.sort_by(|a, b| {
            b.spec
                .priority
                .cmp(&a.spec.priority)
                .then(a.submitted_at.cmp(&b.submitted_at))
                .then(a.id.cmp(&b.id))
        });
        let mut out = Vec::new();
        for job in jobs {
            // The engine-maintained counter lets exhausted jobs be skipped
            // without touching their task lists.
            if job.schedulable_count() == 0 {
                continue;
            }
            for t in &job.tasks {
                if t.state.is_schedulable() {
                    out.push(t.id);
                }
            }
        }
        out
    }

    /// All tasks currently suspended, in the same priority order.
    pub fn suspended_tasks(&self) -> Vec<TaskId> {
        let mut jobs: Vec<&JobRuntime> = self.jobs.values().collect();
        jobs.sort_by(|a, b| {
            b.spec
                .priority
                .cmp(&a.spec.priority)
                .then(a.submitted_at.cmp(&b.submitted_at))
                .then(a.id.cmp(&b.id))
        });
        let mut out = Vec::new();
        for job in jobs {
            if job.suspended_count == 0 {
                continue;
            }
            for t in &job.tasks {
                if t.state == TaskState::Suspended {
                    out.push(t.id);
                }
            }
        }
        out
    }

    /// True when there is at least one incomplete job.
    pub fn has_incomplete_jobs(&self) -> bool {
        self.jobs.values().any(|j| !j.is_finished())
    }

    /// True when delay scheduling is active for this cluster. Policies use
    /// this to keep every delay branch off the hot path when the feature is
    /// off.
    pub fn delay_enabled(&self) -> bool {
        self.delay.is_some_and(|d| d.enabled())
    }

    /// The loosest locality level `job` may launch map tasks at right now
    /// under delay scheduling: `NodeLocal` means node-local only,
    /// `RackLocal` adds same-rack nodes, `OffRack` means anything goes (and
    /// is always the answer when delay scheduling is off). Tasks with no
    /// placement preference (synthetic input) and reduce tasks are never
    /// restricted — the level only gates map tasks that actually have
    /// preferred replica holders.
    pub fn delay_allowed(&self, job: JobId) -> Locality {
        match self.delay {
            Some(d) => d.allowed(job, self.now),
            None => Locality::OffRack,
        }
    }

    /// Records that `job` declined a launch opportunity (a free slot of a
    /// kind it has pending work for, on a node below its allowed locality
    /// level): starts/continues the job's wait clock so its allowed level
    /// escalates, and counts the skip in
    /// [`LocalityStats::delayed_skips`](crate::LocalityStats).
    pub fn note_delay_skip(&self, job: JobId) {
        if let Some(d) = self.delay {
            d.note_skip(job, self.now);
        }
    }

    /// True while `job` is voluntarily declining slots under delay
    /// scheduling: its wait clock is running, it has not yet escalated to
    /// off-rack, and everything it could schedule is locality-restricted.
    /// FAIR uses this to keep waiting jobs out of its starvation deficit —
    /// preempting victims to free slots the job would decline again is pure
    /// churn. A job that was never offered a slot (clock not running) is
    /// *not* gated: it may be genuinely starved.
    pub fn delay_gated(&self, job: &JobRuntime) -> bool {
        !self
            .placement_verdict(PlacementQuery::DelayGate { job })
            .allows()
    }

    /// Appends up to `max` speculative-launch candidates from `job` for a
    /// backup on `node`, using the job's mean progress rate as the straggler
    /// baseline (Hadoop-style, but rate-based so tasks frozen in `Suspended`
    /// decay into candidacy — the re-execution opportunity preemption churn
    /// and node loss create).
    ///
    /// Policies call this only for tail-phase jobs (nothing schedulable
    /// left) with free slots remaining after regular assignment, so the
    /// O(job tasks) scan stays off the saturated hot path.
    pub fn push_speculative_candidates(
        &self,
        job: &JobRuntime,
        node: NodeId,
        max: usize,
        out: &mut Vec<TaskId>,
    ) {
        let cfg = self.speculation;
        if !cfg.enabled
            || max == 0
            || job.speculative_live >= cfg.max_live_per_job
            || job.schedulable_maps > 0
        {
            return;
        }
        let min_runtime = cfg.min_runtime.as_secs_f64();
        // Pass 1: the job's mean progress rate. Completed tasks anchor the
        // baseline (their rate is 1/duration), so a job whose remaining
        // attempts are *all* degraded — e.g. every one frozen in `Suspended`
        // — still recognises them as stragglers once siblings have finished.
        let mut rate_sum = 0.0f64;
        let mut count = 0u32;
        let eligible = |t: &TaskRuntime| {
            t.id.kind == TaskKind::Map
                && matches!(
                    t.state,
                    TaskState::Running
                        | TaskState::Suspended
                        | TaskState::MustSuspend
                        | TaskState::MustResume
                )
        };
        for t in &job.tasks {
            if t.id.kind != TaskKind::Map {
                continue;
            }
            let Some(started) = t.first_launched_at else {
                continue;
            };
            if t.state == TaskState::Succeeded {
                if let Some(done) = t.finished_at {
                    let duration = (done - started).as_secs_f64();
                    if duration > 0.0 {
                        rate_sum += 1.0 / duration;
                        count += 1;
                    }
                }
                continue;
            }
            if !eligible(t) {
                continue;
            }
            let elapsed = (self.now - started).as_secs_f64();
            if elapsed < min_runtime {
                continue;
            }
            rate_sum += t.progress / elapsed;
            count += 1;
        }
        if count < 2 {
            return; // no population to call anything a straggler against
        }
        let threshold = cfg.slowness_ratio * (rate_sum / f64::from(count));
        // Pass 2: tasks whose rate fell below the threshold and that can
        // take a backup on this node. Only `Suspended` stragglers qualify: a
        // running straggler (e.g. a task restarted after a node failure)
        // executes at full speed, so a from-scratch backup loses the race by
        // construction and only wastes a slot, and a `MustResume` task's
        // resume is already riding the next heartbeat — whereas a task
        // frozen in `Suspended` makes no progress at all until its node
        // frees a slot, which is exactly when a backup elsewhere wins. (The
        // engine accepts `LaunchSpeculative` for `MustResume` too, for
        // policies with their own detectors.)
        let budget = max.min((cfg.max_live_per_job - job.speculative_live) as usize);
        let mut pushed = 0usize;
        for t in &job.tasks {
            if pushed >= budget {
                break;
            }
            if t.state != TaskState::Suspended
                || t.id.kind != TaskKind::Map
                || t.spec_attempt.is_some()
                || t.node == Some(node)
            {
                continue;
            }
            let Some(started) = t.first_launched_at else {
                continue;
            };
            let elapsed = (self.now - started).as_secs_f64();
            if elapsed < min_runtime || t.progress >= 1.0 {
                continue;
            }
            if t.progress / elapsed < threshold {
                out.push(t.id);
                pushed += 1;
            }
        }
    }
}

/// A pluggable scheduling policy driven by JobTracker events.
///
/// Every hook returns the actions the policy wants to perform; the engine
/// validates them (slot availability, task states) and runs the preemption
/// protocol for the ones that need TaskTracker cooperation.
pub trait SchedulerPolicy {
    /// Called when `node` heartbeats and is willing to accept work.
    fn on_heartbeat(&mut self, ctx: &SchedulerContext<'_>, node: NodeId) -> Vec<SchedulerAction>;

    /// Called right after a job is submitted.
    fn on_job_submitted(
        &mut self,
        _ctx: &SchedulerContext<'_>,
        _job: JobId,
    ) -> Vec<SchedulerAction> {
        Vec::new()
    }

    /// Called when a task reaches a terminal state (succeeded).
    fn on_task_finished(
        &mut self,
        _ctx: &SchedulerContext<'_>,
        _task: TaskId,
    ) -> Vec<SchedulerAction> {
        Vec::new()
    }

    /// Called when a job completes (all its tasks succeeded).
    fn on_job_finished(
        &mut self,
        _ctx: &SchedulerContext<'_>,
        _job: JobId,
    ) -> Vec<SchedulerAction> {
        Vec::new()
    }

    /// Called when a progress trigger registered with
    /// [`crate::cluster::Cluster::add_progress_trigger`] fires.
    fn on_progress_trigger(
        &mut self,
        _ctx: &SchedulerContext<'_>,
        _task: TaskId,
        _fraction: f64,
    ) -> Vec<SchedulerAction> {
        Vec::new()
    }

    /// Human-readable policy name (for reports and traces).
    fn name(&self) -> &str {
        "scheduler"
    }
}

/// The default policy: priority-aware FIFO without preemption.
///
/// On every heartbeat it fills the node's free slots with schedulable tasks in
/// (priority, submission order) order, preferring data-local tasks, and
/// resumes suspended tasks when slots free up (so that externally requested
/// suspensions — e.g. from the command-line API — eventually finish).
#[derive(Debug, Default, Clone)]
pub struct FifoScheduler {
    /// Whether the policy resumes suspended tasks when slots are free.
    pub resume_suspended: bool,
    /// Simulated second of the last speculation scan (the O(tail-job tasks)
    /// straggler scan runs at most once per simulated second cluster-wide).
    spec_stamp: Option<u64>,
}

impl FifoScheduler {
    /// Creates the default FIFO policy that also resumes suspended tasks.
    pub fn new() -> Self {
        FifoScheduler {
            resume_suspended: true,
            spec_stamp: None,
        }
    }

    /// A FIFO launcher that never resumes suspended tasks on its own (used
    /// by wrappers that control resumption themselves).
    pub fn non_resuming() -> Self {
        FifoScheduler {
            resume_suspended: false,
            spec_stamp: None,
        }
    }
}

impl SchedulerPolicy for FifoScheduler {
    fn on_heartbeat(&mut self, ctx: &SchedulerContext<'_>, node: NodeId) -> Vec<SchedulerAction> {
        let Some(view) = ctx.node(node) else {
            return Vec::new();
        };
        // Hot-path early exit: skip the whole-cluster task scans below when
        // this node's free slots provably cannot be used — no pending work of
        // the matching kind exists anywhere (the cluster-wide totals are
        // engine-maintained, O(1) to consult) and nothing is suspended here.
        // At scale most heartbeats hit this case.
        let can_launch_map = view.free_map_slots > 0 && ctx.totals.schedulable_maps > 0;
        let can_launch_reduce = view.free_reduce_slots > 0 && ctx.totals.schedulable_reduces > 0;
        let can_resume = self.resume_suspended
            && !view.suspended.is_empty()
            && (view.free_map_slots > 0 || view.free_reduce_slots > 0);
        // Speculation (when enabled) looks only at tail-phase jobs, and only
        // when map slots survive regular assignment — Hadoop's trigger: a
        // slot nothing pending can use.
        let can_speculate = ctx.speculation.enabled && view.free_map_slots > 0;
        if !can_launch_map && !can_launch_reduce && !can_resume && !can_speculate {
            return Vec::new();
        }
        let mut actions = Vec::new();
        let mut free_map = view.free_map_slots;
        let mut free_reduce = view.free_reduce_slots;

        // First give slots back to suspended tasks stranded on this node.
        if self.resume_suspended && !view.suspended.is_empty() {
            for task in ctx.suspended_tasks() {
                let Some(t) = ctx.task(task) else { continue };
                if t.node != Some(node) {
                    continue;
                }
                let free = match task.kind {
                    TaskKind::Map => &mut free_map,
                    TaskKind::Reduce => &mut free_reduce,
                };
                if *free > 0 {
                    *free -= 1;
                    actions.push(SchedulerAction::Resume { task });
                }
            }
        }

        // Then launch fresh work in three locality tiers: node-local first,
        // then rack-local, then off-rack. One pass computes each task's
        // locality exactly once and buckets it; draining the buckets in tier
        // order preserves the within-tier priority order of the schedulable
        // list. A task's locality is fixed, so every task lands in exactly
        // one bucket and cannot be launched twice.
        let schedulable = ctx.schedulable_tasks();
        let mut tiers: [Vec<TaskId>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for &task in &schedulable {
            let Some(t) = ctx.task(task) else { continue };
            let bucket = match ctx.task_locality(t, node) {
                Locality::NodeLocal => 0,
                Locality::RackLocal => 1,
                Locality::OffRack => 2,
            };
            tiers[bucket].push(task);
        }
        // Delay scheduling: the rack-local and off-rack buckets only contain
        // map tasks with real placement preferences (preference-less tasks
        // and reduces all bucket as node-local), so gating those buckets on
        // the job's allowed locality level is exactly the policy. A declined
        // opportunity is recorded at most once per job per heartbeat — and
        // not at all for a job that launched a node-local map this round:
        // that launch resets the job's wait at apply time, so noting a skip
        // would only mint a spurious zero-length histogram entry. Per-job
        // flags are dense Vecs indexed by job id (ids are sequential from
        // 1), and the allowed level is cached per job (tiers keep a job's
        // tasks contiguous), so the decline path stays O(tasks) even with
        // the whole backlog waiting.
        // Failure-aware placement: fresh launches (and speculative backups
        // below) avoid flaky nodes while capacity exists elsewhere. Resumes
        // above are exempt — the suspended state already lives here.
        let avoid_map = ctx.reliability_avoid(node, TaskKind::Map);
        let avoid_reduce = ctx.reliability_avoid(node, TaskKind::Reduce);
        let delay_on = ctx.delay_enabled();
        let flag_len = if delay_on { ctx.jobs.len() } else { 0 };
        let mut declined = vec![false; flag_len];
        let mut launched_local = vec![false; flag_len];
        let mut cached_allowed: Option<(crate::job::JobId, Locality)> = None;
        for (level, tier) in tiers.iter().enumerate() {
            if free_map == 0 && free_reduce == 0 {
                break;
            }
            for &task in tier {
                let free = match task.kind {
                    TaskKind::Map => &mut free_map,
                    TaskKind::Reduce => &mut free_reduce,
                };
                if *free == 0 {
                    continue;
                }
                match task.kind {
                    TaskKind::Map if avoid_map => continue,
                    TaskKind::Reduce if avoid_reduce => continue,
                    // Rack-aware reduce placement: wait for the rack holding
                    // the job's map-output bytes while it has capacity.
                    TaskKind::Reduce if ctx.prefer_reduce_elsewhere(task.job, node) => continue,
                    _ => {}
                }
                let flag_idx = (task.job.0 as usize).wrapping_sub(1);
                if delay_on && level > 0 {
                    let allowed = match cached_allowed {
                        Some((job, allowed)) if job == task.job => allowed,
                        _ => {
                            let allowed = ctx.delay_allowed(task.job);
                            cached_allowed = Some((task.job, allowed));
                            allowed
                        }
                    };
                    let permitted = match level {
                        1 => allowed >= Locality::RackLocal,
                        _ => allowed == Locality::OffRack,
                    };
                    if !permitted {
                        if let Some(flag) = declined.get_mut(flag_idx) {
                            *flag = true;
                        }
                        continue;
                    }
                }
                if delay_on && level == 0 && task.kind == TaskKind::Map {
                    if let Some(flag) = launched_local.get_mut(flag_idx) {
                        *flag = true;
                    }
                }
                *free -= 1;
                actions.push(SchedulerAction::Launch { task, node });
            }
        }
        for (idx, declined) in declined.into_iter().enumerate() {
            if declined && !launched_local[idx] {
                ctx.note_delay_skip(crate::job::JobId(idx as u32 + 1));
            }
        }

        // Map slots still free after regular assignment: nothing pending can
        // use them, so offer them to stragglers as speculative backups
        // (candidate scans stay per-job-gated to tail-phase jobs, and run at
        // most once per simulated second cluster-wide).
        if ctx.speculation.enabled && free_map > 0 && !avoid_map {
            let second = ctx.now.as_micros() / 1_000_000;
            if self.spec_stamp != Some(second) {
                self.spec_stamp = Some(second);
                let mut candidates = Vec::new();
                for job in ctx.jobs.values().filter(|j| !j.is_finished()) {
                    if free_map == 0 {
                        break;
                    }
                    candidates.clear();
                    ctx.push_speculative_candidates(job, node, free_map as usize, &mut candidates);
                    for &task in &candidates {
                        free_map -= 1;
                        actions.push(SchedulerAction::LaunchSpeculative { task, node });
                    }
                }
            }
        }
        actions
    }

    fn name(&self) -> &str {
        "fifo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobSpec, TaskRuntime};

    fn make_job(id: u32, priority: i32, submitted: u64, tasks: usize) -> JobRuntime {
        let spec =
            JobSpec::synthetic(format!("job{id}"), tasks as u32, 100).with_priority(priority);
        let job_id = JobId(id);
        let mut job = JobRuntime {
            id: job_id,
            spec,
            submitted_at: SimTime::from_secs(submitted),
            completed_at: None,
            tasks: (0..tasks)
                .map(|i| {
                    TaskRuntime::new(
                        TaskId {
                            job: job_id,
                            kind: TaskKind::Map,
                            index: i as u32,
                        },
                        100,
                        vec![],
                    )
                })
                .collect(),
            schedulable_maps: 0,
            schedulable_reduces: 0,
            suspended_count: 0,
            occupying_count: 0,
            speculative_live: 0,
        };
        job.recount_task_states();
        job
    }

    fn view(id: u32, free_map: u32) -> NodeView {
        NodeView {
            id: NodeId(id),
            free_map_slots: free_map,
            free_reduce_slots: 0,
            running: vec![],
            suspended: vec![],
        }
    }

    #[test]
    fn schedulable_tasks_respect_priority_then_fifo() {
        let mut jobs = JobTable::new();
        jobs.insert(JobId(1), make_job(1, 0, 0, 1));
        jobs.insert(JobId(2), make_job(2, 5, 10, 1));
        jobs.insert(JobId(3), make_job(3, 0, 5, 1));
        let nodes = [view(0, 1)];
        let topo = Topology::single_rack(10);
        let ctx = SchedulerContext {
            now: SimTime::from_secs(20),
            jobs: &jobs,
            nodes: &nodes,
            racks: &[],
            topology: &topo,
            totals: PendingTotals::from_jobs(&jobs),
            speculation: SpeculationConfig::default(),
            delay: None,
            shuffle: None,
            reliability: None,
        };
        let order = ctx.schedulable_tasks();
        assert_eq!(order[0].job, JobId(2), "highest priority first");
        assert_eq!(order[1].job, JobId(1), "then FIFO by submission");
        assert_eq!(order[2].job, JobId(3));
    }

    #[test]
    fn fifo_fills_free_slots_only() {
        let mut jobs = JobTable::new();
        jobs.insert(JobId(1), make_job(1, 0, 0, 3));
        let nodes = [view(0, 2)];
        let topo = Topology::single_rack(10);
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            jobs: &jobs,
            nodes: &nodes,
            racks: &[],
            topology: &topo,
            totals: PendingTotals::from_jobs(&jobs),
            speculation: SpeculationConfig::default(),
            delay: None,
            shuffle: None,
            reliability: None,
        };
        let mut fifo = FifoScheduler::new();
        let actions = fifo.on_heartbeat(&ctx, NodeId(0));
        let launches = actions
            .iter()
            .filter(|a| matches!(a, SchedulerAction::Launch { .. }))
            .count();
        assert_eq!(launches, 2, "only as many launches as free slots");
    }

    #[test]
    fn fifo_prefers_data_local_tasks() {
        let mut jobs = JobTable::new();
        let mut job = make_job(1, 0, 0, 2);
        job.tasks[0].preferred_nodes = vec![NodeId(5)];
        job.tasks[1].preferred_nodes = vec![NodeId(0)];
        jobs.insert(JobId(1), job);
        let nodes = [view(0, 1)];
        let topo = Topology::single_rack(10);
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            jobs: &jobs,
            nodes: &nodes,
            racks: &[],
            topology: &topo,
            totals: PendingTotals::from_jobs(&jobs),
            speculation: SpeculationConfig::default(),
            delay: None,
            shuffle: None,
            reliability: None,
        };
        let mut fifo = FifoScheduler::new();
        let actions = fifo.on_heartbeat(&ctx, NodeId(0));
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            SchedulerAction::Launch { task, node } => {
                assert_eq!(task.index, 1, "the node-local task should win the slot");
                assert_eq!(*node, NodeId(0));
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn fifo_resumes_suspended_tasks_on_their_node() {
        let mut jobs = JobTable::new();
        let mut job = make_job(1, 0, 0, 1);
        job.tasks[0].state = TaskState::Pending;
        job.tasks[0].set_state(TaskState::Running);
        job.tasks[0].set_state(TaskState::MustSuspend);
        job.tasks[0].set_state(TaskState::Suspended);
        job.tasks[0].node = Some(NodeId(0));
        job.recount_task_states();
        jobs.insert(JobId(1), job);
        let mut v = view(0, 1);
        v.suspended = vec![TaskId {
            job: JobId(1),
            kind: TaskKind::Map,
            index: 0,
        }];
        let nodes = [v];
        let topo = Topology::single_rack(10);
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            jobs: &jobs,
            nodes: &nodes,
            racks: &[],
            topology: &topo,
            totals: PendingTotals::from_jobs(&jobs),
            speculation: SpeculationConfig::default(),
            delay: None,
            shuffle: None,
            reliability: None,
        };
        let mut fifo = FifoScheduler::new();
        let actions = fifo.on_heartbeat(&ctx, NodeId(0));
        assert!(matches!(actions[0], SchedulerAction::Resume { .. }));

        // On a different node nothing happens.
        let actions = fifo.on_heartbeat(&ctx, NodeId(9));
        assert!(actions.is_empty());
    }

    #[test]
    fn fifo_delay_declines_remote_tiers_until_escalation() {
        use crate::config::DelayConfig;
        use mrp_sim::SimDuration;
        let sb = DelayScoreboard::new(DelayConfig::waits(
            SimDuration::from_secs(3),
            SimDuration::from_secs(3),
        ));
        sb.register_job();
        let mut jobs = JobTable::new();
        let mut job = make_job(1, 0, 0, 1);
        // The only replica holder is node 5, which lives in the other rack
        // of a 2-rack topology: a launch on node 0 would be off-rack.
        job.tasks[0].preferred_nodes = vec![NodeId(5)];
        jobs.insert(JobId(1), job);
        let nodes = [view(0, 1)];
        let topo = Topology::blocked(10, 2);
        let ctx_at = |now: SimTime| SchedulerContext {
            now,
            jobs: &jobs,
            nodes: &nodes,
            racks: &[],
            topology: &topo,
            totals: PendingTotals::from_jobs(&jobs),
            speculation: SpeculationConfig::default(),
            delay: Some(&sb),
            shuffle: None,
            reliability: None,
        };
        let mut fifo = FifoScheduler::new();
        // Node-local-only phase: the off-rack launch is declined and the
        // wait clock starts.
        assert!(fifo
            .on_heartbeat(&ctx_at(SimTime::ZERO), NodeId(0))
            .is_empty());
        assert!(sb.job_waiting(JobId(1)));
        assert_eq!(sb.job_skips(JobId(1)), 1);
        // Rack-local phase: node 0 is still in the wrong rack — declined.
        assert!(fifo
            .on_heartbeat(&ctx_at(SimTime::from_secs(4)), NodeId(0))
            .is_empty());
        // Fully escalated: anything goes.
        let actions = fifo.on_heartbeat(&ctx_at(SimTime::from_secs(6)), NodeId(0));
        assert_eq!(actions.len(), 1);
        assert!(matches!(actions[0], SchedulerAction::Launch { .. }));
    }

    #[test]
    fn reliability_avoid_steers_fresh_launches_while_capacity_exists() {
        use crate::config::ReliabilityConfig;
        let mut tracker = ReliabilityTracker::new(ReliabilityConfig::predictive(), 10, 2);
        // Node 1 just crashed and rejoined: flaky.
        tracker.record_failure(NodeId(1), RackId(0), SimTime::from_secs(100));
        let mut jobs = JobTable::new();
        jobs.insert(JobId(1), make_job(1, 0, 0, 2));
        let nodes = [view(0, 1), view(1, 1)];
        let racks = [
            RackView {
                id: RackId(0),
                nodes: 5,
                free_map_slots: 2,
                free_reduce_slots: 0,
            },
            RackView {
                id: RackId(1),
                nodes: 5,
                free_map_slots: 0,
                free_reduce_slots: 0,
            },
        ];
        let topo = Topology::blocked(10, 2);
        let ctx = SchedulerContext {
            now: SimTime::from_secs(100),
            jobs: &jobs,
            nodes: &nodes,
            racks: &racks,
            topology: &topo,
            totals: PendingTotals::from_jobs(&jobs),
            speculation: SpeculationConfig::default(),
            delay: None,
            shuffle: None,
            reliability: Some(&tracker),
        };
        assert!(ctx.reliability_avoid(NodeId(1), TaskKind::Map));
        assert!(
            !ctx.reliability_avoid(NodeId(0), TaskKind::Map),
            "healthy node"
        );
        // The FIFO policy keeps fresh launches off the flaky node...
        let mut fifo = FifoScheduler::new();
        assert!(fifo.on_heartbeat(&ctx, NodeId(1)).is_empty());
        // ...but still fills the healthy one.
        assert!(!fifo.on_heartbeat(&ctx, NodeId(0)).is_empty());
        // Starvation guard: when the flaky node holds the only free capacity,
        // work lands on it anyway.
        let only_here = [RackView {
            id: RackId(0),
            nodes: 5,
            free_map_slots: 1,
            free_reduce_slots: 0,
        }];
        let ctx2 = SchedulerContext {
            racks: &only_here,
            nodes: &nodes[1..],
            ..ctx
        };
        assert!(!ctx2.reliability_avoid(NodeId(1), TaskKind::Map));
        assert!(!fifo.on_heartbeat(&ctx2, NodeId(1)).is_empty());
    }

    #[test]
    fn reduces_prefer_the_rack_holding_map_output_bytes() {
        use crate::config::ShuffleConfig;
        let mut shuffle = ShuffleTracker::new(ShuffleConfig::fault_tolerant(), 2);
        shuffle.register_job(1, 1);
        // All map output lives on rack 1 (node 5 in the blocked topology).
        shuffle.record_map_output(JobId(1), 0, NodeId(5), RackId(1), 100);
        let mut jobs = JobTable::new();
        let spec = JobSpec::synthetic("red", 0, 100).with_reduces(1);
        let job_id = JobId(1);
        let mut job = JobRuntime {
            id: job_id,
            spec,
            submitted_at: SimTime::ZERO,
            completed_at: None,
            tasks: vec![TaskRuntime::new(
                TaskId {
                    job: job_id,
                    kind: TaskKind::Reduce,
                    index: 0,
                },
                100,
                vec![],
            )],
            schedulable_maps: 0,
            schedulable_reduces: 0,
            suspended_count: 0,
            occupying_count: 0,
            speculative_live: 0,
        };
        job.recount_task_states();
        jobs.insert(job_id, job);
        let mut v0 = view(0, 0);
        v0.free_reduce_slots = 1;
        let mut v5 = NodeView {
            id: NodeId(5),
            free_map_slots: 0,
            free_reduce_slots: 1,
            running: vec![],
            suspended: vec![],
        };
        let racks_with_capacity = [
            RackView {
                id: RackId(0),
                nodes: 5,
                free_map_slots: 0,
                free_reduce_slots: 1,
            },
            RackView {
                id: RackId(1),
                nodes: 5,
                free_map_slots: 0,
                free_reduce_slots: 1,
            },
        ];
        let topo = Topology::blocked(10, 2);
        let nodes = [v0.clone()];
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            jobs: &jobs,
            nodes: &nodes,
            racks: &racks_with_capacity,
            topology: &topo,
            totals: PendingTotals::from_jobs(&jobs),
            speculation: SpeculationConfig::default(),
            delay: None,
            shuffle: Some(&shuffle),
            reliability: None,
        };
        // Rack 0 offer is declined: the bytes (and a free slot) are on rack 1.
        assert!(ctx.prefer_reduce_elsewhere(JobId(1), NodeId(0)));
        let mut fifo = FifoScheduler::new();
        assert!(fifo.on_heartbeat(&ctx, NodeId(0)).is_empty());
        // On the byte-holding rack the reduce launches.
        assert!(!ctx.prefer_reduce_elsewhere(JobId(1), NodeId(5)));
        v5.free_reduce_slots = 1;
        let nodes5 = [v0.clone(), v5];
        let ctx5 = SchedulerContext {
            nodes: &nodes5,
            ..ctx
        };
        assert_eq!(fifo.on_heartbeat(&ctx5, NodeId(5)).len(), 1);
        // Once rack 1 is full, rack 0 stops declining (starvation guard).
        let full = [
            racks_with_capacity[0].clone(),
            RackView {
                id: RackId(1),
                nodes: 5,
                free_map_slots: 0,
                free_reduce_slots: 0,
            },
        ];
        let ctx_full = SchedulerContext {
            racks: &full,
            ..ctx5
        };
        assert!(!ctx_full.prefer_reduce_elsewhere(JobId(1), NodeId(0)));
    }

    #[test]
    fn context_helpers() {
        let mut jobs = JobTable::new();
        jobs.insert(JobId(1), make_job(1, 0, 0, 1));
        let nodes = [view(0, 1)];
        let topo = Topology::single_rack(10);
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            jobs: &jobs,
            nodes: &nodes,
            racks: &[],
            topology: &topo,
            totals: PendingTotals::from_jobs(&jobs),
            speculation: SpeculationConfig::default(),
            delay: None,
            shuffle: None,
            reliability: None,
        };
        assert!(ctx.node(NodeId(0)).is_some());
        assert!(ctx.node(NodeId(4)).is_none());
        assert!(ctx.has_incomplete_jobs());
        let tid = TaskId {
            job: JobId(1),
            kind: TaskKind::Map,
            index: 0,
        };
        assert!(ctx.task(tid).is_some());
        assert_eq!(ctx.nodes[0].free_slots(TaskKind::Map), 1);
        assert_eq!(ctx.nodes[0].free_slots(TaskKind::Reduce), 0);
    }
}
